#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>

#include "mcfs/graph/road_network.h"
#include "mcfs/workload/bike_sim.h"
#include "mcfs/workload/workload.h"
#include "mcfs/workload/yelp_sim.h"

namespace mcfs {
namespace {

TEST(CapacitiesTest, UniformAndRandomRanges) {
  Rng rng(1);
  const std::vector<int> uniform = UniformCapacities(10, 7);
  EXPECT_EQ(uniform, std::vector<int>(10, 7));
  const std::vector<int> random = RandomCapacities(200, 1, 10, rng);
  for (const int c : random) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 10);
  }
  // All values of the range appear for a large sample.
  std::set<int> values(random.begin(), random.end());
  EXPECT_GE(values.size(), 8u);
}

TEST(CapacitiesTest, OperatingHoursAverageNine) {
  Rng rng(2);
  const std::vector<int> hours = OperatingHoursCapacities(2000, rng);
  const double mean =
      std::accumulate(hours.begin(), hours.end(), 0.0) / hours.size();
  EXPECT_NEAR(mean, 9.0, 0.3);  // paper: venues average 9 opening hours
  for (const int h : hours) {
    EXPECT_GE(h, 4);
    EXPECT_LE(h, 14);
  }
}

TEST(SamplingTest, DistinctNodesAreDistinctAndInRange) {
  GraphBuilder builder(50);
  for (int v = 0; v + 1 < 50; ++v) builder.AddEdge(v, v + 1, 1.0);
  const Graph graph = builder.Build();
  Rng rng(3);
  const std::vector<NodeId> nodes = SampleDistinctNodes(graph, 30, rng);
  std::set<NodeId> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const NodeId v : nodes) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(SamplingTest, WeightedSamplingAvoidsZeroWeights) {
  Rng rng(4);
  std::vector<double> weights(100, 0.0);
  for (int v = 20; v < 60; ++v) weights[v] = 1.0;
  const std::vector<NodeId> nodes =
      SampleDistinctNodesWeighted(weights, 25, rng);
  std::set<NodeId> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), 25u);
  for (const NodeId v : nodes) {
    EXPECT_GE(v, 20);
    EXPECT_LT(v, 60);
  }
}

TEST(SamplingTest, WeightedSamplingFavorsHeavyNodes) {
  Rng rng(5);
  std::vector<double> weights(100, 0.01);
  weights[7] = 1000.0;
  int hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<NodeId> nodes =
        SampleDistinctNodesWeighted(weights, 1, rng);
    if (nodes[0] == 7) ++hits;
  }
  EXPECT_GT(hits, 45);
}

TEST(DistrictPlacementTest, ConcentratesOnDistricts) {
  // Compact districts + density floor: customers land everywhere but
  // concentrate near the centers. We check reproducibility and range.
  GraphBuilder builder(400);
  std::vector<Point> coords(400);
  for (int v = 0; v < 400; ++v) {
    coords[v] = {static_cast<double>(v % 20) * 50.0,
                 static_cast<double>(v / 20) * 50.0};
    if (v > 0) builder.AddEdge(v - 1, v, 1.0);
  }
  builder.SetCoordinates(coords);
  const Graph graph = builder.Build();
  Rng rng_a(3);
  Rng rng_b(3);
  const std::vector<NodeId> a = PlaceCustomersByDistricts(graph, 200, 4, rng_a);
  const std::vector<NodeId> b = PlaceCustomersByDistricts(graph, 200, 4, rng_b);
  EXPECT_EQ(a, b);  // deterministic for a seed
  ASSERT_EQ(a.size(), 200u);
  for (const NodeId v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 400);
  }
  // Not uniform: the most popular quarter of nodes should hold well
  // over a quarter of the customers.
  std::vector<int> counts(400, 0);
  for (const NodeId v : a) counts[v]++;
  std::sort(counts.begin(), counts.end(), std::greater<int>());
  int top_quarter = 0;
  for (int i = 0; i < 100; ++i) top_quarter += counts[i];
  EXPECT_GT(top_quarter, 75);
}

class CoworkingScenarioTest : public ::testing::Test {
 protected:
  static const Graph& City() {
    static const Graph* city = new Graph(GenerateCity(CopenhagenPreset(0.01)));
    return *city;
  }
};

TEST_F(CoworkingScenarioTest, ProducesConsistentScenario) {
  YelpSimOptions options;
  options.num_venues = 120;
  options.num_customers = 150;
  options.seed = 6;
  const CoworkingScenario scenario =
      GenerateCoworkingScenario(City(), options);
  EXPECT_EQ(scenario.venues.size(), 120u);
  EXPECT_EQ(scenario.capacities.size(), 120u);
  EXPECT_EQ(scenario.occupancy.size(), 120u);
  EXPECT_EQ(scenario.customers.size(), 150u);
  std::set<NodeId> distinct(scenario.venues.begin(), scenario.venues.end());
  EXPECT_EQ(distinct.size(), 120u);
  for (const double o : scenario.occupancy) EXPECT_GT(o, 0.0);
  for (const NodeId c : scenario.customers) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, City().NumNodes());
  }
}

TEST_F(CoworkingScenarioTest, DeterministicForSeed) {
  YelpSimOptions options;
  options.num_venues = 50;
  options.num_customers = 60;
  options.seed = 7;
  const CoworkingScenario a = GenerateCoworkingScenario(City(), options);
  const CoworkingScenario b = GenerateCoworkingScenario(City(), options);
  EXPECT_EQ(a.venues, b.venues);
  EXPECT_EQ(a.customers, b.customers);
}

TEST_F(CoworkingScenarioTest, BikeScenarioDemandIsADistribution) {
  BikeSimOptions options;
  options.num_stations = 80;
  options.num_bikes = 100;
  options.num_commuter_flows = 60;
  options.seed = 8;
  const BikeScenario scenario = GenerateBikeScenario(City(), options);
  EXPECT_EQ(scenario.stations.size(), 80u);
  EXPECT_EQ(scenario.bikes.size(), 100u);
  double total = 0.0;
  for (const double d : scenario.demand) {
    EXPECT_GE(d, 0.0);
    total += d;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (const int c : scenario.capacities) EXPECT_GE(c, 2);
  std::set<NodeId> distinct(scenario.stations.begin(),
                            scenario.stations.end());
  EXPECT_EQ(distinct.size(), 80u);
}

TEST_F(CoworkingScenarioTest, BikeDemandConcentratesOnFlowEndpoints) {
  BikeSimOptions options;
  options.num_stations = 50;
  options.num_bikes = 50;
  options.num_commuter_flows = 80;
  options.seed = 9;
  const BikeScenario scenario = GenerateBikeScenario(City(), options);
  // Demand should be sparse: most nodes see no commuter endpoints.
  int positive = 0;
  for (const double d : scenario.demand) {
    if (d > 0.0) ++positive;
  }
  EXPECT_LT(positive, City().NumNodes() / 2);
  EXPECT_GT(positive, 0);
}

}  // namespace
}  // namespace mcfs
