#include "mcfs/graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mcfs/graph/road_network.h"

namespace mcfs {
namespace {

TEST(GeneratorsTest, UniformPointsStayInTheSquare) {
  Rng rng(1);
  const std::vector<Point> points = GenerateUniformPoints(500, 1000.0, rng);
  ASSERT_EQ(points.size(), 500u);
  for (const Point& p : points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1000.0);
  }
}

TEST(GeneratorsTest, ClusteredPointsConcentrateAroundCenters) {
  Rng rng(2);
  const int clusters = 5;
  const double sigma = 30.0;
  const std::vector<Point> points =
      GenerateClusteredPoints(1000, clusters, 1000.0, sigma, rng);
  // Most points lie within 3 sigma of their cluster center (centers are
  // the first `clusters` points; point i belongs to center i % clusters).
  int close = 0;
  for (size_t i = clusters; i < points.size(); ++i) {
    const Point& center = points[(i - clusters) % clusters];
    if (EuclideanDistance(points[i], center) < 3 * sigma * 1.5) ++close;
  }
  EXPECT_GT(close, 900);
}

TEST(GeometricGraphTest, ConnectsExactlyPairsWithinRadius) {
  Rng rng(3);
  const std::vector<Point> points = GenerateUniformPoints(150, 100.0, rng);
  const double radius = 15.0;
  const Graph graph = BuildGeometricGraph(points, radius);
  // Oracle: brute-force all pairs.
  int64_t expected_edges = 0;
  for (size_t a = 0; a < points.size(); ++a) {
    for (size_t b = a + 1; b < points.size(); ++b) {
      if (EuclideanDistance(points[a], points[b]) < radius) ++expected_edges;
    }
  }
  EXPECT_EQ(graph.NumEdges(), expected_edges);
  // Weights equal the Euclidean distances.
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (const AdjEntry& e : graph.Neighbors(v)) {
      EXPECT_NEAR(e.weight, EuclideanDistance(points[v], points[e.to]),
                  1e-9);
      EXPECT_LT(e.weight, radius);
    }
  }
}

TEST(GeometricGraphTest, CliqueNodesArePairwiseConnected) {
  Rng rng(4);
  std::vector<Point> points = GenerateUniformPoints(100, 1000.0, rng);
  const std::vector<NodeId> clique = {0, 1, 2, 3};
  const Graph graph = BuildGeometricGraph(points, 10.0, clique);
  for (const NodeId a : clique) {
    for (const NodeId b : clique) {
      if (a == b) continue;
      bool found = false;
      for (const AdjEntry& e : graph.Neighbors(a)) {
        if (e.to == b) found = true;
      }
      EXPECT_TRUE(found) << a << " not adjacent to " << b;
    }
  }
}

TEST(SyntheticNetworkTest, AverageDegreeTracksAlpha) {
  SyntheticNetworkOptions options;
  options.num_nodes = 4000;
  options.seed = 9;
  options.alpha = 2.0;
  const double deg2 = GenerateSyntheticNetwork(options).AverageDegree();
  options.alpha = 1.2;
  const double deg12 = GenerateSyntheticNetwork(options).AverageDegree();
  // E[deg] = pi * alpha^2 (boundary effects shave a little off).
  EXPECT_NEAR(deg2, 3.14159 * 4.0, 1.5);
  EXPECT_NEAR(deg12, 3.14159 * 1.44, 1.0);
  EXPECT_GT(deg2, deg12);
}

TEST(SyntheticNetworkTest, DeterministicForSeed) {
  SyntheticNetworkOptions options;
  options.num_nodes = 500;
  options.num_clusters = 10;
  options.seed = 77;
  const Graph a = GenerateSyntheticNetwork(options);
  const Graph b = GenerateSyntheticNetwork(options);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_DOUBLE_EQ(a.AverageEdgeLength(), b.AverageEdgeLength());
}

TEST(RoadNetworkTest, PresetsMatchTableIIIStatistics) {
  // Scaled-down presets must still exhibit road-network structure:
  // average degree ~2.2 (organic) / ~2.4 (grid), short edges.
  const Graph aalborg = GenerateCity(AalborgPreset(0.1));
  EXPECT_NEAR(aalborg.AverageDegree(), 2.2, 0.35);
  EXPECT_NEAR(aalborg.AverageEdgeLength(), 30.2, 8.0);
  EXPECT_GT(aalborg.NumNodes(), 3500);
  EXPECT_LT(aalborg.NumNodes(), 7000);

  const Graph vegas = GenerateCity(LasVegasPreset(0.02));
  EXPECT_NEAR(vegas.AverageDegree(), 2.4, 0.4);
  EXPECT_NEAR(vegas.AverageEdgeLength(), 50.4, 12.0);
}

TEST(RoadNetworkTest, OrganicCityIsLargelyConnected) {
  const Graph city = GenerateCity(CopenhagenPreset(0.02));
  const ComponentLabeling labeling = ConnectedComponents(city);
  int largest = 0;
  for (const int s : labeling.component_size) largest = std::max(largest, s);
  EXPECT_GT(largest, city.NumNodes() * 9 / 10);
}

TEST(RoadNetworkTest, GridCityHasCoordinatesAndPositiveWeights) {
  const Graph city = GenerateCity(LasVegasPreset(0.01));
  ASSERT_TRUE(city.has_coordinates());
  for (NodeId v = 0; v < city.NumNodes(); ++v) {
    for (const AdjEntry& e : city.Neighbors(v)) {
      EXPECT_GT(e.weight, 0.0);
    }
  }
}

}  // namespace
}  // namespace mcfs
