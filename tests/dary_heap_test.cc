#include "mcfs/common/dary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "mcfs/common/random.h"

namespace mcfs {
namespace {

TEST(DaryHeapTest, BasicOrdering) {
  DaryHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  heap.push(5);
  heap.push(1);
  heap.push(3);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.top(), 1);
  heap.pop();
  EXPECT_EQ(heap.top(), 3);
  heap.pop();
  EXPECT_EQ(heap.top(), 5);
  heap.pop();
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeapTest, HeapSortMatchesStdSort) {
  Rng rng(1);
  std::vector<double> values;
  DaryHeap<double> heap;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.Uniform(-100.0, 100.0);
    values.push_back(v);
    heap.push(v);
  }
  std::sort(values.begin(), values.end());
  for (const double expected : values) {
    EXPECT_DOUBLE_EQ(heap.top(), expected);
    heap.pop();
  }
}

TEST(DaryHeapTest, CustomComparatorAndArity) {
  struct Entry {
    double key;
    int payload;
  };
  struct ByKey {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key < b.key;
    }
  };
  DaryHeap<Entry, 8, ByKey> heap;
  heap.push({2.0, 20});
  heap.push({1.0, 10});
  heap.push({3.0, 30});
  EXPECT_EQ(heap.top().payload, 10);
}

class DaryHeapRandomOpsTest : public ::testing::TestWithParam<int> {};

TEST_P(DaryHeapRandomOpsTest, AgreesWithStdPriorityQueue) {
  Rng rng(100 + GetParam());
  DaryHeap<int, 4> ours;
  std::priority_queue<int, std::vector<int>, std::greater<int>> reference;
  for (int op = 0; op < 3000; ++op) {
    const bool push = reference.empty() || rng.NextDouble() < 0.6;
    if (push) {
      const int v = static_cast<int>(rng.UniformInt(-1000, 1000));
      ours.push(v);
      reference.push(v);
    } else {
      ASSERT_EQ(ours.top(), reference.top());
      ours.pop();
      reference.pop();
    }
    ASSERT_EQ(ours.size(), reference.size());
    if (!reference.empty()) ASSERT_EQ(ours.top(), reference.top());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, DaryHeapRandomOpsTest,
                         ::testing::Range(0, 10));

TEST(DaryHeapTest, DuplicatesAndClear) {
  DaryHeap<int> heap;
  for (int i = 0; i < 10; ++i) heap.push(7);
  EXPECT_EQ(heap.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(heap.top(), 7);
    heap.pop();
  }
  heap.push(1);
  heap.clear();
  EXPECT_TRUE(heap.empty());
}

}  // namespace
}  // namespace mcfs
