#include "mcfs/core/wma.h"

#include <gtest/gtest.h>

#include "mcfs/exact/bb_solver.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

TEST(WmaTest, SolvesThePapersRunningExample) {
  // Figure 3 of the paper: nine nodes, customers a1..a4, candidate
  // facilities b1..b6, k=2, uniform capacity 2; the optimal solution
  // selects {b2, b6} with objective 16. We reconstruct a compatible
  // bipartite distance structure (Table II) with an explicit network:
  // node ids: a1=0 a2=1 a3=2 a4=3, b1=4 b2=5 b3=6 b4=7 b5=8 b6=9.
  GraphBuilder builder(10);
  builder.AddEdge(0, 7, 1.0);   // a1-b4 = 1
  builder.AddEdge(0, 5, 4.0);   // a1-b2 = 4
  builder.AddEdge(1, 8, 1.0);   // a2-b5 = 1
  builder.AddEdge(1, 9, 2.0);   // a2-b6 = 2
  builder.AddEdge(2, 4, 1.0);   // a3-b1 = 1
  builder.AddEdge(2, 5, 4.0);   // a3-b2 = 4
  builder.AddEdge(3, 6, 1.0);   // a4-b3 = 1
  builder.AddEdge(3, 5, 5.0);   // a4-b2 = 5
  builder.AddEdge(3, 9, 6.0);   // a4-b6 = 6
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 1, 2, 3};
  instance.facility_nodes = {4, 5, 6, 7, 8, 9};
  instance.capacities = std::vector<int>(6, 2);
  instance.k = 2;

  const WmaResult result = RunWma(instance);
  EXPECT_TRUE(result.solution.feasible);
  const ValidationResult validation =
      ValidateSolution(instance, result.solution, /*check_distances=*/true);
  EXPECT_TRUE(validation.ok) << validation.message;
  // The optimum here is {b2, b6} with cost 4+2+4+6 = 16.
  const ExactResult exact = SolveByEnumeration(instance);
  EXPECT_NEAR(exact.solution.objective, 16.0, 1e-9);
  EXPECT_NEAR(result.solution.objective, 16.0, 1e-6);
}

TEST(WmaTest, CollectsIterationStats) {
  Rng rng(31);
  RandomInstance ri = MakeRandomInstance(80, 20, 15, 5, 6, rng);
  WmaOptions options;
  options.collect_iteration_stats = true;
  const WmaResult result = RunWma(ri.instance, options);
  ASSERT_FALSE(result.stats.per_iteration.empty());
  EXPECT_EQ(result.stats.iterations,
            static_cast<int>(result.stats.per_iteration.size()));
  // Covered counts are monotonically plausible and end at m when
  // feasible.
  if (result.solution.feasible) {
    EXPECT_EQ(result.stats.per_iteration.back().covered_customers, 20);
  }
  EXPECT_GT(result.stats.dijkstra_runs, 0);
  EXPECT_GT(result.stats.edges_materialized, 0);
}

// Validity sweep: every WMA variant must emit structurally valid
// solutions on random instances (including disconnected ones), and be
// feasible whenever the instance is feasible.
class WmaValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(WmaValidityTest, SolutionsAreValid) {
  Rng rng(4000 + GetParam());
  const int parts = 1 + static_cast<int>(rng.UniformInt(0, 2));
  const int n = 30 + static_cast<int>(rng.UniformInt(0, 100));
  const int m = 5 + static_cast<int>(rng.UniformInt(0, 20));
  const int l = 5 + static_cast<int>(rng.UniformInt(0, 15));
  const int k = 2 + static_cast<int>(rng.UniformInt(0, 5));
  RandomInstance ri = MakeRandomInstance(n, m, l, k, 8, rng, parts);

  for (const bool naive : {false, true}) {
    WmaOptions options;
    options.naive = naive;
    const WmaResult result = RunWma(ri.instance, options);
    const ValidationResult validation = ValidateSolution(
        ri.instance, result.solution, /*check_distances=*/true);
    EXPECT_TRUE(validation.ok)
        << (naive ? "naive: " : "exact: ") << validation.message;
    if (IsFeasible(ri.instance)) {
      EXPECT_TRUE(result.solution.feasible)
          << (naive ? "naive" : "exact")
          << " missed a feasible instance (seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, WmaValidityTest,
                         ::testing::Range(0, 50));

// Quality sweep: WMA must never lose to WMA Naive by more than noise,
// and must stay within a reasonable factor of the exact optimum.
class WmaQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(WmaQualityTest, CompetitiveWithExactAndBeatsNaive) {
  Rng rng(6000 + GetParam());
  const int n = 40 + static_cast<int>(rng.UniformInt(0, 80));
  const int m = 8 + static_cast<int>(rng.UniformInt(0, 10));
  const int l = 6 + static_cast<int>(rng.UniformInt(0, 4));
  const int k = 3;
  RandomInstance ri = MakeRandomInstance(n, m, l, k, 6, rng);
  if (!IsFeasible(ri.instance)) return;

  const WmaResult wma = RunWma(ri.instance);
  ASSERT_TRUE(wma.solution.feasible);
  const ExactResult exact = SolveByEnumeration(ri.instance);
  ASSERT_TRUE(exact.solution.feasible);
  EXPECT_GE(wma.solution.objective, exact.solution.objective - 1e-6);
  // Heuristic quality guardrail; the paper reports near-optimal quality.
  EXPECT_LE(wma.solution.objective, 2.0 * exact.solution.objective + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, WmaQualityTest,
                         ::testing::Range(0, 30));

TEST(WmaUniformFirstTest, ValidOnNonuniformInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstance ri = MakeRandomInstance(60, 12, 10, 4, 10, rng);
    const WmaResult uf = RunUniformFirstWma(ri.instance);
    const ValidationResult validation = ValidateSolution(
        ri.instance, uf.solution, /*check_distances=*/true);
    EXPECT_TRUE(validation.ok) << validation.message;
    if (IsFeasible(ri.instance)) EXPECT_TRUE(uf.solution.feasible);
  }
}

TEST(WmaTest, HandlesKGreaterThanNeeded) {
  // k equal to l: every facility can open; WMA must still terminate and
  // produce the optimal transportation assignment.
  Rng rng(55);
  RandomInstance ri = MakeRandomInstance(50, 10, 6, 6, 5, rng);
  const WmaResult result = RunWma(ri.instance);
  const ValidationResult validation =
      ValidateSolution(ri.instance, result.solution);
  EXPECT_TRUE(validation.ok) << validation.message;
}

TEST(WmaTest, MultipleCustomersPerNode) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 2.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 0, 0, 2};  // three customers share node 0
  instance.facility_nodes = {1, 2};
  instance.capacities = {3, 2};
  instance.k = 2;
  const WmaResult result = RunWma(instance);
  EXPECT_TRUE(result.solution.feasible);
  EXPECT_TRUE(ValidateSolution(instance, result.solution, true).ok);
}

}  // namespace
}  // namespace mcfs
