// Concurrency contract of SolverService, written to run under TSan:
// requests racing a catalog update must each see one whole epoch (the
// pre- or the post-update catalog, never a torn mix), and concurrent
// clients always receive responses bit-identical to direct SolveWma
// calls on the instances their requests describe.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "mcfs/core/wma.h"
#include "mcfs/serve/solver_service.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

bool SameSolution(const McfsSolution& a, const McfsSolution& b) {
  return a.selected == b.selected && a.assignment == b.assignment &&
         a.distances == b.distances && a.objective == b.objective &&
         a.feasible == b.feasible && a.termination == b.termination;
}

TEST(ServeConcurrencyTest, RequestsRacingUpdatesSeeWholeEpochs) {
  Rng rng(31);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(200, 60, 30, 12, 15, rng);
  const std::vector<int> caps_a = ri.instance.capacities;
  std::vector<int> caps_b = caps_a;
  for (int& c : caps_b) c = (c + 1) / 2;
  ASSERT_TRUE(IsFeasible(ri.instance));
  McfsInstance with_b = ri.instance;
  with_b.capacities = caps_b;
  ASSERT_TRUE(IsFeasible(with_b));

  // The two whole-epoch answers; a torn catalog (nodes of one epoch,
  // capacities of another, or a half-written component cache) could
  // match neither.
  const StatusOr<WmaResult> direct_a = SolveWma(ri.instance);
  const StatusOr<WmaResult> direct_b = SolveWma(with_b);
  ASSERT_TRUE(direct_a.ok());
  ASSERT_TRUE(direct_b.ok());

  SolverService service(ri.instance.graph, ri.instance.facility_nodes,
                        caps_a, {});

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 10;
  std::vector<SolveResponse> responses(kClients * kRequestsPerClient);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        responses[t * kRequestsPerClient + r] = service.SolveSync(
            {ri.instance.customers, ri.instance.k, {}, 0, nullptr});
      }
    });
  }
  // Race catalog updates against the in-flight requests. Epochs: 1 = A,
  // then each update alternates B, A, B, ... so odd epochs carry A.
  for (int u = 0; u < 6; ++u) {
    service.UpdateCapacities(u % 2 == 0 ? caps_b : caps_a);
    std::this_thread::yield();
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(service.epoch(), 7u);

  for (const SolveResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    const WmaResult& expected = response.epoch % 2 == 1 ? direct_a.value()
                                                        : direct_b.value();
    EXPECT_TRUE(SameSolution(response.solution, expected.solution))
        << "epoch " << response.epoch;
  }
}

TEST(ServeConcurrencyTest, ConcurrentClientsGetBitIdenticalResponses) {
  Rng rng(32);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(200, 60, 30, 12, 15, rng);

  // Distinct per-client requests (varying customer prefixes) with their
  // direct-solve references computed up front.
  constexpr int kClients = 8;
  std::vector<SolveRequest> requests;
  std::vector<WmaResult> expected;
  for (int t = 0; t < kClients; ++t) {
    SolveRequest request{ri.instance.customers, ri.instance.k, {}, 0,
                         nullptr};
    request.customers.resize(ri.instance.m() - 3 * t);
    McfsInstance instance = ri.instance;
    instance.customers = request.customers;
    StatusOr<WmaResult> direct = SolveWma(instance);
    ASSERT_TRUE(direct.ok());
    requests.push_back(std::move(request));
    expected.push_back(std::move(direct).value());
  }

  ServiceOptions options;
  options.serve_threads = 4;
  options.cache_capacity = 0;
  SolverService service(ri.instance.graph, ri.instance.facility_nodes,
                        ri.instance.capacities, options);

  std::vector<SolveResponse> responses(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back(
        [&, t] { responses[t] = service.SolveSync(requests[t]); });
  }
  for (std::thread& client : clients) client.join();

  for (int t = 0; t < kClients; ++t) {
    ASSERT_TRUE(responses[t].status.ok()) << responses[t].status.ToString();
    EXPECT_TRUE(SameSolution(responses[t].solution, expected[t].solution))
        << "client " << t;
  }
  const ServiceReport report = service.Report();
  EXPECT_EQ(report.requests_admitted, kClients);
  EXPECT_EQ(report.requests_completed, kClients);
  EXPECT_EQ(report.requests_failed, 0);
}

// Submit racing Shutdown: no matter where the race lands, every handle
// completes — with a real response or a typed kUnavailable rejection —
// and WaitFor never has to ride out its full timeout. The regression
// this pins down is a handle leaked mid-shutdown that Wait() would
// block on forever.
TEST(ServeConcurrencyTest, SubmitRacingShutdownCompletesEveryHandle) {
  Rng rng(34);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(150, 40, 20, 8, 12, rng);

  for (const int serve_threads : {1, 2, 8}) {
    SCOPED_TRACE("serve_threads=" + std::to_string(serve_threads));
    ServiceOptions options;
    options.serve_threads = serve_threads;
    options.cache_capacity = 0;
    SolverService service(ri.instance.graph, ri.instance.facility_nodes,
                          ri.instance.capacities, options);

    constexpr int kClients = 4;
    constexpr int kRequestsPerClient = 12;
    std::vector<std::shared_ptr<ResponseHandle>> handles(
        kClients * kRequestsPerClient);
    std::atomic<int> submitted{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        for (int r = 0; r < kRequestsPerClient; ++r) {
          handles[t * kRequestsPerClient + r] = service.Submit(
              {ri.instance.customers, ri.instance.k, {}, 0, nullptr});
          submitted.fetch_add(1);
        }
      });
    }
    // Let the race develop, then slam the door while Submits are still
    // arriving.
    while (submitted.load() < kClients * kRequestsPerClient / 2) {
      std::this_thread::yield();
    }
    service.Shutdown();
    for (std::thread& client : clients) client.join();

    int completed = 0, rejected = 0;
    for (size_t i = 0; i < handles.size(); ++i) {
      ASSERT_NE(handles[i], nullptr);
      ASSERT_TRUE(handles[i]->WaitFor(60'000)) << "handle " << i << " hung";
      const SolveResponse& response = handles[i]->Wait();
      if (response.status.ok()) {
        ++completed;
      } else {
        // The only failure the race may produce is the typed rejection.
        ASSERT_EQ(response.status.code(), StatusCode::kUnavailable)
            << response.status.ToString();
        EXPECT_EQ(response.retry_after_ms, 0);  // shut down: retry is futile
        ++rejected;
      }
    }
    EXPECT_EQ(completed + rejected, kClients * kRequestsPerClient);

    const ServiceReport report = service.Report();
    EXPECT_EQ(report.requests_admitted + report.requests_rejected +
                  report.requests_shed,
              kClients * kRequestsPerClient);
    EXPECT_EQ(report.requests_completed, completed);
  }
}

TEST(ServeConcurrencyTest, HandleCanBeAwaitedFromSeveralThreads) {
  Rng rng(33);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(150, 40, 20, 8, 12, rng);
  SolverService service(ri.instance.graph, ri.instance.facility_nodes,
                        ri.instance.capacities, {});
  auto handle =
      service.Submit({ri.instance.customers, ri.instance.k, {}, 0, nullptr});
  std::atomic<int> ok_count{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&] {
      if (handle->Wait().status.ok()) ok_count.fetch_add(1);
    });
  }
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(ok_count.load(), 4);
}

}  // namespace
}  // namespace mcfs
