#ifndef MCFS_TESTS_TEST_UTIL_H_
#define MCFS_TESTS_TEST_UTIL_H_

#include <vector>

#include "mcfs/common/random.h"
#include "mcfs/core/instance.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/graph.h"

namespace mcfs {
namespace testing_util {

// Random connected-ish sparse graph: a random spanning tree over n nodes
// plus `extra_edges` random chords, weights uniform in [1, 10].
inline Graph RandomGraph(int n, int extra_edges, Rng& rng) {
  GraphBuilder builder(n);
  for (int v = 1; v < n; ++v) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(0, v - 1));
    builder.AddEdge(u, v, rng.Uniform(1.0, 10.0));
  }
  for (int e = 0; e < extra_edges; ++e) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    if (u != v) builder.AddEdge(u, v, rng.Uniform(1.0, 10.0));
  }
  return builder.Build();
}

// Random graph made of `parts` disconnected random subgraphs.
inline Graph RandomDisconnectedGraph(int n, int parts, Rng& rng) {
  GraphBuilder builder(n);
  const int per_part = n / parts;
  for (int p = 0; p < parts; ++p) {
    const int lo = p * per_part;
    const int hi = (p == parts - 1) ? n - 1 : lo + per_part - 1;
    for (int v = lo + 1; v <= hi; ++v) {
      const NodeId u = static_cast<NodeId>(rng.UniformInt(lo, v - 1));
      builder.AddEdge(u, v, rng.Uniform(1.0, 10.0));
    }
  }
  return builder.Build();
}

// All-pairs shortest paths by repeated relaxation (Floyd–Warshall),
// used as an oracle for Dijkstra-based code.
inline std::vector<std::vector<double>> FloydWarshall(const Graph& graph) {
  const int n = graph.NumNodes();
  std::vector<std::vector<double>> dist(
      n, std::vector<double>(n, kInfDistance));
  for (int v = 0; v < n; ++v) {
    dist[v][v] = 0.0;
    for (const AdjEntry& e : graph.Neighbors(v)) {
      dist[v][e.to] = std::min(dist[v][e.to], e.weight);
    }
  }
  for (int mid = 0; mid < n; ++mid) {
    for (int a = 0; a < n; ++a) {
      if (dist[a][mid] == kInfDistance) continue;
      for (int b = 0; b < n; ++b) {
        if (dist[mid][b] == kInfDistance) continue;
        dist[a][b] = std::min(dist[a][b], dist[a][mid] + dist[mid][b]);
      }
    }
  }
  return dist;
}

// Random MCFS instance over a random graph. Customer nodes may repeat;
// facility nodes are distinct.
struct RandomInstance {
  Graph graph;
  McfsInstance instance;
};

inline RandomInstance MakeRandomInstance(int n, int m, int l, int k,
                                         int max_capacity, Rng& rng,
                                         int disconnected_parts = 1) {
  RandomInstance out;
  out.graph = disconnected_parts <= 1
                  ? RandomGraph(n, n / 2, rng)
                  : RandomDisconnectedGraph(n, disconnected_parts, rng);
  out.instance.graph = &out.graph;
  for (int i = 0; i < m; ++i) {
    out.instance.customers.push_back(
        static_cast<NodeId>(rng.UniformInt(0, n - 1)));
  }
  std::vector<int> nodes = rng.SampleWithoutReplacement(n, l);
  for (const int node : nodes) {
    out.instance.facility_nodes.push_back(node);
    out.instance.capacities.push_back(
        static_cast<int>(rng.UniformInt(1, max_capacity)));
  }
  out.instance.k = k;
  return out;
}

// Dense customer-facility distance matrix via per-customer Dijkstra.
inline std::vector<double> DistanceMatrix(const McfsInstance& instance) {
  std::vector<double> cost(
      static_cast<size_t>(instance.m()) * instance.l());
  for (int i = 0; i < instance.m(); ++i) {
    const std::vector<double> dist =
        ShortestPathsFrom(*instance.graph, instance.customers[i]);
    for (int j = 0; j < instance.l(); ++j) {
      cost[static_cast<size_t>(i) * instance.l() + j] =
          dist[instance.facility_nodes[j]];
    }
  }
  return cost;
}

}  // namespace testing_util
}  // namespace mcfs

#endif  // MCFS_TESTS_TEST_UTIL_H_
