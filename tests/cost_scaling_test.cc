// Correctness of the cost-scaling backend (flow/cost_scaling.h): the
// raw flow engine against hand-checked optima, the dense transportation
// oracle against flow/transport.h, and CostScalingMatcher against the
// SSPA IncrementalMatcher across a randomized instance sweep — equal
// objectives on feasible instances, equal cardinality plus a no-worse
// objective on capacity-short ones, and thread-count invariance.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "mcfs/flow/cost_scaling.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/flow/matcher_backend.h"
#include "mcfs/flow/transport.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

constexpr double kRelTol = 1e-9;

bool NearRel(double a, double b) {
  return std::abs(a - b) <= kRelTol * std::max({1.0, std::abs(a),
                                                std::abs(b)});
}

BatchMatchResult RunBackend(MatcherBackendKind kind, const RandomInstance& ri,
                            int threads = 1) {
  std::unique_ptr<MatcherBackend> backend = MakeMatcherBackend(kind);
  return backend->Match(ri.instance.graph, ri.instance.customers,
                        ri.instance.facility_nodes, ri.instance.capacities,
                        threads);
}

TEST(CostScalingFlowTest, HandCheckedDiamond) {
  // 0 -> {1, 2} -> 3, two units from 0 to 3. Taking both middle routes
  // (cost 1 + 4 and 2 + 1) beats doubling up anywhere else; all costs
  // are multiples of num_nodes + 1 = 5 to sit on the exactness lattice.
  CostScalingFlow flow(4);
  flow.SetSupply(0, 2);
  flow.SetSupply(3, -2);
  const int a01 = flow.AddArc(0, 1, 1, 1 * 5);
  const int a02 = flow.AddArc(0, 2, 1, 2 * 5);
  const int a13 = flow.AddArc(1, 3, 1, 4 * 5);
  const int a23 = flow.AddArc(2, 3, 1, 1 * 5);
  ASSERT_TRUE(flow.Solve());
  EXPECT_EQ(flow.FlowOf(a01), 1);
  EXPECT_EQ(flow.FlowOf(a02), 1);
  EXPECT_EQ(flow.FlowOf(a13), 1);
  EXPECT_EQ(flow.FlowOf(a23), 1);
  EXPECT_TRUE(flow.VerifyEpsOptimality(1));
  EXPECT_GT(flow.num_refines(), 0);
  EXPECT_GT(flow.num_pushes(), 0);
}

TEST(CostScalingFlowTest, IncrementalResolveAfterArcAndCostEdits) {
  // Start with one expensive route, then add a cheap arc and re-Solve:
  // the repair must reroute onto it.
  CostScalingFlow flow(3);
  flow.SetSupply(0, 1);
  flow.SetSupply(2, -1);
  const int expensive = flow.AddArc(0, 2, 1, 100 * 4);
  ASSERT_TRUE(flow.Solve());
  EXPECT_EQ(flow.FlowOf(expensive), 1);
  const int a01 = flow.AddArc(0, 1, 1, 1 * 4);
  const int a12 = flow.AddArc(1, 2, 1, 1 * 4);
  ASSERT_TRUE(flow.Solve());
  EXPECT_EQ(flow.FlowOf(expensive), 0);
  EXPECT_EQ(flow.FlowOf(a01), 1);
  EXPECT_EQ(flow.FlowOf(a12), 1);
  // Re-pricing the cheap path above the direct arc must move it back.
  flow.SetCost(a01, 200 * 4);
  ASSERT_TRUE(flow.Solve());
  EXPECT_EQ(flow.FlowOf(expensive), 1);
  EXPECT_EQ(flow.FlowOf(a01), 0);
  EXPECT_TRUE(flow.VerifyEpsOptimality(1));
}

class DenseTransportSweep : public ::testing::TestWithParam<int> {};

TEST_P(DenseTransportSweep, MatchesReferenceTransport) {
  Rng rng(7100 + GetParam());
  const int m = 1 + static_cast<int>(rng.UniformInt(0, 7));
  const int l = 1 + static_cast<int>(rng.UniformInt(0, 7));
  std::vector<double> cost(static_cast<size_t>(m) * l);
  for (double& c : cost) {
    // A sprinkle of forbidden pairs exercises the infeasible paths.
    c = rng.Uniform(0.0, 1.0) < 0.15 ? kInfDistance
                                     : rng.Uniform(0.0, 50.0);
  }
  std::vector<int> capacities(l);
  for (int& cap : capacities) {
    cap = static_cast<int>(rng.UniformInt(0, 2));
  }
  std::optional<TransportResult> reference =
      SolveDenseTransport(m, l, cost, capacities);
  std::optional<TransportResult> scaled =
      SolveDenseTransportCostScaling(m, l, cost, capacities);
  ASSERT_EQ(reference.has_value(), scaled.has_value());
  if (!reference.has_value()) return;
  EXPECT_TRUE(NearRel(reference->cost, scaled->cost))
      << reference->cost << " vs " << scaled->cost;
  ASSERT_EQ(scaled->assignment.size(), static_cast<size_t>(m));
  std::vector<int> load(l, 0);
  for (int i = 0; i < m; ++i) {
    const int j = scaled->assignment[i];
    ASSERT_GE(j, 0);
    ASSERT_LT(j, l);
    ASSERT_NE(cost[static_cast<size_t>(i) * l + j], kInfDistance);
    ++load[j];
  }
  for (int j = 0; j < l; ++j) EXPECT_LE(load[j], capacities[j]);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, DenseTransportSweep,
                         ::testing::Range(0, 40));

class BackendEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalenceSweep, CostScalingMatchesSspa) {
  Rng rng(7300 + GetParam());
  const int n = 20 + static_cast<int>(rng.UniformInt(0, 100));
  const int m = 4 + static_cast<int>(rng.UniformInt(0, 28));
  const int l = 3 + static_cast<int>(rng.UniformInt(0, 12));
  // max_capacity 1 with m > l forces capacity-short instances into the
  // sweep; disconnected graphs force component-local shortages.
  const int max_capacity = 1 + static_cast<int>(rng.UniformInt(0, 3));
  const int parts = 1 + GetParam() % 3;
  RandomInstance ri =
      MakeRandomInstance(n, m, l, l, max_capacity, rng, parts);

  const BatchMatchResult sspa = RunBackend(MatcherBackendKind::kSspa, ri);
  const BatchMatchResult scaled =
      RunBackend(MatcherBackendKind::kCostScaling, ri);

  // Both engines route max-cardinality flows, so the assigned count
  // must agree even when capacity runs short.
  EXPECT_EQ(sspa.all_assigned, scaled.all_assigned);
  EXPECT_EQ(sspa.pairs.size(), scaled.pairs.size());
  if (sspa.all_assigned) {
    EXPECT_TRUE(NearRel(sspa.total_cost, scaled.total_cost))
        << sspa.total_cost << " vs " << scaled.total_cost;
  } else {
    // SSPA satisfies customers greedily in index order; cost scaling
    // globally minimizes over max-cardinality assignments, so it may
    // pick a cheaper subset of customers to leave unassigned.
    EXPECT_LE(scaled.total_cost,
              sspa.total_cost + kRelTol * std::max(1.0, sspa.total_cost));
  }

  // The matching respects capacities and one unit per customer.
  std::vector<int> load(l, 0);
  std::vector<int> per_customer(m, 0);
  for (const MatchedPair& pair : scaled.pairs) {
    ++load[pair.facility];
    ++per_customer[pair.customer];
  }
  for (int j = 0; j < l; ++j) EXPECT_LE(load[j], ri.instance.capacities[j]);
  for (int i = 0; i < m; ++i) EXPECT_LE(per_customer[i], 1);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, BackendEquivalenceSweep,
                         ::testing::Range(0, 30));

TEST(CostScalingMatcherTest, ThreadCountInvariance) {
  Rng rng(7411);
  RandomInstance ri = MakeRandomInstance(120, 40, 12, 12, 4, rng);
  std::optional<BatchMatchResult> baseline;
  for (const int threads : {1, 2, 8}) {
    const BatchMatchResult result =
        RunBackend(MatcherBackendKind::kCostScaling, ri, threads);
    if (!baseline.has_value()) {
      baseline = result;
      continue;
    }
    EXPECT_EQ(baseline->all_assigned, result.all_assigned);
    ASSERT_EQ(baseline->pairs.size(), result.pairs.size());
    for (size_t p = 0; p < result.pairs.size(); ++p) {
      EXPECT_EQ(baseline->pairs[p].customer, result.pairs[p].customer);
      EXPECT_EQ(baseline->pairs[p].facility, result.pairs[p].facility);
      EXPECT_EQ(baseline->pairs[p].distance, result.pairs[p].distance);
    }
    EXPECT_EQ(baseline->total_cost, result.total_cost);
  }
}

TEST(CostScalingMatcherTest, LazyMaterializationStaysPartial) {
  // Plenty of facilities with ample capacity: the optimum only needs a
  // few nearest candidates per customer, and the price-certified
  // extension loop must prove the rest of each stream away.
  Rng rng(7512);
  RandomInstance ri = MakeRandomInstance(200, 24, 40, 40, 5, rng);
  CostScalingMatcher matcher(ri.instance.graph, ri.instance.customers,
                             ri.instance.facility_nodes,
                             ri.instance.capacities);
  ASSERT_TRUE(matcher.MatchAll());
  EXPECT_LT(matcher.num_edges_materialized(),
            static_cast<int64_t>(ri.instance.m()) * ri.instance.l());
  const BatchMatchResult sspa = RunBackend(MatcherBackendKind::kSspa, ri);
  EXPECT_TRUE(NearRel(sspa.total_cost, matcher.TotalCost()));
}

TEST(CostScalingMatcherTest, WarmSeedRefusalIsTyped) {
  const Status status = CostScalingMatcher::WarmSeedStatus();
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
  Rng rng(7613);
  RandomInstance ri = MakeRandomInstance(30, 4, 3, 3, 2, rng);
  CostScalingMatcher matcher(ri.instance.graph, ri.instance.customers,
                             ri.instance.facility_nodes,
                             ri.instance.capacities);
  WarmSeed seed;
  EXPECT_EQ(matcher.ResumeFrom(seed).code(), StatusCode::kUnsupported);
  std::unique_ptr<MatcherBackend> backend =
      MakeMatcherBackend(MatcherBackendKind::kCostScaling);
  EXPECT_EQ(backend->AcceptsWarmSeed().code(), StatusCode::kUnsupported);
  EXPECT_TRUE(MakeMatcherBackend(MatcherBackendKind::kSspa)
                  ->AcceptsWarmSeed()
                  .ok());
}

TEST(MatcherBackendTest, ParseAndNames) {
  EXPECT_EQ(*ParseMatcherBackend("sspa"), MatcherBackendKind::kSspa);
  EXPECT_EQ(*ParseMatcherBackend("cost_scaling"),
            MatcherBackendKind::kCostScaling);
  EXPECT_EQ(*ParseMatcherBackend("cost-scaling"),
            MatcherBackendKind::kCostScaling);
  EXPECT_EQ(*ParseMatcherBackend("auto"), MatcherBackendKind::kAuto);
  EXPECT_EQ(ParseMatcherBackend("bogus").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_STREQ(MatcherBackendName(MatcherBackendKind::kCostScaling),
               "cost_scaling");
}

TEST(MatcherBackendTest, AutoResolvesByShape) {
  // Near-saturated wide batch: the regime the crossover sweep measured
  // cost scaling 1.6-7.5x faster in (BENCH_matcher_backends.json).
  MatchShape dense;
  dense.customers = 4096;
  dense.facilities = 64;
  dense.total_capacity = 4100;
  EXPECT_EQ(ResolveMatcherBackend(MatcherBackendKind::kAuto, dense),
            MatcherBackendKind::kCostScaling);
  // The same batch with real slack (occupancy ~0.8) stays on SSPA —
  // below saturation its lazy searches win.
  MatchShape slack = dense;
  slack.total_capacity = 5000;
  EXPECT_EQ(ResolveMatcherBackend(MatcherBackendKind::kAuto, slack),
            MatcherBackendKind::kSspa);
  MatchShape warm = dense;
  warm.warm = true;
  EXPECT_EQ(ResolveMatcherBackend(MatcherBackendKind::kAuto, warm),
            MatcherBackendKind::kSspa);
  MatchShape small;
  small.customers = 20;
  small.facilities = 4;
  small.total_capacity = 40;
  EXPECT_EQ(ResolveMatcherBackend(MatcherBackendKind::kAuto, small),
            MatcherBackendKind::kSspa);
  // Concrete requests pass through untouched.
  EXPECT_EQ(ResolveMatcherBackend(MatcherBackendKind::kCostScaling, small),
            MatcherBackendKind::kCostScaling);
  EXPECT_EQ(ResolveMatcherBackend(MatcherBackendKind::kSspa, dense),
            MatcherBackendKind::kSspa);
}

}  // namespace
}  // namespace mcfs
