// Status / StatusOr / Deadline / CancelToken — the error-and-budget
// vocabulary of the hardened solve layer (DESIGN.md §4.8).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>

#include "mcfs/common/deadline.h"
#include "mcfs/common/line_reader.h"
#include "mcfs/common/status.h"

namespace mcfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, OkStatus());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidInputError("bad weight at line 7");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidInput);
  EXPECT_EQ(status.message(), "bad weight at line 7");
  EXPECT_EQ(status.ToString(), "INVALID_INPUT: bad weight at line 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidInput), "INVALID_INPUT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusTest, UnavailableFactory) {
  const Status status = UnavailableError("admission queue full");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.ToString(), "UNAVAILABLE: admission queue full");
}

TEST(StatusTest, WithContextPrefixes) {
  Status status = IoError("cannot open");
  status.WithContext("graph.txt");
  EXPECT_EQ(status.ToString(), "IO_ERROR: graph.txt: cannot open");
  Status ok = OkStatus();
  ok.WithContext("ignored");
  EXPECT_EQ(ok.ToString(), "OK");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [](bool fail) -> Status {
    MCFS_RETURN_IF_ERROR(fail ? InfeasibleError("no capacity")
                              : OkStatus());
    return OkStatus();
  };
  EXPECT_TRUE(fails(false).ok());
  EXPECT_EQ(fails(true).code(), StatusCode::kInfeasible);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<std::string> result(DeadlineExceededError("budget spent"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(DeadlineTest, DefaultNeverExpires) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.never_expires());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(std::isinf(deadline.RemainingSeconds()));
}

TEST(DeadlineTest, TimeModeExpires) {
  const Deadline deadline = Deadline::AfterMillis(1.0);
  EXPECT_FALSE(deadline.never_expires());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, FarFutureNotExpired) {
  const Deadline deadline = Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 1.0);
}

TEST(DeadlineTest, PollModeFiresOnNthPoll) {
  const Deadline deadline = Deadline::AfterPolls(3);
  EXPECT_FALSE(deadline.never_expires());
  EXPECT_FALSE(deadline.Expired());  // poll 1
  EXPECT_FALSE(deadline.Expired());  // poll 2
  EXPECT_TRUE(deadline.Expired());   // poll 3: fires
  EXPECT_TRUE(deadline.Expired());   // stays expired
}

TEST(DeadlineTest, PollModeZeroFiresImmediately) {
  const Deadline deadline = Deadline::AfterPolls(0);
  EXPECT_TRUE(deadline.Expired());
}

TEST(CancelTokenTest, CancelsAcrossThreads) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  std::thread canceller([&token] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(token.Cancelled());
}

TEST(LineReaderTest, TracksLineNumbers) {
  std::istringstream in("first\nsecond 2\r\nthird");
  LineReader reader(in);
  std::string line;
  ASSERT_TRUE(reader.NextLine(&line));
  EXPECT_EQ(line, "first");
  EXPECT_EQ(reader.line_number(), 1);
  ASSERT_TRUE(reader.NextLine(&line));
  EXPECT_EQ(line, "second 2");  // \r stripped
  ASSERT_TRUE(reader.NextLine(&line));
  EXPECT_EQ(line, "third");
  EXPECT_FALSE(reader.NextLine(&line));
  EXPECT_EQ(reader.line_number(), 3);
}

TEST(LineReaderTest, ErrorsNameTheLine) {
  std::istringstream in("header\n");
  LineReader reader(in);
  std::string line;
  ASSERT_TRUE(reader.NextLine(&line));
  const Status parse = reader.ParseError("expected 3 fields");
  EXPECT_EQ(parse.code(), StatusCode::kInvalidInput);
  EXPECT_NE(parse.message().find("line 1"), std::string::npos);
  const Status truncated = reader.TruncatedError("5 edge lines");
  EXPECT_NE(truncated.message().find("end of file"), std::string::npos);
}

TEST(ParseFieldsTest, ParsesAndRejectsJunk) {
  int a = 0;
  double b = 0.0;
  EXPECT_TRUE(ParseFields("3 4.5", &a, &b));
  EXPECT_EQ(a, 3);
  EXPECT_DOUBLE_EQ(b, 4.5);
  EXPECT_FALSE(ParseFields("3", &a, &b));          // too few
  EXPECT_FALSE(ParseFields("3 4.5 junk", &a, &b)); // trailing junk
  EXPECT_FALSE(ParseFields("x 4.5", &a, &b));      // wrong type
  size_t count = 0;
  EXPECT_FALSE(ParseFields("-2", &count));         // negative size_t
  EXPECT_TRUE(ParseFields("7", &count));
  EXPECT_EQ(count, 7u);
}

}  // namespace
}  // namespace mcfs
