// Property tests on the incremental matcher's internal invariants: the
// potentials must keep every materialized edge dual-feasible after each
// FindPair (Theorem 1's machinery), across random instances, interleaved
// demands, and tight capacities — plus the cross-backend contract that
// the SSPA and cost-scaling engines agree on every batch assignment.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "mcfs/core/instance.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/flow/matcher_backend.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

class MatcherInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherInvariantTest, DualFeasibilityAfterEveryAugmentation) {
  Rng rng(9000 + GetParam());
  const int n = 15 + static_cast<int>(rng.UniformInt(0, 60));
  const int m = 3 + static_cast<int>(rng.UniformInt(0, 8));
  const int l = 3 + static_cast<int>(rng.UniformInt(0, 8));
  const int parts = 1 + GetParam() % 2;
  RandomInstance ri = MakeRandomInstance(n, m, l, l, 3, rng, parts);
  IncrementalMatcher matcher(ri.instance.graph, ri.instance.customers,
                             ri.instance.facility_nodes,
                             ri.instance.capacities);

  // Interleave demand satisfaction across customers, verifying the
  // invariant after every single augmentation.
  std::vector<int> demand(m);
  for (int i = 0; i < m; ++i) {
    demand[i] = 1 + static_cast<int>(rng.UniformInt(0, 2));
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < m; ++i) {
      if (round < demand[i] &&
          matcher.CustomerMatchCount(i) <= round) {
        matcher.FindPair(i);  // failure (saturation) is fine
        ASSERT_TRUE(matcher.VerifyDualFeasibility())
            << "dual infeasible after customer " << i << " round "
            << round;
      }
    }
  }
  // Global sanity: loads within capacity, match counts within demand.
  for (int j = 0; j < l; ++j) {
    EXPECT_LE(matcher.AssignedCount(j), matcher.Capacity(j));
  }
  int total_assignments = 0;
  for (int j = 0; j < l; ++j) total_assignments += matcher.AssignedCount(j);
  int total_matches = 0;
  for (int i = 0; i < m; ++i) total_matches += matcher.CustomerMatchCount(i);
  EXPECT_EQ(total_assignments, total_matches);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, MatcherInvariantTest,
                         ::testing::Range(0, 40));

TEST(MatcherInvariantTest, CostIsMonotoneInDemand) {
  // Adding one more unit of demand can only add a non-negative marginal
  // cost, and marginal costs are non-decreasing (SSPA property).
  Rng rng(321);
  RandomInstance ri = MakeRandomInstance(60, 1, 8, 8, 2, rng);
  IncrementalMatcher matcher(ri.instance.graph, ri.instance.customers,
                             ri.instance.facility_nodes,
                             ri.instance.capacities);
  double previous_total = 0.0;
  double previous_marginal = 0.0;
  while (matcher.FindPair(0)) {
    const double total = matcher.TotalCost();
    const double marginal = total - previous_total;
    EXPECT_GE(marginal, -1e-9);
    EXPECT_GE(marginal, previous_marginal - 1e-9)
        << "marginal costs must be non-decreasing";
    previous_total = total;
    previous_marginal = marginal;
  }
}

// Both matching engines solve the same min-cost flow; on any instance
// they must agree on assignment cardinality, and on fully-assigned
// instances the objectives must match to 1e-9 relative — at every
// thread count, since threading never changes either engine's result.
class BackendEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalenceTest, CostScalingMatchesSspaAtEveryThreadCount) {
  Rng rng(7100 + GetParam());
  const int n = 40 + static_cast<int>(rng.UniformInt(0, 120));
  const int m = 6 + static_cast<int>(rng.UniformInt(0, 18));
  const int l = 3 + static_cast<int>(rng.UniformInt(0, 9));
  const int max_capacity = 1 + static_cast<int>(rng.UniformInt(0, 4));
  const int parts = 1 + GetParam() % 2;
  RandomInstance ri =
      MakeRandomInstance(n, m, l, l, max_capacity, rng, parts);
  std::vector<int> selected(l);
  std::iota(selected.begin(), selected.end(), 0);

  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const McfsSolution sspa = AssignOptimally(
        ri.instance, selected, threads, MatcherBackendKind::kSspa);
    const McfsSolution cs = AssignOptimally(
        ri.instance, selected, threads, MatcherBackendKind::kCostScaling);
    EXPECT_EQ(sspa.feasible, cs.feasible);
    int sspa_assigned = 0, cs_assigned = 0;
    for (const int a : sspa.assignment) sspa_assigned += a >= 0 ? 1 : 0;
    for (const int a : cs.assignment) cs_assigned += a >= 0 ? 1 : 0;
    EXPECT_EQ(sspa_assigned, cs_assigned);
    if (sspa.feasible) {
      EXPECT_NEAR(cs.objective, sspa.objective,
                  1e-9 * (1.0 + std::abs(sspa.objective)));
    } else {
      // Saturated instances: both engines assign the maximum number of
      // customers; cost scaling may find a cheaper max-cardinality set.
      EXPECT_LE(cs.objective,
                sspa.objective + 1e-9 * (1.0 + std::abs(sspa.objective)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, BackendEquivalenceTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mcfs
