#include "mcfs/core/dynamic.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mcfs {
namespace {

TEST(DynamicMcfsTest, AddRemoveBookkeeping) {
  Rng rng(1);
  const Graph graph = testing_util::RandomGraph(50, 30, rng);
  DynamicMcfs dynamic(&graph, {1, 10, 20, 30}, {5, 5, 5, 5}, 2);
  const int a = dynamic.AddCustomer(3);
  const int b = dynamic.AddCustomer(7);
  const int c = dynamic.AddCustomer(11);
  EXPECT_EQ(dynamic.num_active_customers(), 3);
  dynamic.RemoveCustomer(b);
  EXPECT_EQ(dynamic.num_active_customers(), 2);
  EXPECT_EQ(dynamic.ActiveCustomerIds(), (std::vector<int>{a, c}));
}

TEST(DynamicMcfsTest, FirstResolveIsAFullSolve) {
  Rng rng(2);
  const Graph graph = testing_util::RandomGraph(60, 40, rng);
  DynamicMcfs dynamic(&graph, {5, 15, 25, 35, 45}, {3, 3, 3, 3, 3}, 3);
  dynamic.AddCustomer(0);
  dynamic.AddCustomer(10);
  bool reselected = false;
  const McfsSolution& solution = dynamic.Resolve(&reselected);
  EXPECT_TRUE(reselected);
  EXPECT_TRUE(solution.feasible);
  EXPECT_EQ(dynamic.full_solves(), 1);
  EXPECT_EQ(dynamic.incremental_solves(), 0);
}

TEST(DynamicMcfsTest, SmallChangesReuseTheSelection) {
  Rng rng(3);
  const Graph graph = testing_util::RandomGraph(100, 80, rng);
  std::vector<NodeId> facilities;
  std::vector<int> capacities;
  for (int j = 0; j < 20; ++j) {
    facilities.push_back(j * 5);
    capacities.push_back(4);
  }
  DynamicMcfs dynamic(&graph, facilities, capacities, 8);
  for (int i = 0; i < 20; ++i) {
    dynamic.AddCustomer(static_cast<NodeId>(rng.UniformInt(0, 99)));
  }
  dynamic.Resolve();
  ASSERT_EQ(dynamic.full_solves(), 1);

  // A single extra customer should not trigger re-selection (ratio
  // default 1.25 gives slack).
  dynamic.AddCustomer(static_cast<NodeId>(rng.UniformInt(0, 99)));
  bool reselected = true;
  const McfsSolution& solution = dynamic.Resolve(&reselected);
  EXPECT_TRUE(solution.feasible);
  if (!reselected) {
    EXPECT_EQ(dynamic.incremental_solves(), 1);
  }
  // Solutions stay consistent with the active customer set.
  EXPECT_EQ(solution.assignment.size(),
            static_cast<size_t>(dynamic.num_active_customers()));
}

TEST(DynamicMcfsTest, CapacityPressureTriggersReselection) {
  // Facilities with capacity 1; once customers outnumber the selected
  // capacity, keeping the old selection is infeasible and the solver
  // must re-select.
  GraphBuilder builder(10);
  for (int v = 0; v + 1 < 10; ++v) builder.AddEdge(v, v + 1, 1.0);
  const Graph graph = builder.Build();
  DynamicMcfs dynamic(&graph, {1, 4, 7}, {1, 1, 1}, 3);
  dynamic.AddCustomer(0);
  dynamic.Resolve();
  dynamic.AddCustomer(5);
  dynamic.AddCustomer(9);
  bool reselected = false;
  const McfsSolution& solution = dynamic.Resolve(&reselected);
  EXPECT_TRUE(solution.feasible);
  EXPECT_EQ(solution.assignment.size(), 3u);
}

TEST(DynamicMcfsTest, ObjectiveTracksFullSolveQuality) {
  Rng rng(4);
  const Graph graph = testing_util::RandomGraph(120, 100, rng);
  std::vector<NodeId> facilities;
  std::vector<int> capacities;
  for (int j = 0; j < 30; ++j) {
    facilities.push_back(j * 4);
    capacities.push_back(3);
  }
  DynamicMcfs dynamic(&graph, facilities, capacities, 10);
  Rng arrivals(5);
  std::vector<int> ids;
  for (int event = 0; event < 30; ++event) {
    if (ids.size() > 5 && arrivals.NextDouble() < 0.3) {
      const size_t pick = arrivals.UniformInt(0, ids.size() - 1);
      dynamic.RemoveCustomer(ids[pick]);
      ids.erase(ids.begin() + pick);
    } else {
      ids.push_back(dynamic.AddCustomer(
          static_cast<NodeId>(arrivals.UniformInt(0, 119))));
    }
    const McfsSolution& incremental = dynamic.Resolve();
    ASSERT_TRUE(incremental.feasible);
    // Assignments must cover exactly the active customers.
    EXPECT_EQ(incremental.assignment.size(),
              static_cast<size_t>(dynamic.num_active_customers()));
  }
  EXPECT_GT(dynamic.incremental_solves(), 0)
      << "warm-start path never exercised";
  EXPECT_GE(dynamic.full_solves(), 1);
}

}  // namespace
}  // namespace mcfs
