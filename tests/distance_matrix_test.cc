#include "mcfs/exact/distance_matrix.h"

#include <gtest/gtest.h>

#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

// Dijkstra oracle for the matrix.
std::vector<double> OracleMatrix(const McfsInstance& instance) {
  return testing_util::DistanceMatrix(instance);
}

TEST(DistanceMatrixTest, DijkstraPathOnDenseCandidates) {
  Rng rng(1);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(60, 10, 40, 4, 3, rng);
  bool used_ch = true;
  const std::vector<double> matrix =
      ComputeDistanceMatrix(ri.instance, &used_ch);
  EXPECT_FALSE(used_ch);  // l = 40 of n = 60: candidates are dense
  const std::vector<double> oracle = OracleMatrix(ri.instance);
  ASSERT_EQ(matrix.size(), oracle.size());
  for (size_t e = 0; e < matrix.size(); ++e) {
    if (oracle[e] == kInfDistance) {
      EXPECT_EQ(matrix[e], kInfDistance);
    } else {
      EXPECT_NEAR(matrix[e], oracle[e], 1e-9);
    }
  }
}

TEST(DistanceMatrixTest, ChPathOnSparseCandidates) {
  const Graph city = GenerateCity(CopenhagenPreset(0.005, 42));
  Rng rng(2);
  McfsInstance instance;
  instance.graph = &city;
  instance.customers = SampleDistinctNodes(city, 50, rng);
  instance.facility_nodes = SampleDistinctNodes(city, city.NumNodes() / 8, rng);
  instance.capacities = UniformCapacities(instance.l(), 5);
  instance.k = 5;
  bool used_ch = false;
  const std::vector<double> matrix =
      ComputeDistanceMatrix(instance, &used_ch);
  EXPECT_TRUE(used_ch);  // sparse candidates, many customers
  const std::vector<double> oracle = OracleMatrix(instance);
  ASSERT_EQ(matrix.size(), oracle.size());
  for (size_t e = 0; e < matrix.size(); ++e) {
    if (oracle[e] == kInfDistance) {
      EXPECT_EQ(matrix[e], kInfDistance);
    } else {
      EXPECT_NEAR(matrix[e], oracle[e], 1e-6);
    }
  }
}

}  // namespace
}  // namespace mcfs
