#include "mcfs/exact/distance_matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

// Dijkstra oracle for the matrix.
std::vector<double> OracleMatrix(const McfsInstance& instance) {
  return testing_util::DistanceMatrix(instance);
}

TEST(DistanceMatrixTest, DijkstraPathOnDenseCandidates) {
  Rng rng(1);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(60, 10, 40, 4, 3, rng);
  bool used_ch = true;
  const std::vector<double> matrix =
      ComputeDistanceMatrix(ri.instance, &used_ch);
  EXPECT_FALSE(used_ch);  // l = 40 of n = 60: candidates are dense
  const std::vector<double> oracle = OracleMatrix(ri.instance);
  ASSERT_EQ(matrix.size(), oracle.size());
  for (size_t e = 0; e < matrix.size(); ++e) {
    if (oracle[e] == kInfDistance) {
      EXPECT_EQ(matrix[e], kInfDistance);
    } else {
      EXPECT_NEAR(matrix[e], oracle[e], 1e-9);
    }
  }
}

TEST(DistanceMatrixTest, ChPathOnSparseCandidates) {
  const Graph city = GenerateCity(CopenhagenPreset(0.005, 42));
  Rng rng(2);
  McfsInstance instance;
  instance.graph = &city;
  instance.customers = SampleDistinctNodes(city, 50, rng);
  instance.facility_nodes = SampleDistinctNodes(city, city.NumNodes() / 8, rng);
  instance.capacities = UniformCapacities(instance.l(), 5);
  instance.k = 5;
  bool used_ch = false;
  const std::vector<double> matrix =
      ComputeDistanceMatrix(instance, &used_ch);
  EXPECT_TRUE(used_ch);  // sparse candidates, many customers
  const std::vector<double> oracle = OracleMatrix(instance);
  ASSERT_EQ(matrix.size(), oracle.size());
  for (size_t e = 0; e < matrix.size(); ++e) {
    if (oracle[e] == kInfDistance) {
      EXPECT_EQ(matrix[e], kInfDistance);
    } else {
      EXPECT_NEAR(matrix[e], oracle[e], 1e-6);
    }
  }
}

// Regression: a candidate living in a different component than some
// customers must surface as kInfDistance cells (never NaN, negative, or
// a silently-dropped row), and downstream consumers must keep working.
TEST(DistanceMatrixTest, DisconnectedCandidateYieldsInfCells) {
  Rng rng(3);
  testing_util::RandomInstance ri = testing_util::MakeRandomInstance(
      /*n=*/80, /*m=*/12, /*l=*/50, /*k=*/6, /*max_capacity=*/4, rng,
      /*disconnected_parts=*/3);
  const std::vector<double> matrix = ComputeDistanceMatrix(ri.instance);
  const std::vector<double> oracle = OracleMatrix(ri.instance);
  ASSERT_EQ(matrix.size(), oracle.size());
  size_t inf_cells = 0;
  for (size_t e = 0; e < matrix.size(); ++e) {
    EXPECT_FALSE(std::isnan(matrix[e]));
    EXPECT_GE(matrix[e], 0.0);
    if (oracle[e] == kInfDistance) {
      EXPECT_EQ(matrix[e], kInfDistance);
      ++inf_cells;
    } else {
      EXPECT_NEAR(matrix[e], oracle[e], 1e-9);
    }
  }
  // With 3 components and customers/candidates spread across them, some
  // pairs must be unreachable — otherwise this test exercises nothing.
  EXPECT_GT(inf_cells, 0u);
}

TEST(DistanceMatrixTest, ParallelMatrixIsIdenticalToSerial) {
  Rng rng(4);
  testing_util::RandomInstance ri = testing_util::MakeRandomInstance(
      /*n=*/100, /*m=*/16, /*l=*/60, /*k=*/6, /*max_capacity=*/4, rng,
      /*disconnected_parts=*/2);
  bool used_ch_serial = true;
  const std::vector<double> serial =
      ComputeDistanceMatrix(ri.instance, &used_ch_serial, /*threads=*/1);
  for (const int threads : {2, 8}) {
    bool used_ch = true;
    const std::vector<double> parallel =
        ComputeDistanceMatrix(ri.instance, &used_ch, threads);
    EXPECT_EQ(used_ch, used_ch_serial);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t e = 0; e < serial.size(); ++e) {
      EXPECT_EQ(parallel[e], serial[e]) << "cell " << e << " with "
                                        << threads << " threads";
    }
  }
}

TEST(DistanceMatrixTest, ParallelChTableIsIdenticalToSerial) {
  const Graph city = GenerateCity(CopenhagenPreset(0.005, 42));
  Rng rng(5);
  McfsInstance instance;
  instance.graph = &city;
  instance.customers = SampleDistinctNodes(city, 40, rng);
  instance.facility_nodes =
      SampleDistinctNodes(city, city.NumNodes() / 8, rng);
  instance.capacities = UniformCapacities(instance.l(), 5);
  instance.k = 5;
  bool used_ch = false;
  const std::vector<double> serial =
      ComputeDistanceMatrix(instance, &used_ch, /*threads=*/1);
  EXPECT_TRUE(used_ch);
  const std::vector<double> parallel =
      ComputeDistanceMatrix(instance, &used_ch, /*threads=*/4);
  EXPECT_TRUE(used_ch);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(parallel[e], serial[e]) << "cell " << e;
  }
}

}  // namespace
}  // namespace mcfs
