// End-to-end integration tests: the full production pipeline — city
// generation, workload simulation, solving, analytics, persistence —
// exercised together, as the examples and benches use it.

#include <gtest/gtest.h>

#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/core/instance_io.h"
#include "mcfs/core/local_search.h"
#include "mcfs/core/solution_stats.h"
#include "mcfs/core/validate.h"
#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/graph/graph_io.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/bike_sim.h"
#include "mcfs/workload/yelp_sim.h"

namespace mcfs {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static const Graph& City() {
    static const Graph* city =
        new Graph(GenerateCity(AalborgPreset(0.02, 42)));
    return *city;
  }
};

TEST_F(IntegrationTest, CoworkingPipeline) {
  YelpSimOptions yelp;
  yelp.num_venues = 80;
  yelp.num_customers = 120;
  yelp.seed = 7;
  const CoworkingScenario scenario = GenerateCoworkingScenario(City(), yelp);

  McfsInstance instance;
  instance.graph = &City();
  instance.customers = scenario.customers;
  instance.facility_nodes = scenario.venues;
  instance.capacities = scenario.capacities;
  instance.k = 25;
  ASSERT_TRUE(IsFeasible(instance));
  ASSERT_TRUE(ValidateInstance(instance).ok());

  // Solve with every algorithm; all must validate (structural check
  // plus the independent verifier's fresh-Dijkstra re-derivation), and
  // WMA must win or tie against Hilbert.
  const McfsSolution wma = RunWma(instance).solution;
  const McfsSolution uf = RunUniformFirstWma(instance).solution;
  const McfsSolution hilbert = RunHilbertBaseline(instance);
  for (const McfsSolution* solution : {&wma, &uf, &hilbert}) {
    const ValidationResult validation =
        ValidateSolution(instance, *solution, true);
    EXPECT_TRUE(validation.ok) << validation.message;
    EXPECT_TRUE(solution->feasible);
    const VerifyReport report = VerifySolution(instance, *solution);
    EXPECT_TRUE(report.ok) << report.ToString();
  }
  EXPECT_LE(wma.objective, hilbert.objective * 1.1);

  // Polish, analyze, persist, reload.
  const LocalSearchResult polished = ImproveByLocalSearch(instance, wma);
  EXPECT_LE(polished.solution.objective, wma.objective + 1e-9);
  const SolutionStats stats =
      ComputeSolutionStats(instance, polished.solution);
  EXPECT_EQ(stats.assigned_customers, instance.m());

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveGraph(City(), dir + "/it.graph"));
  ASSERT_TRUE(SaveInstance(instance, dir + "/it.instance"));
  ASSERT_TRUE(SaveSolution(polished.solution, dir + "/it.solution"));
  const std::optional<Graph> graph2 = LoadGraph(dir + "/it.graph");
  ASSERT_TRUE(graph2.has_value());
  const std::optional<McfsInstance> instance2 =
      LoadInstance(&*graph2, dir + "/it.instance");
  ASSERT_TRUE(instance2.has_value());
  const std::optional<McfsSolution> solution2 =
      LoadSolution(dir + "/it.solution");
  ASSERT_TRUE(solution2.has_value());
  // The reloaded triple still validates, including network distances,
  // and the reloaded solution is consistent with the reloaded instance.
  EXPECT_TRUE(ValidateSolution(*instance2, *solution2, true).ok);
  EXPECT_TRUE(CheckSolutionAgainstInstance(*solution2, *instance2).ok());
  EXPECT_TRUE(VerifySolution(*instance2, *solution2).ok);
}

TEST_F(IntegrationTest, BikePipelineMatchesExactOnSmallK) {
  BikeSimOptions sim;
  sim.num_stations = 60;
  sim.num_bikes = 80;
  sim.num_commuter_flows = 40;
  sim.seed = 11;
  const BikeScenario scenario = GenerateBikeScenario(City(), sim);
  McfsInstance instance;
  instance.graph = &City();
  instance.customers = scenario.bikes;
  instance.facility_nodes = scenario.stations;
  instance.capacities = scenario.capacities;
  instance.k = 20;
  if (!IsFeasible(instance)) GTEST_SKIP();

  const McfsSolution wma = RunWma(instance).solution;
  ASSERT_TRUE(wma.feasible);
  EXPECT_TRUE(VerifySolution(instance, wma).ok);
  ExactOptions options;
  options.time_limit_seconds = 30.0;
  const ExactResult exact = SolveExact(instance, options);
  if (exact.optimal && exact.solution.feasible) {
    EXPECT_GE(wma.objective, exact.solution.objective - 1e-6);
    EXPECT_LE(wma.objective, exact.solution.objective * 1.6);
    const VerifyReport exact_report =
        VerifySolution(instance, exact.solution);
    EXPECT_TRUE(exact_report.ok) << exact_report.ToString();
  }
}

// Backend cross-check on the production pipeline: both matching
// engines, at every supported thread count, must agree on the full
// solve's objective (1e-9 relative) and pass the independent verifier.
TEST_F(IntegrationTest, MatcherBackendsAgreeAndVerifyAcrossThreadCounts) {
  YelpSimOptions yelp;
  yelp.num_venues = 80;
  yelp.num_customers = 120;
  yelp.seed = 7;
  const CoworkingScenario scenario = GenerateCoworkingScenario(City(), yelp);
  McfsInstance instance;
  instance.graph = &City();
  instance.customers = scenario.customers;
  instance.facility_nodes = scenario.venues;
  instance.capacities = scenario.capacities;
  instance.k = 25;
  ASSERT_TRUE(IsFeasible(instance));

  WmaOptions sspa_options;
  sspa_options.threads = 1;
  const WmaResult sspa = RunWma(instance, sspa_options);
  ASSERT_TRUE(sspa.solution.feasible);
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    WmaOptions cs_options;
    cs_options.matcher = MatcherBackendKind::kCostScaling;
    cs_options.threads = threads;
    const WmaResult cs = RunWma(instance, cs_options);
    ASSERT_TRUE(cs.solution.feasible);
    EXPECT_EQ(cs.stats.matcher_backend, "cost_scaling");
    EXPECT_EQ(cs.solution.selected, sspa.solution.selected);
    EXPECT_NEAR(cs.solution.objective, sspa.solution.objective,
                1e-9 * (1.0 + sspa.solution.objective));
    const VerifyReport report = VerifySolution(instance, cs.solution);
    EXPECT_TRUE(report.ok) << report.ToString();
  }
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  YelpSimOptions yelp;
  yelp.num_venues = 40;
  yelp.num_customers = 60;
  yelp.seed = 3;
  const CoworkingScenario scenario = GenerateCoworkingScenario(City(), yelp);
  McfsInstance instance;
  instance.graph = &City();
  instance.customers = scenario.customers;
  instance.facility_nodes = scenario.venues;
  instance.capacities = scenario.capacities;
  instance.k = 12;
  const McfsSolution a = RunWma(instance).solution;
  const McfsSolution b = RunWma(instance).solution;
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

}  // namespace
}  // namespace mcfs
