#include "mcfs/core/instance.h"

#include <gtest/gtest.h>

#include "mcfs/flow/transport.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

McfsInstance SmallPathInstance(const Graph* graph) {
  McfsInstance instance;
  instance.graph = graph;
  instance.customers = {0, 2};
  instance.facility_nodes = {1, 3};
  instance.capacities = {1, 1};
  instance.k = 2;
  return instance;
}

TEST(ValidateSolutionTest, AcceptsCorrectSolution) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  const McfsInstance instance = SmallPathInstance(&graph);
  McfsSolution solution;
  solution.selected = {0, 1};
  solution.assignment = {0, 1};
  solution.distances = {1.0, 1.0};
  solution.objective = 2.0;
  solution.feasible = true;
  EXPECT_TRUE(ValidateSolution(instance, solution, true).ok);
}

TEST(ValidateSolutionTest, RejectsDefects) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  const McfsInstance instance = SmallPathInstance(&graph);

  McfsSolution good;
  good.selected = {0, 1};
  good.assignment = {0, 1};
  good.distances = {1.0, 1.0};
  good.objective = 2.0;
  good.feasible = true;

  {
    McfsSolution bad = good;  // too many selections
    bad.selected = {0, 1, 1};
    EXPECT_FALSE(ValidateSolution(instance, bad).ok);
  }
  {
    McfsSolution bad = good;  // assignment to unselected facility
    bad.selected = {0};
    EXPECT_FALSE(ValidateSolution(instance, bad).ok);
  }
  {
    McfsSolution bad = good;  // capacity violation
    bad.assignment = {0, 0};
    EXPECT_FALSE(ValidateSolution(instance, bad).ok);
  }
  {
    McfsSolution bad = good;  // objective mismatch
    bad.objective = 5.0;
    EXPECT_FALSE(ValidateSolution(instance, bad).ok);
  }
  {
    McfsSolution bad = good;  // wrong recorded distance
    bad.distances = {1.5, 0.5};
    EXPECT_FALSE(ValidateSolution(instance, bad, true).ok);
    EXPECT_TRUE(ValidateSolution(instance, bad, false).ok)
        << "distance check requires check_distances";
  }
  {
    McfsSolution bad = good;  // feasible flag but unassigned customer
    bad.assignment = {0, -1};
    bad.distances = {1.0, 0.0};
    bad.objective = 1.0;
    EXPECT_FALSE(ValidateSolution(instance, bad).ok);
  }
}

TEST(IsFeasibleTest, DetectsCapacityAndBudgetLimits) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 2};
  instance.facility_nodes = {1, 3};
  instance.capacities = {1, 1};
  instance.k = 2;
  EXPECT_TRUE(IsFeasible(instance));
  instance.k = 1;  // two components need two facilities
  EXPECT_FALSE(IsFeasible(instance));
  instance.k = 2;
  instance.capacities = {0, 1};  // component A cannot be served
  EXPECT_FALSE(IsFeasible(instance));
}

TEST(IsFeasibleTest, BudgetAcrossComponents) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  builder.AddEdge(4, 5, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 2, 4};
  instance.facility_nodes = {1, 3, 5};
  instance.capacities = {5, 5, 5};
  instance.k = 3;
  EXPECT_TRUE(IsFeasible(instance));
  instance.k = 2;
  EXPECT_FALSE(IsFeasible(instance));
}

TEST(OccupancyTest, MatchesPaperDefinition) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = std::vector<NodeId>(10, 0);
  instance.facility_nodes = {1};
  instance.capacities = {20};
  instance.k = 1;
  EXPECT_DOUBLE_EQ(instance.Occupancy(), 0.5);  // o = m / (c*k)
}

TEST(AssignOptimallyTest, MatchesOracleOnRandomInstances) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstance ri = MakeRandomInstance(40, 8, 6, 3, 4, rng);
    // Use the first k facilities as the selection.
    std::vector<int> selected = {0, 1, 2};
    const McfsSolution solution = AssignOptimally(ri.instance, selected);
    EXPECT_TRUE(ValidateSolution(ri.instance, solution, true).ok);

    const std::vector<double> cost = testing_util::DistanceMatrix(ri.instance);
    std::vector<int> capacities(ri.instance.l(), 0);
    for (const int j : selected) capacities[j] = ri.instance.capacities[j];
    const auto oracle = SolveDenseTransport(ri.instance.m(), ri.instance.l(),
                                            cost, capacities);
    EXPECT_EQ(solution.feasible, oracle.has_value());
    if (oracle.has_value()) {
      EXPECT_NEAR(solution.objective, oracle->cost, 1e-6);
    }
  }
}

}  // namespace
}  // namespace mcfs
