#include "mcfs/common/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mcfs/common/random.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {
namespace {

TEST(FlatMapTest, InsertLookupUpdate) {
  FlatMap<int32_t, double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);
  map[7] = 1.5;
  map[9] = 2.5;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_DOUBLE_EQ(*map.Find(7), 1.5);
  map[7] = 3.0;  // update in place
  EXPECT_EQ(map.size(), 2u);
  EXPECT_DOUBLE_EQ(*map.Find(7), 3.0);
  EXPECT_TRUE(map.Contains(9));
  EXPECT_FALSE(map.Contains(8));
}

TEST(FlatMapTest, ValueInitializesOnFirstUse) {
  FlatMap<int32_t, double> map;
  EXPECT_DOUBLE_EQ(map[42], 0.0);
  map[42] += 1.0;
  EXPECT_DOUBLE_EQ(map[42], 1.0);
}

TEST(FlatMapTest, GrowsThroughManyInsertsAndKeepsEntries) {
  FlatMap<int32_t, double> map;
  for (int32_t key = 0; key < 10000; ++key) {
    map[key * 7 + 1] = static_cast<double>(key);
  }
  EXPECT_EQ(map.size(), 10000u);
  for (int32_t key = 0; key < 10000; ++key) {
    const double* value = map.Find(key * 7 + 1);
    ASSERT_NE(value, nullptr) << key;
    EXPECT_DOUBLE_EQ(*value, static_cast<double>(key));
  }
  EXPECT_FALSE(map.Contains(10000 * 7 + 1));
}

TEST(FlatMapTest, ReservePreventsGrowthBelowHint) {
  FlatMap<int32_t, double> map;
  map.Reserve(1000);
  const size_t capacity = map.capacity();
  for (int32_t key = 0; key < 1000; ++key) map[key] = 1.0;
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatMapTest, ClearKeepsCapacityAndDropsEntries) {
  FlatMap<int32_t, double> map(64);
  for (int32_t key = 0; key < 64; ++key) map[key] = 2.0;
  const size_t capacity = map.capacity();
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_FALSE(map.Contains(5));
  map[5] = 9.0;
  EXPECT_DOUBLE_EQ(*map.Find(5), 9.0);
}

TEST(StampedMapTest, ClearIsLogicalReset) {
  StampedMap<int32_t, double> map;
  map[1] = 1.0;
  map[2] = 2.0;
  EXPECT_EQ(map.size(), 2u);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_EQ(map.Find(2), nullptr);
  // A stale slot with the same key is re-initialized, not resurrected.
  EXPECT_DOUBLE_EQ(map[1], 0.0);
  map[1] = 5.0;
  EXPECT_DOUBLE_EQ(*map.Find(1), 5.0);
  EXPECT_EQ(map.size(), 1u);
}

TEST(StampedMapTest, StampWrapIsHandled) {
  // uint8_t stamps wrap after 255 Clears; entries must stay correct
  // straight through several wraps.
  StampedMap<int32_t, double, uint8_t> map;
  for (int round = 0; round < 1000; ++round) {
    map.Clear();
    EXPECT_TRUE(map.empty()) << round;
    EXPECT_FALSE(map.Contains(round)) << round;
    map[round] = static_cast<double>(round);
    map[round + 1] = static_cast<double>(round + 1);
    ASSERT_NE(map.Find(round), nullptr) << round;
    EXPECT_DOUBLE_EQ(*map.Find(round), static_cast<double>(round));
    EXPECT_DOUBLE_EQ(*map.Find(round + 1), static_cast<double>(round + 1));
    EXPECT_EQ(map.size(), 2u);
  }
}

// Randomized property sweep: FlatMap and StampedMap must behave exactly
// like a std::unordered_map reference under mixed insert / update /
// lookup (and, for StampedMap, epoch-reset) sequences.
template <typename Map>
void CheckAgainstReference(const Map& map,
                           const std::unordered_map<int32_t, double>& ref) {
  ASSERT_EQ(map.size(), ref.size());
  for (const auto& [key, value] : ref) {
    const double* found = map.Find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_DOUBLE_EQ(*found, value);
  }
  size_t seen = 0;
  map.ForEach([&](int32_t key, double value) {
    ++seen;
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << key;
    EXPECT_DOUBLE_EQ(it->second, value);
  });
  EXPECT_EQ(seen, ref.size());
}

class FlatMapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlatMapPropertyTest, MatchesUnorderedMapReference) {
  Rng rng(1000 + GetParam());
  // Small key universe forces collisions, overwrites, and growth.
  const int universe = 1 + static_cast<int>(rng.UniformInt(8, 500));
  FlatMap<int32_t, double> map;
  std::unordered_map<int32_t, double> ref;
  for (int op = 0; op < 3000; ++op) {
    const int32_t key = static_cast<int32_t>(rng.UniformInt(0, universe - 1));
    const int kind = static_cast<int>(rng.UniformInt(0, 3));
    if (kind == 0) {
      EXPECT_EQ(map.Contains(key), ref.count(key) != 0) << key;
    } else {
      const double value = rng.Uniform(0.0, 100.0);
      map[key] = value;
      ref[key] = value;
    }
  }
  CheckAgainstReference(map, ref);
}

TEST_P(FlatMapPropertyTest, StampedMatchesReferenceAcrossEpochResets) {
  Rng rng(2000 + GetParam());
  const int universe = 1 + static_cast<int>(rng.UniformInt(8, 500));
  StampedMap<int32_t, double> map;
  std::unordered_map<int32_t, double> ref;
  for (int op = 0; op < 3000; ++op) {
    if (rng.UniformInt(0, 99) == 0) {  // O(1) epoch reset
      map.Clear();
      ref.clear();
      continue;
    }
    const int32_t key = static_cast<int32_t>(rng.UniformInt(0, universe - 1));
    const int kind = static_cast<int>(rng.UniformInt(0, 3));
    if (kind == 0) {
      EXPECT_EQ(map.Contains(key), ref.count(key) != 0) << key;
    } else {
      const double value = rng.Uniform(0.0, 100.0);
      map[key] = value;
      ref[key] = value;
    }
  }
  CheckAgainstReference(map, ref);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, FlatMapPropertyTest,
                         ::testing::Range(0, 20));

// The exec/alloc counter family must fire on growth and scratch reuse,
// so allocation regressions stay visible in run reports.
TEST(FlatMapTest, AllocCountersFireWhenMetricsEnabled) {
  obs::EnableMetrics(true);
  obs::ResetMetrics();
  FlatMap<int32_t, double> map;
  for (int32_t key = 0; key < 1000; ++key) map[key] = 1.0;  // forces growth
  StampedMap<int32_t, double> scratch;
  scratch[1] = 1.0;
  scratch.Clear();  // reuses retained capacity
  scratch[2] = 2.0;
  const obs::MetricsSnapshot snapshot = obs::SnapshotMetrics();
  obs::EnableMetrics(false);
  obs::ResetMetrics();
  EXPECT_GT(snapshot.counters.at("exec/alloc/flatmap_grows"), 0);
  EXPECT_GT(snapshot.counters.at("exec/alloc/flatmap_slots_rehashed"), 0);
  EXPECT_GT(snapshot.counters.at("exec/alloc/scratch_reuses"), 0);
}

// A Reserve hint that undershoots counts exactly one hint miss on the
// first post-hint growth ("maps whose sizing model was wrong", not
// "doublings paid"); a hint that holds counts none, and an unhinted map
// counts none no matter how often it grows.
TEST(FlatMapTest, HintMissCountedOncePerUndershotReserve) {
  auto misses_after = [](auto&& body) {
    obs::EnableMetrics(true);
    obs::ResetMetrics();
    body();
    const obs::MetricsSnapshot snapshot = obs::SnapshotMetrics();
    obs::EnableMetrics(false);
    obs::ResetMetrics();
    const auto it =
        snapshot.counters.find("exec/alloc/flatmap_hint_misses");
    return it == snapshot.counters.end() ? int64_t{0} : it->second;
  };

  EXPECT_EQ(misses_after([] {
              FlatMap<int32_t, double> map;
              map.Reserve(4);  // rounds to the minimum table
              for (int32_t key = 0; key < 1000; ++key) map[key] = 1.0;
            }),
            1);
  EXPECT_EQ(misses_after([] {
              FlatMap<int32_t, double> map;
              map.Reserve(1000);
              for (int32_t key = 0; key < 1000; ++key) map[key] = 1.0;
            }),
            0);
  EXPECT_EQ(misses_after([] {
              FlatMap<int32_t, double> map;  // never hinted
              for (int32_t key = 0; key < 1000; ++key) map[key] = 1.0;
            }),
            0);
  EXPECT_EQ(misses_after([] {
              StampedMap<int32_t, double> map;
              map.Reserve(4);
              for (int32_t key = 0; key < 1000; ++key) map[key] = 1.0;
            }),
            1);
}

}  // namespace
}  // namespace mcfs
