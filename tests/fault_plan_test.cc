// FaultPlan (common/fault_plan.h): the seeded schedule must be a pure
// function of (seed, kind, poll index) — same seed, same fault
// sequence — with exact fire-budget enforcement and strict spec
// parsing. Determinism is what turns chaos testing into regression
// testing.

#include "mcfs/common/fault_plan.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mcfs {
namespace {

TEST(FaultPlanTest, SameSeedReplaysTheSameFireSequence) {
  FaultPlanSpec spec;
  spec.seed = 1234;
  spec.rate[static_cast<int>(FaultKind::kDeadlineCut)] = 0.3;
  spec.rate[static_cast<int>(FaultKind::kVerifyReject)] = 0.1;

  std::vector<bool> first;
  std::vector<bool> second;
  for (std::vector<bool>* out : {&first, &second}) {
    FaultPlan plan(spec);
    for (int i = 0; i < 500; ++i) {
      out->push_back(plan.ShouldFire(FaultKind::kDeadlineCut));
      out->push_back(plan.ShouldFire(FaultKind::kVerifyReject));
    }
  }
  EXPECT_EQ(first, second);
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentSequences) {
  FaultPlanSpec spec;
  spec.rate[static_cast<int>(FaultKind::kQueuePulse)] = 0.5;
  spec.seed = 1;
  FaultPlan a(spec);
  spec.seed = 2;
  FaultPlan b(spec);
  std::vector<bool> fires_a;
  std::vector<bool> fires_b;
  for (int i = 0; i < 200; ++i) {
    fires_a.push_back(a.ShouldFire(FaultKind::kQueuePulse));
    fires_b.push_back(b.ShouldFire(FaultKind::kQueuePulse));
  }
  EXPECT_NE(fires_a, fires_b);
}

TEST(FaultPlanTest, RateZeroNeverFiresAndRateOneAlwaysFires) {
  FaultPlanSpec spec;
  spec.seed = 7;
  spec.rate[static_cast<int>(FaultKind::kCheckpointIo)] = 1.0;
  FaultPlan plan(spec);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.ShouldFire(FaultKind::kCheckpointIo));
    EXPECT_FALSE(plan.ShouldFire(FaultKind::kDeadlineCut));
  }
  EXPECT_EQ(plan.fires(FaultKind::kCheckpointIo), 100);
  EXPECT_EQ(plan.polls(FaultKind::kDeadlineCut), 100);
  EXPECT_EQ(plan.fires(FaultKind::kDeadlineCut), 0);
}

TEST(FaultPlanTest, FireBudgetIsEnforcedExactly) {
  FaultPlanSpec spec;
  spec.seed = 9;
  spec.rate[static_cast<int>(FaultKind::kVerifyReject)] = 1.0;
  spec.max_fires[static_cast<int>(FaultKind::kVerifyReject)] = 5;
  FaultPlan plan(spec);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (plan.ShouldFire(FaultKind::kVerifyReject)) ++fired;
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(plan.fires(FaultKind::kVerifyReject), 5);
  EXPECT_EQ(plan.total_fires(), 5);
}

TEST(FaultPlanTest, ApproximatesTheConfiguredRate) {
  FaultPlanSpec spec;
  spec.seed = 42;
  spec.rate[static_cast<int>(FaultKind::kDeadlineCut)] = 0.2;
  FaultPlan plan(spec);
  int fired = 0;
  constexpr int kPolls = 10000;
  for (int i = 0; i < kPolls; ++i) {
    if (plan.ShouldFire(FaultKind::kDeadlineCut)) ++fired;
  }
  EXPECT_NEAR(static_cast<double>(fired) / kPolls, 0.2, 0.02);
}

TEST(FaultPlanTest, ConcurrentPollsFireTheSameTotalAsSerial) {
  FaultPlanSpec spec;
  spec.seed = 5;
  spec.rate[static_cast<int>(FaultKind::kQueuePulse)] = 0.25;
  constexpr int kPollsPerThread = 1000;
  constexpr int kThreads = 4;

  FaultPlan serial(spec);
  int64_t expected = 0;
  for (int i = 0; i < kThreads * kPollsPerThread; ++i) {
    if (serial.ShouldFire(FaultKind::kQueuePulse)) ++expected;
  }

  // The fired *set of indices* is fixed by the seed; threads only
  // change which caller observes which index.
  FaultPlan concurrent(spec);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent] {
      for (int i = 0; i < kPollsPerThread; ++i) {
        concurrent.ShouldFire(FaultKind::kQueuePulse);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(concurrent.fires(FaultKind::kQueuePulse), expected);
  EXPECT_EQ(concurrent.polls(FaultKind::kQueuePulse),
            kThreads * kPollsPerThread);
}

TEST(FaultPlanTest, ParsesFullSpecString) {
  const StatusOr<FaultPlanSpec> parsed = FaultPlan::Parse(
      "seed=99,deadline_cut=0.25,verify_reject=0.5,queue_pulse=0.75,"
      "checkpoint_io=1,deadline_cut_max=10,checkpoint_io_max=0");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FaultPlanSpec& spec = parsed.value();
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.rate[static_cast<int>(FaultKind::kDeadlineCut)], 0.25);
  EXPECT_DOUBLE_EQ(spec.rate[static_cast<int>(FaultKind::kVerifyReject)], 0.5);
  EXPECT_DOUBLE_EQ(spec.rate[static_cast<int>(FaultKind::kQueuePulse)], 0.75);
  EXPECT_DOUBLE_EQ(spec.rate[static_cast<int>(FaultKind::kCheckpointIo)], 1.0);
  EXPECT_EQ(spec.max_fires[static_cast<int>(FaultKind::kDeadlineCut)], 10);
  EXPECT_EQ(spec.max_fires[static_cast<int>(FaultKind::kCheckpointIo)], 0);
  EXPECT_EQ(spec.max_fires[static_cast<int>(FaultKind::kVerifyReject)], -1);
}

TEST(FaultPlanTest, EmptySpecParsesToNeverFiring) {
  const StatusOr<FaultPlanSpec> parsed = FaultPlan::Parse("");
  ASSERT_TRUE(parsed.ok());
  FaultPlan plan(parsed.value());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(plan.ShouldFire(FaultKind::kDeadlineCut));
  }
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_EQ(FaultPlan::Parse("deadline_cut").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(FaultPlan::Parse("unknown_kind=0.5").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(FaultPlan::Parse("deadline_cut=1.5").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(FaultPlan::Parse("deadline_cut=-0.1").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(FaultPlan::Parse("deadline_cut=abc").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(FaultPlan::Parse("seed=notanumber").status().code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(FaultPlan::Parse("deadline_cut_max=x").status().code(),
            StatusCode::kInvalidInput);
}

TEST(FaultPlanTest, JsonCarriesCountsPerKind) {
  FaultPlanSpec spec;
  spec.seed = 3;
  spec.rate[static_cast<int>(FaultKind::kDeadlineCut)] = 1.0;
  FaultPlan plan(spec);
  plan.ShouldFire(FaultKind::kDeadlineCut);
  plan.ShouldFire(FaultKind::kDeadlineCut);
  const std::string json = plan.Json();
  EXPECT_NE(json.find("\"seed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"deadline_cut\""), std::string::npos);
  EXPECT_NE(json.find("\"polls\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"fires\": 2"), std::string::npos);
}

}  // namespace
}  // namespace mcfs
