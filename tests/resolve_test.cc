// Warm-started incremental re-solve (DESIGN.md §4.10): the matcher's
// ExportWarmSeed/ResumeFrom round-trip, the typed delta API's
// validation and classification, the no-op/epoch/cache semantics, and
// the headline equivalence contract — a warm ResolveTracked is
// verifier-clean and bit-equal in objective to a cold solve of the same
// tracked instance, and bit-identical in solution bytes after an empty
// delta.
//
// Instances here build customers on DISTINCT graph nodes: with
// continuous random edge weights the optimal assignment is then unique
// (ties are measure-zero), which is what makes bit-equality of the
// objective a meaningful assertion. Co-located customers admit
// equal-cost optima whose objectives can differ in the last ulp purely
// from summation order — the churn bench covers that regime with a
// relative gate instead.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mcfs/common/random.h"
#include "mcfs/common/status.h"
#include "mcfs/core/instance.h"
#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/graph/graph.h"
#include "mcfs/serve/solver_service.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

// Random instance whose customers sit on distinct nodes (see the file
// comment). Facilities are drawn from the remaining nodes.
struct DistinctInstance {
  Graph graph;
  std::vector<NodeId> customers;
  std::vector<NodeId> facility_nodes;
  std::vector<int> capacities;
  // Nodes used by neither customers nor facilities — the arrival pool
  // for churn tests.
  std::vector<NodeId> free_nodes;
};

DistinctInstance MakeDistinct(int n, int m, int l, int max_capacity,
                              Rng& rng) {
  DistinctInstance out;
  // Dense in chords: tree-like graphs route many node pairs through
  // shared hubs, which manufactures exact assignment-cost ties (the
  // degenerate optima the file comment is about). Chords break hubs.
  out.graph = testing_util::RandomGraph(n, 3 * n, rng);
  std::vector<int> sampled = rng.SampleWithoutReplacement(n, m + l);
  for (int i = 0; i < m; ++i) out.customers.push_back(sampled[i]);
  for (int j = 0; j < l; ++j) {
    out.facility_nodes.push_back(sampled[m + j]);
    out.capacities.push_back(static_cast<int>(rng.UniformInt(1, max_capacity)));
  }
  std::vector<uint8_t> used(n, 0);
  for (const int node : sampled) used[node] = 1;
  for (int v = 0; v < n; ++v) {
    if (!used[v]) out.free_nodes.push_back(v);
  }
  return out;
}

// --- Matcher warm-seed lifecycle ---

TEST(ResolveMatcher, ExportResumeRoundTripIsBitIdentical) {
  Rng rng(7);
  DistinctInstance di = MakeDistinct(120, 30, 12, 6, rng);

  IncrementalMatcher cold(&di.graph, di.customers, di.facility_nodes,
                          di.capacities);
  ASSERT_TRUE(cold.MatchAllOnce());
  const WarmSeed seed = cold.ExportWarmSeed();
  ASSERT_EQ(seed.customers.size(), di.customers.size());
  ASSERT_EQ(seed.facility_nodes.size(), di.facility_nodes.size());

  IncrementalMatcher warm(&di.graph, di.customers, di.facility_nodes,
                          di.capacities);
  std::vector<int> seed_of(di.customers.size());
  for (size_t i = 0; i < seed_of.size(); ++i) seed_of[i] = static_cast<int>(i);
  std::vector<uint8_t> adopt_match(di.customers.size(), 1);
  const IncrementalMatcher::ResumeStats stats =
      warm.ResumeFrom(seed, seed_of, adopt_match);

  EXPECT_EQ(stats.customers_seeded, static_cast<int64_t>(di.customers.size()));
  EXPECT_EQ(stats.matches_adopted, static_cast<int64_t>(di.customers.size()));
  EXPECT_EQ(stats.matches_dropped, 0);
  EXPECT_TRUE(warm.VerifyDualFeasibility());
  // The matching itself came back byte-for-byte.
  EXPECT_EQ(warm.TotalCost(), cold.TotalCost());
  auto pairs_of = [](const IncrementalMatcher& matcher) {
    std::vector<std::pair<int, int>> pairs;
    for (const MatchedPair& p : matcher.MatchedPairs()) {
      pairs.push_back({p.customer, p.facility});
    }
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  EXPECT_EQ(pairs_of(warm), pairs_of(cold));
  for (size_t i = 0; i < di.customers.size(); ++i) {
    EXPECT_EQ(warm.CustomerMatchCount(static_cast<int>(i)), 1);
  }
}

TEST(ResolveMatcher, DroppedMatchesRepairToTheSameOptimum) {
  Rng rng(11);
  DistinctInstance di = MakeDistinct(120, 30, 12, 6, rng);

  IncrementalMatcher cold(&di.graph, di.customers, di.facility_nodes,
                          di.capacities);
  ASSERT_TRUE(cold.MatchAllOnce());
  const WarmSeed seed = cold.ExportWarmSeed();

  // adopt_match = 0 is the capacity-increase repair mode: streams and
  // edges are kept, matches are dropped and re-derived.
  IncrementalMatcher warm(&di.graph, di.customers, di.facility_nodes,
                          di.capacities);
  std::vector<int> seed_of(di.customers.size());
  for (size_t i = 0; i < seed_of.size(); ++i) seed_of[i] = static_cast<int>(i);
  std::vector<uint8_t> adopt_match(di.customers.size(), 0);
  const IncrementalMatcher::ResumeStats stats =
      warm.ResumeFrom(seed, seed_of, adopt_match);
  EXPECT_EQ(stats.matches_adopted, 0);
  EXPECT_TRUE(warm.VerifyDualFeasibility());

  for (int i = 0; i < warm.num_customers(); ++i) {
    if (warm.CustomerMatchCount(i) < 1) {
      ASSERT_TRUE(warm.FindPair(i));
    }
  }
  EXPECT_TRUE(warm.VerifyDualFeasibility());
  EXPECT_EQ(warm.TotalCost(), cold.TotalCost());
}

TEST(ResolveMatcher, RemovedFacilityIsFilteredAndRepaired) {
  Rng rng(13);
  // Generous capacities so the reduced catalog still covers everyone.
  DistinctInstance di = MakeDistinct(120, 24, 10, 8, rng);
  for (int& cap : di.capacities) cap += 4;

  IncrementalMatcher full(&di.graph, di.customers, di.facility_nodes,
                          di.capacities);
  ASSERT_TRUE(full.MatchAllOnce());
  const WarmSeed seed = full.ExportWarmSeed();

  // Next epoch: the last facility left the catalog.
  std::vector<NodeId> reduced_nodes(di.facility_nodes.begin(),
                                    di.facility_nodes.end() - 1);
  std::vector<int> reduced_caps(di.capacities.begin(),
                                di.capacities.end() - 1);
  IncrementalMatcher warm(&di.graph, di.customers, reduced_nodes,
                          reduced_caps);
  std::vector<int> seed_of(di.customers.size());
  for (size_t i = 0; i < seed_of.size(); ++i) seed_of[i] = static_cast<int>(i);
  std::vector<uint8_t> adopt_match(di.customers.size(), 1);
  warm.ResumeFrom(seed, seed_of, adopt_match);
  EXPECT_TRUE(warm.VerifyDualFeasibility());
  for (int i = 0; i < warm.num_customers(); ++i) {
    if (warm.CustomerMatchCount(i) < 1) {
      ASSERT_TRUE(warm.FindPair(i));
    }
  }

  IncrementalMatcher cold(&di.graph, di.customers, reduced_nodes,
                          reduced_caps);
  ASSERT_TRUE(cold.MatchAllOnce());
  EXPECT_EQ(warm.TotalCost(), cold.TotalCost());
}

// --- Typed delta API: validation, atomicity, classification ---

struct ResolveFixture {
  DistinctInstance di;
  explicit ResolveFixture(uint64_t seed, int n = 160, int m = 40, int l = 14,
                          int max_capacity = 6) {
    Rng rng(seed);
    di = MakeDistinct(n, m, l, max_capacity, rng);
    // Headroom so departures/removals keep every instance feasible.
    for (int& cap : di.capacities) cap += 4;
  }

  std::unique_ptr<SolverService> MakeService(ServiceOptions options = {}) {
    return std::make_unique<SolverService>(&di.graph, di.facility_nodes,
                                           di.capacities, options);
  }

  UpdateRequest ArriveAll() const {
    UpdateRequest request;
    for (const NodeId node : di.customers) {
      request.ops.push_back({UpdateKind::kCustomerArrive, node, 0});
    }
    return request;
  }
};

TEST(ResolveUpdates, InvalidOpsAreTypedAtomicAndNameTheNode) {
  ResolveFixture fx(17);
  auto service = fx.MakeService();
  const uint64_t epoch0 = service->epoch();
  const NodeId facility = fx.di.facility_nodes[0];
  const NodeId plain = fx.di.free_nodes[0];

  struct Case {
    UpdateOp op;
    std::string want;
  };
  const std::vector<Case> cases = {
      {{UpdateKind::kCapacityDelta, -5, 1}, "out of range"},
      {{UpdateKind::kCapacityDelta, plain, 1},
       "which holds no candidate facility"},
      {{UpdateKind::kCapacityDelta, facility, -1000}, "would drop to"},
      {{UpdateKind::kCandidateAdd, facility, 3},
       "duplicate facility node " + std::to_string(facility)},
      {{UpdateKind::kCandidateAdd, plain, -1}, "negative capacity"},
      {{UpdateKind::kCandidateRemove, plain, 0},
       "no candidate facility at node"},
      // A node distinct from the arrive op's below, so the depart really
      // has nobody to remove.
      {{UpdateKind::kCustomerDepart, fx.di.free_nodes[1], 0},
       "no tracked customer at node"},
  };
  for (const Case& c : cases) {
    // A valid op ahead of the bad one must not leak through (atomicity).
    UpdateRequest request;
    request.ops.push_back({UpdateKind::kCustomerArrive, plain, 0});
    request.ops.push_back(c.op);
    StatusOr<UpdateResult> result = service->ApplyUpdate(request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidInput);
    EXPECT_NE(result.status().message().find("update op 1"), std::string::npos)
        << result.status().message();
    EXPECT_NE(result.status().message().find(c.want), std::string::npos)
        << result.status().message();
    EXPECT_EQ(service->tracked_customer_count(), 0u);
    EXPECT_EQ(service->epoch(), epoch0);
  }
}

TEST(ResolveUpdates, ClassifiesEpochBumpsAndNoops) {
  ResolveFixture fx(19);
  auto service = fx.MakeService();
  const uint64_t epoch0 = service->epoch();

  // Customer-only deltas never bump the epoch.
  StatusOr<UpdateResult> arrive = service->ApplyUpdate(fx.ArriveAll());
  ASSERT_TRUE(arrive.ok());
  EXPECT_FALSE(arrive.value().epoch_bumped);
  EXPECT_FALSE(arrive.value().noop);
  EXPECT_EQ(arrive.value().epoch, epoch0);
  EXPECT_EQ(service->tracked_customer_count(), fx.di.customers.size());

  // Catalog deltas do, and a capacity increase dirties its component.
  UpdateRequest grow;
  grow.ops.push_back({UpdateKind::kCapacityDelta, fx.di.facility_nodes[0], 1});
  StatusOr<UpdateResult> grown = service->ApplyUpdate(grow);
  ASSERT_TRUE(grown.ok());
  EXPECT_TRUE(grown.value().epoch_bumped);
  EXPECT_EQ(grown.value().epoch, epoch0 + 1);
  EXPECT_TRUE(grown.value().warm_repairable);
  EXPECT_GE(grown.value().components_dirtied, 1);

  // A delta that cancels itself out is a detected no-op: epoch kept.
  UpdateRequest wash;
  wash.ops.push_back({UpdateKind::kCapacityDelta, fx.di.facility_nodes[1], 2});
  wash.ops.push_back({UpdateKind::kCapacityDelta, fx.di.facility_nodes[1], -2});
  wash.ops.push_back({UpdateKind::kCustomerArrive, fx.di.free_nodes[0], 0});
  wash.ops.push_back({UpdateKind::kCustomerDepart, fx.di.free_nodes[0], 0});
  StatusOr<UpdateResult> washed = service->ApplyUpdate(wash);
  ASSERT_TRUE(washed.ok());
  EXPECT_TRUE(washed.value().noop);
  EXPECT_FALSE(washed.value().epoch_bumped);
  EXPECT_EQ(washed.value().ops_applied, 4);
  EXPECT_EQ(service->epoch(), epoch0 + 1);

  // Add + remove round-trips the catalog contents (order may differ —
  // swap-remove), and tracked state is unaffected.
  UpdateRequest add;
  add.ops.push_back({UpdateKind::kCandidateAdd, fx.di.free_nodes[1], 3});
  StatusOr<UpdateResult> added = service->ApplyUpdate(add);
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(added.value().epoch_bumped);
  UpdateRequest remove;
  remove.ops.push_back({UpdateKind::kCandidateRemove, fx.di.free_nodes[1], 0});
  StatusOr<UpdateResult> removed = service->ApplyUpdate(remove);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.value().epoch_bumped);
  McfsInstance tracked = service->TrackedInstance(3);
  EXPECT_EQ(tracked.facility_nodes.size(), fx.di.facility_nodes.size());
}

// Satellite regression: an update that changes nothing must keep the
// epoch AND the response cache (it used to bump both unconditionally).
TEST(ResolveUpdates, EmptyDeltaKeepsEpochAndCache) {
  ResolveFixture fx(23);
  auto service = fx.MakeService();
  const uint64_t epoch0 = service->epoch();

  SolveRequest request{fx.di.customers, 6, {}, 0, nullptr};
  const SolveResponse first = service->SolveSync(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  ASSERT_TRUE(service->UpdateCapacities(fx.di.capacities).ok());
  ASSERT_TRUE(
      service->UpdateCandidates(fx.di.facility_nodes, fx.di.capacities).ok());
  ASSERT_TRUE(service->ApplyUpdate(UpdateRequest{}).ok());
  EXPECT_EQ(service->epoch(), epoch0);

  const SolveResponse second = service->SolveSync(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);

  // A real change still invalidates.
  std::vector<int> bigger = fx.di.capacities;
  bigger[0] += 1;
  ASSERT_TRUE(service->UpdateCapacities(bigger).ok());
  EXPECT_EQ(service->epoch(), epoch0 + 1);
  const SolveResponse third = service->SolveSync(request);
  ASSERT_TRUE(third.status.ok());
  EXPECT_FALSE(third.cache_hit);

  const ServiceReport report = service->Report();
  EXPECT_EQ(report.resolve_noop_updates, 3);
  EXPECT_NE(report.Json().find("\"resolve\""), std::string::npos);
}

// Satellite regression: duplicate facility nodes used to trip an
// MCFS_CHECK crash inside the warm-state build; they must come back as
// a typed kInvalidInput naming the duplicated node, leaving the service
// serving.
TEST(ResolveUpdates, DuplicateCandidateRejectedWithTypedError) {
  ResolveFixture fx(29);
  auto service = fx.MakeService();
  const uint64_t epoch0 = service->epoch();

  std::vector<NodeId> nodes = fx.di.facility_nodes;
  std::vector<int> caps = fx.di.capacities;
  nodes.push_back(nodes[2]);  // duplicate
  caps.push_back(1);
  const Status status = service->UpdateCandidates(nodes, caps);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidInput);
  EXPECT_NE(status.message().find("duplicate facility node " +
                                  std::to_string(fx.di.facility_nodes[2])),
            std::string::npos)
      << status.message();
  EXPECT_EQ(service->epoch(), epoch0);

  // The service still serves after the rejection.
  const SolveResponse response =
      service->SolveSync({fx.di.customers, 6, {}, 0, nullptr});
  EXPECT_TRUE(response.status.ok());
}

// --- Warm-vs-cold equivalence ---

TEST(ResolveEquivalence, EmptyDeltaResolveIsBitIdenticalInSolutionBytes) {
  ResolveFixture fx(31);
  ServiceOptions options;
  options.verify = true;
  auto service = fx.MakeService(options);
  ASSERT_TRUE(service->ApplyUpdate(fx.ArriveAll()).ok());

  const int k = 6;
  const SolveResponse first = service->ResolveTracked(k);
  ASSERT_TRUE(first.status.ok()) << first.status.message();

  StatusOr<UpdateResult> noop = service->ApplyUpdate(UpdateRequest{});
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop.value().noop);

  const SolveResponse second = service->ResolveTracked(k);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.verify_ran);
  EXPECT_TRUE(second.verify_ok);
  // Exact state resume: every solution byte is identical.
  EXPECT_EQ(second.solution.selected, first.solution.selected);
  EXPECT_EQ(second.solution.assignment, first.solution.assignment);
  EXPECT_EQ(second.solution.distances, first.solution.distances);
  EXPECT_EQ(second.solution.objective, first.solution.objective);
  EXPECT_EQ(second.stats.warm_customers_reused,
            static_cast<int64_t>(fx.di.customers.size()));
  EXPECT_EQ(second.stats.warm_customers_repaired, 0);

  const ServiceReport report = service->Report();
  EXPECT_GE(report.resolves_warm, 1);
  EXPECT_EQ(report.resolve_verify_rejections, 0);
}

TEST(ResolveEquivalence, RandomDeltaSequencesMatchColdAcrossThreadCounts) {
  // The final-assignment resume only fires when consecutive epochs
  // select the same facility node set — seed-dependent, so asserted in
  // aggregate across the thread sweep rather than per configuration.
  int64_t reused_or_repaired = 0;
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ResolveFixture fx(37, /*n=*/240, /*m=*/48, /*l=*/14, /*max_capacity=*/6);
    ServiceOptions options;
    options.verify = true;
    options.serve_threads = threads;
    options.wma.threads = threads;
    auto service = fx.MakeService(options);
    ASSERT_TRUE(service->ApplyUpdate(fx.ArriveAll()).ok());
    const int k = 7;

    // Seeding solve.
    const SolveResponse seed = service->ResolveTracked(k);
    ASSERT_TRUE(seed.status.ok()) << seed.status.message();

    Rng rng(1000 + static_cast<uint64_t>(threads));
    size_t next_free = 0;
    for (int round = 0; round < 5; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round));
      UpdateRequest delta;
      // ~10% churn: departures from the current population, arrivals on
      // never-used nodes (keeps customers distinct — see file comment).
      McfsInstance current = service->TrackedInstance(k);
      const int churn = std::max<int>(1, current.customers.size() / 10);
      std::vector<int> depart_idx = rng.SampleWithoutReplacement(
          static_cast<int>(current.customers.size()), churn);
      for (const int idx : depart_idx) {
        delta.ops.push_back(
            {UpdateKind::kCustomerDepart, current.customers[idx], 0});
      }
      for (int a = 0; a < churn && next_free < fx.di.free_nodes.size(); ++a) {
        delta.ops.push_back(
            {UpdateKind::kCustomerArrive, fx.di.free_nodes[next_free++], 0});
      }
      if (round % 2 == 0) {
        // Dock reconfiguration: one capacity bump.
        const NodeId node = fx.di.facility_nodes[rng.UniformInt(
            0, static_cast<int64_t>(fx.di.facility_nodes.size()) - 1)];
        delta.ops.push_back({UpdateKind::kCapacityDelta, node, 1});
      }
      ASSERT_TRUE(service->ApplyUpdate(delta).ok());

      const SolveResponse warm = service->ResolveTracked(k);
      ASSERT_TRUE(warm.status.ok()) << warm.status.message();
      EXPECT_TRUE(warm.verify_ran);
      EXPECT_TRUE(warm.verify_ok);
      // The warm path engaged: the previous epoch's discovery prefixes
      // fed the trajectory replay.
      EXPECT_GT(warm.stats.warm_stream_entries, 0);

      // Cold reference: SolveWma directly on the tracked instance, the
      // same way the service builds it.
      McfsInstance instance = service->TrackedInstance(k);
      StatusOr<WmaResult> cold = SolveWma(instance, options.wma);
      ASSERT_TRUE(cold.ok());
      EXPECT_EQ(warm.solution.objective, cold.value().solution.objective);
      EXPECT_EQ(warm.solution.selected, cold.value().solution.selected);
      const VerifyReport verdict =
          VerifySolution(instance, warm.solution);
      EXPECT_TRUE(verdict.ok) << verdict.ToString();
    }

    const ServiceReport report = service->Report();
    EXPECT_GE(report.resolves_warm, 1);
    EXPECT_EQ(report.resolve_verify_rejections, 0);
    reused_or_repaired +=
        report.warm_customers_reused + report.warm_customers_repaired;
  }
  EXPECT_GT(reused_or_repaired, 0);
}

}  // namespace
}  // namespace mcfs
