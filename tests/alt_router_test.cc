#include "mcfs/graph/alt_router.h"

#include <gtest/gtest.h>

#include "mcfs/graph/road_network.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::RandomDisconnectedGraph;
using testing_util::RandomGraph;

class AltRouterOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(AltRouterOracleTest, DistancesMatchDijkstra) {
  Rng rng(500 + GetParam());
  const int n = 20 + static_cast<int>(rng.UniformInt(0, 150));
  const Graph graph = GetParam() % 4 == 0
                          ? RandomDisconnectedGraph(n, 3, rng)
                          : RandomGraph(n, n, rng);
  AltRouter router(&graph, 4, rng);
  for (int q = 0; q < 15; ++q) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const std::vector<double> oracle = ShortestPathsFrom(graph, s);
    const double alt = router.Distance(s, t);
    if (oracle[t] == kInfDistance) {
      EXPECT_EQ(alt, kInfDistance);
    } else {
      EXPECT_NEAR(alt, oracle[t], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, AltRouterOracleTest,
                         ::testing::Range(0, 20));

TEST(AltRouterTest, PathIsConnectedAndPricedCorrectly) {
  Rng rng(77);
  const Graph graph = RandomGraph(80, 100, rng);
  AltRouter router(&graph, 4, rng);
  const NodeId s = 3;
  const NodeId t = 71;
  const std::vector<NodeId> path = router.Path(s, t);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), s);
  EXPECT_EQ(path.back(), t);
  // Consecutive nodes are adjacent; edge weights sum to the distance.
  double total = 0.0;
  for (size_t hop = 0; hop + 1 < path.size(); ++hop) {
    double weight = kInfDistance;
    for (const AdjEntry& e : graph.Neighbors(path[hop])) {
      if (e.to == path[hop + 1]) weight = std::min(weight, e.weight);
    }
    ASSERT_NE(weight, kInfDistance) << "path uses a non-edge";
    total += weight;
  }
  EXPECT_NEAR(total, router.Distance(s, t), 1e-9);
}

TEST(AltRouterTest, TrivialAndDisconnectedQueries) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 2.0);
  // nodes 2, 3 isolated
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  Rng rng(1);
  AltRouter router(&graph, 2, rng);
  EXPECT_DOUBLE_EQ(router.Distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(router.Distance(0, 1), 2.0);
  EXPECT_EQ(router.Distance(0, 3), kInfDistance);
  EXPECT_TRUE(router.Path(0, 3).empty());
  EXPECT_EQ(router.Path(0, 0), (std::vector<NodeId>{0}));
}

TEST(AltRouterTest, SettlesFewerNodesThanDijkstraOnRoadNetworks) {
  const Graph city = GenerateCity(AalborgPreset(0.05, 42));
  Rng rng(5);
  AltRouter router(&city, 8, rng);
  int64_t alt_settled = 0;
  int queries = 0;
  for (int q = 0; q < 10; ++q) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1));
    if (router.Distance(s, t) == kInfDistance) continue;
    alt_settled += router.last_settled_count();
    ++queries;
  }
  ASSERT_GT(queries, 0);
  // On a road network ALT should settle well under half the graph per
  // query on average.
  EXPECT_LT(alt_settled / queries, city.NumNodes() / 2);
}

}  // namespace
}  // namespace mcfs
