#include "mcfs/graph/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mcfs/common/random.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/generators.h"

namespace mcfs {
namespace {

std::vector<Point> RandomPoints(int n, Rng& rng) {
  return GenerateUniformPoints(n, 1000.0, rng);
}

TEST(SpatialIndexTest, NearestNeighborSmallCase) {
  SpatialGridIndex index({{0, 0}, {10, 0}, {0, 10}, {7, 7}});
  EXPECT_EQ(index.NearestNeighbor({1, 1}), 0);
  EXPECT_EQ(index.NearestNeighbor({9, 1}), 1);
  EXPECT_EQ(index.NearestNeighbor({6, 6}), 3);
  EXPECT_EQ(index.size(), 4);
}

TEST(SpatialIndexTest, EmptyIndex) {
  SpatialGridIndex index({});
  EXPECT_EQ(index.NearestNeighbor({0, 0}), -1);
  EXPECT_TRUE(index.RangeQuery({0, 0}, 10.0).empty());
}

class SpatialIndexOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SpatialIndexOracleTest, NearestNeighborMatchesBruteForce) {
  Rng rng(100 + GetParam());
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 300));
  const std::vector<Point> points = RandomPoints(n, rng);
  const SpatialGridIndex index(points);
  for (int q = 0; q < 25; ++q) {
    const Point query{rng.Uniform(-100.0, 1100.0),
                      rng.Uniform(-100.0, 1100.0)};
    int expected = 0;
    for (int i = 1; i < n; ++i) {
      if (EuclideanDistance(points[i], query) <
          EuclideanDistance(points[expected], query)) {
        expected = i;
      }
    }
    const int got = index.NearestNeighbor(query);
    ASSERT_NE(got, -1);
    EXPECT_NEAR(EuclideanDistance(points[got], query),
                EuclideanDistance(points[expected], query), 1e-9);
  }
}

TEST_P(SpatialIndexOracleTest, RangeQueryMatchesBruteForce) {
  Rng rng(400 + GetParam());
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 300));
  const std::vector<Point> points = RandomPoints(n, rng);
  const SpatialGridIndex index(points);
  for (int q = 0; q < 10; ++q) {
    const Point query{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    const double radius = rng.Uniform(10.0, 300.0);
    std::set<int> expected;
    for (int i = 0; i < n; ++i) {
      if (EuclideanDistance(points[i], query) <= radius) expected.insert(i);
    }
    const std::vector<int> got = index.RangeQuery(query, radius);
    EXPECT_EQ(std::set<int>(got.begin(), got.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, SpatialIndexOracleTest,
                         ::testing::Range(0, 15));

TEST(SpatialIndexTest, NearestNeighborIfRespectsFilter) {
  Rng rng(9);
  const std::vector<Point> points = RandomPoints(100, rng);
  const SpatialGridIndex index(points);
  const Point query{500.0, 500.0};
  const int unrestricted = index.NearestNeighbor(query);
  const int filtered = index.NearestNeighborIf(
      query, [&](int id) { return id != unrestricted; });
  EXPECT_NE(filtered, unrestricted);
  ASSERT_NE(filtered, -1);
  // The filtered answer is the true second-nearest.
  double best = kInfDistance;
  int expected = -1;
  for (int i = 0; i < 100; ++i) {
    if (i == unrestricted) continue;
    const double d = EuclideanDistance(points[i], query);
    if (d < best) {
      best = d;
      expected = i;
    }
  }
  EXPECT_NEAR(EuclideanDistance(points[filtered], query), best, 1e-9);
  (void)expected;
  // Rejecting everything yields -1.
  EXPECT_EQ(index.NearestNeighborIf(query, [](int) { return false; }), -1);
}

}  // namespace
}  // namespace mcfs
