// Deterministic chaos soak (DESIGN.md §4.13): a seeded FaultPlan fires
// deadline cuts, verifier rejections, and queue-overflow pulses into a
// serving SolverService under load, at several thread counts. The
// contract under chaos: no crash, every handle completes with a typed
// status (kOk or kUnavailable — nothing hangs, nothing is silently
// dropped), every degraded answer is verifier-feasible with a reported
// quality bound, and once the fault budgets are spent the service goes
// straight back to converged answers bit-identical to a direct solve.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mcfs/common/fault_plan.h"
#include "mcfs/common/random.h"
#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/serve/solver_service.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

struct ChaosFixture {
  testing_util::RandomInstance ri;

  explicit ChaosFixture(uint64_t seed) {
    Rng rng(seed);
    ri = testing_util::MakeRandomInstance(200, 60, 30, 12, 15, rng);
    ri.instance.graph = &ri.graph;
  }

  const McfsInstance& catalog() const { return ri.instance; }

  McfsInstance RequestInstance(const SolveRequest& request) const {
    McfsInstance instance;
    instance.graph = catalog().graph;
    instance.customers = request.customers;
    instance.k = request.k;
    if (request.facility_subset.empty()) {
      instance.facility_nodes = catalog().facility_nodes;
      instance.capacities = catalog().capacities;
    } else {
      for (const int idx : request.facility_subset) {
        instance.facility_nodes.push_back(catalog().facility_nodes[idx]);
        instance.capacities.push_back(catalog().capacities[idx]);
      }
    }
    return instance;
  }
};

// Request shapes the soak cycles through; all opt into degraded mode.
std::vector<SolveRequest> ChaosShapes(const ChaosFixture& fx) {
  const std::vector<NodeId>& all = fx.catalog().customers;
  std::vector<SolveRequest> shapes;
  {
    SolveRequest request;
    request.customers = all;
    request.k = fx.catalog().k;
    request.allow_degraded = true;
    shapes.push_back(request);
  }
  {
    SolveRequest request;
    request.customers.assign(all.begin(), all.begin() + 20);
    request.k = 6;
    request.allow_degraded = true;
    shapes.push_back(request);
  }
  {
    SolveRequest request;
    request.customers = all;
    request.k = fx.catalog().k;
    for (int j = 0; j < fx.catalog().l(); j += 2) {
      request.facility_subset.push_back(j);
    }
    request.allow_degraded = true;
    shapes.push_back(request);
  }
  return shapes;
}

// Spends whatever is left of a kind's fire budget by polling the plan
// directly — the harness's way to declare "the faults have stopped"
// without a timing dependence.
void DrainFaultBudget(FaultPlan& plan, FaultKind kind) {
  const int64_t cap = plan.spec().max_fires[static_cast<int>(kind)];
  ASSERT_GE(cap, 0) << "chaos plans must cap every enabled kind";
  int64_t safety = 0;
  while (plan.fires(kind) < cap && safety++ < 1'000'000) {
    plan.ShouldFire(kind);
  }
  EXPECT_EQ(plan.fires(kind), cap);
}

TEST(ServeChaosTest, SoakSurvivesFaultsAndReconvergesAcrossThreadCounts) {
  ChaosFixture fx(71);
  const std::vector<SolveRequest> shapes = ChaosShapes(fx);

  // Every shape must be solvable when nothing is injected — so any
  // non-OK soak status is the fault machinery, not a bad instance.
  for (const SolveRequest& shape : shapes) {
    const StatusOr<WmaResult> direct = SolveWma(fx.RequestInstance(shape));
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  }

  constexpr int kRequestsPerConfig = 400;  // x3 thread counts >= 1000 total
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("serve_threads=" + std::to_string(threads));

    FaultPlanSpec spec;
    spec.seed = 9000 + static_cast<uint64_t>(threads);
    spec.rate[static_cast<int>(FaultKind::kDeadlineCut)] = 0.2;
    spec.max_fires[static_cast<int>(FaultKind::kDeadlineCut)] = 25;
    spec.rate[static_cast<int>(FaultKind::kVerifyReject)] = 0.15;
    spec.max_fires[static_cast<int>(FaultKind::kVerifyReject)] = 20;
    spec.rate[static_cast<int>(FaultKind::kQueuePulse)] = 0.05;
    spec.max_fires[static_cast<int>(FaultKind::kQueuePulse)] = 8;
    auto plan = std::make_shared<FaultPlan>(spec);

    ServiceOptions options;
    options.serve_threads = threads;
    options.wma.threads = threads;
    options.queue_depth = kRequestsPerConfig + 16;  // pulses only
    options.cache_capacity = 0;  // every request really solves (and polls)
    options.fault_plan = plan;
    auto service = std::make_unique<SolverService>(
        fx.catalog().graph, fx.catalog().facility_nodes,
        fx.catalog().capacities, options);

    std::vector<std::shared_ptr<ResponseHandle>> handles;
    handles.reserve(kRequestsPerConfig);
    for (int i = 0; i < kRequestsPerConfig; ++i) {
      handles.push_back(service->Submit(shapes[i % shapes.size()]));
    }

    int64_t converged = 0, degraded = 0, shed = 0, exhausted = 0;
    for (int i = 0; i < kRequestsPerConfig; ++i) {
      ASSERT_TRUE(handles[i]->WaitFor(120'000)) << "request " << i << " hung";
      const SolveResponse& response = handles[i]->Wait();
      if (response.status.ok()) {
        if (response.tier == "degraded") {
          ++degraded;
          // Degraded answers are always verifier-checked in-service and
          // carry a quality bound; re-verify independently here.
          EXPECT_TRUE(response.verify_ran);
          EXPECT_TRUE(response.verify_ok);
          EXPECT_TRUE(response.solution.feasible);
          EXPECT_GE(response.quality_bound, 1.0);
          const VerifyReport verdict = VerifySolution(
              fx.RequestInstance(shapes[i % shapes.size()]),
              response.solution);
          EXPECT_TRUE(verdict.ok) << verdict.ToString();
        } else {
          EXPECT_EQ(response.tier, "full");
          ++converged;
        }
      } else {
        // The only failure the soak may produce is typed unavailability:
        // an admission shed (with a retry hint) or an exhausted ladder.
        ASSERT_EQ(response.status.code(), StatusCode::kUnavailable)
            << response.status.ToString();
        if (response.retry_after_ms > 0) {
          ++shed;
        } else {
          ++exhausted;
        }
      }
    }

    EXPECT_EQ(converged + degraded + shed + exhausted, kRequestsPerConfig);
    EXPECT_GT(degraded, 0);
    EXPECT_GT(converged, 0);
    EXPECT_EQ(shed, plan->fires(FaultKind::kQueuePulse));

    const ServiceReport report = service->Report();
    EXPECT_EQ(report.requests_shed, shed);
    EXPECT_EQ(report.degraded_responses, degraded);
    EXPECT_GE(report.faults_injected, plan->fires(FaultKind::kQueuePulse));
    const std::string json = report.Json();
    EXPECT_NE(json.find("\"fault_tolerance\""), std::string::npos);
    EXPECT_NE(json.find("\"degraded_responses\": "), std::string::npos);
    const std::string snapshot = service->DebugSnapshot().Json();
    EXPECT_NE(snapshot.find("\"shed\": "), std::string::npos);
    EXPECT_NE(snapshot.find("\"degraded\": "), std::string::npos);

    // Faults stop: spend what is left of every budget, then a clean
    // request must come back converged and bit-identical to a direct
    // solve — the service recovered, not just survived.
    DrainFaultBudget(*plan, FaultKind::kDeadlineCut);
    DrainFaultBudget(*plan, FaultKind::kVerifyReject);
    DrainFaultBudget(*plan, FaultKind::kQueuePulse);

    const SolveResponse clean = service->SolveSync(shapes[0]);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_EQ(clean.tier, "full");
    EXPECT_EQ(clean.solution.termination, Termination::kConverged);
    const StatusOr<WmaResult> direct =
        SolveWma(fx.RequestInstance(shapes[0]), options.wma);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(clean.solution.selected, direct.value().solution.selected);
    EXPECT_EQ(clean.solution.assignment, direct.value().solution.assignment);
    EXPECT_EQ(clean.solution.objective, direct.value().solution.objective);

    service->Shutdown();
  }
}

}  // namespace
}  // namespace mcfs
