// Deadline / anytime behavior of WMA: fault-injected expiries at
// seeded mid-solve points always leave a verifier-clean best-so-far
// solution marked kDeadline; runs without a deadline are bit-identical
// to each other across thread counts; the checked SolveWma entry
// rejects malformed and infeasible instances with typed errors.

#include <gtest/gtest.h>

#include <vector>

#include "mcfs/common/timer.h"
#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

testing_util::RandomInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  // k = 12 facilities with capacities up to 15 comfortably cover the
  // 60 customers, so the instances are feasible for every seed.
  return testing_util::MakeRandomInstance(200, 60, 30, 12, 15, rng);
}

bool SameSolution(const McfsSolution& a, const McfsSolution& b) {
  return a.selected == b.selected && a.assignment == b.assignment &&
         a.distances == b.distances && a.objective == b.objective &&
         a.feasible == b.feasible && a.termination == b.termination;
}

TEST(WmaDeadlineTest, NoDeadlineIsBitIdenticalAcrossThreads) {
  testing_util::RandomInstance ri = MakeInstance(3);
  WmaOptions options;
  options.threads = 1;
  const WmaResult base = RunWma(ri.instance, options);
  EXPECT_EQ(base.solution.termination, Termination::kConverged);
  for (const int threads : {2, 8}) {
    options.threads = threads;
    const WmaResult run = RunWma(ri.instance, options);
    EXPECT_TRUE(SameSolution(base.solution, run.solution)) << threads;
    EXPECT_EQ(base.stats.iterations, run.stats.iterations);
    EXPECT_EQ(base.stats.dijkstra_runs, run.stats.dijkstra_runs);
    EXPECT_EQ(base.stats.edges_materialized, run.stats.edges_materialized);
  }
}

// The core fault-injection sweep: fire the deadline on the p-th poll
// for seeded values of p covering "immediately", "mid-matching", and
// "deep into the run". Every cut must leave a feasible, verifier-clean
// solution marked kDeadline; polls beyond convergence leave kConverged.
TEST(WmaDeadlineTest, InjectedExpiryAlwaysLeavesVerifierCleanSolution) {
  testing_util::RandomInstance ri = MakeInstance(4);
  ASSERT_TRUE(IsFeasible(ri.instance));

  Rng poll_rng(2026);
  std::vector<int64_t> poll_points = {0, 1, 2, 3, 5, 8};
  for (int draw = 0; draw < 10; ++draw) {
    poll_points.push_back(poll_rng.UniformInt(10, 400));
  }
  int deadline_runs = 0;
  int converged_runs = 0;
  for (const int64_t polls : poll_points) {
    WmaOptions options;
    options.deadline = Deadline::AfterPolls(polls);
    const WmaResult result = RunWma(ri.instance, options);
    if (result.solution.termination == Termination::kDeadline) {
      ++deadline_runs;
    } else {
      EXPECT_EQ(result.solution.termination, Termination::kConverged);
      ++converged_runs;
    }
    // Anytime contract: the wrap-up always completes, so on a feasible
    // instance the returned solution is feasible and passes the
    // independent verifier regardless of where the cut landed.
    EXPECT_TRUE(result.solution.feasible) << "polls = " << polls;
    const VerifyReport report = VerifySolution(ri.instance, result.solution);
    EXPECT_TRUE(report.ok) << "polls = " << polls << "\n"
                           << report.ToString();
  }
  EXPECT_GT(deadline_runs, 0);  // the small poll counts must cut the run
}

TEST(WmaDeadlineTest, ImmediateExpiryStillSolves) {
  testing_util::RandomInstance ri = MakeInstance(5);
  WmaOptions options;
  options.deadline = Deadline::AfterPolls(0);
  const WmaResult result = RunWma(ri.instance, options);
  EXPECT_EQ(result.solution.termination, Termination::kDeadline);
  EXPECT_EQ(result.stats.termination, Termination::kDeadline);
  EXPECT_EQ(result.stats.iterations, 0);
  EXPECT_TRUE(result.solution.feasible);
  EXPECT_TRUE(VerifySolution(ri.instance, result.solution).ok);
}

TEST(WmaDeadlineTest, InjectedExpiryIsDeterministicAcrossThreads) {
  testing_util::RandomInstance ri = MakeInstance(6);
  for (const int64_t polls : {0L, 7L, 40L}) {
    WmaOptions options;
    options.threads = 1;
    options.deadline = Deadline::AfterPolls(polls);
    const WmaResult base = RunWma(ri.instance, options);
    for (const int threads : {2, 8}) {
      options.threads = threads;
      options.deadline = Deadline::AfterPolls(polls);
      const WmaResult run = RunWma(ri.instance, options);
      EXPECT_TRUE(SameSolution(base.solution, run.solution))
          << "polls = " << polls << ", threads = " << threads;
    }
  }
}

TEST(WmaDeadlineTest, CancelTokenActsAsDeadline) {
  testing_util::RandomInstance ri = MakeInstance(7);
  CancelToken cancel;
  cancel.Cancel();
  WmaOptions options;
  options.cancel = &cancel;
  const WmaResult result = RunWma(ri.instance, options);
  EXPECT_EQ(result.solution.termination, Termination::kDeadline);
  EXPECT_TRUE(result.solution.feasible);
}

TEST(WmaDeadlineTest, InfeasibleOutranksDeadline) {
  Rng rng(8);
  // Demand 30 against total capacity <= 20: infeasible by Theorem 3.
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(60, 30, 10, 2, 2, rng);
  ASSERT_FALSE(IsFeasible(ri.instance));
  WmaOptions options;
  options.deadline = Deadline::AfterPolls(1);
  const WmaResult result = RunWma(ri.instance, options);
  EXPECT_EQ(result.solution.termination, Termination::kInfeasible);
  EXPECT_FALSE(result.solution.feasible);
}

TEST(WmaDeadlineTest, UniformFirstPropagatesDeadline) {
  testing_util::RandomInstance ri = MakeInstance(9);
  WmaOptions options;
  options.deadline = Deadline::AfterPolls(0);
  const WmaResult result = RunUniformFirstWma(ri.instance, options);
  EXPECT_EQ(result.solution.termination, Termination::kDeadline);
  EXPECT_TRUE(result.solution.feasible);
  EXPECT_TRUE(VerifySolution(ri.instance, result.solution).ok);
}

TEST(WmaDeadlineTest, NaiveVariantHonorsDeadline) {
  testing_util::RandomInstance ri = MakeInstance(10);
  WmaOptions options;
  options.naive = true;
  options.deadline = Deadline::AfterPolls(1);
  const WmaResult result = RunWma(ri.instance, options);
  EXPECT_EQ(result.solution.termination, Termination::kDeadline);
  EXPECT_TRUE(result.solution.feasible);
}

// Real-time budget: on an instance whose unbounded solve takes >= 10x
// the budget, a wall-clock deadline must cut the run and still hand
// back a verifier-clean feasible solution. Skipped when the machine
// solves the instance too fast to sustain the 10x ratio.
TEST(WmaDeadlineTest, WallClockBudgetDegradesGracefully) {
  Rng rng(11);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(3000, 1200, 200, 40, 60, rng);
  ASSERT_TRUE(IsFeasible(ri.instance));
  WmaOptions options;
  options.threads = 1;
  WallTimer timer;
  const WmaResult unbounded = RunWma(ri.instance, options);
  const double unbounded_ms = timer.Seconds() * 1000.0;
  ASSERT_EQ(unbounded.solution.termination, Termination::kConverged);
  if (unbounded_ms < 50.0) {
    GTEST_SKIP() << "unbounded solve took only " << unbounded_ms
                 << " ms; cannot sustain a 10x budget gap";
  }
  options.deadline_ms =
      std::max<int64_t>(1, static_cast<int64_t>(unbounded_ms / 10.0));
  const WmaResult bounded = RunWma(ri.instance, options);
  EXPECT_EQ(bounded.solution.termination, Termination::kDeadline);
  EXPECT_TRUE(bounded.solution.feasible);
  const VerifyReport report = VerifySolution(ri.instance, bounded.solution);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(WmaDeadlineTest, SolveWmaRejectsBadInstancesWithTypedErrors) {
  testing_util::RandomInstance ri = MakeInstance(12);

  McfsInstance invalid = ri.instance;
  invalid.customers[0] = -5;
  const StatusOr<WmaResult> invalid_result = SolveWma(invalid);
  ASSERT_FALSE(invalid_result.ok());
  EXPECT_EQ(invalid_result.status().code(), StatusCode::kInvalidInput);

  McfsInstance infeasible = ri.instance;
  infeasible.k = 0;
  const StatusOr<WmaResult> infeasible_result = SolveWma(infeasible);
  ASSERT_FALSE(infeasible_result.ok());
  EXPECT_EQ(infeasible_result.status().code(), StatusCode::kInfeasible);

  const StatusOr<WmaResult> good = SolveWma(ri.instance);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good->solution.feasible);
  EXPECT_TRUE(VerifySolution(ri.instance, good->solution).ok);

  McfsInstance empty;
  Rng rng(13);
  const Graph graph = testing_util::RandomGraph(5, 3, rng);
  empty.graph = &graph;
  const StatusOr<WmaResult> trivial = SolveWma(empty);
  ASSERT_TRUE(trivial.ok());
  EXPECT_TRUE(trivial->solution.feasible);
}

}  // namespace
}  // namespace mcfs
