#include "mcfs/core/solution_stats.h"

#include <gtest/gtest.h>

#include "mcfs/core/wma.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

TEST(SolutionStatsTest, HandComputedExample) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 3.0);
  builder.AddEdge(3, 4, 4.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 2, 4};
  instance.facility_nodes = {1, 3};
  instance.capacities = {2, 2};
  instance.k = 2;

  McfsSolution solution;
  solution.selected = {0, 1};
  solution.assignment = {0, 0, 1};
  solution.distances = {1.0, 2.0, 4.0};
  solution.objective = 7.0;
  solution.feasible = true;
  ASSERT_TRUE(ValidateSolution(instance, solution, true).ok);

  const SolutionStats stats = ComputeSolutionStats(instance, solution);
  EXPECT_EQ(stats.assigned_customers, 3);
  EXPECT_EQ(stats.unassigned_customers, 0);
  EXPECT_NEAR(stats.mean_distance, 7.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.max_distance, 4.0);
  EXPECT_DOUBLE_EQ(stats.median_distance, 2.0);
  EXPECT_EQ(stats.facilities_used, 2);
  EXPECT_EQ(stats.facilities_full, 1);  // facility 0 holds 2/2
  EXPECT_EQ(stats.max_load, 2);
  EXPECT_EQ(stats.load, (std::vector<int>{2, 1}));
  EXPECT_NEAR(stats.mean_utilization, (1.0 + 0.5) / 2, 1e-9);

  const std::string report = FormatSolutionStats(stats);
  EXPECT_NE(report.find("3 assigned"), std::string::npos);
  EXPECT_NE(report.find("1 at capacity"), std::string::npos);
}

TEST(SolutionStatsTest, CountsUnassignedCustomers) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 2};
  instance.facility_nodes = {1};
  instance.capacities = {1};
  instance.k = 1;
  McfsSolution solution;
  solution.selected = {0};
  solution.assignment = {0, -1};
  solution.distances = {1.0, 0.0};
  solution.objective = 1.0;
  solution.feasible = false;
  const SolutionStats stats = ComputeSolutionStats(instance, solution);
  EXPECT_EQ(stats.assigned_customers, 1);
  EXPECT_EQ(stats.unassigned_customers, 1);
  EXPECT_NE(FormatSolutionStats(stats).find("UNASSIGNED"),
            std::string::npos);
}

TEST(SolutionStatsTest, ConsistentWithWmaSolutions) {
  Rng rng(5);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(80, 20, 12, 5, 6, rng);
  const McfsSolution solution = RunWma(ri.instance).solution;
  const SolutionStats stats = ComputeSolutionStats(ri.instance, solution);
  EXPECT_EQ(stats.assigned_customers + stats.unassigned_customers, 20);
  // Total load equals assigned customers.
  int total_load = 0;
  for (const int load : stats.load) total_load += load;
  EXPECT_EQ(total_load, stats.assigned_customers);
  // Percentiles are monotone.
  EXPECT_LE(stats.median_distance, stats.p90_distance + 1e-12);
  EXPECT_LE(stats.p90_distance, stats.p99_distance + 1e-12);
  EXPECT_LE(stats.p99_distance, stats.max_distance + 1e-12);
}

}  // namespace
}  // namespace mcfs
