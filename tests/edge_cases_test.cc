// Edge cases and failure-injection tests across the public API surface:
// degenerate instance shapes, zero capacities, saturation, and heavy
// contention — the situations a production deployment hits first.

#include <gtest/gtest.h>

#include "mcfs/baselines/greedy_kmedian.h"
#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/flow/matcher.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

TEST(EdgeCaseTest, SingleCustomerSingleFacility) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 3.5);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0};
  instance.facility_nodes = {1};
  instance.capacities = {1};
  instance.k = 1;
  const WmaResult result = RunWma(instance);
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_DOUBLE_EQ(result.solution.objective, 3.5);
  EXPECT_EQ(result.solution.assignment, (std::vector<int>{0}));
}

TEST(EdgeCaseTest, CustomerOnFacilityNodeCostsZero) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 9.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {1};
  instance.facility_nodes = {1};
  instance.capacities = {1};
  instance.k = 1;
  const WmaResult result = RunWma(instance);
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_DOUBLE_EQ(result.solution.objective, 0.0);
}

TEST(EdgeCaseTest, ZeroCapacityFacilitiesAreNeverUsed) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);  // nearest facility has capacity 0
  builder.AddEdge(0, 2, 2.0);
  builder.AddEdge(2, 3, 2.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0};
  instance.facility_nodes = {1, 3};
  instance.capacities = {0, 1};
  instance.k = 2;
  const WmaResult result = RunWma(instance);
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_EQ(result.solution.assignment[0], 1);
  EXPECT_DOUBLE_EQ(result.solution.objective, 4.0);
}

TEST(EdgeCaseTest, AllCapacitiesZeroIsInfeasible) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0};
  instance.facility_nodes = {1};
  instance.capacities = {0};
  instance.k = 1;
  EXPECT_FALSE(IsFeasible(instance));
  const WmaResult result = RunWma(instance);
  EXPECT_FALSE(result.solution.feasible);
  EXPECT_TRUE(ValidateSolution(instance, result.solution).ok);
}

TEST(EdgeCaseTest, TightOccupancyExactlyOne) {
  // o = 1: every capacity slot must be used; the matcher must thread
  // customers into the exact feasible packing.
  GraphBuilder builder(6);
  for (int v = 0; v + 1 < 6; ++v) builder.AddEdge(v, v + 1, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 1, 4, 5};
  instance.facility_nodes = {2, 3};
  instance.capacities = {2, 2};
  instance.k = 2;
  EXPECT_DOUBLE_EQ(instance.Occupancy(), 1.0);
  const WmaResult result = RunWma(instance);
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_TRUE(ValidateSolution(instance, result.solution, true).ok);
  // Optimal: {0,1}->f0 (2+1), {4,5}->f1 (1+2) = 6.
  EXPECT_NEAR(result.solution.objective, 6.0, 1e-9);
}

TEST(EdgeCaseTest, HeavyContentionSingleHub) {
  // Star network: 30 customers on leaves, facilities on 3 inner nodes
  // with exact total capacity; forces extensive rewiring.
  GraphBuilder builder(34);
  for (int leaf = 0; leaf < 30; ++leaf) {
    builder.AddEdge(33, leaf, 1.0 + leaf * 0.01);
  }
  builder.AddEdge(33, 30, 1.0);
  builder.AddEdge(33, 31, 2.0);
  builder.AddEdge(33, 32, 3.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  for (int leaf = 0; leaf < 30; ++leaf) instance.customers.push_back(leaf);
  instance.facility_nodes = {30, 31, 32};
  instance.capacities = {10, 10, 10};
  instance.k = 3;
  const WmaResult result = RunWma(instance);
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_TRUE(ValidateSolution(instance, result.solution, true).ok);
  // Exact reference agrees.
  const ExactResult exact = SolveByEnumeration(instance);
  EXPECT_NEAR(result.solution.objective, exact.solution.objective, 1e-6);
}

TEST(EdgeCaseTest, KEqualsOneSelectsBestSingleFacility) {
  Rng rng(55);
  for (int trial = 0; trial < 5; ++trial) {
    RandomInstance ri = MakeRandomInstance(40, 6, 5, 1, 10, rng);
    if (!IsFeasible(ri.instance)) continue;
    const WmaResult wma = RunWma(ri.instance);
    const ExactResult exact = SolveByEnumeration(ri.instance);
    ASSERT_TRUE(wma.solution.feasible);
    // With k=1 and l<=5 candidates, WMA should be near the optimum.
    EXPECT_LE(wma.solution.objective,
              exact.solution.objective * 2.0 + 1e-9);
  }
}

TEST(EdgeCaseTest, MatcherRejectsDuplicateFacilityNodes) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  const Graph graph = builder.Build();
  EXPECT_DEATH(IncrementalMatcher(&graph, {0}, {1, 1}, {1, 1}),
               "two candidate facilities");
}

TEST(EdgeCaseTest, GreedyKMedianDisconnectedComponents) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  builder.AddEdge(4, 5, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 2, 4};
  instance.facility_nodes = {1, 3, 5};
  instance.capacities = {1, 1, 1};
  instance.k = 3;
  const McfsSolution solution = RunGreedyKMedian(instance);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
}

TEST(EdgeCaseTest, LargeDemandsSaturateGracefully) {
  // More exploration demand than total capacity: WMA must terminate via
  // saturation, not loop.
  GraphBuilder builder(5);
  for (int v = 0; v + 1 < 5; ++v) builder.AddEdge(v, v + 1, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 1, 2, 3};
  instance.facility_nodes = {4};
  instance.capacities = {4};
  instance.k = 1;
  const WmaResult result = RunWma(instance);
  EXPECT_TRUE(result.solution.feasible);
  EXPECT_LE(result.stats.iterations, 10);
}

}  // namespace
}  // namespace mcfs
