#include "mcfs/core/set_cover.h"

#include <gtest/gtest.h>

namespace mcfs {
namespace {

CoverInput MakeInput(int num_customers, int k,
                     const std::vector<std::vector<int>>* sigma,
                     const std::vector<int>* demand, int demand_cap) {
  CoverInput input;
  input.num_customers = num_customers;
  input.k = k;
  input.customers_of_facility = sigma;
  input.demand = demand;
  input.demand_cap = demand_cap;
  return input;
}

TEST(CheckCoverTest, SelectsGreedyMaxCoverage) {
  // f0 covers {0,1,2}; f1 covers {2,3}; f2 covers {3}. k=2 should take
  // f0 then f1 and cover everyone.
  const std::vector<std::vector<int>> sigma = {{0, 1, 2}, {2, 3}, {3}};
  const std::vector<int> demand(4, 1);
  std::vector<int64_t> last_selected(3, -1);
  const CoverResult result =
      CheckCover(MakeInput(4, 2, &sigma, &demand, 3), last_selected, 0);
  EXPECT_EQ(result.selected, (std::vector<int>{0, 1}));
  EXPECT_TRUE(result.fully_covered);
  EXPECT_TRUE(result.all_delta_zero);
}

TEST(CheckCoverTest, LazyGainRefreshAvoidsDoubleCounting) {
  // f1's raw count (3) exceeds f2's (2), but after f0 is taken f1's
  // marginal gain drops to 1 while f2 still gains 2.
  const std::vector<std::vector<int>> sigma = {
      {0, 1, 2, 3}, {1, 2, 3}, {4, 5}};
  const std::vector<int> demand(6, 1);
  std::vector<int64_t> last_selected(3, -1);
  const CoverResult result =
      CheckCover(MakeInput(6, 2, &sigma, &demand, 3), last_selected, 0);
  EXPECT_EQ(result.selected, (std::vector<int>{0, 2}));
  EXPECT_TRUE(result.fully_covered);
}

TEST(CheckCoverTest, UncoveredCustomersGetDemandIncrease) {
  const std::vector<std::vector<int>> sigma = {{0}, {1}};
  const std::vector<int> demand = {1, 1, 1};
  std::vector<int64_t> last_selected(2, -1);
  const CoverResult result =
      CheckCover(MakeInput(3, 2, &sigma, &demand, 2), last_selected, 0);
  EXPECT_FALSE(result.fully_covered);
  EXPECT_FALSE(result.all_delta_zero);
  EXPECT_EQ(result.delta_demand[0], 0);  // covered
  EXPECT_EQ(result.delta_demand[1], 0);  // covered
  EXPECT_EQ(result.delta_demand[2], 1);  // uncovered, can explore
}

TEST(CheckCoverTest, DemandCapStopsExploration) {
  const std::vector<std::vector<int>> sigma = {{0}};
  const std::vector<int> demand = {1, 1};  // customer 1 at cap (cap=1)
  std::vector<int64_t> last_selected(1, -1);
  const CoverResult result =
      CheckCover(MakeInput(2, 1, &sigma, &demand, 1), last_selected, 0);
  EXPECT_FALSE(result.fully_covered);
  EXPECT_TRUE(result.all_delta_zero);  // cap reached: loop must stop
}

TEST(CheckCoverTest, SaturatedCustomersDoNotExplore) {
  const std::vector<std::vector<int>> sigma = {{0}};
  const std::vector<int> demand = {1, 1};
  const std::vector<uint8_t> saturated = {0, 1};
  CoverInput input = MakeInput(2, 1, &sigma, &demand, 5);
  input.saturated = &saturated;
  std::vector<int64_t> last_selected(1, -1);
  const CoverResult result = CheckCover(input, last_selected, 0);
  EXPECT_TRUE(result.all_delta_zero);
  EXPECT_FALSE(result.fully_covered);
}

TEST(CheckCoverTest, RecencyBreaksTies) {
  // Both facilities cover one distinct customer each; k=1. The one
  // selected least recently must win the tie.
  const std::vector<std::vector<int>> sigma = {{0}, {1}};
  const std::vector<int> demand = {1, 1};
  std::vector<int64_t> last_selected = {5, 2};  // f1 chosen longer ago
  const CoverResult result =
      CheckCover(MakeInput(2, 1, &sigma, &demand, 2), last_selected, 7);
  EXPECT_EQ(result.selected, (std::vector<int>{1}));
  EXPECT_EQ(last_selected[1], 7);  // updated to the current iteration
  EXPECT_EQ(last_selected[0], 5);
}

TEST(CheckCoverTest, StopsAtZeroGain) {
  // Only one facility has any customers; k=3 must not select empties.
  const std::vector<std::vector<int>> sigma = {{0, 1}, {}, {}};
  const std::vector<int> demand = {1, 1};
  std::vector<int64_t> last_selected(3, -1);
  const CoverResult result =
      CheckCover(MakeInput(2, 3, &sigma, &demand, 3), last_selected, 0);
  EXPECT_EQ(result.selected, (std::vector<int>{0}));
  EXPECT_TRUE(result.fully_covered);
}

}  // namespace
}  // namespace mcfs
