#include "mcfs/graph/contraction_hierarchy.h"

#include <gtest/gtest.h>

#include "mcfs/graph/road_network.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::RandomDisconnectedGraph;
using testing_util::RandomGraph;

TEST(ContractionHierarchyTest, TinyPathGraph) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 3.0);
  const Graph graph = builder.Build();
  const ContractionHierarchy ch(&graph);
  EXPECT_DOUBLE_EQ(ch.Distance(0, 3), 6.0);
  EXPECT_DOUBLE_EQ(ch.Distance(3, 0), 6.0);
  EXPECT_DOUBLE_EQ(ch.Distance(1, 1), 0.0);
}

class ChOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ChOracleTest, DistancesMatchDijkstra) {
  Rng rng(600 + GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(0, 120));
  const Graph graph = GetParam() % 4 == 0
                          ? RandomDisconnectedGraph(n, 3, rng)
                          : RandomGraph(n, n / 2, rng);
  const ContractionHierarchy ch(&graph);
  for (int q = 0; q < 20; ++q) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const std::vector<double> oracle = ShortestPathsFrom(graph, s);
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const double got = ch.Distance(s, t);
    if (oracle[t] == kInfDistance) {
      EXPECT_EQ(got, kInfDistance);
    } else {
      EXPECT_NEAR(got, oracle[t], 1e-9) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, ChOracleTest, ::testing::Range(0, 25));

TEST(ContractionHierarchyTest, DistanceTableMatchesDijkstra) {
  Rng rng(42);
  const Graph graph = RandomGraph(120, 80, rng);
  const ContractionHierarchy ch(&graph);
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  for (int i = 0; i < 8; ++i) {
    sources.push_back(static_cast<NodeId>(rng.UniformInt(0, 119)));
    targets.push_back(static_cast<NodeId>(rng.UniformInt(0, 119)));
  }
  const std::vector<double> table = ch.DistanceTable(sources, targets);
  for (size_t s = 0; s < sources.size(); ++s) {
    const std::vector<double> oracle = ShortestPathsFrom(graph, sources[s]);
    for (size_t t = 0; t < targets.size(); ++t) {
      EXPECT_NEAR(table[s * targets.size() + t], oracle[targets[t]], 1e-9);
    }
  }
}

TEST(ContractionHierarchyTest, RanksFormAPermutation) {
  Rng rng(7);
  const Graph graph = RandomGraph(60, 40, rng);
  const ContractionHierarchy ch(&graph);
  std::vector<int> seen(60, 0);
  for (NodeId v = 0; v < 60; ++v) {
    const int r = ch.rank(v);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 60);
    seen[r]++;
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(ContractionHierarchyTest, RoadNetworkQueriesAreExactAndLocal) {
  const Graph city = GenerateCity(AalborgPreset(0.03, 42));
  const ContractionHierarchy ch(&city);
  Rng rng(5);
  int64_t settled_total = 0;
  int queries = 0;
  for (int q = 0; q < 15; ++q) {
    const NodeId s =
        static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1));
    const NodeId t =
        static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1));
    const std::vector<double> oracle = ShortestPathsFrom(city, s);
    const double got = ch.Distance(s, t);
    if (oracle[t] == kInfDistance) {
      EXPECT_EQ(got, kInfDistance);
      continue;
    }
    EXPECT_NEAR(got, oracle[t], 1e-6);
    settled_total += ch.last_settled_count();
    ++queries;
  }
  ASSERT_GT(queries, 0);
  // CH upward cones should be a small fraction of the network.
  EXPECT_LT(settled_total / queries, city.NumNodes() / 4);
}

}  // namespace
}  // namespace mcfs
