#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mcfs/common/flags.h"
#include "mcfs/common/random.h"
#include "mcfs/common/table.h"
#include "mcfs/common/timer.h"

namespace mcfs {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen, (std::set<int64_t>{3, 4, 5, 6, 7}));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(3);
  double sum = 0.0;
  double sum2 = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / samples;
  const double var = sum2 / samples - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsASubset) {
  Rng rng(4);
  const std::vector<int> sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--scale=0.5", "--seed=17", "--verbose",
                        "positional"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("seed", 0), 17);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.Has("missing"));
}

// Helper: a Flags object over one --name=value pair.
Flags OneFlag(const std::string& arg) {
  std::string owned = arg;
  char* argv[] = {const_cast<char*>("prog"), owned.data()};
  return Flags(2, argv);
}

TEST(FlagsTest, StrictNumericParsingAcceptsFullTokens) {
  EXPECT_DOUBLE_EQ(
      *OneFlag("--deadline-ms=12.5").TryGetDouble("deadline_ms", 0.0), 12.5);
  EXPECT_DOUBLE_EQ(*OneFlag("--x=-3e2").TryGetDouble("x", 0.0), -300.0);
  EXPECT_EQ(*OneFlag("--seed=-17").TryGetInt("seed", 0), -17);
  EXPECT_EQ(*OneFlag("--seed=003").TryGetInt("seed", 0), 3);
  // Absent flags fall back to the default without error.
  EXPECT_DOUBLE_EQ(*OneFlag("--x=1").TryGetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(*OneFlag("--x=1").TryGetInt("missing", 9), 9);
}

TEST(FlagsTest, MalformedNumericValueIsTypedErrorNamingTheFlag) {
  // The original bug: --deadline-ms=abc silently parsed to 0 because
  // strtod's end pointer was ignored. It must now be a typed error
  // whose message names the flag and the offending value.
  const StatusOr<int64_t> garbage =
      OneFlag("--deadline-ms=abc").TryGetInt("deadline_ms", 0);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(garbage.status().message().find("--deadline_ms=abc"),
            std::string::npos)
      << garbage.status().ToString();

  for (const char* arg : {"--x=12x", "--x=1.5.2", "--x=", "--x= 7",
                          "--x=7 ", "--x=nanx"}) {
    const StatusOr<double> parsed = OneFlag(arg).TryGetDouble("x", 0.0);
    EXPECT_FALSE(parsed.ok()) << arg;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidInput) << arg;
      EXPECT_NE(parsed.status().message().find("--x"), std::string::npos)
          << arg;
    }
  }
  // Trailing garbage and a fractional value are both invalid integers.
  EXPECT_FALSE(OneFlag("--x=12.5").TryGetInt("x", 0).ok());
  EXPECT_FALSE(OneFlag("--x=12x").TryGetInt("x", 0).ok());
}

TEST(FlagsTest, OutOfRangeNumbersAreRejected) {
  const StatusOr<double> huge =
      OneFlag("--x=1e999").TryGetDouble("x", 0.0);
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("out of range"),
            std::string::npos);
  EXPECT_FALSE(OneFlag("--x=-1e999").TryGetDouble("x", 0.0).ok());
  const StatusOr<int64_t> big =
      OneFlag("--x=99999999999999999999").TryGetInt("x", 0);
  ASSERT_FALSE(big.ok());
  EXPECT_NE(big.status().message().find("out of range"),
            std::string::npos);
  // Denormals underflow quietly to the nearest representable value
  // rather than erroring (matching strtod's contract).
  EXPECT_TRUE(OneFlag("--x=1e-999").TryGetDouble("x", 0.0).ok());
}

TEST(TableTest, FormatsNumbersAndCsv) {
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtInt(50961), "50,961");
  EXPECT_EQ(FmtInt(287927), "287,927");
  EXPECT_EQ(FmtInt(12), "12");
  EXPECT_EQ(FmtSeconds(0.0123), "12.3 ms");
  EXPECT_EQ(FmtSeconds(5.0), "5.00 s");
  EXPECT_EQ(FmtSeconds(300.0), "5.0 min");

  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string path = ::testing::TempDir() + "/table.csv";
  ASSERT_TRUE(table.WriteCsv(path));
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_LT(timer.Seconds(), 5.0);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 1.0);
}

}  // namespace
}  // namespace mcfs
