// SolverService functional contract: responses are bit-identical to
// direct SolveWma calls on the same instance (results, statuses, and
// error messages) for every serve_threads value; admission control
// rejects loudly; the epoch cache serves repeats and is invalidated by
// catalog updates; per-request deadlines degrade only their own
// request; the service report and its JSON have the documented shape.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/serve/solver_service.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

struct ServeFixture {
  testing_util::RandomInstance ri;

  explicit ServeFixture(uint64_t seed) {
    Rng rng(seed);
    ri = testing_util::MakeRandomInstance(200, 60, 30, 12, 15, rng);
    // The assignment moved the graph into this fixture; re-point the
    // instance at the moved-to object.
    ri.instance.graph = &ri.graph;
  }

  const McfsInstance& catalog() const { return ri.instance; }

  // The instance a request describes, built the way the service builds
  // it — the direct-solve reference for bit-identity checks.
  McfsInstance RequestInstance(const SolveRequest& request) const {
    McfsInstance instance;
    instance.graph = catalog().graph;
    instance.customers = request.customers;
    instance.k = request.k;
    if (request.facility_subset.empty()) {
      instance.facility_nodes = catalog().facility_nodes;
      instance.capacities = catalog().capacities;
    } else {
      for (const int idx : request.facility_subset) {
        instance.facility_nodes.push_back(catalog().facility_nodes[idx]);
        instance.capacities.push_back(catalog().capacities[idx]);
      }
    }
    return instance;
  }

  std::unique_ptr<SolverService> MakeService(
      const ServiceOptions& options = {}) const {
    return std::make_unique<SolverService>(
        catalog().graph, catalog().facility_nodes, catalog().capacities,
        options);
  }
};

bool SameSolution(const McfsSolution& a, const McfsSolution& b) {
  return a.selected == b.selected && a.assignment == b.assignment &&
         a.distances == b.distances && a.objective == b.objective &&
         a.feasible == b.feasible && a.termination == b.termination;
}

std::vector<SolveRequest> MixedRequests(const ServeFixture& fx) {
  const std::vector<NodeId>& all = fx.catalog().customers;
  std::vector<SolveRequest> requests;
  // Full catalog, full customer set.
  requests.push_back({all, fx.catalog().k, {}, 0, nullptr});
  // Fewer customers, tighter budget.
  requests.push_back(
      {{all.begin(), all.begin() + 20}, 6, {}, 0, nullptr});
  // A catalog subset (every other candidate), enough budget.
  std::vector<int> subset;
  for (int j = 0; j < fx.catalog().l(); j += 2) subset.push_back(j);
  requests.push_back({all, fx.catalog().k, subset, 0, nullptr});
  // Empty customer list (the trivial shortcut).
  requests.push_back({{}, 3, {}, 0, nullptr});
  return requests;
}

TEST(ServeTest, ResponsesBitIdenticalToDirectSolveAcrossServeThreads) {
  ServeFixture fx(11);
  const std::vector<SolveRequest> requests = MixedRequests(fx);

  for (const int serve_threads : {1, 2, 8}) {
    ServiceOptions options;
    options.serve_threads = serve_threads;
    options.cache_capacity = 0;  // every request must really solve
    auto service = fx.MakeService(options);

    std::vector<std::shared_ptr<ResponseHandle>> handles;
    for (const SolveRequest& request : requests) {
      handles.push_back(service->Submit(request));
    }
    for (size_t r = 0; r < requests.size(); ++r) {
      const SolveResponse& response = handles[r]->Wait();
      const StatusOr<WmaResult> direct =
          SolveWma(fx.RequestInstance(requests[r]));
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ASSERT_TRUE(direct.ok());
      EXPECT_TRUE(SameSolution(response.solution, direct.value().solution))
          << "request " << r << " at serve_threads " << serve_threads;
      EXPECT_EQ(response.stats.iterations, direct.value().stats.iterations);
      EXPECT_EQ(response.stats.dijkstra_runs,
                direct.value().stats.dijkstra_runs);
      EXPECT_EQ(response.epoch, 1u);
    }
  }
}

TEST(ServeTest, ErrorStatusesMatchDirectSolveByteForByte) {
  ServeFixture fx(12);
  auto service = fx.MakeService();

  std::vector<SolveRequest> bad;
  // Customer node out of range.
  bad.push_back({{5, 10'000}, 4, {}, 0, nullptr});
  // Negative budget.
  bad.push_back({{fx.catalog().customers[0]}, -1, {}, 0, nullptr});
  // Duplicate subset index => duplicate facility node.
  bad.push_back({fx.catalog().customers, fx.catalog().k, {0, 1, 0}, 0,
                 nullptr});
  // Infeasible: customers but a zero budget.
  bad.push_back({fx.catalog().customers, 0, {}, 0, nullptr});
  // Infeasible: one facility cannot hold 60 customers.
  bad.push_back({fx.catalog().customers, 1, {0}, 0, nullptr});

  for (size_t r = 0; r < bad.size(); ++r) {
    const SolveResponse response = service->SolveSync(bad[r]);
    const StatusOr<WmaResult> direct = SolveWma(fx.RequestInstance(bad[r]));
    ASSERT_FALSE(direct.ok()) << "request " << r;
    EXPECT_FALSE(response.status.ok()) << "request " << r;
    EXPECT_EQ(response.status.code(), direct.status().code()) << r;
    EXPECT_EQ(response.status.message(), direct.status().message()) << r;
  }
}

TEST(ServeTest, SubsetIndexOutOfRangeIsServiceLevelInvalidInput) {
  ServeFixture fx(13);
  auto service = fx.MakeService();
  const SolveResponse response =
      service->SolveSync({fx.catalog().customers, 4, {0, 99}, 0, nullptr});
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidInput);
  EXPECT_NE(response.status.message().find("facility subset index"),
            std::string::npos);
}

TEST(ServeTest, ZeroDepthQueueRejectsWithUnavailable) {
  ServeFixture fx(14);
  ServiceOptions options;
  options.queue_depth = 0;
  auto service = fx.MakeService(options);
  const SolveResponse response =
      service->SolveSync({fx.catalog().customers, 4, {}, 0, nullptr});
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status.message().find("admission queue full"),
            std::string::npos);
  EXPECT_EQ(service->Report().requests_rejected, 1);
}

TEST(ServeTest, SubmitAfterShutdownIsRejectedAndQueueDrains) {
  ServeFixture fx(15);
  auto service = fx.MakeService();
  std::vector<std::shared_ptr<ResponseHandle>> handles;
  for (int r = 0; r < 5; ++r) {
    handles.push_back(
        service->Submit({fx.catalog().customers, fx.catalog().k, {}, 0,
                         nullptr}));
  }
  service->Shutdown();
  // Drain-on-shutdown: every admitted request still completed.
  for (const auto& handle : handles) {
    EXPECT_TRUE(handle->Done());
    EXPECT_TRUE(handle->Wait().status.ok());
  }
  const SolveResponse late =
      service->SolveSync({fx.catalog().customers, 4, {}, 0, nullptr});
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(late.status.message().find("shut down"), std::string::npos);
}

TEST(ServeTest, RepeatRequestHitsCacheWithIdenticalSolution) {
  ServeFixture fx(16);
  auto service = fx.MakeService();
  const SolveRequest request{fx.catalog().customers, fx.catalog().k, {}, 0,
                             nullptr};
  const SolveResponse first = service->SolveSync(request);
  const SolveResponse second = service->SolveSync(request);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(SameSolution(first.solution, second.solution));
  EXPECT_EQ(service->Report().cache_hits, 1);
}

TEST(ServeTest, CatalogUpdateBumpsEpochInvalidatesCacheAndChangesAnswer) {
  ServeFixture fx(17);
  auto service = fx.MakeService();
  const SolveRequest request{fx.catalog().customers, fx.catalog().k, {}, 0,
                             nullptr};
  const SolveResponse before = service->SolveSync(request);
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.epoch, 1u);

  // Halve every capacity (still feasible for these instances' slack).
  std::vector<int> halved = fx.catalog().capacities;
  for (int& c : halved) c = (c + 1) / 2;
  service->UpdateCapacities(halved);
  EXPECT_EQ(service->epoch(), 2u);

  const SolveResponse after = service->SolveSync(request);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_FALSE(after.cache_hit);  // the update invalidated the cache

  McfsInstance updated = fx.catalog();
  updated.capacities = halved;
  const StatusOr<WmaResult> direct = SolveWma(updated);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameSolution(after.solution, direct.value().solution));
}

TEST(ServeTest, PerRequestDeadlineDegradesOnlyThatRequest) {
  // A larger instance so the solve takes long enough for a 1 ms budget
  // to fire mid-run; the assertions below only rely on the anytime
  // contract (feasible, verifier-clean), never on where the cut lands.
  Rng rng(18);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(1200, 320, 60, 30, 14, rng);
  ASSERT_TRUE(IsFeasible(ri.instance));
  SolverService service(ri.instance.graph, ri.instance.facility_nodes,
                        ri.instance.capacities, {});

  SolveRequest tight{ri.instance.customers, ri.instance.k, {}, 1, nullptr};
  SolveRequest free{ri.instance.customers, ri.instance.k, {}, 0, nullptr};
  auto tight_handle = service.Submit(tight);
  auto free_handle = service.Submit(free);

  const SolveResponse& cut = tight_handle->Wait();
  ASSERT_TRUE(cut.status.ok()) << cut.status.ToString();
  EXPECT_TRUE(cut.solution.feasible);
  EXPECT_TRUE(VerifySolution(ri.instance, cut.solution).ok);

  const SolveResponse& full = free_handle->Wait();
  ASSERT_TRUE(full.status.ok());
  EXPECT_EQ(full.solution.termination, Termination::kConverged);
  const StatusOr<WmaResult> direct = SolveWma(ri.instance);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameSolution(full.solution, direct.value().solution));

  if (cut.solution.termination == Termination::kDeadline) {
    EXPECT_GE(service.Report().deadline_terminations, 1);
  }
}

TEST(ServeTest, VerifyOptionRunsIndependentVerifier) {
  ServeFixture fx(19);
  ServiceOptions options;
  options.verify = true;
  auto service = fx.MakeService(options);
  const SolveResponse response = service->SolveSync(
      {fx.catalog().customers, fx.catalog().k, {}, 0, nullptr});
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.verify_ran);
  EXPECT_TRUE(response.verify_ok);
}

TEST(ServeTest, ReportCountsAndJsonShape) {
  ServeFixture fx(20);
  auto service = fx.MakeService();
  const SolveRequest good{fx.catalog().customers, fx.catalog().k, {}, 0,
                          nullptr};
  const SolveRequest bad{fx.catalog().customers, -3, {}, 0, nullptr};
  ASSERT_TRUE(service->SolveSync(good).status.ok());
  ASSERT_TRUE(service->SolveSync(good).status.ok());  // cache hit
  ASSERT_FALSE(service->SolveSync(bad).status.ok());

  const ServiceReport report = service->Report();
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(report.epochs_built, 1);
  EXPECT_EQ(report.requests_admitted, 3);
  EXPECT_EQ(report.requests_completed, 3);
  EXPECT_EQ(report.requests_failed, 1);
  EXPECT_EQ(report.cache_hits, 1);
  EXPECT_EQ(report.latency.count, 3);
  EXPECT_GE(report.latency.p99, report.latency.p50);
  EXPECT_GE(report.latency.max, report.latency.p99);
  EXPECT_GE(report.batches, 1);

  const std::string json = report.Json();
  for (const char* key :
       {"\"service\"", "\"epoch\"", "\"requests\"", "\"admitted\"",
        "\"rejected\"", "\"completed\"", "\"failed\"", "\"cache_hits\"",
        "\"deadline_terminations\"", "\"batches\"", "\"latency_seconds\"",
        "\"p50\"", "\"p99\"", "\"phase_seconds\"", "\"amortization\"",
        "\"warm_preprocess_seconds_per_request\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // Non-finite doubles must never leak into the document.
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST(ServeTest, LatencySummaryQuantiles) {
  EXPECT_EQ(SummarizeLatencies({}).count, 0);
  const LatencySummary one = SummarizeLatencies({2.0});
  EXPECT_EQ(one.count, 1);
  EXPECT_DOUBLE_EQ(one.p50, 2.0);
  EXPECT_DOUBLE_EQ(one.p99, 2.0);
  EXPECT_DOUBLE_EQ(one.max, 2.0);
  std::vector<double> ramp;
  for (int i = 1; i <= 100; ++i) ramp.push_back(static_cast<double>(i));
  const LatencySummary summary = SummarizeLatencies(ramp);
  EXPECT_EQ(summary.count, 100);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
}

}  // namespace
}  // namespace mcfs
