// SolverService functional contract: responses are bit-identical to
// direct SolveWma calls on the same instance (results, statuses, and
// error messages) for every serve_threads value; admission control
// rejects loudly; the epoch cache serves repeats and is invalidated by
// catalog updates; per-request deadlines degrade only their own
// request; the service report and its JSON have the documented shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "mcfs/common/deadline.h"
#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/obs/flight_recorder.h"
#include "mcfs/obs/histogram.h"
#include "mcfs/obs/trace.h"
#include "mcfs/serve/solver_service.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

struct ServeFixture {
  testing_util::RandomInstance ri;

  explicit ServeFixture(uint64_t seed) {
    Rng rng(seed);
    ri = testing_util::MakeRandomInstance(200, 60, 30, 12, 15, rng);
    // The assignment moved the graph into this fixture; re-point the
    // instance at the moved-to object.
    ri.instance.graph = &ri.graph;
  }

  const McfsInstance& catalog() const { return ri.instance; }

  // The instance a request describes, built the way the service builds
  // it — the direct-solve reference for bit-identity checks.
  McfsInstance RequestInstance(const SolveRequest& request) const {
    McfsInstance instance;
    instance.graph = catalog().graph;
    instance.customers = request.customers;
    instance.k = request.k;
    if (request.facility_subset.empty()) {
      instance.facility_nodes = catalog().facility_nodes;
      instance.capacities = catalog().capacities;
    } else {
      for (const int idx : request.facility_subset) {
        instance.facility_nodes.push_back(catalog().facility_nodes[idx]);
        instance.capacities.push_back(catalog().capacities[idx]);
      }
    }
    return instance;
  }

  std::unique_ptr<SolverService> MakeService(
      const ServiceOptions& options = {}) const {
    return std::make_unique<SolverService>(
        catalog().graph, catalog().facility_nodes, catalog().capacities,
        options);
  }
};

bool SameSolution(const McfsSolution& a, const McfsSolution& b) {
  return a.selected == b.selected && a.assignment == b.assignment &&
         a.distances == b.distances && a.objective == b.objective &&
         a.feasible == b.feasible && a.termination == b.termination;
}

std::vector<SolveRequest> MixedRequests(const ServeFixture& fx) {
  const std::vector<NodeId>& all = fx.catalog().customers;
  std::vector<SolveRequest> requests;
  // Full catalog, full customer set.
  requests.push_back({all, fx.catalog().k, {}, 0, nullptr});
  // Fewer customers, tighter budget.
  requests.push_back(
      {{all.begin(), all.begin() + 20}, 6, {}, 0, nullptr});
  // A catalog subset (every other candidate), enough budget.
  std::vector<int> subset;
  for (int j = 0; j < fx.catalog().l(); j += 2) subset.push_back(j);
  requests.push_back({all, fx.catalog().k, subset, 0, nullptr});
  // Empty customer list (the trivial shortcut).
  requests.push_back({{}, 3, {}, 0, nullptr});
  return requests;
}

TEST(ServeTest, ResponsesBitIdenticalToDirectSolveAcrossServeThreads) {
  ServeFixture fx(11);
  const std::vector<SolveRequest> requests = MixedRequests(fx);

  for (const int serve_threads : {1, 2, 8}) {
    ServiceOptions options;
    options.serve_threads = serve_threads;
    options.cache_capacity = 0;  // every request must really solve
    auto service = fx.MakeService(options);

    std::vector<std::shared_ptr<ResponseHandle>> handles;
    for (const SolveRequest& request : requests) {
      handles.push_back(service->Submit(request));
    }
    for (size_t r = 0; r < requests.size(); ++r) {
      const SolveResponse& response = handles[r]->Wait();
      const StatusOr<WmaResult> direct =
          SolveWma(fx.RequestInstance(requests[r]));
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ASSERT_TRUE(direct.ok());
      EXPECT_TRUE(SameSolution(response.solution, direct.value().solution))
          << "request " << r << " at serve_threads " << serve_threads;
      EXPECT_EQ(response.stats.iterations, direct.value().stats.iterations);
      EXPECT_EQ(response.stats.dijkstra_runs,
                direct.value().stats.dijkstra_runs);
      EXPECT_EQ(response.epoch, 1u);
    }
  }
}

TEST(ServeTest, ErrorStatusesMatchDirectSolveByteForByte) {
  ServeFixture fx(12);
  auto service = fx.MakeService();

  std::vector<SolveRequest> bad;
  // Customer node out of range.
  bad.push_back({{5, 10'000}, 4, {}, 0, nullptr});
  // Negative budget.
  bad.push_back({{fx.catalog().customers[0]}, -1, {}, 0, nullptr});
  // Duplicate subset index => duplicate facility node.
  bad.push_back({fx.catalog().customers, fx.catalog().k, {0, 1, 0}, 0,
                 nullptr});
  // Infeasible: customers but a zero budget.
  bad.push_back({fx.catalog().customers, 0, {}, 0, nullptr});
  // Infeasible: one facility cannot hold 60 customers.
  bad.push_back({fx.catalog().customers, 1, {0}, 0, nullptr});

  for (size_t r = 0; r < bad.size(); ++r) {
    const SolveResponse response = service->SolveSync(bad[r]);
    const StatusOr<WmaResult> direct = SolveWma(fx.RequestInstance(bad[r]));
    ASSERT_FALSE(direct.ok()) << "request " << r;
    EXPECT_FALSE(response.status.ok()) << "request " << r;
    EXPECT_EQ(response.status.code(), direct.status().code()) << r;
    EXPECT_EQ(response.status.message(), direct.status().message()) << r;
  }
}

TEST(ServeTest, SubsetIndexOutOfRangeIsServiceLevelInvalidInput) {
  ServeFixture fx(13);
  auto service = fx.MakeService();
  const SolveResponse response =
      service->SolveSync({fx.catalog().customers, 4, {0, 99}, 0, nullptr});
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidInput);
  EXPECT_NE(response.status.message().find("facility subset index"),
            std::string::npos);
}

TEST(ServeTest, ZeroDepthQueueRejectsWithUnavailable) {
  ServeFixture fx(14);
  ServiceOptions options;
  options.queue_depth = 0;
  auto service = fx.MakeService(options);
  const SolveResponse response =
      service->SolveSync({fx.catalog().customers, 4, {}, 0, nullptr});
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status.message().find("admission queue full"),
            std::string::npos);
  EXPECT_EQ(service->Report().requests_rejected, 1);
}

TEST(ServeTest, SubmitAfterShutdownIsRejectedAndQueueDrains) {
  ServeFixture fx(15);
  auto service = fx.MakeService();
  std::vector<std::shared_ptr<ResponseHandle>> handles;
  for (int r = 0; r < 5; ++r) {
    handles.push_back(
        service->Submit({fx.catalog().customers, fx.catalog().k, {}, 0,
                         nullptr}));
  }
  service->Shutdown();
  // Drain-on-shutdown: every admitted request still completed.
  for (const auto& handle : handles) {
    EXPECT_TRUE(handle->Done());
    EXPECT_TRUE(handle->Wait().status.ok());
  }
  const SolveResponse late =
      service->SolveSync({fx.catalog().customers, 4, {}, 0, nullptr});
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(late.status.message().find("shut down"), std::string::npos);
}

TEST(ServeTest, RepeatRequestHitsCacheWithIdenticalSolution) {
  ServeFixture fx(16);
  auto service = fx.MakeService();
  const SolveRequest request{fx.catalog().customers, fx.catalog().k, {}, 0,
                             nullptr};
  const SolveResponse first = service->SolveSync(request);
  const SolveResponse second = service->SolveSync(request);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(SameSolution(first.solution, second.solution));
  EXPECT_EQ(service->Report().cache_hits, 1);
}

TEST(ServeTest, CatalogUpdateBumpsEpochInvalidatesCacheAndChangesAnswer) {
  ServeFixture fx(17);
  auto service = fx.MakeService();
  const SolveRequest request{fx.catalog().customers, fx.catalog().k, {}, 0,
                             nullptr};
  const SolveResponse before = service->SolveSync(request);
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.epoch, 1u);

  // Halve every capacity (still feasible for these instances' slack).
  std::vector<int> halved = fx.catalog().capacities;
  for (int& c : halved) c = (c + 1) / 2;
  service->UpdateCapacities(halved);
  EXPECT_EQ(service->epoch(), 2u);

  const SolveResponse after = service->SolveSync(request);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_FALSE(after.cache_hit);  // the update invalidated the cache

  McfsInstance updated = fx.catalog();
  updated.capacities = halved;
  const StatusOr<WmaResult> direct = SolveWma(updated);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameSolution(after.solution, direct.value().solution));
}

TEST(ServeTest, PerRequestDeadlineDegradesOnlyThatRequest) {
  // A larger instance so the solve takes long enough for a 1 ms budget
  // to fire mid-run; the assertions below only rely on the anytime
  // contract (feasible, verifier-clean), never on where the cut lands.
  Rng rng(18);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(1200, 320, 60, 30, 14, rng);
  ASSERT_TRUE(IsFeasible(ri.instance));
  SolverService service(ri.instance.graph, ri.instance.facility_nodes,
                        ri.instance.capacities, {});

  SolveRequest tight{ri.instance.customers, ri.instance.k, {}, 1, nullptr};
  SolveRequest free{ri.instance.customers, ri.instance.k, {}, 0, nullptr};
  auto tight_handle = service.Submit(tight);
  auto free_handle = service.Submit(free);

  const SolveResponse& cut = tight_handle->Wait();
  ASSERT_TRUE(cut.status.ok()) << cut.status.ToString();
  EXPECT_TRUE(cut.solution.feasible);
  EXPECT_TRUE(VerifySolution(ri.instance, cut.solution).ok);

  const SolveResponse& full = free_handle->Wait();
  ASSERT_TRUE(full.status.ok());
  EXPECT_EQ(full.solution.termination, Termination::kConverged);
  const StatusOr<WmaResult> direct = SolveWma(ri.instance);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameSolution(full.solution, direct.value().solution));

  if (cut.solution.termination == Termination::kDeadline) {
    EXPECT_GE(service.Report().deadline_terminations, 1);
  }
}

TEST(ServeTest, VerifyOptionRunsIndependentVerifier) {
  ServeFixture fx(19);
  ServiceOptions options;
  options.verify = true;
  auto service = fx.MakeService(options);
  const SolveResponse response = service->SolveSync(
      {fx.catalog().customers, fx.catalog().k, {}, 0, nullptr});
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.verify_ran);
  EXPECT_TRUE(response.verify_ok);
}

TEST(ServeTest, ReportCountsAndJsonShape) {
  ServeFixture fx(20);
  auto service = fx.MakeService();
  const SolveRequest good{fx.catalog().customers, fx.catalog().k, {}, 0,
                          nullptr};
  const SolveRequest bad{fx.catalog().customers, -3, {}, 0, nullptr};
  ASSERT_TRUE(service->SolveSync(good).status.ok());
  ASSERT_TRUE(service->SolveSync(good).status.ok());  // cache hit
  ASSERT_FALSE(service->SolveSync(bad).status.ok());

  const ServiceReport report = service->Report();
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(report.epochs_built, 1);
  EXPECT_EQ(report.requests_admitted, 3);
  EXPECT_EQ(report.requests_completed, 3);
  EXPECT_EQ(report.requests_failed, 1);
  EXPECT_EQ(report.cache_hits, 1);
  EXPECT_EQ(report.latency.count, 3);
  EXPECT_GE(report.latency.p99, report.latency.p50);
  EXPECT_GE(report.latency.max, report.latency.p99);
  EXPECT_GE(report.batches, 1);

  const std::string json = report.Json();
  for (const char* key :
       {"\"service\"", "\"epoch\"", "\"requests\"", "\"admitted\"",
        "\"rejected\"", "\"completed\"", "\"failed\"", "\"cache_hits\"",
        "\"deadline_terminations\"", "\"batches\"", "\"latency_seconds\"",
        "\"p50\"", "\"p99\"", "\"phase_seconds\"", "\"amortization\"",
        "\"warm_preprocess_seconds_per_request\"",
        "\"matcher_backend\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // Non-finite doubles must never leak into the document.
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST(ServeTest, MatcherBackendLabeledCachedAndEquivalent) {
  ServeFixture fx(21);
  const SolveRequest request{fx.catalog().customers, fx.catalog().k, {}, 0,
                             nullptr};

  ServiceOptions cs_options;
  cs_options.wma.matcher = MatcherBackendKind::kCostScaling;
  auto cs_service = fx.MakeService(cs_options);
  const SolveResponse first = cs_service->SolveSync(request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  const SolveResponse second = cs_service->SolveSync(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(SameSolution(first.solution, second.solution));

  // Same request against an SSPA-configured service: identical
  // selection, objective within the cross-backend tolerance.
  auto sspa_service = fx.MakeService();
  const SolveResponse sspa = sspa_service->SolveSync(request);
  ASSERT_TRUE(sspa.status.ok());
  EXPECT_EQ(first.solution.selected, sspa.solution.selected);
  EXPECT_NEAR(first.solution.objective, sspa.solution.objective,
              1e-9 * (1.0 + sspa.solution.objective));

  // The report labels the engine the service is configured with.
  EXPECT_NE(cs_service->Report().Json().find(
                "\"matcher_backend\": \"cost_scaling\""),
            std::string::npos);
  EXPECT_NE(sspa_service->Report().Json().find(
                "\"matcher_backend\": \"sspa\""),
            std::string::npos);
}

// --- Observability v2 (DESIGN.md §4.11) ---

TEST(ServeTest, ResponseTraceIdAssignedAtAdmissionAndEchoed) {
  ServeFixture fx(30);
  auto service = fx.MakeService();
  SolveRequest request;
  request.customers = fx.catalog().customers;
  request.k = fx.catalog().k;
  const SolveResponse assigned = service->SolveSync(request);
  ASSERT_TRUE(assigned.status.ok());
  EXPECT_NE(assigned.trace_id, 0u);
  request.trace_id = 777;
  const SolveResponse echoed = service->SolveSync(request);
  EXPECT_EQ(echoed.trace_id, 777u);
  // Even rejected requests get a joinable id.
  ServiceOptions zero;
  zero.queue_depth = 0;
  auto full = fx.MakeService(zero);
  SolveRequest shed;
  shed.customers = fx.catalog().customers;
  shed.k = 4;
  EXPECT_NE(full->SolveSync(shed).trace_id, 0u);
}

TEST(ServeTest, EverySpanCarriesItsRequestsTraceIdAcrossServeThreads) {
  ServeFixture fx(31);
  const std::vector<SolveRequest> mix = MixedRequests(fx);

  // Tracing-off reference (also proves tracing changes no bytes).
  std::vector<McfsSolution> reference;
  {
    auto service = fx.MakeService();
    for (const SolveRequest& request : mix) {
      reference.push_back(service->SolveSync(request).solution);
    }
  }

  for (const int serve_threads : {1, 2, 8}) {
    obs::ClearTrace();
    obs::EnableTracing(true);
    ServiceOptions options;
    options.serve_threads = serve_threads;
    options.cache_capacity = 0;  // every request must really solve
    auto service = fx.MakeService(options);

    // Submit the whole mix at once so the dispatcher batches them.
    std::vector<std::shared_ptr<ResponseHandle>> handles;
    for (const SolveRequest& request : mix) {
      handles.push_back(service->Submit(request));
    }
    std::set<uint64_t> request_ids;
    for (size_t r = 0; r < mix.size(); ++r) {
      const SolveResponse& response = handles[r]->Wait();
      ASSERT_TRUE(response.status.ok());
      EXPECT_NE(response.trace_id, 0u);
      EXPECT_TRUE(request_ids.insert(response.trace_id).second)
          << "duplicate trace id";
      EXPECT_TRUE(SameSolution(response.solution, reference[r]))
          << "tracing changed solution bytes at serve_threads "
          << serve_threads;
    }
    service->Shutdown();
    obs::EnableTracing(false);

    // Attribution: every request-scoped span (serve/request and the
    // whole solver stack under it, including ParallelFor workers)
    // carries exactly its request's id — across batching and worker
    // threads. Service-scoped spans (batch, warm build) carry 0.
    std::set<uint64_t> seen_ids;
    for (const obs::TraceEvent& event :
         obs::CollectTraceEvents()) {
      if (event.trace_id == 0) {
        EXPECT_TRUE(std::string(event.name) != "serve/request");
        continue;
      }
      EXPECT_EQ(request_ids.count(event.trace_id), 1u)
          << event.name << " carries unknown trace id " << event.trace_id;
      seen_ids.insert(event.trace_id);
    }
    // Every solving request produced attributed spans (the empty-
    // customer shortcut still spans serve/request).
    EXPECT_EQ(seen_ids, request_ids)
        << "some request produced no attributed span at serve_threads "
        << serve_threads;
    obs::ClearTrace();
  }
}

TEST(ServeTest, InjectedVerifyRejectionDumpsPostmortemAndFallsBackCold) {
  ServeFixture fx(32);
  ServiceOptions options;
  options.flight_recorder = true;
  options.inject_verify_failures = 1;
  auto service = fx.MakeService(options);

  UpdateRequest arrivals;
  for (const NodeId customer : fx.catalog().customers) {
    arrivals.ops.push_back({UpdateKind::kCustomerArrive, customer, 0});
  }
  ASSERT_TRUE(service->ApplyUpdate(arrivals).ok());

  const int k = fx.catalog().k;
  // First resolve plants the seed; the second warm-starts and hits the
  // injected rejection — postmortem + cold fallback, correct response.
  const SolveResponse cold_ref = service->ResolveTracked(k);
  ASSERT_TRUE(cold_ref.status.ok());
  EXPECT_TRUE(service->LastPostmortem().empty());
  EXPECT_FALSE(cold_ref.warm_attempted);
  EXPECT_FALSE(cold_ref.warm_served);
  const SolveResponse rejected = service->ResolveTracked(k);
  ASSERT_TRUE(rejected.status.ok());
  EXPECT_TRUE(rejected.verify_ran);
  EXPECT_TRUE(rejected.verify_ok);  // the cold fallback's verdict
  EXPECT_EQ(rejected.solution.objective, cold_ref.solution.objective);
  // The warm attempt fell back cold: attempted, but not served warm —
  // the distinction bench_serve --churn classifies its epochs by.
  EXPECT_TRUE(rejected.warm_attempted);
  EXPECT_FALSE(rejected.warm_served);

  // With the injection consumed, the next resolve serves warm for real.
  const SolveResponse warm = service->ResolveTracked(k);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.warm_attempted);
  EXPECT_TRUE(warm.warm_served);
  EXPECT_EQ(warm.solution.objective, cold_ref.solution.objective);

  const ServiceReport report = service->Report();
  EXPECT_EQ(report.resolve_verify_rejections, 1);
  EXPECT_EQ(report.postmortems, 1);

  const std::string postmortem = service->LastPostmortem();
  ASSERT_FALSE(postmortem.empty());
  EXPECT_NE(postmortem.find("\"reason\": \"verify_rejection\""),
            std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("\"trace_id\": " +
                            std::to_string(rejected.trace_id)),
            std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("\"epoch\": " +
                            std::to_string(rejected.epoch)),
            std::string::npos)
      << postmortem;
  // The dump holds the recent phase transitions leading to the failure.
  EXPECT_NE(postmortem.find("wma/run_begin"), std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("wma/phase/"), std::string::npos) << postmortem;
  obs::EnableFlightRecorder(false);
  obs::ClearFlightEvents();
}

TEST(ServeTest, DeadlineExceededWarmSolveDumpsPostmortem) {
  ServeFixture fx(33);
  ServiceOptions options;
  options.flight_recorder = true;
  // Poll #1 (iteration-loop top) passes, poll #2 (the augmentation
  // boundary inside matching) expires — deterministically landing the
  // cut where "wma/deadline_hit" is recorded. Each served solve gets
  // its own copy of this deadline, with its own poll budget.
  options.wma.deadline = Deadline::AfterPolls(2);
  auto service = fx.MakeService(options);

  UpdateRequest arrivals;
  for (const NodeId customer : fx.catalog().customers) {
    arrivals.ops.push_back({UpdateKind::kCustomerArrive, customer, 0});
  }
  ASSERT_TRUE(service->ApplyUpdate(arrivals).ok());

  const SolveResponse cut = service->ResolveTracked(fx.catalog().k);
  ASSERT_TRUE(cut.status.ok()) << cut.status.ToString();
  EXPECT_EQ(cut.solution.termination, Termination::kDeadline);
  const std::string postmortem = service->LastPostmortem();
  ASSERT_FALSE(postmortem.empty());
  EXPECT_NE(postmortem.find("\"reason\": \"warm_deadline\""),
            std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("\"trace_id\": " +
                            std::to_string(cut.trace_id)),
            std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("wma/deadline_hit"), std::string::npos)
      << postmortem;
  obs::EnableFlightRecorder(false);
  obs::ClearFlightEvents();
}

TEST(ServeTest, DebugSnapshotShapeAndJson) {
  ServeFixture fx(34);
  ServiceOptions options;
  options.queue_depth = 17;
  options.cache_capacity = 9;
  SloPolicy slo;
  slo.tier = "default";
  slo.target_latency_ms = 1e9;  // never violated
  options.slos.push_back(slo);
  auto service = fx.MakeService(options);
  SolveRequest request;
  request.customers = fx.catalog().customers;
  request.k = fx.catalog().k;
  ASSERT_TRUE(service->SolveSync(request).status.ok());

  const ServiceSnapshot snapshot = service->DebugSnapshot();
  EXPECT_EQ(snapshot.epoch, 1u);
  EXPECT_GT(snapshot.t_us, 0);
  EXPECT_EQ(snapshot.queue_depth, 0);  // drained
  EXPECT_EQ(snapshot.queue_capacity, 17);
  EXPECT_EQ(snapshot.cache_size, 1);
  EXPECT_EQ(snapshot.cache_capacity, 9);
  EXPECT_EQ(snapshot.tracked_customers, 0);
  EXPECT_TRUE(snapshot.in_flight.empty());
  EXPECT_EQ(snapshot.latency.count, 1);
  ASSERT_EQ(snapshot.slos.size(), 1u);
  EXPECT_EQ(snapshot.slos[0].requests, 1);
  EXPECT_EQ(snapshot.slos[0].violations, 0);

  const std::string json = snapshot.Json();
  for (const char* key :
       {"\"epoch\"", "\"t_us\"", "\"queue\"", "\"depth\"", "\"capacity\"",
        "\"cache\"", "\"size\"", "\"tracked_customers\"", "\"in_flight\"",
        "\"latency_seconds\"", "\"p50\"", "\"p99\"", "\"p99_exemplar\"",
        "\"slo\"", "\"burn\"", "\"postmortems\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;

  // Tracked population shows up without taking the resolve lock.
  UpdateRequest arrivals;
  arrivals.ops.push_back(
      {UpdateKind::kCustomerArrive, fx.catalog().customers[0], 0});
  ASSERT_TRUE(service->ApplyUpdate(arrivals).ok());
  EXPECT_EQ(service->DebugSnapshot().tracked_customers, 1);
}

TEST(ServeTest, HistogramQuantilesMatchBruteForceWithinOneBucket) {
  ServeFixture fx(35);
  ServiceOptions options;
  options.cache_capacity = 0;  // every request really solves
  auto service = fx.MakeService(options);
  SolveRequest request;
  request.customers = fx.catalog().customers;
  request.k = fx.catalog().k;
  for (int r = 0; r < 24; ++r) {
    ASSERT_TRUE(service->SolveSync(request).status.ok());
  }
  const LatencySummary hist = service->Report().latency;
  std::vector<double> samples = service->LatencySamplesForTesting();
  const LatencySummary exact = SummarizeLatencies(samples);
  ASSERT_EQ(hist.count, exact.count);
  EXPECT_DOUBLE_EQ(hist.max, exact.max);  // max is tracked exactly
  EXPECT_NEAR(hist.mean, exact.mean, 1e-12);
  // Exact nearest-rank quantile with the histogram's own rank
  // convention (rank = ceil(q * n), at least 1).
  std::sort(samples.begin(), samples.end());
  const auto exact_quantile = [&samples](double q) {
    const int64_t n = static_cast<int64_t>(samples.size());
    int64_t rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1) rank = 1;
    return samples[rank - 1];
  };
  struct QuantilePair {
    double histogram, brute_force;
  };
  for (const QuantilePair q :
       {QuantilePair{hist.p50, exact_quantile(0.50)},
        QuantilePair{hist.p95, exact_quantile(0.95)},
        QuantilePair{hist.p99, exact_quantile(0.99)}}) {
    // Bucket-quantile contract: the estimate is the upper bound of the
    // bucket holding the exact rank sample (clamped to the exact max),
    // so exact <= estimate <= exact * bucket growth.
    EXPECT_GE(q.histogram * (1.0 + 1e-12), q.brute_force);
    EXPECT_LE(q.histogram, q.brute_force * obs::kHistogramGrowth *
                               (1.0 + 1e-12));
  }
  EXPECT_NE(hist.p99_exemplar, 0u);  // tail bucket is attributed
}

TEST(ServeTest, SloBurnAccounting) {
  ServeFixture fx(36);
  ServiceOptions options;
  SloPolicy strict;  // impossible target: every request violates
  strict.tier = "default";
  strict.target_latency_ms = 1e-9;
  strict.error_budget = 0.5;
  SloPolicy lax;  // unreachable target via an explicit tier
  lax.tier = "batch";
  lax.target_latency_ms = 1e9;
  lax.error_budget = 0.01;
  options.slos = {strict, lax};
  auto service = fx.MakeService(options);

  SolveRequest request;
  request.customers = fx.catalog().customers;
  request.k = fx.catalog().k;
  const SolveResponse first = service->SolveSync(request);  // "default"
  ASSERT_TRUE(first.status.ok());
  request.tier = "batch";
  ASSERT_TRUE(service->SolveSync(request).status.ok());
  request.tier = "unconfigured";  // counted nowhere, no implicit tiers
  ASSERT_TRUE(service->SolveSync(request).status.ok());

  const ServiceReport report = service->Report();
  ASSERT_EQ(report.slos.size(), 2u);
  const SloReport& burned = report.slos[0];
  EXPECT_EQ(burned.tier, "default");
  EXPECT_EQ(burned.requests, 1);
  EXPECT_EQ(burned.violations, 1);
  // burn = violations / (budget * requests) = 1 / 0.5.
  EXPECT_DOUBLE_EQ(burned.burn, 2.0);
  EXPECT_EQ(burned.last_violation_trace_id, first.trace_id);
  const SloReport& calm = report.slos[1];
  EXPECT_EQ(calm.requests, 1);
  EXPECT_EQ(calm.violations, 0);
  EXPECT_DOUBLE_EQ(calm.burn, 0.0);
  const std::string json = report.Json();
  EXPECT_NE(json.find("\"slo\": [{\"tier\": \"default\""),
            std::string::npos)
      << json;
}

TEST(ServeTest, EmptyReportLatencyIsNullNotGarbage) {
  ServeFixture fx(37);
  auto service = fx.MakeService();
  const ServiceReport report = service->Report();
  EXPECT_EQ(report.latency.count, 0);
  const std::string json = report.Json();
  EXPECT_NE(json.find("\"latency_seconds\": {\"count\": 0, \"mean\": null"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

// --- Fault-tolerant serving (DESIGN.md §4.13) ---

TEST(ServeTest, WaitForBoundsTheWaitAndThenAgreesWithWait) {
  // A solve big enough that the instantaneous poll right after Submit
  // cannot observe a completed handle.
  Rng rng(38);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(1200, 320, 60, 30, 14, rng);
  SolverService service(ri.instance.graph, ri.instance.facility_nodes,
                        ri.instance.capacities, {});
  auto handle =
      service.Submit({ri.instance.customers, ri.instance.k, {}, 0, nullptr});
  EXPECT_FALSE(handle->WaitFor(0));  // instantaneous poll, not started yet
  ASSERT_TRUE(handle->WaitFor(120'000)) << "request hung";
  EXPECT_TRUE(handle->Done());
  EXPECT_TRUE(handle->WaitFor(0));  // completed: the poll now agrees
  EXPECT_TRUE(handle->Wait().status.ok());
}

TEST(ServeTest, DeadlineCutDegradedRequestServesVerifiedFallback) {
  ServeFixture fx(39);
  ServiceOptions options;
  options.cache_capacity = 8;
  // Every served solve deadline-cuts deterministically (same planting
  // as the postmortem test above).
  options.wma.deadline = Deadline::AfterPolls(2);
  auto service = fx.MakeService(options);

  SolveRequest request;
  request.customers = fx.catalog().customers;
  request.k = fx.catalog().k;

  // Without the opt-in, the pre-existing behavior: an OK anytime answer
  // on the full tier, unverified.
  const SolveResponse opted_out = service->SolveSync(request);
  ASSERT_TRUE(opted_out.status.ok()) << opted_out.status.ToString();
  EXPECT_EQ(opted_out.solution.termination, Termination::kDeadline);
  EXPECT_EQ(opted_out.tier, "full");
  EXPECT_EQ(opted_out.quality_bound, 0.0);

  request.allow_degraded = true;
  const SolveResponse degraded = service->SolveSync(request);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_EQ(degraded.tier, "degraded");
  EXPECT_TRUE(degraded.verify_ran);
  EXPECT_TRUE(degraded.verify_ok);
  EXPECT_TRUE(degraded.solution.feasible);
  EXPECT_GE(degraded.quality_bound, 1.0);
  EXPECT_TRUE(VerifySolution(fx.RequestInstance(request), degraded.solution).ok)
      << "degraded answer must be independently feasible";
  // The ladder leaves a postmortem trail naming the degradation cause.
  EXPECT_NE(service->LastPostmortem().find("degraded_deadline"),
            std::string::npos)
      << service->LastPostmortem();

  // Degraded answers are never cached: the repeat is a fresh solve.
  const SolveResponse repeat = service->SolveSync(request);
  ASSERT_TRUE(repeat.status.ok());
  EXPECT_FALSE(repeat.cache_hit);
  EXPECT_EQ(repeat.tier, "degraded");

  const ServiceReport report = service->Report();
  EXPECT_GE(report.degraded_responses, 2);
  EXPECT_EQ(report.cache_hits, 0);
  const std::string json = report.Json();
  for (const char* key :
       {"\"fault_tolerance\"", "\"degraded_responses\"",
        "\"degraded_fallbacks\"", "\"requests_shed\"", "\"checkpoints\"",
        "\"faults_injected\"", "\"shed\"", "\"degraded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

TEST(ServeTest, QueueFullRejectionCarriesRetryAfterHint) {
  ServeFixture fx(40);
  ServiceOptions options;
  options.queue_depth = 0;
  options.expected_solve_ms = 25.0;
  auto service = fx.MakeService(options);
  const SolveResponse rejected =
      service->SolveSync({fx.catalog().customers, 4, {}, 0, nullptr});
  ASSERT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status.message().find("admission queue full"),
            std::string::npos);
  // Overloaded-but-alive rejections always carry a usable backoff hint.
  EXPECT_GE(rejected.retry_after_ms, 1);

  // Shutdown rejections do not: a retry against a stopped service is
  // futile, and the 0 tells clients to give up rather than spin.
  service->Shutdown();
  const SolveResponse dead =
      service->SolveSync({fx.catalog().customers, 4, {}, 0, nullptr});
  ASSERT_EQ(dead.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(dead.retry_after_ms, 0);
}

TEST(ServeTest, QueueDelayShedRejectsDoomedRequestsAtAdmission) {
  ServeFixture fx(41);
  // An absurd seeded service-time estimate: any queued request means
  // the estimated wait dwarfs a 1 ms deadline, so admission must shed
  // rather than let the request time out in line.
  ServiceOptions options;
  options.serve_threads = 1;
  options.max_batch = 1;
  options.cache_capacity = 0;
  options.queue_depth = 2048;  // only the shed may reject
  options.expected_solve_ms = 1e7;
  auto service = fx.MakeService(options);

  SolveRequest patient;  // no deadline: never shed, keeps the queue busy
  patient.customers = fx.catalog().customers;
  patient.k = fx.catalog().k;
  SolveRequest hurried = patient;
  hurried.deadline_ms = 1;

  // Race note: the dispatcher may drain the queue between our Submits,
  // in which case the hurried request is admitted (an empty queue sheds
  // nothing). Keep feeding until one lands behind a queued request.
  bool shed_seen = false;
  std::vector<std::shared_ptr<ResponseHandle>> handles;
  for (int attempt = 0; attempt < 200 && !shed_seen; ++attempt) {
    for (int b = 0; b < 4; ++b) handles.push_back(service->Submit(patient));
    auto handle = service->Submit(hurried);
    handles.push_back(handle);
    if (handle->Done() && !handle->Wait().status.ok()) {
      const SolveResponse& shed = handle->Wait();
      ASSERT_EQ(shed.status.code(), StatusCode::kUnavailable);
      EXPECT_NE(shed.status.message().find("exceeds the request deadline"),
                std::string::npos)
          << shed.status.message();
      EXPECT_GE(shed.retry_after_ms, 1);
      shed_seen = true;
    }
  }
  EXPECT_TRUE(shed_seen);
  for (const auto& handle : handles) {
    ASSERT_TRUE(handle->WaitFor(120'000));
  }
  const ServiceReport report = service->Report();
  EXPECT_GE(report.requests_shed, 1);
  EXPECT_EQ(report.requests_rejected, 0);  // sheds are their own class
}

TEST(ServeTest, LatencySummaryQuantiles) {
  EXPECT_EQ(SummarizeLatencies({}).count, 0);
  const LatencySummary one = SummarizeLatencies({2.0});
  EXPECT_EQ(one.count, 1);
  EXPECT_DOUBLE_EQ(one.p50, 2.0);
  EXPECT_DOUBLE_EQ(one.p99, 2.0);
  EXPECT_DOUBLE_EQ(one.max, 2.0);
  std::vector<double> ramp;
  for (int i = 1; i <= 100; ++i) ramp.push_back(static_cast<double>(i));
  const LatencySummary summary = SummarizeLatencies(ramp);
  EXPECT_EQ(summary.count, 100);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
}

}  // namespace
}  // namespace mcfs
