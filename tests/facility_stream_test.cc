#include "mcfs/graph/facility_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::RandomGraph;

class FacilityStreamTest : public ::testing::TestWithParam<int> {};

TEST_P(FacilityStreamTest, StreamsFacilitiesInSortedDistanceOrder) {
  Rng rng(800 + GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(0, 60));
  const Graph graph = RandomGraph(n, n, rng);
  const int l = 1 + static_cast<int>(rng.UniformInt(0, n / 2));
  std::vector<int> facility_index_of_node(n, -1);
  const std::vector<int> facility_nodes =
      rng.SampleWithoutReplacement(n, l);
  for (int j = 0; j < l; ++j) {
    facility_index_of_node[facility_nodes[j]] = j;
  }
  const NodeId customer = static_cast<NodeId>(rng.UniformInt(0, n - 1));
  const std::vector<double> dist = ShortestPathsFrom(graph, customer);

  // Oracle: facilities sorted by true distance.
  std::vector<double> expected;
  for (const int node : facility_nodes) {
    if (dist[node] != kInfDistance) expected.push_back(dist[node]);
  }
  std::sort(expected.begin(), expected.end());

  NearestFacilityStream stream(&graph, customer, &facility_index_of_node);
  std::set<int> seen;
  for (const double want : expected) {
    EXPECT_NEAR(stream.PeekDistance(), want, 1e-9);
    const auto got = stream.Pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_NEAR(got->distance, want, 1e-9);
    EXPECT_NEAR(dist[facility_nodes[got->facility]], got->distance, 1e-9);
    EXPECT_TRUE(seen.insert(got->facility).second) << "duplicate facility";
  }
  EXPECT_TRUE(stream.Exhausted());
  EXPECT_FALSE(stream.Pop().has_value());
  EXPECT_EQ(stream.num_popped(), static_cast<int>(expected.size()));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, FacilityStreamTest,
                         ::testing::Range(0, 25));

TEST(FacilityStreamTest, PeekDoesNotConsume) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  const Graph graph = builder.Build();
  std::vector<int> facility_index_of_node = {-1, 0, 1};
  NearestFacilityStream stream(&graph, 0, &facility_index_of_node);
  EXPECT_DOUBLE_EQ(stream.PeekDistance(), 1.0);
  EXPECT_DOUBLE_EQ(stream.PeekDistance(), 1.0);
  EXPECT_EQ(stream.Pop()->facility, 0);
  EXPECT_DOUBLE_EQ(stream.PeekDistance(), 2.0);
}

TEST(FacilityStreamTest, CustomerOnFacilityNodeYieldsZeroDistance) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 5.0);
  const Graph graph = builder.Build();
  std::vector<int> facility_index_of_node = {0, 1};
  NearestFacilityStream stream(&graph, 0, &facility_index_of_node);
  const auto first = stream.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->facility, 0);
  EXPECT_DOUBLE_EQ(first->distance, 0.0);
}

}  // namespace
}  // namespace mcfs
