#include "mcfs/bench/runner.h"

#include <gtest/gtest.h>

#include <limits>

#include "mcfs/bench/run_report.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

McfsInstance SmallGeoInstance(const Graph& graph, Rng& rng) {
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = SampleDistinctNodes(graph, 20, rng);
  instance.facility_nodes = SampleDistinctNodes(graph, 40, rng);
  instance.capacities = UniformCapacities(40, 5);
  instance.k = 6;
  return instance;
}

TEST(RunnerTest, SuiteProducesOneOutcomePerEnabledAlgorithm) {
  SyntheticNetworkOptions options;
  options.num_nodes = 300;
  options.alpha = 2.0;
  options.seed = 5;
  const Graph graph = GenerateSyntheticNetwork(options);
  Rng rng(6);
  const McfsInstance instance = SmallGeoInstance(graph, rng);

  AlgorithmSuite suite;
  suite.with_brnn = true;
  suite.with_uf_wma = true;
  suite.with_wma_ls = true;
  suite.with_greedy_kmedian = true;
  suite.exact_options.time_limit_seconds = 10.0;
  const std::vector<AlgoOutcome> outcomes = RunSuite(instance, suite);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_EQ(outcomes[0].algorithm, "BRNN");
  EXPECT_EQ(outcomes[1].algorithm, "Hilbert");
  EXPECT_EQ(outcomes[2].algorithm, "Greedy k-med");
  EXPECT_EQ(outcomes[3].algorithm, "WMA Naive");
  EXPECT_EQ(outcomes[4].algorithm, "WMA");
  EXPECT_EQ(outcomes[5].algorithm, "UF WMA");
  EXPECT_EQ(outcomes[6].algorithm, "WMA+LS");
  EXPECT_EQ(outcomes[7].algorithm, "Exact (B&B)");
  for (const AlgoOutcome& outcome : outcomes) {
    EXPECT_GE(outcome.seconds, 0.0);
    if (!outcome.failed) EXPECT_TRUE(outcome.feasible);
  }
  // The exact reference (when it succeeds) lower-bounds everything.
  const AlgoOutcome& exact = outcomes.back();
  if (!exact.failed) {
    for (const AlgoOutcome& outcome : outcomes) {
      if (!outcome.failed) {
        EXPECT_GE(outcome.objective, exact.objective - 1e-6);
      }
    }
  }
  // WMA+LS never loses to WMA.
  EXPECT_LE(outcomes[6].objective, outcomes[4].objective + 1e-9);

  // The suite collects the phase/iteration breakdown and per-cell
  // metrics snapshots by default.
  EXPECT_FALSE(outcomes[1].has_wma_stats);  // Hilbert: no WMA phases
  EXPECT_TRUE(outcomes[4].has_wma_stats);
  EXPECT_GT(outcomes[4].wma_stats.iterations, 0);
  EXPECT_FALSE(outcomes[4].wma_stats.per_iteration.empty());
  EXPECT_GT(outcomes[4].wma_stats.edges_materialized, 0);
  EXPECT_FALSE(outcomes[4].metrics.counters.empty());
  EXPECT_GT(outcomes[4].metrics.counters.at("matcher/edges_materialized"),
            0);
}

TEST(RunnerTest, EmptySuiteAndDegenerateThreadCountsYieldNoOutcomes) {
  SyntheticNetworkOptions options;
  options.num_nodes = 200;
  options.alpha = 2.0;
  options.seed = 7;
  const Graph graph = GenerateSyntheticNetwork(options);
  Rng rng(8);
  const McfsInstance instance = SmallGeoInstance(graph, rng);

  AlgorithmSuite suite;
  suite.with_wma = false;
  suite.with_wma_naive = false;
  suite.with_hilbert = false;
  suite.with_exact = false;
  // Degenerate thread counts must not crash the cell dispatch (the
  // ParallelFor underneath treats a negative cap as serial).
  for (const int threads : {-4, 0, 1}) {
    for (const bool metrics : {false, true}) {
      suite.threads = threads;
      suite.metrics = metrics;
      EXPECT_TRUE(RunSuite(instance, suite).empty())
          << "threads " << threads << " metrics " << metrics;
    }
  }
}

TEST(RunnerTest, RunReportSerializesNonFiniteDoublesAsNull) {
  // Regression for the JSON layer: an infeasible/timed-out cell can
  // carry inf or NaN objectives and phase times; the report must emit
  // null for them, never the invalid-JSON tokens "inf"/"nan".
  RunReport report("nonfinite");
  AlgoOutcome outcome;
  outcome.algorithm = "WMA";
  outcome.objective = std::numeric_limits<double>::infinity();
  outcome.seconds = std::numeric_limits<double>::quiet_NaN();
  outcome.has_wma_stats = true;
  outcome.wma_stats.matching_seconds =
      -std::numeric_limits<double>::infinity();
  outcome.wma_stats.per_iteration.push_back(
      {1, 5, std::numeric_limits<double>::quiet_NaN(), 0.5, 0, 0});
  report.AddCell("cell", outcome);

  const std::string json = report.Json();
  EXPECT_NE(json.find("\"objective\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seconds\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"matching_seconds\": null"), std::string::npos)
      << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST(RunnerTest, FormatOutcomeVariants) {
  AlgoOutcome ok;
  ok.objective = 1234.5;
  ok.seconds = 0.5;
  ok.feasible = true;
  EXPECT_EQ(FormatOutcome(ok), "1234 / 500.0 ms");  // %.0f rounds to even
  AlgoOutcome failed;
  failed.failed = true;
  failed.seconds = 60.0;
  EXPECT_EQ(FormatOutcome(failed), "fail (60.00 s)");
  AlgoOutcome infeasible;
  infeasible.feasible = false;
  EXPECT_EQ(FormatOutcome(infeasible), "infeasible");
}

}  // namespace
}  // namespace mcfs
