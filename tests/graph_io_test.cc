#include "mcfs/graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tests/test_util.h"

namespace mcfs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTripsGraphWithCoordinates) {
  Rng rng(17);
  GraphBuilder builder(5);
  builder.AddEdge(0, 1, 1.5);
  builder.AddEdge(1, 2, 2.25);
  builder.AddEdge(3, 4, 0.75);
  builder.SetCoordinates(
      {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
  const Graph original = builder.Build();
  const std::string path = TempPath("roundtrip.graph");
  ASSERT_TRUE(SaveGraph(original, path));
  const std::optional<Graph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  ASSERT_TRUE(loaded->has_coordinates());
  for (NodeId v = 0; v < original.NumNodes(); ++v) {
    EXPECT_DOUBLE_EQ(loaded->coordinate(v).x, original.coordinate(v).x);
  }
  // Shortest paths agree (same weights).
  const std::vector<double> a = ShortestPathsFrom(original, 0);
  const std::vector<double> b = ShortestPathsFrom(*loaded, 0);
  for (NodeId v = 0; v < original.NumNodes(); ++v) {
    if (a[v] == kInfDistance) {
      EXPECT_EQ(b[v], kInfDistance);
    } else {
      EXPECT_NEAR(a[v], b[v], 1e-9);
    }
  }
}

TEST(GraphIoTest, RoundTripsGraphWithoutCoordinates) {
  Rng rng(18);
  const Graph original = testing_util::RandomGraph(20, 15, rng);
  const std::string path = TempPath("nocoords.graph");
  ASSERT_TRUE(SaveGraph(original, path));
  const std::optional<Graph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  EXPECT_FALSE(loaded->has_coordinates());
}

TEST(GraphIoTest, MissingFileFailsCleanly) {
  EXPECT_FALSE(LoadGraph("/nonexistent/path/x.graph").has_value());
}

TEST(GraphIoTest, CorruptFileFailsCleanly) {
  const std::string path = TempPath("corrupt.graph");
  {
    std::ofstream out(path);
    out << "3 2 0\n0 1 1.0\n0 99 1.0\n";  // node out of range
  }
  EXPECT_FALSE(LoadGraph(path).has_value());
  {
    std::ofstream out(path);
    out << "3 2 0\n0 1 -4.0\n";  // negative weight
  }
  EXPECT_FALSE(LoadGraph(path).has_value());
  {
    std::ofstream out(path);
    out << "not a graph";
  }
  EXPECT_FALSE(LoadGraph(path).has_value());
}

}  // namespace
}  // namespace mcfs
