#include "mcfs/hilbert/hilbert.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mcfs {
namespace {

TEST(HilbertTest, Order1Curve) {
  // The order-1 curve visits (0,0) (0,1) (1,1) (1,0).
  EXPECT_EQ(HilbertIndex(1, 0, 0), 0u);
  EXPECT_EQ(HilbertIndex(1, 0, 1), 1u);
  EXPECT_EQ(HilbertIndex(1, 1, 1), 2u);
  EXPECT_EQ(HilbertIndex(1, 1, 0), 3u);
}

class HilbertOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(HilbertOrderTest, BijectionOverTheGrid) {
  const int order = GetParam();
  const uint32_t side = 1u << order;
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < side; ++x) {
    for (uint32_t y = 0; y < side; ++y) {
      const uint64_t d = HilbertIndex(order, x, y);
      EXPECT_LT(d, static_cast<uint64_t>(side) * side);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate index " << d;
      uint32_t rx = 0;
      uint32_t ry = 0;
      HilbertCell(order, d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrderTest, ::testing::Values(1, 2, 3,
                                                                     4, 5));

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining locality property of the curve.
  const int order = 5;
  const uint32_t side = 1u << order;
  for (uint64_t d = 0; d + 1 < static_cast<uint64_t>(side) * side; ++d) {
    uint32_t x1, y1, x2, y2;
    HilbertCell(order, d, &x1, &y1);
    HilbertCell(order, d + 1, &x2, &y2);
    const int manhattan = std::abs(static_cast<int>(x1) - static_cast<int>(x2)) +
                          std::abs(static_cast<int>(y1) - static_cast<int>(y2));
    EXPECT_EQ(manhattan, 1) << "jump at index " << d;
  }
}

TEST(HilbertTest, PointMappingClampsAndScales) {
  const int order = 8;
  // Corners map to distinct cells; out-of-range points clamp.
  const uint64_t origin = HilbertIndexForPoint(order, 0.0, 0.0, 0.0, 0.0, 100.0);
  const uint64_t beyond =
      HilbertIndexForPoint(order, 1e9, 1e9, 0.0, 0.0, 100.0);
  const uint64_t below =
      HilbertIndexForPoint(order, -1e9, -1e9, 0.0, 0.0, 100.0);
  EXPECT_EQ(origin, below);
  EXPECT_NE(origin, beyond);
}

}  // namespace
}  // namespace mcfs
