#include <gtest/gtest.h>

#include "mcfs/baselines/brnn.h"
#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

// Baselines need coordinates; build instances over geometric graphs.
struct GeoInstance {
  Graph graph;
  McfsInstance instance;
};

GeoInstance MakeGeoInstance(int n, int m, int l, int k, int capacity,
                            uint64_t seed) {
  GeoInstance out;
  SyntheticNetworkOptions options;
  options.num_nodes = n;
  options.alpha = 2.0;
  options.seed = seed;
  out.graph = GenerateSyntheticNetwork(options);
  Rng rng(seed + 1);
  out.instance.graph = &out.graph;
  out.instance.customers = SampleDistinctNodes(out.graph, m, rng);
  out.instance.facility_nodes = SampleDistinctNodes(out.graph, l, rng);
  out.instance.capacities = UniformCapacities(l, capacity);
  out.instance.k = k;
  return out;
}

class BaselineValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineValidityTest, HilbertSolutionsAreValid) {
  GeoInstance geo = MakeGeoInstance(300, 30, 60, 6, 10, 500 + GetParam());
  const McfsSolution solution = RunHilbertBaseline(geo.instance);
  const ValidationResult validation =
      ValidateSolution(geo.instance, solution, true);
  EXPECT_TRUE(validation.ok) << validation.message;
  if (IsFeasible(geo.instance)) EXPECT_TRUE(solution.feasible);
}

TEST_P(BaselineValidityTest, BrnnSolutionsAreValid) {
  GeoInstance geo = MakeGeoInstance(200, 20, 40, 5, 8, 600 + GetParam());
  const McfsSolution solution = RunBrnnBaseline(geo.instance);
  const ValidationResult validation =
      ValidateSolution(geo.instance, solution, true);
  EXPECT_TRUE(validation.ok) << validation.message;
  if (IsFeasible(geo.instance)) EXPECT_TRUE(solution.feasible);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, BaselineValidityTest,
                         ::testing::Range(0, 10));

TEST(BaselineQualityTest, WmaBeatsBaselinesOnClusteredData) {
  // The paper's headline: on clustered networks WMA outperforms both
  // the Hilbert clustering baseline and BRNN (Fig. 7).
  SyntheticNetworkOptions options;
  options.num_nodes = 1500;
  options.num_clusters = 20;
  options.alpha = 2.0;
  options.seed = 11;
  Graph graph = GenerateSyntheticNetwork(options);
  Rng rng(12);
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = SampleDistinctNodes(graph, 150, rng);
  instance.facility_nodes = SampleDistinctNodes(graph, 1500, rng);
  instance.capacities = UniformCapacities(1500, 10);
  instance.k = 30;

  const McfsSolution wma = RunWma(instance).solution;
  const McfsSolution hilbert = RunHilbertBaseline(instance);
  const McfsSolution brnn = RunBrnnBaseline(instance);
  ASSERT_TRUE(wma.feasible);
  ASSERT_TRUE(hilbert.feasible);
  ASSERT_TRUE(brnn.feasible);
  EXPECT_LT(wma.objective, hilbert.objective * 1.02);
  EXPECT_LT(wma.objective, brnn.objective);
}

TEST(BaselineQualityTest, HilbertDegradesWithSmallCandidateSet) {
  // Fig. 8a: Hilbert is sensitive to the candidate set size; WMA finds
  // good alternatives when only a fraction of nodes host candidates.
  GeoInstance geo = MakeGeoInstance(800, 80, 80, 8, 20, 13);
  const McfsSolution wma = RunWma(geo.instance).solution;
  const McfsSolution hilbert = RunHilbertBaseline(geo.instance);
  ASSERT_TRUE(wma.feasible);
  ASSERT_TRUE(hilbert.feasible);
  EXPECT_LE(wma.objective, hilbert.objective * 1.05);
}

}  // namespace
}  // namespace mcfs
