#include "mcfs/core/instance_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "mcfs/core/wma.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(InstanceIoTest, RoundTripsInstance) {
  Rng rng(3);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(40, 10, 8, 4, 5, rng);
  const std::string path = TempPath("instance.mcfs");
  ASSERT_TRUE(SaveInstance(ri.instance, path));
  const std::optional<McfsInstance> loaded =
      LoadInstance(&ri.graph, path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->customers, ri.instance.customers);
  EXPECT_EQ(loaded->facility_nodes, ri.instance.facility_nodes);
  EXPECT_EQ(loaded->capacities, ri.instance.capacities);
  EXPECT_EQ(loaded->k, ri.instance.k);
  // Both instances solve to the same objective.
  const McfsSolution a = RunWma(ri.instance).solution;
  const McfsSolution b = RunWma(*loaded).solution;
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(InstanceIoTest, RoundTripsSolution) {
  Rng rng(4);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(40, 10, 8, 4, 5, rng);
  const McfsSolution solution = RunWma(ri.instance).solution;
  const std::string path = TempPath("solution.mcfs");
  ASSERT_TRUE(SaveSolution(solution, path));
  const std::optional<McfsSolution> loaded = LoadSolution(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->selected, solution.selected);
  EXPECT_EQ(loaded->assignment, solution.assignment);
  EXPECT_EQ(loaded->feasible, solution.feasible);
  EXPECT_NEAR(loaded->objective, solution.objective, 1e-9);
  // A loaded solution still validates against the original instance.
  EXPECT_TRUE(ValidateSolution(ri.instance, *loaded, true).ok);
}

TEST(InstanceIoTest, RejectsCorruptInstance) {
  Rng rng(5);
  const Graph graph = testing_util::RandomGraph(10, 5, rng);
  const std::string path = TempPath("corrupt_instance.mcfs");
  {
    std::ofstream out(path);
    out << "MCFS 1\n2 1 1\n0\n99\n0 3\n";  // customer node 99 > n
  }
  EXPECT_FALSE(LoadInstance(&graph, path).has_value());
  {
    std::ofstream out(path);
    out << "WRONG 1\n";
  }
  EXPECT_FALSE(LoadInstance(&graph, path).has_value());
  {
    std::ofstream out(path);
    out << "MCFS 2\n";  // unknown version
  }
  EXPECT_FALSE(LoadInstance(&graph, path).has_value());
  EXPECT_FALSE(LoadInstance(&graph, "/no/such/file").has_value());
}

TEST(InstanceIoTest, RejectsCorruptSolution) {
  const std::string path = TempPath("corrupt_solution.mcfs");
  {
    std::ofstream out(path);
    out << "MCFSSOL 1\n2 1 5.0 1\n0 1\n";  // truncated assignment
  }
  EXPECT_FALSE(LoadSolution(path).has_value());
  EXPECT_FALSE(LoadSolution("/no/such/file").has_value());
}

TEST(InstanceIoTest, EmptySelectionSolution) {
  McfsSolution solution;
  solution.assignment = {-1, -1};
  solution.distances = {0.0, 0.0};
  solution.feasible = false;
  const std::string path = TempPath("empty_solution.mcfs");
  ASSERT_TRUE(SaveSolution(solution, path));
  const std::optional<McfsSolution> loaded = LoadSolution(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->selected.empty());
  EXPECT_EQ(loaded->assignment, solution.assignment);
}

}  // namespace
}  // namespace mcfs
