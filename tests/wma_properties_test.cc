// Cross-cutting WMA properties that tie the pipeline together:
// relaxation lower bounds, selection cardinality, determinism, and the
// Uniform-First == Direct identity on uniform instances.

#include <gtest/gtest.h>

#include <algorithm>

#include "mcfs/core/wma.h"
#include "mcfs/flow/matcher.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

class WmaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WmaPropertyTest, ObjectiveAboveFullRelaxationBound) {
  // Opening every candidate (ignoring k) can only be cheaper: the
  // optimal transportation onto all facilities lower-bounds any
  // k-selection's assignment cost.
  Rng rng(11000 + GetParam());
  RandomInstance ri = MakeRandomInstance(60, 12, 10, 4, 4, rng);
  const WmaResult wma = RunWma(ri.instance);
  if (!wma.solution.feasible) return;
  std::vector<int> all(ri.instance.l());
  for (int j = 0; j < ri.instance.l(); ++j) all[j] = j;
  McfsInstance relaxed = ri.instance;
  relaxed.k = relaxed.l();
  const McfsSolution bound = AssignOptimally(relaxed, all);
  ASSERT_TRUE(bound.feasible);
  EXPECT_GE(wma.solution.objective, bound.objective - 1e-6);
}

TEST_P(WmaPropertyTest, SelectsExactlyKWhenFeasible) {
  Rng rng(12000 + GetParam());
  const int k = 2 + GetParam() % 4;
  RandomInstance ri = MakeRandomInstance(50, 10, 8, k, 5, rng);
  if (!IsFeasible(ri.instance)) return;
  const WmaResult wma = RunWma(ri.instance);
  // SelectGreedy tops the selection up to the full budget.
  EXPECT_EQ(static_cast<int>(wma.solution.selected.size()),
            std::min(ri.instance.k, ri.instance.l()));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, WmaPropertyTest,
                         ::testing::Range(0, 25));

TEST(WmaPropertyTest, UniformFirstEqualsDirectOnUniformCapacities) {
  // With uniform capacities the UF transformation is the identity, so
  // both variants must select the same facilities and cost the same.
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    RandomInstance ri = MakeRandomInstance(60, 12, 9, 4, 1, rng);
    // Overwrite with uniform capacities.
    std::fill(ri.instance.capacities.begin(), ri.instance.capacities.end(),
              5);
    const WmaResult direct = RunWma(ri.instance);
    const WmaResult uf = RunUniformFirstWma(ri.instance);
    // UF's repair pass re-normalizes the order; compare as sets.
    std::vector<int> direct_selected = direct.solution.selected;
    std::vector<int> uf_selected = uf.solution.selected;
    std::sort(direct_selected.begin(), direct_selected.end());
    std::sort(uf_selected.begin(), uf_selected.end());
    EXPECT_EQ(direct_selected, uf_selected);
    EXPECT_NEAR(direct.solution.objective, uf.solution.objective, 1e-9);
  }
}

TEST(WmaPropertyTest, StatsTimesAreConsistent) {
  Rng rng(100);
  RandomInstance ri = MakeRandomInstance(80, 20, 15, 6, 5, rng);
  WmaOptions options;
  options.collect_iteration_stats = true;
  const WmaResult result = RunWma(ri.instance, options);
  EXPECT_LE(result.stats.matching_seconds + result.stats.cover_seconds,
            result.stats.total_seconds + 1e-6);
  double matching_sum = 0.0;
  for (const WmaIterationStats& it : result.stats.per_iteration) {
    EXPECT_GE(it.matching_seconds, 0.0);
    EXPECT_GE(it.cover_seconds, 0.0);
    EXPECT_GE(it.covered_customers, 0);
    EXPECT_LE(it.covered_customers, ri.instance.m());
    matching_sum += it.matching_seconds;
  }
  EXPECT_NEAR(matching_sum, result.stats.matching_seconds, 1e-6);
}

TEST(WmaPropertyTest, NaiveSeedsProduceValidVariedSolutions) {
  Rng rng(101);
  RandomInstance ri = MakeRandomInstance(70, 15, 12, 5, 3, rng);
  double min_obj = 1e300;
  double max_obj = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    WmaOptions options;
    options.naive = true;
    options.seed = seed;
    const WmaResult result = RunWma(ri.instance, options);
    EXPECT_TRUE(ValidateSolution(ri.instance, result.solution, true).ok);
    if (result.solution.feasible) {
      min_obj = std::min(min_obj, result.solution.objective);
      max_obj = std::max(max_obj, result.solution.objective);
    }
  }
  // Seeds explore different greedy orders; objectives may differ but
  // must stay within a sane band of each other.
  if (max_obj > 0.0) EXPECT_LE(max_obj, 5.0 * min_obj + 1e-9);
}

TEST(WmaPropertyTest, ExactWmaBeatsOrMatchesNaiveOnAverage) {
  Rng rng(102);
  double exact_total = 0.0;
  double naive_total = 0.0;
  int counted = 0;
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstance ri = MakeRandomInstance(60, 14, 10, 4, 8, rng);
    if (!IsFeasible(ri.instance)) continue;
    const WmaResult exact = RunWma(ri.instance);
    WmaOptions naive_options;
    naive_options.naive = true;
    const WmaResult naive = RunWma(ri.instance, naive_options);
    if (!exact.solution.feasible || !naive.solution.feasible) continue;
    exact_total += exact.solution.objective;
    naive_total += naive.solution.objective;
    ++counted;
  }
  ASSERT_GT(counted, 3);
  EXPECT_LE(exact_total, naive_total * 1.05);
}

}  // namespace
}  // namespace mcfs
