#include "mcfs/core/repair.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

TEST(SelectGreedyTest, FillsUpToK) {
  Rng rng(21);
  RandomInstance ri = MakeRandomInstance(60, 10, 12, 6, 5, rng);
  std::vector<int> selected = {0, 1};
  SelectGreedy(ri.instance, selected);
  EXPECT_EQ(static_cast<int>(selected.size()), 6);
  std::set<int> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size());
}

TEST(SelectGreedyTest, PrefersFacilityNearWorstCustomer) {
  // Path: c0 - f0 - ... - c1 far away with facility f1 nearby. Starting
  // from {f0}, the greedy step must pick f1 (nearest to the farthest
  // customer c1).
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 1.0);   // c0 - f0
  builder.AddEdge(1, 2, 50.0);  // long road
  builder.AddEdge(2, 3, 1.0);   // c1 at 3
  builder.AddEdge(3, 4, 1.0);   // f1 at 4
  builder.AddEdge(4, 5, 30.0);  // f2 at 5, farther
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 3};
  instance.facility_nodes = {1, 4, 5};
  instance.capacities = {2, 2, 2};
  instance.k = 2;
  std::vector<int> selected = {0};
  SelectGreedy(instance, selected);
  EXPECT_EQ(selected, (std::vector<int>{0, 1}));
}

TEST(SelectGreedyTest, ReachesDisconnectedComponents) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);  // component A: c0, f0
  builder.AddEdge(2, 3, 1.0);  // component B: c1, f1
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 2};
  instance.facility_nodes = {1, 3};
  instance.capacities = {2, 2};
  instance.k = 2;
  std::vector<int> selected = {0};
  SelectGreedy(instance, selected);
  EXPECT_EQ(selected, (std::vector<int>{0, 1}));
}

TEST(CoverComponentsTest, SwapsCapacityIntoDeficitComponent) {
  // Two components; all selected capacity initially sits in A.
  GraphBuilder builder(8);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);  // component A: customers {0}, fac {1,2}
  builder.AddEdge(4, 5, 1.0);
  builder.AddEdge(5, 6, 1.0);  // component B: customers {4,5,6}, fac {5,6}
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 4, 5, 6};
  instance.facility_nodes = {1, 2, 5, 6};
  instance.capacities = {2, 2, 3, 1};
  instance.k = 2;
  std::vector<int> selected = {0, 1};  // both in component A
  ASSERT_TRUE(CoverComponents(instance, selected));
  // Component B (3 customers) needs its capacity-3 facility (index 2).
  std::set<int> chosen(selected.begin(), selected.end());
  EXPECT_TRUE(chosen.count(2));
  EXPECT_EQ(selected.size(), 2u);
  // Per-component surplus now non-negative.
  int cap_a = 0, cap_b = 0;
  for (const int j : selected) {
    if (instance.facility_nodes[j] <= 3) {
      cap_a += instance.capacities[j];
    } else {
      cap_b += instance.capacities[j];
    }
  }
  EXPECT_GE(cap_a, 1);
  EXPECT_GE(cap_b, 3);
}

TEST(CoverComponentsTest, ReturnsFalseWhenInfeasible) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 0, 0, 2};  // 3 customers in A, 1 in B
  instance.facility_nodes = {1, 3};
  instance.capacities = {1, 1};  // A can never host 3
  instance.k = 2;
  std::vector<int> selected = {0, 1};
  EXPECT_FALSE(CoverComponents(instance, selected));
}

class CoverComponentsSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverComponentsSweepTest, FeasibleInstancesGetCovered) {
  Rng rng(900 + GetParam());
  const int parts = 2 + static_cast<int>(rng.UniformInt(0, 2));
  RandomInstance ri = MakeRandomInstance(
      40, 8, 12, 6, 4, rng, /*disconnected_parts=*/parts);
  if (!IsFeasible(ri.instance)) return;  // only feasible cases here
  // Start from an arbitrary (likely invalid) selection of size k.
  std::vector<int> selected;
  for (int j = 0; j < ri.instance.k; ++j) selected.push_back(j);
  ASSERT_TRUE(CoverComponents(ri.instance, selected));
  EXPECT_EQ(static_cast<int>(selected.size()), ri.instance.k);
  // Verify per-component capacity coverage.
  const ComponentLabeling labeling = ConnectedComponents(ri.graph);
  std::vector<int64_t> surplus(labeling.num_components, 0);
  for (const NodeId c : ri.instance.customers) {
    surplus[labeling.component_of[c]]--;
  }
  for (const int j : selected) {
    surplus[labeling.component_of[ri.instance.facility_nodes[j]]] +=
        ri.instance.capacities[j];
  }
  for (const int64_t s : surplus) EXPECT_GE(s, 0);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, CoverComponentsSweepTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace mcfs
