// Warm-state checkpoint/restore (DESIGN.md §4.13): the on-disk
// round-trip is exact (doubles travel as bit patterns), a restored
// service continues the checkpointed epoch and serves byte-identical
// warm answers on an empty delta, and every defective file — missing,
// truncated, corrupted, version-mismatched — comes back as a typed
// kIoError that leaves the service cold-serving, never half-restored.

#include "mcfs/serve/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mcfs/common/fault_plan.h"
#include "mcfs/common/random.h"
#include "mcfs/common/status.h"
#include "mcfs/serve/solver_service.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

// Service fixture with a tracked customer population, mirroring the
// resolve tests: customers on distinct nodes so optima are unique and
// byte-equality is meaningful.
struct CheckpointFixture {
  Graph graph;
  std::vector<NodeId> customers;
  std::vector<NodeId> facility_nodes;
  std::vector<int> capacities;

  explicit CheckpointFixture(uint64_t seed) {
    Rng rng(seed);
    const int n = 160, m = 36, l = 12;
    graph = testing_util::RandomGraph(n, 3 * n, rng);
    std::vector<int> sampled = rng.SampleWithoutReplacement(n, m + l);
    for (int i = 0; i < m; ++i) customers.push_back(sampled[i]);
    for (int j = 0; j < l; ++j) {
      facility_nodes.push_back(sampled[m + j]);
      capacities.push_back(static_cast<int>(rng.UniformInt(4, 9)));
    }
  }

  std::unique_ptr<SolverService> MakeService(ServiceOptions options = {}) {
    auto service = std::make_unique<SolverService>(&graph, facility_nodes,
                                                   capacities, options);
    UpdateRequest arrive;
    for (const NodeId node : customers) {
      arrive.ops.push_back({UpdateKind::kCustomerArrive, node, 0});
    }
    EXPECT_TRUE(service->ApplyUpdate(arrive).ok());
    return service;
  }
};

TEST(CheckpointFormat, SeedlessRoundTripIsExact) {
  ServiceCheckpoint original;
  original.epoch = 17;
  original.facility_nodes = {4, 9, 2};
  original.capacities = {3, 1, 7};
  original.tracked_customers = {11, 5};
  original.seed_k = 0;
  original.has_seed = false;

  const std::string path = TempPath("ckpt_seedless.mcfsckpt");
  ASSERT_TRUE(WriteServiceCheckpoint(original, path).ok());
  const StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().epoch, original.epoch);
  EXPECT_EQ(loaded.value().facility_nodes, original.facility_nodes);
  EXPECT_EQ(loaded.value().capacities, original.capacities);
  EXPECT_EQ(loaded.value().tracked_customers, original.tracked_customers);
  EXPECT_FALSE(loaded.value().has_seed);
}

TEST(CheckpointFormat, MissingFileIsTypedIoError) {
  const StatusOr<ServiceCheckpoint> loaded =
      ReadServiceCheckpoint(TempPath("ckpt_does_not_exist.mcfsckpt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CheckpointFormat, EveryDefectIsTypedIoError) {
  CheckpointFixture fx(41);
  auto service = fx.MakeService();
  ASSERT_TRUE(service->ResolveTracked(6).status.ok());
  const std::string path = TempPath("ckpt_defects.mcfsckpt");
  ASSERT_TRUE(service->CheckpointTo(path).ok());
  const std::string good = ReadFile(path);
  ASSERT_FALSE(good.empty());
  ASSERT_TRUE(ReadServiceCheckpoint(path).ok());

  const std::string mutated = TempPath("ckpt_mutated.mcfsckpt");

  // Truncation: drop the checksum line, then cut mid-payload.
  {
    const size_t last_line = good.rfind("checksum ");
    ASSERT_NE(last_line, std::string::npos);
    WriteFile(mutated, good.substr(0, last_line));
    const StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(mutated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
  {
    WriteFile(mutated, good.substr(0, good.size() / 2));
    const StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(mutated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }

  // Corruption: flip one payload byte; the checksum must catch it.
  {
    std::string corrupt = good;
    const size_t pos = corrupt.find("tracked ");
    ASSERT_NE(pos, std::string::npos);
    corrupt[pos] = 'T';
    WriteFile(mutated, corrupt);
    const StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(mutated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }

  // Version mismatch and bad magic.
  {
    std::string wrong_version = good;
    const size_t pos = wrong_version.find("MCFSCKPT 1");
    ASSERT_EQ(pos, 0u);
    wrong_version.replace(0, 10, "MCFSCKPT 9");
    WriteFile(mutated, wrong_version);
    const StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(mutated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
  {
    WriteFile(mutated, "NOTACKPT 1\n" + good.substr(good.find('\n') + 1));
    const StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(mutated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }

  // Trailing data after the checksum line.
  {
    WriteFile(mutated, good + "extra trailing line\n");
    const StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(mutated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

TEST(CheckpointService, RestoreContinuesTheEpochWithByteIdenticalAnswers) {
  CheckpointFixture fx(43);
  ServiceOptions options;
  options.verify = true;
  auto before = fx.MakeService(options);

  // Advance past epoch 0 so continuity is a real assertion, then seed
  // the warm state with one resolve.
  UpdateRequest grow;
  grow.ops.push_back({UpdateKind::kCapacityDelta, fx.facility_nodes[0], 1});
  ASSERT_TRUE(before->ApplyUpdate(grow).ok());
  const int k = 6;
  const SolveResponse seeding = before->ResolveTracked(k);
  ASSERT_TRUE(seeding.status.ok()) << seeding.status.message();

  const std::string path = TempPath("ckpt_roundtrip.mcfsckpt");
  ASSERT_TRUE(before->CheckpointTo(path).ok());
  const uint64_t epoch_at_checkpoint = before->epoch();

  // Reference: the pre-restart service's empty-delta warm resolve is
  // bit-identical in solution bytes (resolve_test contract).
  const SolveResponse reference = before->ResolveTracked(k);
  ASSERT_TRUE(reference.status.ok());

  // "Restart": a fresh process = a fresh service on the same graph and
  // boot catalog, which then restores the checkpoint.
  auto after = fx.MakeService(options);
  ASSERT_TRUE(after->RestoreFrom(path).ok());
  EXPECT_EQ(after->epoch(), epoch_at_checkpoint);
  EXPECT_EQ(after->tracked_customer_count(), fx.customers.size());

  const SolveResponse restored = after->ResolveTracked(k);
  ASSERT_TRUE(restored.status.ok()) << restored.status.message();
  EXPECT_TRUE(restored.verify_ok);
  EXPECT_TRUE(restored.warm_served);
  // Byte-identical warm answer across the restart.
  EXPECT_EQ(restored.solution.selected, reference.solution.selected);
  EXPECT_EQ(restored.solution.assignment, reference.solution.assignment);
  EXPECT_EQ(restored.solution.distances, reference.solution.distances);
  EXPECT_EQ(restored.solution.objective, reference.solution.objective);

  const ServiceReport before_report = before->Report();
  const ServiceReport after_report = after->Report();
  EXPECT_EQ(before_report.checkpoints_saved, 1);
  EXPECT_EQ(after_report.checkpoints_restored, 1);
  EXPECT_NE(after_report.Json().find("\"checkpoints\": {\"saved\": 0, "
                                     "\"restored\": 1"),
            std::string::npos)
      << after_report.Json();
}

TEST(CheckpointService, RestoreFailureLeavesTheServiceServingCold) {
  CheckpointFixture fx(47);
  auto service = fx.MakeService();
  const uint64_t epoch0 = service->epoch();

  // A checkpoint that cannot belong to this graph: facility node out of
  // range. Structurally valid file, semantically incompatible.
  ServiceCheckpoint foreign;
  foreign.epoch = 9;
  foreign.facility_nodes = {static_cast<NodeId>(fx.graph.NumNodes() + 5)};
  foreign.capacities = {3};
  const std::string path = TempPath("ckpt_foreign.mcfsckpt");
  ASSERT_TRUE(WriteServiceCheckpoint(foreign, path).ok());

  const Status status = service->RestoreFrom(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(service->epoch(), epoch0);
  EXPECT_EQ(service->tracked_customer_count(), fx.customers.size());

  // Still serving, cold.
  const SolveResponse response =
      service->SolveSync({fx.customers, 6, {}, 0, nullptr});
  EXPECT_TRUE(response.status.ok()) << response.status.message();
  const ServiceReport report = service->Report();
  EXPECT_EQ(report.checkpoints_restored, 0);
  EXPECT_GE(report.checkpoint_failures, 1);
}

TEST(CheckpointService, CorruptedFileIsRejectedOnRestore) {
  CheckpointFixture fx(53);
  auto service = fx.MakeService();
  ASSERT_TRUE(service->ResolveTracked(5).status.ok());
  const std::string path = TempPath("ckpt_corrupt_restore.mcfsckpt");
  ASSERT_TRUE(service->CheckpointTo(path).ok());

  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x20;
  WriteFile(path, bytes);

  const Status status = service->RestoreFrom(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(service->SolveSync({fx.customers, 5, {}, 0, nullptr}).status.ok());
}

TEST(CheckpointService, FaultInjectedWriteFailsTypedThenRecovers) {
  CheckpointFixture fx(59);
  ServiceOptions options;
  FaultPlanSpec spec;
  spec.rate[static_cast<int>(FaultKind::kCheckpointIo)] = 1.0;
  spec.max_fires[static_cast<int>(FaultKind::kCheckpointIo)] = 1;
  options.fault_plan = std::make_shared<FaultPlan>(spec);
  auto service = fx.MakeService(options);

  const std::string path = TempPath("ckpt_faulted.mcfsckpt");
  const Status first = service->CheckpointTo(path);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_NE(first.message().find("fault-injected"), std::string::npos);

  // The budget is spent: the retry goes through and the file is valid.
  ASSERT_TRUE(service->CheckpointTo(path).ok());
  EXPECT_TRUE(ReadServiceCheckpoint(path).ok());

  const ServiceReport report = service->Report();
  EXPECT_EQ(report.checkpoints_saved, 1);
  EXPECT_EQ(report.checkpoint_failures, 1);
  EXPECT_GE(report.faults_injected, 1);
}

}  // namespace
}  // namespace mcfs
