// Tests for the observability layer: sharded counter/distribution
// aggregation across threads, snapshot/reset semantics, macro gating,
// span nesting, and the Chrome trace_event JSON export.

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {
namespace obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EnableMetrics(true);
    ResetMetrics();
    ClearTrace();
  }
  void TearDown() override {
    EnableMetrics(false);
    EnableTracing(false);
    ResetMetrics();
    ClearTrace();
  }
};

TEST_F(ObsTest, CounterMergesAcrossThreads) {
  Counter* counter =
      MetricsRegistry::Get().GetCounter("obs_test/threaded_counter");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, DistributionMergesAcrossThreads) {
  Distribution* dist =
      MetricsRegistry::Get().GetDistribution("obs_test/threaded_dist");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([dist, t] {
      for (int i = 0; i < 100; ++i) {
        dist->Observe(static_cast<double>(t * 100 + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const DistSnapshot snapshot = dist->Snapshot();
  EXPECT_EQ(snapshot.count, 400);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 399.0);
  // Sum of 0..399.
  EXPECT_DOUBLE_EQ(snapshot.sum, 399.0 * 400.0 / 2.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), snapshot.sum / 400.0);
}

TEST_F(ObsTest, SnapshotAndReset) {
  MCFS_COUNT("obs_test/snap_counter", 7);
  MCFS_OBSERVE("obs_test/snap_dist", 2.5);
  MetricsSnapshot snapshot = SnapshotMetrics();
  EXPECT_EQ(snapshot.counters.at("obs_test/snap_counter"), 7);
  EXPECT_EQ(snapshot.distributions.at("obs_test/snap_dist").count, 1);
  EXPECT_DOUBLE_EQ(snapshot.distributions.at("obs_test/snap_dist").sum,
                   2.5);

  ResetMetrics();
  snapshot = SnapshotMetrics();
  // Registration survives a reset; values are zeroed.
  EXPECT_EQ(snapshot.counters.at("obs_test/snap_counter"), 0);
  EXPECT_EQ(snapshot.distributions.at("obs_test/snap_dist").count, 0);
}

TEST_F(ObsTest, DisabledMacrosDoNotRecord) {
  EnableMetrics(false);
  MCFS_COUNT("obs_test/disabled_counter", 5);
  MCFS_OBSERVE("obs_test/disabled_dist", 1.0);
  EnableMetrics(true);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  EXPECT_EQ(snapshot.counters.count("obs_test/disabled_counter"), 0u);
  EXPECT_EQ(snapshot.distributions.count("obs_test/disabled_dist"), 0u);
}

TEST_F(ObsTest, MetricsJsonIsWellFormed) {
  MCFS_COUNT("obs_test/json_counter", 3);
  MCFS_OBSERVE("obs_test/json_dist", 1.5);
  const std::string json = MetricsJson(SnapshotMetrics());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"distributions\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsTest, JsonNumberSerializesNonFiniteAsNull) {
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(-3e7), "-30000000");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST_F(ObsTest, MetricsJsonHandlesEmptyDistributionMinMax) {
  // A registered-but-never-observed distribution snapshots with
  // min = +inf and max = -inf; the JSON must render those as null.
  MetricsRegistry::Get().GetDistribution("obs_test/empty_dist");
  const std::string json = MetricsJson(SnapshotMetrics());
  EXPECT_NE(json.find("\"obs_test/empty_dist\""), std::string::npos);
  EXPECT_NE(json.find("\"min\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST_F(ObsTest, SpanNestingDepthsAndContainment) {
  EnableTracing(true);
  {
    MCFS_SPAN("obs_test/outer");
    {
      MCFS_SPAN("obs_test/inner");
      { MCFS_SPAN("obs_test/leaf"); }
    }
  }
  EnableTracing(false);
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer begins first.
  EXPECT_EQ(events[0].name, "obs_test/outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "obs_test/inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "obs_test/leaf");
  EXPECT_EQ(events[2].depth, 2);
  // Containment: each child starts and ends within its parent.
  for (int child = 1; child < 3; ++child) {
    EXPECT_GE(events[child].start_us, events[child - 1].start_us);
    EXPECT_LE(events[child].start_us + events[child].dur_us,
              events[child - 1].start_us + events[child - 1].dur_us);
  }
}

TEST_F(ObsTest, SpansFromExitedThreadsAreCollected) {
  EnableTracing(true);
  int main_tid = -1;
  {
    MCFS_SPAN("obs_test/main_thread");
  }
  std::thread worker([] { MCFS_SPAN("obs_test/worker_thread"); });
  worker.join();
  EnableTracing(false);
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/main_thread") main_tid = event.tid;
  }
  bool found_worker = false;
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/worker_thread") {
      found_worker = true;
      EXPECT_NE(event.tid, main_tid);
    }
  }
  EXPECT_TRUE(found_worker);
}

TEST_F(ObsTest, ChromeTraceJsonHasCompleteEvents) {
  EnableTracing(true);
  {
    MCFS_SPAN("obs_test/json_span");
  }
  EnableTracing(false);
  const std::string json = ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obs_test/json_span\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"mcfs\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"pid\": "), std::string::npos);
  EXPECT_NE(json.find("\"tid\": "), std::string::npos);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  EnableTracing(false);
  {
    MCFS_SPAN("obs_test/never_recorded");
  }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace obs
}  // namespace mcfs
