// Tests for the observability layer: sharded counter/distribution
// aggregation across threads, snapshot/reset semantics, macro gating,
// span nesting, the Chrome trace_event JSON export, log-scale
// histograms, request-scoped trace contexts, and the flight recorder.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mcfs/common/thread_pool.h"
#include "mcfs/obs/flight_recorder.h"
#include "mcfs/obs/histogram.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {
namespace obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EnableMetrics(true);
    ResetMetrics();
    ClearTrace();
    ClearFlightEvents();
  }
  void TearDown() override {
    EnableMetrics(false);
    EnableTracing(false);
    EnableFlightRecorder(false);
    ResetMetrics();
    ClearTrace();
    ClearFlightEvents();
  }
};

TEST_F(ObsTest, CounterMergesAcrossThreads) {
  Counter* counter =
      MetricsRegistry::Get().GetCounter("obs_test/threaded_counter");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, DistributionMergesAcrossThreads) {
  Distribution* dist =
      MetricsRegistry::Get().GetDistribution("obs_test/threaded_dist");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([dist, t] {
      for (int i = 0; i < 100; ++i) {
        dist->Observe(static_cast<double>(t * 100 + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const DistSnapshot snapshot = dist->Snapshot();
  EXPECT_EQ(snapshot.count, 400);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 399.0);
  // Sum of 0..399.
  EXPECT_DOUBLE_EQ(snapshot.sum, 399.0 * 400.0 / 2.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), snapshot.sum / 400.0);
}

TEST_F(ObsTest, SnapshotAndReset) {
  MCFS_COUNT("obs_test/snap_counter", 7);
  MCFS_OBSERVE("obs_test/snap_dist", 2.5);
  MetricsSnapshot snapshot = SnapshotMetrics();
  EXPECT_EQ(snapshot.counters.at("obs_test/snap_counter"), 7);
  EXPECT_EQ(snapshot.distributions.at("obs_test/snap_dist").count, 1);
  EXPECT_DOUBLE_EQ(snapshot.distributions.at("obs_test/snap_dist").sum,
                   2.5);

  ResetMetrics();
  snapshot = SnapshotMetrics();
  // Registration survives a reset; values are zeroed.
  EXPECT_EQ(snapshot.counters.at("obs_test/snap_counter"), 0);
  EXPECT_EQ(snapshot.distributions.at("obs_test/snap_dist").count, 0);
}

TEST_F(ObsTest, DisabledMacrosDoNotRecord) {
  EnableMetrics(false);
  MCFS_COUNT("obs_test/disabled_counter", 5);
  MCFS_OBSERVE("obs_test/disabled_dist", 1.0);
  EnableMetrics(true);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  EXPECT_EQ(snapshot.counters.count("obs_test/disabled_counter"), 0u);
  EXPECT_EQ(snapshot.distributions.count("obs_test/disabled_dist"), 0u);
}

TEST_F(ObsTest, MetricsJsonIsWellFormed) {
  MCFS_COUNT("obs_test/json_counter", 3);
  MCFS_OBSERVE("obs_test/json_dist", 1.5);
  const std::string json = MetricsJson(SnapshotMetrics());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"distributions\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsTest, JsonNumberSerializesNonFiniteAsNull) {
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(-3e7), "-30000000");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST_F(ObsTest, MetricsJsonHandlesEmptyDistributionMinMax) {
  // A registered-but-never-observed distribution snapshots with
  // min = +inf and max = -inf; the JSON must render those as null.
  MetricsRegistry::Get().GetDistribution("obs_test/empty_dist");
  const std::string json = MetricsJson(SnapshotMetrics());
  EXPECT_NE(json.find("\"obs_test/empty_dist\""), std::string::npos);
  EXPECT_NE(json.find("\"min\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST_F(ObsTest, SpanNestingDepthsAndContainment) {
  EnableTracing(true);
  {
    MCFS_SPAN("obs_test/outer");
    {
      MCFS_SPAN("obs_test/inner");
      { MCFS_SPAN("obs_test/leaf"); }
    }
  }
  EnableTracing(false);
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer begins first.
  EXPECT_EQ(events[0].name, "obs_test/outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "obs_test/inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "obs_test/leaf");
  EXPECT_EQ(events[2].depth, 2);
  // Containment: each child starts and ends within its parent.
  for (int child = 1; child < 3; ++child) {
    EXPECT_GE(events[child].start_us, events[child - 1].start_us);
    EXPECT_LE(events[child].start_us + events[child].dur_us,
              events[child - 1].start_us + events[child - 1].dur_us);
  }
}

TEST_F(ObsTest, SpansFromExitedThreadsAreCollected) {
  EnableTracing(true);
  int main_tid = -1;
  {
    MCFS_SPAN("obs_test/main_thread");
  }
  std::thread worker([] { MCFS_SPAN("obs_test/worker_thread"); });
  worker.join();
  EnableTracing(false);
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/main_thread") main_tid = event.tid;
  }
  bool found_worker = false;
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/worker_thread") {
      found_worker = true;
      EXPECT_NE(event.tid, main_tid);
    }
  }
  EXPECT_TRUE(found_worker);
}

TEST_F(ObsTest, ChromeTraceJsonHasCompleteEvents) {
  EnableTracing(true);
  {
    MCFS_SPAN("obs_test/json_span");
  }
  EnableTracing(false);
  const std::string json = ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obs_test/json_span\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"mcfs\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"pid\": "), std::string::npos);
  EXPECT_NE(json.find("\"tid\": "), std::string::npos);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  EnableTracing(false);
  {
    MCFS_SPAN("obs_test/never_recorded");
  }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

// --- Log-scale histograms (DESIGN.md §4.11) ---

TEST_F(ObsTest, HistogramBoundariesAreGeometric) {
  const double* bounds = HistogramBoundaries();
  EXPECT_DOUBLE_EQ(bounds[0], kHistogramMinBound);
  for (int i = 1; i < kHistogramBuckets - 1; ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], kHistogramGrowth, 1e-9);
  }
  EXPECT_TRUE(std::isinf(bounds[kHistogramBuckets - 1]));
  EXPECT_EQ(HistogramBucketFor(0.0), 0);
  EXPECT_EQ(HistogramBucketFor(-1.0), 0);
  EXPECT_EQ(HistogramBucketFor(1e12), kHistogramBuckets - 1);
}

TEST_F(ObsTest, HistogramQuantilesWithinOneBucketOfExact) {
  Histogram hist("obs_test/quantiles");
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    // Deterministic spread over ~5 decades of latency.
    samples.push_back(1e-5 * std::pow(1.03, i));
  }
  for (const double s : samples) hist.Observe(s);
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count, 500);
  std::sort(samples.begin(), samples.end());
  EXPECT_DOUBLE_EQ(snapshot.min, samples.front());
  EXPECT_DOUBLE_EQ(snapshot.max, samples.back());
  for (const double q : {0.50, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * 500))));
    const double exact = samples[rank - 1];
    const double estimate = snapshot.Quantile(q);
    // The estimate is the bucket's upper bound: never below the exact
    // value, never more than one bucket width (kHistogramGrowth) above.
    EXPECT_GE(estimate * (1.0 + 1e-12), exact) << "q=" << q;
    EXPECT_LE(estimate, exact * kHistogramGrowth * (1.0 + 1e-12))
        << "q=" << q;
  }
  // Monotone and clamped to the exact extremes.
  EXPECT_LE(snapshot.Quantile(0.50), snapshot.Quantile(0.95));
  EXPECT_LE(snapshot.Quantile(0.95), snapshot.Quantile(0.99));
  EXPECT_LE(snapshot.Quantile(0.99), snapshot.max);
}

TEST_F(ObsTest, HistogramMergesAcrossThreads) {
  Histogram hist("obs_test/threaded_hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < 100; ++i) {
        hist.Observe(1e-4 * (1 + t * 100 + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count, 400);
  EXPECT_DOUBLE_EQ(snapshot.min, 1e-4);
  EXPECT_DOUBLE_EQ(snapshot.max, 1e-4 * 400);
  int64_t bucket_total = 0;
  for (const int64_t b : snapshot.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 400);
}

TEST_F(ObsTest, HistogramSnapshotMergeAddsBucketwise) {
  Histogram a("obs_test/merge_a");
  Histogram b("obs_test/merge_b");
  a.Observe(1e-3);
  b.Observe(1e-1);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 2);
  EXPECT_DOUBLE_EQ(merged.min, 1e-3);
  EXPECT_DOUBLE_EQ(merged.max, 1e-1);
  EXPECT_EQ(merged.buckets[HistogramBucketFor(1e-3)], 1);
  EXPECT_EQ(merged.buckets[HistogramBucketFor(1e-1)], 1);
}

TEST_F(ObsTest, HistogramExemplarCarriesTraceId) {
  Histogram hist("obs_test/exemplar");
  {
    ScopedTraceContext scope(uint64_t{42});
    hist.Observe(0.25);  // the tail observation
  }
  {
    ScopedTraceContext scope(uint64_t{7});
    hist.Observe(1e-5);
  }
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.exemplars[HistogramBucketFor(0.25)], 42u);
  EXPECT_EQ(snapshot.exemplars[HistogramBucketFor(1e-5)], 7u);
  EXPECT_EQ(snapshot.TailExemplar(0.99), 42u);
}

TEST_F(ObsTest, HistogramIgnoresNaN) {
  Histogram hist("obs_test/nan");
  hist.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(hist.Snapshot().count, 0);
}

TEST_F(ObsTest, HistogramJsonEmptyEmitsNulls) {
  Histogram hist("obs_test/empty_hist");
  const std::string json = HistogramJson(hist.Snapshot());
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST_F(ObsTest, RegistryHistogramViaMacro) {
  MCFS_HISTOGRAM("obs_test/macro_hist", 0.5);
  MCFS_HISTOGRAM("obs_test/macro_hist", 0.5);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  EXPECT_EQ(snapshot.histograms.at("obs_test/macro_hist").count, 2);
  const std::string json = MetricsJson(snapshot);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test/macro_hist\""), std::string::npos) << json;
}

// --- Request-scoped trace contexts ---

TEST_F(ObsTest, ScopedTraceContextNestsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    ScopedTraceContext outer(uint64_t{11});
    EXPECT_EQ(CurrentTraceId(), 11u);
    {
      ScopedTraceContext inner(uint64_t{22});
      EXPECT_EQ(CurrentTraceId(), 22u);
    }
    EXPECT_EQ(CurrentTraceId(), 11u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST_F(ObsTest, NewTraceIdsAreUniqueAndNonzero) {
  const uint64_t a = NewTraceId();
  const uint64_t b = NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(ObsTest, SpansCarryTheActiveTraceId) {
  EnableTracing(true);
  const uint64_t id = NewTraceId();
  {
    ScopedTraceContext scope(id);
    MCFS_SPAN("obs_test/traced_span");
  }
  {
    MCFS_SPAN("obs_test/untraced_span");
  }
  EnableTracing(false);
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/traced_span") {
      EXPECT_EQ(event.trace_id, id);
    } else {
      EXPECT_EQ(event.trace_id, 0u);
    }
  }
}

TEST_F(ObsTest, TraceContextPropagatesThroughParallelFor) {
  EnableTracing(true);
  const uint64_t id = NewTraceId();
  {
    ScopedTraceContext scope(id);
    ParallelFor(
        0, 16, 1, [](int64_t) { MCFS_SPAN("obs_test/pool_span"); }, 4);
  }
  EnableTracing(false);
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 16u);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.name, "obs_test/pool_span");
    // Pool workers inherit the dispatching thread's trace context.
    EXPECT_EQ(event.trace_id, id);
  }
}

TEST_F(ObsTest, ConfigureTraceFileBadPathWarnsAndDisables) {
  EnableTracing(true);
  std::string error;
  const std::string bad = "/nonexistent-mcfs-dir/trace.json";
  EXPECT_FALSE(ConfigureTraceFile(bad, &error));
  // The error is typed: it names the path and the disable action — and
  // tracing is actually off, not silently dropping spans on exit.
  EXPECT_NE(error.find(bad), std::string::npos) << error;
  EXPECT_NE(error.find("tracing disabled"), std::string::npos) << error;
  {
    MCFS_SPAN("obs_test/after_bad_path");
  }
  EXPECT_TRUE(CollectTraceEvents().empty());

  // A good path re-enables cleanly.
  const std::string good =
      ::testing::TempDir() + "/mcfs_obs_test_trace.json";
  EXPECT_TRUE(ConfigureTraceFile(good, &error));
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(TracingEnabled());
  EnableTracing(false);
}

// --- Flight recorder ---

TEST_F(ObsTest, FlightRecorderDisabledRecordsNothing) {
  EnableFlightRecorder(false);
  MCFS_RECORD("obs_test/never", 1, 2);
  EXPECT_TRUE(CollectFlightEvents(0).empty());
}

TEST_F(ObsTest, FlightRecorderKeepsMostRecentEvents) {
  EnableFlightRecorder(true);
  const int total = kFlightRingCapacity + 50;
  {
    ScopedTraceContext scope(uint64_t{99});
    for (int i = 0; i < total; ++i) {
      MCFS_RECORD("obs_test/ring", i, i * 2);
    }
  }
  EnableFlightRecorder(false);
  const std::vector<FlightEvent> events = CollectFlightEvents(0);
  ASSERT_EQ(events.size(), static_cast<size_t>(kFlightRingCapacity));
  // Oldest-first, the wrap dropped exactly the first 50.
  EXPECT_EQ(events.front().a, 50);
  EXPECT_EQ(events.back().a, total - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_us, events[i].t_us);
    EXPECT_EQ(events[i].a, events[i - 1].a + 1);
  }
  for (const FlightEvent& event : events) {
    EXPECT_EQ(event.name, "obs_test/ring");
    EXPECT_EQ(event.trace_id, 99u);
    EXPECT_EQ(event.b, event.a * 2);
  }
}

TEST_F(ObsTest, FlightRecorderBoundsAndMergesAcrossThreads) {
  EnableFlightRecorder(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 10; ++i) {
        MCFS_RECORD("obs_test/multi", t, i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EnableFlightRecorder(false);
  EXPECT_EQ(CollectFlightEvents(0).size(), 40u);
  // max_events trims to the most recent N across all rings.
  EXPECT_EQ(CollectFlightEvents(12).size(), 12u);
}

TEST_F(ObsTest, FlightRecorderDumpWhileRecordingIsConsistent) {
  // Seqlock smoke (and the TSan job's race check): one writer loops
  // while readers dump; every event read out must be internally
  // consistent (b == 2 * a), torn slots skipped, never misread.
  EnableFlightRecorder(true);
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MCFS_RECORD("obs_test/race", i, i * 2);
      ++i;
    }
  });
  for (int round = 0; round < 50; ++round) {
    for (const FlightEvent& event : CollectFlightEvents(0)) {
      ASSERT_EQ(event.b, event.a * 2);
      ASSERT_EQ(event.name, "obs_test/race");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EnableFlightRecorder(false);
}

TEST_F(ObsTest, FlightEventsJsonShape) {
  EnableFlightRecorder(true);
  {
    ScopedTraceContext scope(uint64_t{5});
    MCFS_RECORD("obs_test/json_event", 3, 4);
  }
  EnableFlightRecorder(false);
  const std::string json = FlightEventsJson(0);
  EXPECT_NE(json.find("\"name\": \"obs_test/json_event\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"trace_id\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b\": 4"), std::string::npos) << json;
}

}  // namespace
}  // namespace obs
}  // namespace mcfs
