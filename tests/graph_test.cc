#include "mcfs/graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace mcfs {
namespace {

TEST(GraphBuilderTest, BuildsCsrAdjacency) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 3.0);
  const Graph graph = builder.Build();
  EXPECT_EQ(graph.NumNodes(), 3);
  EXPECT_EQ(graph.NumEdges(), 2);
  EXPECT_EQ(graph.NumArcs(), 4);
  ASSERT_EQ(graph.Degree(1), 2);
  EXPECT_EQ(graph.Degree(0), 1);
  EXPECT_EQ(graph.Neighbors(0)[0].to, 1);
  EXPECT_DOUBLE_EQ(graph.Neighbors(0)[0].weight, 2.0);
}

TEST(GraphBuilderTest, DirectedArcsAreOneWay) {
  GraphBuilder builder(2);
  builder.AddArc(0, 1, 1.0);
  const Graph graph = builder.Build();
  EXPECT_EQ(graph.Degree(0), 1);
  EXPECT_EQ(graph.Degree(1), 0);
}

TEST(GraphTest, StatisticsMatchConstruction) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(0, 2, 20.0);
  builder.AddEdge(0, 3, 30.0);
  const Graph graph = builder.Build();
  EXPECT_EQ(graph.MaxDegree(), 3);
  EXPECT_DOUBLE_EQ(graph.AverageDegree(), 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(graph.AverageEdgeLength(), 20.0);
}

TEST(GraphTest, CoordinatesRoundTrip) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  builder.SetCoordinates({{1.0, 2.0}, {3.0, 4.0}});
  const Graph graph = builder.Build();
  ASSERT_TRUE(graph.has_coordinates());
  EXPECT_DOUBLE_EQ(graph.coordinate(1).x, 3.0);
  EXPECT_DOUBLE_EQ(graph.coordinate(1).y, 4.0);
}

TEST(ConnectedComponentsTest, SingleComponent) {
  Rng rng(3);
  const Graph graph = testing_util::RandomGraph(30, 10, rng);
  const ComponentLabeling labeling = ConnectedComponents(graph);
  EXPECT_EQ(labeling.num_components, 1);
  EXPECT_EQ(labeling.component_size[0], 30);
}

TEST(ConnectedComponentsTest, CountsAndSizes) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  builder.AddEdge(3, 4, 1.0);
  // node 5 isolated
  const Graph graph = builder.Build();
  const ComponentLabeling labeling = ConnectedComponents(graph);
  EXPECT_EQ(labeling.num_components, 3);
  EXPECT_EQ(labeling.component_of[0], labeling.component_of[1]);
  EXPECT_EQ(labeling.component_of[2], labeling.component_of[4]);
  EXPECT_NE(labeling.component_of[0], labeling.component_of[5]);
  std::vector<int> sizes = labeling.component_size;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<int>{1, 2, 3}));
}

TEST(ConnectedComponentsTest, PartitionIsConsistentWithLabels) {
  Rng rng(11);
  const Graph graph = testing_util::RandomDisconnectedGraph(50, 4, rng);
  const ComponentLabeling labeling = ConnectedComponents(graph);
  // Every edge joins same-component endpoints.
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (const AdjEntry& e : graph.Neighbors(v)) {
      EXPECT_EQ(labeling.component_of[v], labeling.component_of[e.to]);
    }
  }
  // Sizes add up.
  int total = 0;
  for (const int s : labeling.component_size) total += s;
  EXPECT_EQ(total, graph.NumNodes());
}

TEST(EuclideanDistanceTest, Pythagoras) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
}

}  // namespace
}  // namespace mcfs
