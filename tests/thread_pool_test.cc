#include "mcfs/common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace mcfs {
namespace {

TEST(ResolveThreadCountTest, PositiveRequestIsVerbatim) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_EQ(ResolveThreadCount(64), 64);
}

TEST(ResolveThreadCountTest, DefaultIsAtLeastOne) {
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, /*grain=*/7,
                   [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 1, [&](int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(5, 5, 1, [&](int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(10, 3, 1, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsInlineInOrder) {
  ThreadPool pool(4);
  std::vector<int64_t> order;  // safe: single chunk => single thread
  pool.ParallelFor(3, 8, /*grain=*/100,
                   [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{3, 4, 5, 6, 7}));
}

TEST(ThreadPoolTest, NonPositiveGrainIsClampedToOne) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 10, /*grain=*/0, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, HugeGrainDoesNotOverflowChunkMath) {
  // Regression: (end - begin + grain - 1) overflowed int64 for grains
  // near INT64_MAX before the grain was clamped into [1, range].
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16);
  pool.ParallelFor(0, 16, std::numeric_limits<int64_t>::max(),
                   [&](int64_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NegativeMaxThreadsDegradesToSerialInOrder) {
  ThreadPool pool(4);
  std::vector<int64_t> order;
  pool.ParallelFor(
      0, 64, 4, [&](int64_t i) { order.push_back(i); },
      /*max_threads=*/-3);
  std::vector<int64_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // serial => safe to touch without atomics
}

TEST(ThreadPoolTest, DegenerateRangeAndThreadComboIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 0, [&](int64_t) { ++calls; }, -1);
  pool.ParallelFor(7, -7, -9, [&](int64_t) { ++calls; }, 0);
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, MaxThreadsOneRunsSerially) {
  ThreadPool pool(8);
  std::vector<int64_t> order;  // safe only because max_threads = 1
  pool.ParallelFor(0, 100, 1, [&](int64_t i) { order.push_back(i); },
                   /*max_threads=*/1);
  std::vector<int64_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 1,
                       [&](int64_t i) {
                         if (i == 513) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPoolTest, InlineExceptionAlsoPropagates) {
  ThreadPool pool(1);  // inline path
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [&](int64_t i) {
                                  if (i == 3) throw std::logic_error("x");
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 16;
  constexpr int64_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  std::atomic<bool> saw_nested_region{false};
  pool.ParallelFor(0, kOuter, 1, [&](int64_t o) {
    EXPECT_TRUE(InsideParallelRegion());
    // A nested call must not block on the busy pool; it runs inline.
    pool.ParallelFor(0, kInner, 1, [&](int64_t i) {
      saw_nested_region.store(true);
      hits[o * kInner + i].fetch_add(1);
    });
  });
  EXPECT_FALSE(InsideParallelRegion());
  EXPECT_TRUE(saw_nested_region.load());
  for (size_t e = 0; e < hits.size(); ++e) {
    EXPECT_EQ(hits[e].load(), 1) << "cell " << e;
  }
}

TEST(ThreadPoolTest, ReuseAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 1000, 13, [&](int64_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 499500) << "round " << round;
  }
}

TEST(ThreadPoolTest, FreeFunctionUsesDefaultPool) {
  std::vector<std::atomic<int>> hits(512);
  ParallelFor(0, 512, 8, [&](int64_t i) { hits[i].fetch_add(1); },
              /*max_threads=*/4);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_GE(ThreadPool::Default().num_threads(), 1);
}

TEST(ThreadPoolTest, ConcurrentOuterCallersAreSerialized) {
  ThreadPool pool(4);
  constexpr int64_t kN = 2000;
  std::vector<std::atomic<int>> a(kN), b(kN);
  std::thread other([&] {
    pool.ParallelFor(0, kN, 3, [&](int64_t i) { a[i].fetch_add(1); });
  });
  pool.ParallelFor(0, kN, 3, [&](int64_t i) { b[i].fetch_add(1); });
  other.join();
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), 1);
    ASSERT_EQ(b[i].load(), 1);
  }
}

}  // namespace
}  // namespace mcfs
