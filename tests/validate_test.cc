// Preflight validation: structural defects yield kInvalidInput with the
// full problem list, unsolvable instances yield kInfeasible with
// per-component capacity accounting, and the verdict agrees with
// IsFeasible on structurally valid instances.

#include <gtest/gtest.h>

#include "mcfs/core/validate.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

McfsInstance SmallInstance(const Graph* graph) {
  McfsInstance instance;
  instance.graph = graph;
  instance.customers = {0, 1, 2};
  instance.facility_nodes = {3, 4};
  instance.capacities = {2, 2};
  instance.k = 2;
  return instance;
}

TEST(ValidateTest, AcceptsWellFormedInstance) {
  Rng rng(1);
  const Graph graph = testing_util::RandomGraph(8, 6, rng);
  const McfsInstance instance = SmallInstance(&graph);
  const InstanceDiagnosis diagnosis = DiagnoseInstance(instance);
  EXPECT_TRUE(diagnosis.ok()) << diagnosis.ToString();
  EXPECT_EQ(diagnosis.total_demand, 3);
  EXPECT_EQ(diagnosis.total_capacity, 4);
  EXPECT_EQ(diagnosis.required_facilities, 2);
  EXPECT_TRUE(ValidateInstance(instance).ok());
}

TEST(ValidateTest, NullGraphIsInvalid) {
  McfsInstance instance;
  instance.customers = {0};
  EXPECT_EQ(ValidateInstance(instance).code(), StatusCode::kInvalidInput);
}

TEST(ValidateTest, NegativeBudgetIsInvalid) {
  Rng rng(2);
  const Graph graph = testing_util::RandomGraph(8, 6, rng);
  McfsInstance instance = SmallInstance(&graph);
  instance.k = -1;
  EXPECT_EQ(ValidateInstance(instance).code(), StatusCode::kInvalidInput);
}

TEST(ValidateTest, OutOfRangeNodesAreInvalid) {
  Rng rng(3);
  const Graph graph = testing_util::RandomGraph(8, 6, rng);
  McfsInstance bad_customer = SmallInstance(&graph);
  bad_customer.customers[1] = 99;
  EXPECT_EQ(ValidateInstance(bad_customer).code(),
            StatusCode::kInvalidInput);
  McfsInstance bad_facility = SmallInstance(&graph);
  bad_facility.facility_nodes[0] = -4;
  EXPECT_EQ(ValidateInstance(bad_facility).code(),
            StatusCode::kInvalidInput);
}

TEST(ValidateTest, DuplicateFacilityNodesAreInvalid) {
  Rng rng(4);
  const Graph graph = testing_util::RandomGraph(8, 6, rng);
  McfsInstance instance = SmallInstance(&graph);
  instance.facility_nodes = {3, 3};
  const InstanceDiagnosis diagnosis = DiagnoseInstance(instance);
  EXPECT_EQ(diagnosis.status.code(), StatusCode::kInvalidInput);
  ASSERT_EQ(diagnosis.problems.size(), 1u);
  EXPECT_NE(diagnosis.problems[0].find("duplicate"), std::string::npos);
}

TEST(ValidateTest, NegativeCapacityAndMismatchedSizesReportAllProblems) {
  Rng rng(5);
  const Graph graph = testing_util::RandomGraph(8, 6, rng);
  McfsInstance instance = SmallInstance(&graph);
  instance.capacities = {-2, 2};
  instance.customers[0] = -1;  // second defect: out-of-range customer
  const InstanceDiagnosis diagnosis = DiagnoseInstance(instance);
  EXPECT_EQ(diagnosis.status.code(), StatusCode::kInvalidInput);
  EXPECT_EQ(diagnosis.problems.size(), 2u);
}

TEST(ValidateTest, TotalCapacityDeficitIsInfeasible) {
  Rng rng(6);
  const Graph graph = testing_util::RandomGraph(8, 6, rng);
  McfsInstance instance = SmallInstance(&graph);
  instance.capacities = {1, 1};  // 3 customers, capacity 2
  const InstanceDiagnosis diagnosis = DiagnoseInstance(instance);
  EXPECT_EQ(diagnosis.status.code(), StatusCode::kInfeasible);
  ASSERT_EQ(diagnosis.infeasible_components.size(), 1u);
  EXPECT_EQ(diagnosis.infeasible_components[0].customers, 3);
  EXPECT_EQ(diagnosis.infeasible_components[0].capacity_sum, 2);
  EXPECT_EQ(diagnosis.infeasible_components[0].min_facilities_needed, -1);
  EXPECT_FALSE(IsFeasible(instance));
}

TEST(ValidateTest, BudgetTooSmallAcrossComponentsIsInfeasible) {
  // Two disconnected halves, customers in both, but k = 1.
  Rng rng(7);
  const Graph graph = testing_util::RandomDisconnectedGraph(10, 2, rng);
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 6};
  instance.facility_nodes = {1, 7};
  instance.capacities = {5, 5};
  instance.k = 1;
  const InstanceDiagnosis diagnosis = DiagnoseInstance(instance);
  EXPECT_EQ(diagnosis.status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(diagnosis.required_facilities, 2);
  EXPECT_NE(diagnosis.status.message().find("budget"), std::string::npos);
  EXPECT_FALSE(IsFeasible(instance));

  instance.k = 2;
  EXPECT_TRUE(ValidateInstance(instance).ok());
  EXPECT_TRUE(IsFeasible(instance));
}

TEST(ValidateTest, ComponentWithoutFacilitiesIsInfeasible) {
  Rng rng(8);
  const Graph graph = testing_util::RandomDisconnectedGraph(10, 2, rng);
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 6};
  instance.facility_nodes = {1};  // only the first component has one
  instance.capacities = {5};
  instance.k = 1;
  const InstanceDiagnosis diagnosis = DiagnoseInstance(instance);
  EXPECT_EQ(diagnosis.status.code(), StatusCode::kInfeasible);
  ASSERT_EQ(diagnosis.infeasible_components.size(), 1u);
  EXPECT_EQ(diagnosis.infeasible_components[0].num_facilities, 0);
}

TEST(ValidateTest, AgreesWithIsFeasibleOnRandomInstances) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const int parts = 1 + trial % 3;
    testing_util::RandomInstance ri = testing_util::MakeRandomInstance(
        24, 10, 5, 1 + trial % 5, 1 + trial % 4, rng, parts);
    const Status status = ValidateInstance(ri.instance);
    EXPECT_NE(status.code(), StatusCode::kInvalidInput);
    EXPECT_EQ(status.ok(), IsFeasible(ri.instance)) << status.ToString();
  }
}

}  // namespace
}  // namespace mcfs
