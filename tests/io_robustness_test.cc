// Malformed-input corpus for the Status-based loaders: truncated files,
// out-of-range ids, negative/NaN weights, over-large counts, empty
// files. Every case must produce a typed Status error — never a crash —
// with a line-numbered diagnostic, and the deprecated optional shims
// must collapse the same cases to nullopt.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "mcfs/core/instance_io.h"
#include "mcfs/graph/graph_io.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string WriteFile(const std::string& name, const std::string& content) {
  const std::string path = TempPath(name);
  std::ofstream out(path);
  out << content;
  return path;
}

// ---------------------------------------------------------------- graphs

TEST(IoRobustnessTest, GraphMissingFileIsIoError) {
  const StatusOr<Graph> graph = ReadGraph("/no/such/dir/x.graph");
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kIoError);
}

TEST(IoRobustnessTest, GraphEmptyFileIsInvalidInput) {
  const StatusOr<Graph> graph = ReadGraph(WriteFile("empty.graph", ""));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(graph.status().message().find("empty"), std::string::npos);
}

TEST(IoRobustnessTest, GraphGarbageHeaderNamesLineOne) {
  const StatusOr<Graph> graph =
      ReadGraph(WriteFile("garbage.graph", "not a graph at all\n"));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(graph.status().message().find("line 1"), std::string::npos);
}

TEST(IoRobustnessTest, GraphTruncatedEdgesNameTheLine) {
  const StatusOr<Graph> graph =
      ReadGraph(WriteFile("truncated.graph", "4 3 0\n0 1 1.0\n"));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(graph.status().message().find("end of file"),
            std::string::npos);
}

TEST(IoRobustnessTest, GraphTruncatedCoordinates) {
  const StatusOr<Graph> graph =
      ReadGraph(WriteFile("short_coords.graph", "3 0 1\n0 0\n"));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput);
}

TEST(IoRobustnessTest, GraphOutOfRangeEndpoint) {
  const StatusOr<Graph> graph =
      ReadGraph(WriteFile("range.graph", "3 1 0\n0 99 1.0\n"));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(graph.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(graph.status().message().find("out of range"),
            std::string::npos);
}

TEST(IoRobustnessTest, GraphNegativeZeroAndNanWeights) {
  for (const char* weight : {"-4.0", "0", "nan", "-nan", "inf"}) {
    const StatusOr<Graph> graph = ReadGraph(WriteFile(
        "weight.graph", std::string("3 1 0\n0 1 ") + weight + "\n"));
    ASSERT_FALSE(graph.ok()) << weight;
    EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput) << weight;
  }
}

TEST(IoRobustnessTest, GraphNanCoordinatesRejected) {
  const StatusOr<Graph> graph =
      ReadGraph(WriteFile("nan_coords.graph", "1 0 1\nnan 0\n"));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput);
}

TEST(IoRobustnessTest, GraphOverLargeCountsRejectedBeforeAllocation) {
  // 2^40 nodes in a 20-byte file: must fail on the header, not OOM.
  const StatusOr<Graph> graph =
      ReadGraph(WriteFile("huge.graph", "1099511627776 0 0\n"));
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput);
  const StatusOr<Graph> edges =
      ReadGraph(WriteFile("huge_edges.graph", "2 999999999999 0\n"));
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), StatusCode::kInvalidInput);
}

TEST(IoRobustnessTest, GraphNegativeCountsRejected) {
  for (const char* header : {"-1 0 0", "2 -5 0", "2 0 7"}) {
    const StatusOr<Graph> graph =
        ReadGraph(WriteFile("neg.graph", std::string(header) + "\n"));
    ASSERT_FALSE(graph.ok()) << header;
    EXPECT_EQ(graph.status().code(), StatusCode::kInvalidInput) << header;
  }
}

TEST(IoRobustnessTest, GraphShimCollapsesToNullopt) {
  EXPECT_FALSE(LoadGraph(WriteFile("shim.graph", "zzz\n")).has_value());
}

// -------------------------------------------------------------- instances

class InstanceRobustnessTest : public ::testing::Test {
 protected:
  InstanceRobustnessTest() : rng_(99) {
    graph_ = testing_util::RandomGraph(10, 12, rng_);
  }
  Rng rng_;
  Graph graph_;
};

TEST_F(InstanceRobustnessTest, MissingFileIsIoError) {
  const StatusOr<McfsInstance> instance =
      ReadInstance(&graph_, "/no/such/file.mcfs");
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kIoError);
}

TEST_F(InstanceRobustnessTest, EmptyAndBadMagic) {
  for (const char* content : {"", "WRONG 1\n", "MCFS 2\n", "MCFS\n"}) {
    const StatusOr<McfsInstance> instance =
        ReadInstance(&graph_, WriteFile("magic.mcfs", content));
    ASSERT_FALSE(instance.ok()) << '"' << content << '"';
    EXPECT_EQ(instance.status().code(), StatusCode::kInvalidInput);
  }
}

TEST_F(InstanceRobustnessTest, OutOfRangeCustomerNamesLine) {
  const StatusOr<McfsInstance> instance = ReadInstance(
      &graph_, WriteFile("badcust.mcfs", "MCFS 1\n2 1 1\n0\n99\n0 3\n"));
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(instance.status().message().find("line 4"), std::string::npos);
}

TEST_F(InstanceRobustnessTest, OutOfRangeFacilityAndNegativeCapacity) {
  const StatusOr<McfsInstance> bad_node = ReadInstance(
      &graph_, WriteFile("badfac.mcfs", "MCFS 1\n1 1 1\n0\n77 3\n"));
  ASSERT_FALSE(bad_node.ok());
  EXPECT_EQ(bad_node.status().code(), StatusCode::kInvalidInput);
  const StatusOr<McfsInstance> bad_cap = ReadInstance(
      &graph_, WriteFile("badcap.mcfs", "MCFS 1\n1 1 1\n0\n2 -3\n"));
  ASSERT_FALSE(bad_cap.ok());
  EXPECT_EQ(bad_cap.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(bad_cap.status().message().find("capacity"), std::string::npos);
}

TEST_F(InstanceRobustnessTest, TruncatedAndOverLargeCounts) {
  const StatusOr<McfsInstance> truncated = ReadInstance(
      &graph_, WriteFile("trunc.mcfs", "MCFS 1\n3 1 1\n0\n1\n"));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidInput);
  const StatusOr<McfsInstance> huge = ReadInstance(
      &graph_, WriteFile("hugem.mcfs", "MCFS 1\n888888888888 1 1\n"));
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kInvalidInput);
}

// -------------------------------------------------------------- solutions

TEST(SolutionRobustnessTest, TypedErrorsForCorruptFiles) {
  const StatusOr<McfsSolution> missing = ReadSolution("/no/such/file");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  struct Case {
    const char* name;
    const char* content;
  };
  const Case cases[] = {
      {"empty", ""},
      {"magic", "NOPE 1\n"},
      {"truncated header", "MCFSSOL 1\n"},
      {"bad header", "MCFSSOL 1\nx y z w\n"},
      {"nan objective", "MCFSSOL 1\n1 1 nan 1\n0\n0 1.0\n"},
      {"selected count mismatch", "MCFSSOL 1\n2 1 5.0 1\n0\n0 1.0\n"},
      {"negative selected", "MCFSSOL 1\n1 1 5.0 1\n-2\n0 1.0\n"},
      {"truncated assignments", "MCFSSOL 1\n2 3 5.0 1\n0 1\n0 1.0\n"},
      {"negative distance", "MCFSSOL 1\n1 1 5.0 1\n0\n0 -2.0\n"},
      {"nan distance", "MCFSSOL 1\n1 1 5.0 1\n0\n0 nan\n"},
      {"assignment below -1", "MCFSSOL 1\n1 1 5.0 1\n0\n-7 1.0\n"},
      {"over-large m", "MCFSSOL 1\n0 777777777777 5.0 0\n\n"},
  };
  for (const Case& c : cases) {
    const StatusOr<McfsSolution> solution =
        ReadSolution(WriteFile("sol.mcfs", c.content));
    ASSERT_FALSE(solution.ok()) << c.name;
    EXPECT_EQ(solution.status().code(), StatusCode::kInvalidInput) << c.name;
  }
}

// The solution-vs-instance consistency check: a structurally valid file
// can still disagree with the instance it is loaded for.
TEST(SolutionRobustnessTest, ConsistencyAgainstInstance) {
  Rng rng(7);
  testing_util::RandomInstance ri =
      testing_util::MakeRandomInstance(30, 12, 6, 3, 4, rng);
  McfsSolution solution;
  solution.selected = {0, 1, 2};
  solution.assignment.assign(ri.instance.m(), 0);
  solution.distances.assign(ri.instance.m(), 1.0);
  solution.feasible = true;
  EXPECT_TRUE(CheckSolutionAgainstInstance(solution, ri.instance).ok());

  McfsSolution wrong_m = solution;
  wrong_m.assignment.push_back(0);
  wrong_m.distances.push_back(1.0);
  EXPECT_EQ(CheckSolutionAgainstInstance(wrong_m, ri.instance).code(),
            StatusCode::kInvalidInput);

  McfsSolution over_budget = solution;
  over_budget.selected = {0, 1, 2, 3};  // k = 3
  EXPECT_EQ(CheckSolutionAgainstInstance(over_budget, ri.instance).code(),
            StatusCode::kInvalidInput);

  McfsSolution bad_index = solution;
  bad_index.selected = {0, 1, 99};  // l = 6
  EXPECT_EQ(CheckSolutionAgainstInstance(bad_index, ri.instance).code(),
            StatusCode::kInvalidInput);

  McfsSolution duplicate = solution;
  duplicate.selected = {0, 1, 1};
  EXPECT_EQ(CheckSolutionAgainstInstance(duplicate, ri.instance).code(),
            StatusCode::kInvalidInput);

  McfsSolution unselected = solution;
  unselected.assignment[0] = 5;  // facility 5 exists but is not selected
  EXPECT_EQ(CheckSolutionAgainstInstance(unselected, ri.instance).code(),
            StatusCode::kInvalidInput);

  McfsSolution out_of_range = solution;
  out_of_range.assignment[0] = 42;
  EXPECT_EQ(CheckSolutionAgainstInstance(out_of_range, ri.instance).code(),
            StatusCode::kInvalidInput);

  McfsSolution unassigned = solution;
  unassigned.assignment[0] = -1;
  EXPECT_TRUE(CheckSolutionAgainstInstance(unassigned, ri.instance).ok());
}

// Round trips still work through the Status API.
TEST(SolutionRobustnessTest, StatusApiRoundTrip) {
  Rng rng(21);
  const Graph graph = testing_util::RandomGraph(15, 20, rng);
  const std::string gpath = TempPath("rt.graph");
  ASSERT_TRUE(WriteGraph(graph, gpath).ok());
  const StatusOr<Graph> loaded = ReadGraph(gpath);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), graph.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), graph.NumEdges());
}

}  // namespace
}  // namespace mcfs
