#include "mcfs/graph/dijkstra.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mcfs/graph/generators.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::FloydWarshall;
using testing_util::RandomDisconnectedGraph;
using testing_util::RandomGraph;

TEST(DijkstraTest, PathGraphDistances) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.5);
  builder.AddEdge(1, 2, 2.5);
  builder.AddEdge(2, 3, 3.0);
  const Graph graph = builder.Build();
  const std::vector<double> dist = ShortestPathsFrom(graph, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.5);
  EXPECT_DOUBLE_EQ(dist[2], 4.0);
  EXPECT_DOUBLE_EQ(dist[3], 7.0);
}

TEST(DijkstraTest, UnreachableNodesAreInfinite) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  const std::vector<double> dist = ShortestPathsFrom(graph, 0);
  EXPECT_EQ(dist[2], kInfDistance);
  EXPECT_EQ(dist[3], kInfDistance);
}

class DijkstraOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraOracleTest, MatchesFloydWarshall) {
  Rng rng(100 + GetParam());
  const int n = 5 + static_cast<int>(rng.UniformInt(0, 40));
  const Graph graph = GetParam() % 3 == 0
                          ? RandomDisconnectedGraph(n, 2 + n % 3, rng)
                          : RandomGraph(n, n, rng);
  const auto oracle = FloydWarshall(graph);
  for (NodeId s = 0; s < n; s += 3) {
    const std::vector<double> dist = ShortestPathsFrom(graph, s);
    for (NodeId v = 0; v < n; ++v) {
      if (oracle[s][v] == kInfDistance) {
        EXPECT_EQ(dist[v], kInfDistance);
      } else {
        EXPECT_NEAR(dist[v], oracle[s][v], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, DijkstraOracleTest,
                         ::testing::Range(0, 25));

TEST(DijkstraWithinRadiusTest, SettlesOnlyWithinRadiusInOrder) {
  Rng rng(7);
  const Graph graph = RandomGraph(60, 80, rng);
  const std::vector<double> full = ShortestPathsFrom(graph, 0);
  const double radius = 8.0;
  const std::vector<SettledNode> settled =
      DijkstraWithinRadius(graph, 0, radius);
  double prev = 0.0;
  for (const SettledNode& s : settled) {
    EXPECT_LE(prev, s.distance + 1e-12);
    EXPECT_LE(s.distance, radius);
    EXPECT_NEAR(s.distance, full[s.node], 1e-9);
    prev = s.distance;
  }
  // Every node within the radius must be present.
  size_t expected = 0;
  for (const double d : full) {
    if (d <= radius) ++expected;
  }
  EXPECT_EQ(settled.size(), expected);
}

TEST(MultiSourceDijkstraTest, NearestSourceAndDistance) {
  Rng rng(9);
  const Graph graph = RandomGraph(50, 60, rng);
  const std::vector<NodeId> sources = {3, 17, 42};
  const MultiSourceResult msd = MultiSourceDijkstra(graph, sources);
  std::vector<std::vector<double>> per_source;
  for (const NodeId s : sources) {
    per_source.push_back(ShortestPathsFrom(graph, s));
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    double best = kInfDistance;
    for (const auto& dist : per_source) best = std::min(best, dist[v]);
    EXPECT_NEAR(msd.distance[v], best, 1e-9);
    if (best != kInfDistance) {
      EXPECT_NEAR(per_source[msd.nearest_index[v]][v], best, 1e-9);
    }
  }
}

class IncrementalDijkstraTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDijkstraTest, SettlesAllNodesInSortedOrder) {
  Rng rng(200 + GetParam());
  const int n = 5 + static_cast<int>(rng.UniformInt(0, 60));
  const Graph graph = RandomGraph(n, n / 2, rng);
  const std::vector<double> full = ShortestPathsFrom(graph, 0);

  IncrementalDijkstra inc(&graph, 0);
  double prev = 0.0;
  int count = 0;
  while (true) {
    const double peek = inc.PeekNextDistance();
    const std::optional<SettledNode> s = inc.NextSettled();
    if (!s.has_value()) {
      EXPECT_EQ(peek, kInfDistance);
      break;
    }
    EXPECT_NEAR(peek, s->distance, 1e-12);
    EXPECT_LE(prev, s->distance + 1e-12);
    EXPECT_NEAR(s->distance, full[s->node], 1e-9);
    EXPECT_NEAR(inc.SettledDistance(s->node), s->distance, 1e-12);
    prev = s->distance;
    ++count;
  }
  EXPECT_EQ(count, n);  // RandomGraph is connected
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, IncrementalDijkstraTest,
                         ::testing::Range(0, 20));

// Flat-map kernel equivalence: a fully drained IncrementalDijkstra must
// reproduce ShortestPathsFrom exactly on random clustered graphs
// (including unreachable nodes staying unsettled and the sparse maps
// surviving growth past their initial capacity).
class IncrementalDijkstraClusteredTest : public ::testing::TestWithParam<int> {
};

TEST_P(IncrementalDijkstraClusteredTest, FullyDrainedMatchesShortestPaths) {
  SyntheticNetworkOptions options;
  options.num_nodes = 300 + 40 * GetParam();
  options.alpha = 1.4;
  options.num_clusters = 2 + GetParam() % 5;
  options.seed = 900 + GetParam();
  const Graph graph = GenerateSyntheticNetwork(options);
  Rng rng(300 + GetParam());
  const NodeId source =
      static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1));
  const std::vector<double> full = ShortestPathsFrom(graph, source);

  IncrementalDijkstra inc(&graph, source);
  std::vector<bool> settled(graph.NumNodes(), false);
  double prev = 0.0;
  while (std::optional<SettledNode> s = inc.NextSettled()) {
    ASSERT_FALSE(settled[s->node]) << "node settled twice: " << s->node;
    settled[s->node] = true;
    EXPECT_LE(prev, s->distance + 1e-12);
    EXPECT_NEAR(s->distance, full[s->node], 1e-9);
    EXPECT_NEAR(inc.SettledDistance(s->node), s->distance, 1e-12);
    prev = s->distance;
  }
  // Exactly the reachable nodes were settled; the rest report infinity.
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    EXPECT_EQ(settled[v], full[v] != kInfDistance) << v;
    if (!settled[v]) EXPECT_EQ(inc.SettledDistance(v), kInfDistance);
  }
  EXPECT_EQ(inc.num_settled(),
            static_cast<size_t>(std::count_if(
                full.begin(), full.end(),
                [](double d) { return d != kInfDistance; })));
}

INSTANTIATE_TEST_SUITE_P(RandomClusteredSweep, IncrementalDijkstraClusteredTest,
                         ::testing::Range(0, 10));

TEST(IncrementalDijkstraTest, InterleavedInstancesAreIndependent) {
  Rng rng(5);
  const Graph graph = RandomGraph(40, 40, rng);
  const std::vector<double> from0 = ShortestPathsFrom(graph, 0);
  const std::vector<double> from5 = ShortestPathsFrom(graph, 5);
  IncrementalDijkstra a(&graph, 0);
  IncrementalDijkstra b(&graph, 5);
  for (int step = 0; step < 40; ++step) {
    const auto sa = a.NextSettled();
    const auto sb = b.NextSettled();
    ASSERT_TRUE(sa.has_value());
    ASSERT_TRUE(sb.has_value());
    EXPECT_NEAR(sa->distance, from0[sa->node], 1e-9);
    EXPECT_NEAR(sb->distance, from5[sb->node], 1e-9);
  }
}

}  // namespace
}  // namespace mcfs
