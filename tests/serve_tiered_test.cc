// Tiered serving contract (DESIGN.md §4.14): requests under a tight
// max_latency_ms SLA are answered inline by the instant responder as
// tier == "fast" — verifier-checked, quality-bounded — while the full
// WMA runs in the background and upgrades the cached fast entry in
// place (same key, same epoch, same trace id). Also covers the riders:
// the lossless EWMA teach-in, the degenerate quality-bound sentinel,
// and the shutdown flag that distinguishes "stop retrying" from a
// live service hinting retry_after_ms == 0.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/graph.h"
#include "mcfs/serve/solver_service.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

struct ServeFixture {
  testing_util::RandomInstance ri;

  explicit ServeFixture(uint64_t seed) {
    Rng rng(seed);
    ri = testing_util::MakeRandomInstance(200, 60, 30, 12, 15, rng);
    ri.instance.graph = &ri.graph;
  }

  const McfsInstance& catalog() const { return ri.instance; }

  McfsInstance RequestInstance(const SolveRequest& request) const {
    McfsInstance instance;
    instance.graph = catalog().graph;
    instance.customers = request.customers;
    instance.k = request.k;
    if (request.facility_subset.empty()) {
      instance.facility_nodes = catalog().facility_nodes;
      instance.capacities = catalog().capacities;
    } else {
      for (const int idx : request.facility_subset) {
        instance.facility_nodes.push_back(catalog().facility_nodes[idx]);
        instance.capacities.push_back(catalog().capacities[idx]);
      }
    }
    return instance;
  }

  std::unique_ptr<SolverService> MakeService(
      const ServiceOptions& options = {}) const {
    return std::make_unique<SolverService>(
        catalog().graph, catalog().facility_nodes, catalog().capacities,
        options);
  }
};

bool SameSolution(const McfsSolution& a, const McfsSolution& b) {
  return a.selected == b.selected && a.assignment == b.assignment &&
         a.distances == b.distances && a.objective == b.objective &&
         a.feasible == b.feasible && a.termination == b.termination;
}

// Options that make the admission estimator believe a full solve takes
// 10 seconds, so any request with a tight SLA deterministically goes to
// the instant responder.
ServiceOptions SlowEstimateOptions() {
  ServiceOptions options;
  options.expected_solve_ms = 10000.0;
  return options;
}

SolveRequest SlaRequest(const ServeFixture& fx, int64_t max_latency_ms = 1) {
  SolveRequest request;
  request.customers = fx.catalog().customers;
  request.k = fx.catalog().k;
  request.max_latency_ms = max_latency_ms;
  return request;
}

TEST(ServeTiered, FastTierServesUnderTightSla) {
  ServeFixture fx(21);
  auto service = fx.MakeService(SlowEstimateOptions());

  const SolveRequest request = SlaRequest(fx);
  const SolveResponse response = service->SolveSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.tier, "fast");
  EXPECT_FALSE(response.cache_hit);
  EXPECT_TRUE(response.verify_ran);
  EXPECT_TRUE(response.verify_ok);
  EXPECT_TRUE(response.solution.feasible);
  // The bound is a real ratio (>= 1) or the degenerate sentinel — never
  // the "no bound computed" 0.
  EXPECT_TRUE(response.quality_bound >= 1.0 ||
              response.quality_bound == kDegenerateQualityBound)
      << response.quality_bound;

  // The verifier's verdict holds from first principles too.
  const VerifyReport verdict =
      VerifySolution(fx.RequestInstance(request), response.solution);
  EXPECT_TRUE(verdict.ok);

  const ServiceReport report = service->Report();
  EXPECT_GE(report.fast_responses, 1);
  EXPECT_EQ(report.latency_fast.count, 1);
  service->DrainRefinements();
}

TEST(ServeTiered, FastAnswersVerifierFeasibleAcrossServeThreads) {
  ServeFixture fx(22);
  const std::vector<NodeId>& all = fx.catalog().customers;
  for (const int serve_threads : {1, 2, 8}) {
    ServiceOptions options = SlowEstimateOptions();
    options.serve_threads = serve_threads;
    options.cache_capacity = 0;  // every fast request really answers
    auto service = fx.MakeService(options);

    std::vector<SolveRequest> requests;
    requests.push_back(SlaRequest(fx));
    SolveRequest fewer = SlaRequest(fx);
    fewer.customers.assign(all.begin(), all.begin() + 20);
    fewer.k = 6;
    requests.push_back(fewer);

    std::vector<std::shared_ptr<ResponseHandle>> handles;
    for (const SolveRequest& request : requests) {
      handles.push_back(service->Submit(request));
    }
    for (size_t r = 0; r < requests.size(); ++r) {
      const SolveResponse& response = handles[r]->Wait();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ASSERT_EQ(response.tier, "fast")
          << "request " << r << " at serve_threads " << serve_threads;
      EXPECT_TRUE(response.verify_ok);
      const VerifyReport verdict =
          VerifySolution(fx.RequestInstance(requests[r]), response.solution);
      EXPECT_TRUE(verdict.ok)
          << "request " << r << " at serve_threads " << serve_threads;
    }
  }
}

TEST(ServeTiered, RefinementUpgradesCacheEntryInPlace) {
  ServeFixture fx(23);
  auto service = fx.MakeService(SlowEstimateOptions());

  const SolveRequest request = SlaRequest(fx);
  const SolveResponse fast = service->SolveSync(request);
  ASSERT_TRUE(fast.status.ok()) << fast.status.ToString();
  ASSERT_EQ(fast.tier, "fast");

  // Before the refinement drains, the entry is present at tier "fast"
  // under this request's trace id. (The refiner may already have run;
  // accept either tier but the identity must hold.)
  const CacheProbe before = service->ProbeCache(request);
  ASSERT_TRUE(before.present);
  EXPECT_EQ(before.epoch, fast.epoch);
  EXPECT_EQ(before.trace_id, fast.trace_id);

  service->DrainRefinements();

  // Upgraded in place: same key, same epoch, same trace id, converged
  // tier, bound cleared.
  const CacheProbe after = service->ProbeCache(request);
  ASSERT_TRUE(after.present);
  EXPECT_EQ(after.tier, "full");
  EXPECT_EQ(after.epoch, fast.epoch);
  EXPECT_EQ(after.trace_id, fast.trace_id);
  EXPECT_EQ(after.quality_bound, 0.0);

  const ServiceReport report = service->Report();
  EXPECT_EQ(report.refines_enqueued, 1);
  EXPECT_EQ(report.refine_runs, 1);
  EXPECT_EQ(report.refine_upgrades, 1);
  EXPECT_EQ(report.refine_discards, 0);

  // A later hit on the same identity serves the converged answer —
  // bit-identical to a direct SolveWma — even to another SLA request.
  const SolveResponse hit = service->SolveSync(request);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.tier, "full");
  EXPECT_EQ(hit.quality_bound, 0.0);
  const StatusOr<WmaResult> direct = SolveWma(fx.RequestInstance(request));
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameSolution(hit.solution, direct.value().solution));
}

TEST(ServeTiered, RefineFalseIsFinalAndNeverCached) {
  ServeFixture fx(24);
  auto service = fx.MakeService(SlowEstimateOptions());

  SolveRequest request = SlaRequest(fx);
  request.refine = false;
  const SolveResponse fast = service->SolveSync(request);
  ASSERT_TRUE(fast.status.ok()) << fast.status.ToString();
  ASSERT_EQ(fast.tier, "fast");

  service->DrainRefinements();
  const CacheProbe probe = service->ProbeCache(request);
  EXPECT_FALSE(probe.present);
  const ServiceReport report = service->Report();
  EXPECT_EQ(report.refines_enqueued, 0);
  EXPECT_EQ(report.refine_runs, 0);
  EXPECT_EQ(report.refine_upgrades, 0);
}

TEST(ServeTiered, SubsetSlaRequestFallsThroughToFullSolve) {
  ServeFixture fx(25);
  auto service = fx.MakeService(SlowEstimateOptions());

  SolveRequest request = SlaRequest(fx);
  for (int j = 0; j < fx.catalog().l(); j += 2) {
    request.facility_subset.push_back(j);
  }
  const SolveResponse response = service->SolveSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  // The instant responder only has precomputed distances for the full
  // catalog; a subset SLA request trades the SLA for fidelity.
  EXPECT_EQ(response.tier, "full");
  const StatusOr<WmaResult> direct = SolveWma(fx.RequestInstance(request));
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameSolution(response.solution, direct.value().solution));
  EXPECT_GE(service->Report().fast_fallthroughs, 1);
}

TEST(ServeTiered, LooseSlaTakesTheFullPathWhenEstimateFits) {
  ServeFixture fx(26);
  ServiceOptions options;
  options.expected_solve_ms = 0.001;  // estimator: solves are instant
  auto service = fx.MakeService(options);

  const SolveRequest request = SlaRequest(fx, /*max_latency_ms=*/100000);
  const SolveResponse response = service->SolveSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.tier, "full");
  const StatusOr<WmaResult> direct = SolveWma(fx.RequestInstance(request));
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameSolution(response.solution, direct.value().solution));
  EXPECT_EQ(service->Report().fast_responses, 0);
}

// Concurrent SLA + full traffic on the same identity set: every OK
// response is internally consistent (a fast answer carries its bound
// and verifier blessing; a full answer carries neither), and after the
// refiner drains every cached entry reads converged — readers never
// observe a torn upgrade.
TEST(ServeTiered, ConcurrentUpgradesNeverTearAcrossServeThreads) {
  ServeFixture fx(27);
  const std::vector<NodeId>& all = fx.catalog().customers;
  for (const int serve_threads : {1, 2, 8}) {
    ServiceOptions options = SlowEstimateOptions();
    options.serve_threads = serve_threads;
    auto service = fx.MakeService(options);

    // Three request identities, hit by both SLA and full submitters.
    std::vector<SolveRequest> identities;
    for (int i = 0; i < 3; ++i) {
      SolveRequest request;
      request.customers.assign(all.begin(), all.begin() + 20 + 5 * i);
      request.k = 6 + i;
      identities.push_back(request);
    }

    std::atomic<int> torn{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&, t] {
        for (int i = 0; i < 6; ++i) {
          SolveRequest request = identities[(t + i) % identities.size()];
          if ((t + i) % 2 == 0) request.max_latency_ms = 1;
          const SolveResponse response =
              service->SolveSync(std::move(request));
          if (!response.status.ok()) continue;
          if (response.tier == "fast") {
            if (!(response.verify_ran && response.verify_ok &&
                  response.quality_bound != 0.0)) {
              torn++;
            }
          } else if (response.tier == "full") {
            if (response.quality_bound != 0.0) torn++;
          } else {
            torn++;  // no degraded traffic in this test
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    EXPECT_EQ(torn.load(), 0) << "serve_threads " << serve_threads;

    service->DrainRefinements();
    for (const SolveRequest& request : identities) {
      const CacheProbe probe = service->ProbeCache(request);
      if (!probe.present) continue;  // identity only saw refine-less paths
      EXPECT_EQ(probe.tier, "full") << "serve_threads " << serve_threads;
      const SolveResponse hit = service->SolveSync(request);
      ASSERT_TRUE(hit.status.ok());
      const StatusOr<WmaResult> direct =
          SolveWma(fx.RequestInstance(request));
      ASSERT_TRUE(direct.ok());
      EXPECT_TRUE(SameSolution(hit.solution, direct.value().solution));
    }
  }
}

// Satellite regression: the EWMA read-modify-write must not lose
// concurrent updates. With sample 0.0 every update is exactly
// v' = 0.8 * v, which commutes — so after n hammered updates from any
// number of threads the value must bit-equal the sequential replay
// 1000 * 0.8^n. The old load-then-store version loses updates under
// contention (each loss = one missing multiply = off by 1.25x); under
// TSan it is a reported data race.
TEST(ServeTiered, EwmaTeachInIsLosslessUnderContention) {
  std::atomic<double> ewma{1000.0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) UpdateEwma(ewma, 0.0);
    });
  }
  for (std::thread& t : threads) t.join();

  double expected = 1000.0;
  for (int i = 0; i < kThreads * kPerThread; ++i) expected *= 0.8;
  EXPECT_EQ(ewma.load(), expected);
}

// Satellite regression: co-located customers drive the nearest-facility
// lower bound to 0 while capacity overflow forces a positive objective.
// The quality bound must be the defined sentinel, not inf (which JSON
// renders null and comparisons misread).
TEST(ServeTiered, CoLocatedOverflowYieldsDegenerateBoundSentinel) {
  // Path 0 - 1 - 2. Three customers on node 0; the facility there holds
  // one, so two overflow to node 2 at distance 2. Lower bound: all
  // three at their nearest facility (node 0, distance 0) = 0.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  Graph graph = builder.Build();

  ServiceOptions options;
  options.expected_solve_ms = 10000.0;
  SolverService service(&graph, {0, 2}, {1, 5}, options);

  SolveRequest request;
  request.customers = {0, 0, 0};
  request.k = 2;
  request.max_latency_ms = 1;
  const SolveResponse response = service.SolveSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.tier, "fast");
  EXPECT_GT(response.solution.objective, 0.0);
  EXPECT_EQ(response.quality_bound, kDegenerateQualityBound);
  service.DrainRefinements();
}

// Satellite regression: clients key "stop retrying" on the shutdown
// flag, not on retry_after_ms == 0 — a live service's hard queue-full
// rejection carries a positive hint and shutdown == false, while the
// shut-down rejection is the only one with shutdown == true.
TEST(ServeTiered, ShutdownFlagDistinguishesFutileFromRetryableRejection) {
  ServeFixture fx(28);

  {
    ServiceOptions options;
    options.queue_depth = 0;  // every admission is a hard queue-full
    auto service = fx.MakeService(options);
    SolveRequest request;
    request.customers = fx.catalog().customers;
    request.k = fx.catalog().k;
    const SolveResponse rejected = service->SolveSync(request);
    ASSERT_EQ(rejected.status.code(), StatusCode::kUnavailable);
    EXPECT_FALSE(rejected.shutdown);
    EXPECT_GE(rejected.retry_after_ms, 1);
  }

  auto service = fx.MakeService();
  service->Shutdown();
  SolveRequest request;
  request.customers = fx.catalog().customers;
  request.k = fx.catalog().k;
  const SolveResponse rejected = service->SolveSync(request);
  ASSERT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(rejected.shutdown);
  EXPECT_EQ(rejected.retry_after_ms, 0);
}

TEST(ServeTiered, ReportAndSnapshotCarryTieredSchema) {
  ServeFixture fx(29);
  auto service = fx.MakeService(SlowEstimateOptions());
  const SolveResponse fast = service->SolveSync(SlaRequest(fx));
  ASSERT_EQ(fast.tier, "fast");
  service->DrainRefinements();

  const std::string report = service->Report().Json();
  for (const char* key :
       {"\"tiered\"", "\"fast_responses\"", "\"fast_fallthroughs\"",
        "\"refines_enqueued\"", "\"refine_runs\"", "\"refine_upgrades\"",
        "\"refine_discards\"", "\"latency_by_tier\"", "\"fast\"",
        "\"full\"", "\"degraded\""}) {
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }

  const ServiceSnapshot snap = service->DebugSnapshot();
  EXPECT_GE(snap.fast, 1);
  EXPECT_GE(snap.upgrades, 1);
  EXPECT_EQ(snap.refine_backlog, 0);
  const std::string snap_json = snap.Json();
  for (const char* key :
       {"\"fast\"", "\"upgrades\"", "\"refine_backlog\""}) {
    EXPECT_NE(snap_json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace mcfs
