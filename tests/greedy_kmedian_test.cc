#include "mcfs/baselines/greedy_kmedian.h"

#include <gtest/gtest.h>

#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

TEST(GreedyKMedianTest, PicksTheObviousCenter) {
  // Star: customers on leaves, one central facility candidate plus a
  // remote one; k=1 must take the center.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(0, 2, 1.0);
  builder.AddEdge(0, 3, 1.0);
  builder.AddEdge(3, 4, 10.0);
  builder.AddEdge(4, 5, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {1, 2, 3};
  instance.facility_nodes = {0, 5};
  instance.capacities = {5, 5};
  instance.k = 1;
  const McfsSolution solution = RunGreedyKMedian(instance);
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.selected, (std::vector<int>{0}));
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
}

class GreedyKMedianValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyKMedianValidityTest, SolutionsAreValid) {
  Rng rng(700 + GetParam());
  const int parts = 1 + GetParam() % 2;
  RandomInstance ri = MakeRandomInstance(60, 12, 10, 4, 6, rng, parts);
  const McfsSolution solution = RunGreedyKMedian(ri.instance);
  const ValidationResult validation =
      ValidateSolution(ri.instance, solution, true);
  EXPECT_TRUE(validation.ok) << validation.message;
  if (IsFeasible(ri.instance)) EXPECT_TRUE(solution.feasible);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, GreedyKMedianValidityTest,
                         ::testing::Range(0, 15));

TEST(GreedyKMedianTest, ReasonableQualityVsExact) {
  Rng rng(31);
  int compared = 0;
  double ratio_sum = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    RandomInstance ri = MakeRandomInstance(50, 10, 7, 3, 6, rng);
    if (!IsFeasible(ri.instance)) continue;
    const McfsSolution greedy = RunGreedyKMedian(ri.instance);
    const ExactResult exact = SolveByEnumeration(ri.instance);
    if (!greedy.feasible || !exact.solution.feasible) continue;
    EXPECT_GE(greedy.objective, exact.solution.objective - 1e-6);
    ratio_sum += greedy.objective / exact.solution.objective;
    ++compared;
  }
  ASSERT_GT(compared, 2);
  EXPECT_LT(ratio_sum / compared, 2.5);  // sane aggregate quality
}

TEST(GreedyKMedianTest, RefusesOversizedInstances) {
  Rng rng(32);
  RandomInstance ri = MakeRandomInstance(60, 12, 10, 4, 6, rng);
  GreedyKMedianOptions options;
  options.max_matrix_entries = 10;
  const McfsSolution solution = RunGreedyKMedian(ri.instance, options);
  EXPECT_FALSE(solution.feasible);
  EXPECT_TRUE(solution.selected.empty());
}

}  // namespace
}  // namespace mcfs
