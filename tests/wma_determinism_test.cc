// Property test for the parallel-prefetch determinism contract: RunWma
// (and RunUniformFirstWma) must return bit-identical solutions for any
// thread count, because prefetching only changes *when* candidate
// distances are computed, never *which* entry the matcher consumes.
// The same contract extends to the obs layer's logical counters
// (everything outside the exec/ prefix): identical values for any
// thread count.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcfs/common/random.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/generators.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/workload/workload.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

McfsInstance MakeInstanceOnGraph(const Graph& graph, int m, int l, int k,
                                 int max_capacity, Rng& rng) {
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = SampleDistinctNodes(graph, m, rng);
  instance.facility_nodes = SampleDistinctNodes(graph, l, rng);
  for (int j = 0; j < l; ++j) {
    instance.capacities.push_back(
        static_cast<int>(rng.UniformInt(1, max_capacity)));
  }
  instance.k = k;
  return instance;
}

void ExpectIdenticalAcrossThreadCounts(const McfsInstance& instance,
                                       bool naive, bool uniform_first) {
  WmaOptions base;
  base.naive = naive;
  base.threads = 1;
  const WmaResult reference = uniform_first
                                  ? RunUniformFirstWma(instance, base)
                                  : RunWma(instance, base);
  for (const int threads : kThreadCounts) {
    WmaOptions options = base;
    options.threads = threads;
    const WmaResult result = uniform_first
                                 ? RunUniformFirstWma(instance, options)
                                 : RunWma(instance, options);
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " naive=" + std::to_string(naive) +
                 " uf=" + std::to_string(uniform_first));
    EXPECT_EQ(result.solution.feasible, reference.solution.feasible);
    // Bit-identical, not merely close: determinism is the contract.
    EXPECT_EQ(result.solution.objective, reference.solution.objective);
    EXPECT_EQ(result.solution.selected, reference.solution.selected);
    EXPECT_EQ(result.solution.assignment, reference.solution.assignment);
    EXPECT_EQ(result.solution.distances, reference.solution.distances);
  }
}

TEST(WmaDeterminismTest, UniformNetworkExactMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, UniformNetworkNaiveMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/true,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, ClusteredNetworkExactMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 800;
  network.alpha = 2.0;
  network.num_clusters = 8;
  network.seed = 33;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(34);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/100, /*l=*/150, /*k=*/20,
                          /*max_capacity=*/6, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, ClusteredNetworkNaiveMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 800;
  network.alpha = 2.0;
  network.num_clusters = 8;
  network.seed = 33;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(34);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/100, /*l=*/150, /*k=*/20,
                          /*max_capacity=*/6, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/true,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, UniformFirstVariant) {
  SyntheticNetworkOptions network;
  network.num_nodes = 500;
  network.alpha = 2.0;
  network.num_clusters = 5;
  network.seed = 55;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(56);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/60, /*l=*/90, /*k=*/12,
                          /*max_capacity=*/7, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/true);
}

// Runs WMA with metrics on and returns the logical counter map (the
// exec/ family measures physical execution — prefetch hits, pool
// dispatch — and is exempt from the determinism contract by design).
std::map<std::string, int64_t> LogicalCounters(const McfsInstance& instance,
                                               const WmaOptions& base,
                                               int threads) {
  obs::ResetMetrics();
  WmaOptions options = base;
  options.metrics = true;
  options.threads = threads;
  RunWma(instance, options);
  const obs::MetricsSnapshot snapshot = obs::SnapshotMetrics();
  std::map<std::string, int64_t> logical;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("exec/", 0) != 0) logical[name] = value;
  }
  return logical;
}

TEST(WmaDeterminismTest, LogicalCountersIdenticalAcrossThreadCounts) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);

  WmaOptions base;
  const std::map<std::string, int64_t> reference =
      LogicalCounters(instance, base, /*threads=*/1);

  // The instrumented hot paths actually fired.
  EXPECT_GT(reference.at("stream/nodes_settled"), 0);
  EXPECT_GT(reference.at("stream/edges_relaxed"), 0);
  EXPECT_GT(reference.at("matcher/edges_materialized"), 0);
  EXPECT_GT(reference.at("matcher/theorem1_prunes"), 0);
  EXPECT_GT(reference.at("cover/candidates_scanned"), 0);
  EXPECT_GT(reference.at("wma/iterations"), 0);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::map<std::string, int64_t> counters =
        LogicalCounters(instance, base, threads);
    EXPECT_EQ(counters, reference);
  }
  obs::EnableMetrics(false);
}

TEST(WmaDeterminismTest, NaiveLogicalCountersIdenticalAcrossThreadCounts) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);

  WmaOptions base;
  base.naive = true;
  const std::map<std::string, int64_t> reference =
      LogicalCounters(instance, base, /*threads=*/1);
  EXPECT_GT(reference.at("stream/nodes_settled"), 0);
  EXPECT_GT(reference.at("stream/candidates_popped"), 0);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(LogicalCounters(instance, base, threads), reference);
  }
  obs::EnableMetrics(false);
}

TEST(WmaDeterminismTest, RandomSparseInstancesSweep) {
  // Several small random instances, including capacity-tight ones where
  // demand growth iterates many times (more prefetch rounds).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    testing_util::RandomInstance random = testing_util::MakeRandomInstance(
        /*n=*/200, /*m=*/40, /*l=*/60, /*k=*/10, /*max_capacity=*/4, rng);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectIdenticalAcrossThreadCounts(random.instance, /*naive=*/false,
                                      /*uniform_first=*/false);
  }
}

}  // namespace
}  // namespace mcfs
