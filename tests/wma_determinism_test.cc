// Property test for the parallel-prefetch determinism contract: RunWma
// (and RunUniformFirstWma) must return bit-identical solutions for any
// thread count, because prefetching only changes *when* candidate
// distances are computed, never *which* entry the matcher consumes.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mcfs/common/random.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

McfsInstance MakeInstanceOnGraph(const Graph& graph, int m, int l, int k,
                                 int max_capacity, Rng& rng) {
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = SampleDistinctNodes(graph, m, rng);
  instance.facility_nodes = SampleDistinctNodes(graph, l, rng);
  for (int j = 0; j < l; ++j) {
    instance.capacities.push_back(
        static_cast<int>(rng.UniformInt(1, max_capacity)));
  }
  instance.k = k;
  return instance;
}

void ExpectIdenticalAcrossThreadCounts(const McfsInstance& instance,
                                       bool naive, bool uniform_first) {
  WmaOptions base;
  base.naive = naive;
  base.threads = 1;
  const WmaResult reference = uniform_first
                                  ? RunUniformFirstWma(instance, base)
                                  : RunWma(instance, base);
  for (const int threads : kThreadCounts) {
    WmaOptions options = base;
    options.threads = threads;
    const WmaResult result = uniform_first
                                 ? RunUniformFirstWma(instance, options)
                                 : RunWma(instance, options);
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " naive=" + std::to_string(naive) +
                 " uf=" + std::to_string(uniform_first));
    EXPECT_EQ(result.solution.feasible, reference.solution.feasible);
    // Bit-identical, not merely close: determinism is the contract.
    EXPECT_EQ(result.solution.objective, reference.solution.objective);
    EXPECT_EQ(result.solution.selected, reference.solution.selected);
    EXPECT_EQ(result.solution.assignment, reference.solution.assignment);
    EXPECT_EQ(result.solution.distances, reference.solution.distances);
  }
}

TEST(WmaDeterminismTest, UniformNetworkExactMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, UniformNetworkNaiveMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/true,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, ClusteredNetworkExactMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 800;
  network.alpha = 2.0;
  network.num_clusters = 8;
  network.seed = 33;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(34);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/100, /*l=*/150, /*k=*/20,
                          /*max_capacity=*/6, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, ClusteredNetworkNaiveMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 800;
  network.alpha = 2.0;
  network.num_clusters = 8;
  network.seed = 33;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(34);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/100, /*l=*/150, /*k=*/20,
                          /*max_capacity=*/6, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/true,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, UniformFirstVariant) {
  SyntheticNetworkOptions network;
  network.num_nodes = 500;
  network.alpha = 2.0;
  network.num_clusters = 5;
  network.seed = 55;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(56);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/60, /*l=*/90, /*k=*/12,
                          /*max_capacity=*/7, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/true);
}

TEST(WmaDeterminismTest, RandomSparseInstancesSweep) {
  // Several small random instances, including capacity-tight ones where
  // demand growth iterates many times (more prefetch rounds).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    testing_util::RandomInstance random = testing_util::MakeRandomInstance(
        /*n=*/200, /*m=*/40, /*l=*/60, /*k=*/10, /*max_capacity=*/4, rng);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectIdenticalAcrossThreadCounts(random.instance, /*naive=*/false,
                                      /*uniform_first=*/false);
  }
}

}  // namespace
}  // namespace mcfs
