// Property test for the parallel-prefetch determinism contract: RunWma
// (and RunUniformFirstWma) must return bit-identical solutions for any
// thread count, because prefetching only changes *when* candidate
// distances are computed, never *which* entry the matcher consumes.
// The same contract extends to the obs layer's logical counters
// (everything outside the exec/ prefix): identical values for any
// thread count.

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcfs/common/random.h"
#include "mcfs/core/wma.h"
#include "mcfs/flow/cost_scaling.h"
#include "mcfs/graph/generators.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/workload/workload.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

McfsInstance MakeInstanceOnGraph(const Graph& graph, int m, int l, int k,
                                 int max_capacity, Rng& rng) {
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = SampleDistinctNodes(graph, m, rng);
  instance.facility_nodes = SampleDistinctNodes(graph, l, rng);
  for (int j = 0; j < l; ++j) {
    instance.capacities.push_back(
        static_cast<int>(rng.UniformInt(1, max_capacity)));
  }
  instance.k = k;
  return instance;
}

void ExpectIdenticalAcrossThreadCounts(const McfsInstance& instance,
                                       bool naive, bool uniform_first) {
  WmaOptions base;
  base.naive = naive;
  base.threads = 1;
  const WmaResult reference = uniform_first
                                  ? RunUniformFirstWma(instance, base)
                                  : RunWma(instance, base);
  for (const int threads : kThreadCounts) {
    WmaOptions options = base;
    options.threads = threads;
    const WmaResult result = uniform_first
                                 ? RunUniformFirstWma(instance, options)
                                 : RunWma(instance, options);
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " naive=" + std::to_string(naive) +
                 " uf=" + std::to_string(uniform_first));
    EXPECT_EQ(result.solution.feasible, reference.solution.feasible);
    // Bit-identical, not merely close: determinism is the contract.
    EXPECT_EQ(result.solution.objective, reference.solution.objective);
    EXPECT_EQ(result.solution.selected, reference.solution.selected);
    EXPECT_EQ(result.solution.assignment, reference.solution.assignment);
    EXPECT_EQ(result.solution.distances, reference.solution.distances);
  }
}

TEST(WmaDeterminismTest, UniformNetworkExactMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, UniformNetworkNaiveMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/true,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, ClusteredNetworkExactMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 800;
  network.alpha = 2.0;
  network.num_clusters = 8;
  network.seed = 33;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(34);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/100, /*l=*/150, /*k=*/20,
                          /*max_capacity=*/6, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, ClusteredNetworkNaiveMatcher) {
  SyntheticNetworkOptions network;
  network.num_nodes = 800;
  network.alpha = 2.0;
  network.num_clusters = 8;
  network.seed = 33;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(34);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/100, /*l=*/150, /*k=*/20,
                          /*max_capacity=*/6, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/true,
                                    /*uniform_first=*/false);
}

TEST(WmaDeterminismTest, UniformFirstVariant) {
  SyntheticNetworkOptions network;
  network.num_nodes = 500;
  network.alpha = 2.0;
  network.num_clusters = 5;
  network.seed = 55;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(56);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/60, /*l=*/90, /*k=*/12,
                          /*max_capacity=*/7, rng);
  ExpectIdenticalAcrossThreadCounts(instance, /*naive=*/false,
                                    /*uniform_first=*/true);
}

// Runs WMA with metrics on and returns the logical counter map (the
// exec/ family measures physical execution — prefetch hits, pool
// dispatch — and is exempt from the determinism contract by design).
std::map<std::string, int64_t> LogicalCounters(const McfsInstance& instance,
                                               const WmaOptions& base,
                                               int threads) {
  obs::ResetMetrics();
  WmaOptions options = base;
  options.metrics = true;
  options.threads = threads;
  RunWma(instance, options);
  const obs::MetricsSnapshot snapshot = obs::SnapshotMetrics();
  std::map<std::string, int64_t> logical;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("exec/", 0) != 0) logical[name] = value;
  }
  return logical;
}

TEST(WmaDeterminismTest, LogicalCountersIdenticalAcrossThreadCounts) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);

  WmaOptions base;
  const std::map<std::string, int64_t> reference =
      LogicalCounters(instance, base, /*threads=*/1);

  // The instrumented hot paths actually fired.
  EXPECT_GT(reference.at("stream/nodes_settled"), 0);
  EXPECT_GT(reference.at("stream/edges_relaxed"), 0);
  EXPECT_GT(reference.at("matcher/edges_materialized"), 0);
  EXPECT_GT(reference.at("matcher/theorem1_prunes"), 0);
  EXPECT_GT(reference.at("cover/candidates_scanned"), 0);
  EXPECT_GT(reference.at("wma/iterations"), 0);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::map<std::string, int64_t> counters =
        LogicalCounters(instance, base, threads);
    EXPECT_EQ(counters, reference);
  }
  obs::EnableMetrics(false);
}

TEST(WmaDeterminismTest, NaiveLogicalCountersIdenticalAcrossThreadCounts) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);

  WmaOptions base;
  base.naive = true;
  const std::map<std::string, int64_t> reference =
      LogicalCounters(instance, base, /*threads=*/1);
  EXPECT_GT(reference.at("stream/nodes_settled"), 0);
  EXPECT_GT(reference.at("stream/candidates_popped"), 0);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(LogicalCounters(instance, base, threads), reference);
  }
  obs::EnableMetrics(false);
}

// The cost-scaling backend must reach the SSPA objective on the final
// assignment (the growth loop is SSPA under every backend, so the
// selection is identical) — and must itself be deterministic across
// thread counts.
TEST(WmaDeterminismTest, CostScalingBackendMatchesSspaAcrossThreadCounts) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);

  WmaOptions sspa_options;
  sspa_options.threads = 1;
  const WmaResult sspa = RunWma(instance, sspa_options);
  ASSERT_TRUE(sspa.solution.feasible);
  EXPECT_EQ(sspa.stats.matcher_backend, "sspa");

  const WmaResult* reference = nullptr;
  WmaResult first;
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    WmaOptions options;
    options.matcher = MatcherBackendKind::kCostScaling;
    options.threads = threads;
    const WmaResult result = RunWma(instance, options);
    EXPECT_EQ(result.stats.matcher_backend, "cost_scaling");
    EXPECT_TRUE(result.solution.feasible);
    EXPECT_EQ(result.solution.selected, sspa.solution.selected);
    EXPECT_NEAR(result.solution.objective, sspa.solution.objective,
                1e-9 * (1.0 + std::abs(sspa.solution.objective)));
    if (reference == nullptr) {
      first = result;
      reference = &first;
    } else {
      // Bit-identical across thread counts, like the SSPA contract.
      EXPECT_EQ(result.solution.objective, reference->solution.objective);
      EXPECT_EQ(result.solution.assignment, reference->solution.assignment);
    }
  }
}

// A warm seed offered to the cost-scaling backend is refused with the
// typed kUnsupported status and the final assignment runs cold — same
// objective as a warm SSPA epoch, refusal counted, nothing resumed.
TEST(WmaDeterminismTest, CostScalingRefusesWarmSeedAndFallsBackCold) {
  SyntheticNetworkOptions network;
  network.num_nodes = 600;
  network.alpha = 2.0;
  network.seed = 11;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(21);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/80, /*l=*/120, /*k=*/15,
                          /*max_capacity=*/8, rng);

  WmaOptions epoch0;
  epoch0.threads = 1;
  epoch0.export_warm_seed = true;
  const WmaResult cold = RunWma(instance, epoch0);
  ASSERT_TRUE(cold.solution.feasible);
  ASSERT_NE(cold.warm_seed, nullptr);
  EXPECT_EQ(cold.stats.warm_backend_refusals, 0);

  WmaOptions warm_sspa;
  warm_sspa.threads = 1;
  warm_sspa.warm_seed = cold.warm_seed;
  const WmaResult sspa = RunWma(instance, warm_sspa);
  ASSERT_TRUE(sspa.solution.feasible);
  EXPECT_TRUE(sspa.stats.warm_final_resumed);

  WmaOptions warm_cs = warm_sspa;
  warm_cs.matcher = MatcherBackendKind::kCostScaling;
  const WmaResult cs = RunWma(instance, warm_cs);
  EXPECT_TRUE(cs.solution.feasible);
  EXPECT_EQ(cs.stats.matcher_backend, "cost_scaling");
  EXPECT_GT(cs.stats.warm_backend_refusals, 0);
  EXPECT_FALSE(cs.stats.warm_final_resumed);
  EXPECT_NEAR(cs.solution.objective, sspa.solution.objective,
              1e-9 * (1.0 + std::abs(sspa.solution.objective)));
  // The refusal itself is the typed status, not a crash or a silent
  // downgrade to SSPA.
  const Status refusal = CostScalingMatcher::WarmSeedStatus();
  EXPECT_EQ(refusal.code(), StatusCode::kUnsupported);
}

// With export_warm_seed under the cost-scaling backend only the
// trajectory half is exported: cost scaling has no resumable matcher
// state, so final_assign stays empty and the next epoch re-matches
// from seeded streams.
TEST(WmaDeterminismTest, CostScalingExportsTrajectoryOnlySeed) {
  SyntheticNetworkOptions network;
  network.num_nodes = 500;
  network.alpha = 2.0;
  network.seed = 55;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(56);
  const McfsInstance instance =
      MakeInstanceOnGraph(graph, /*m=*/60, /*l=*/90, /*k=*/12,
                          /*max_capacity=*/7, rng);

  WmaOptions options;
  options.threads = 1;
  options.matcher = MatcherBackendKind::kCostScaling;
  options.export_warm_seed = true;
  const WmaResult result = RunWma(instance, options);
  ASSERT_TRUE(result.solution.feasible);
  ASSERT_NE(result.warm_seed, nullptr);
  EXPECT_FALSE(result.warm_seed->trajectory.customers.empty());
  EXPECT_TRUE(result.warm_seed->final_assign.customers.empty());

  // The trajectory-only seed still warms the next epoch (streams are
  // replayed; the final assignment just re-matches).
  WmaOptions next;
  next.threads = 1;
  next.warm_seed = result.warm_seed;
  const WmaResult warm = RunWma(instance, next);
  EXPECT_TRUE(warm.solution.feasible);
  EXPECT_FALSE(warm.stats.warm_final_resumed);
  EXPECT_GT(warm.stats.warm_stream_entries, 0);
  EXPECT_NEAR(warm.solution.objective, result.solution.objective,
              1e-9 * (1.0 + std::abs(result.solution.objective)));
}

TEST(WmaDeterminismTest, RandomSparseInstancesSweep) {
  // Several small random instances, including capacity-tight ones where
  // demand growth iterates many times (more prefetch rounds).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    testing_util::RandomInstance random = testing_util::MakeRandomInstance(
        /*n=*/200, /*m=*/40, /*l=*/60, /*k=*/10, /*max_capacity=*/4, rng);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectIdenticalAcrossThreadCounts(random.instance, /*naive=*/false,
                                      /*uniform_first=*/false);
  }
}

}  // namespace
}  // namespace mcfs
