#include "mcfs/flow/matcher.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "mcfs/flow/transport.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::DistanceMatrix;
using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

TEST(IncrementalMatcherTest, SingleCustomerPicksNearestFacility) {
  // Path graph 0-1-2-3 with unit weights; customer at 0, facilities at
  // 1 and 3.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  IncrementalMatcher matcher(&graph, {0}, {1, 3}, {1, 1});
  ASSERT_TRUE(matcher.FindPair(0));
  EXPECT_EQ(matcher.AssignedCount(0), 1);
  EXPECT_EQ(matcher.AssignedCount(1), 0);
  EXPECT_DOUBLE_EQ(matcher.TotalCost(), 1.0);
}

TEST(IncrementalMatcherTest, RewiresWhenCapacityForcesIt) {
  // Paper's Figure 3 flavor: two customers compete for a close facility
  // with capacity 1; optimal matching rewires the first customer.
  //   c0 --1-- f0 --1-- c1 --10-- f1
  // f0 capacity 1. c1's nearest is f0 (1); c0's nearest is f0 (1).
  // Optimal: one of them takes f0, other goes to f1. c0->f1 costs 12,
  // c1->f1 costs 10, c0->f0 costs 1 => cost 11.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);   // c0 - f0
  builder.AddEdge(1, 2, 1.0);   // f0 - c1
  builder.AddEdge(2, 3, 10.0);  // c1 - f1
  const Graph graph = builder.Build();
  IncrementalMatcher matcher(&graph, {0, 2}, {1, 3}, {1, 1});
  ASSERT_TRUE(matcher.FindPair(1));  // c1 grabs f0 first
  ASSERT_TRUE(matcher.FindPair(0));  // forces the rewire
  EXPECT_NEAR(matcher.TotalCost(), 11.0, 1e-9);
  EXPECT_EQ(matcher.AssignedCount(0), 1);
  EXPECT_EQ(matcher.AssignedCount(1), 1);
}

TEST(IncrementalMatcherTest, ReportsFailureWhenSaturated) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  const Graph graph = builder.Build();
  IncrementalMatcher matcher(&graph, {0, 2}, {1}, {1});
  EXPECT_TRUE(matcher.FindPair(0));
  EXPECT_FALSE(matcher.FindPair(1));  // capacity 1 exhausted
  EXPECT_EQ(matcher.CustomerMatchCount(1), 0);
}

TEST(IncrementalMatcherTest, DisconnectedCustomerFails) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  IncrementalMatcher matcher(&graph, {0, 2}, {1}, {5});
  EXPECT_TRUE(matcher.FindPair(0));
  EXPECT_FALSE(matcher.FindPair(1));  // node 2 cannot reach facility
}

TEST(IncrementalMatcherTest, MatchedPairsAndSigmaAgree) {
  Rng rng(7);
  RandomInstance ri = MakeRandomInstance(40, 12, 8, 4, 4, rng);
  IncrementalMatcher matcher(ri.instance.graph, ri.instance.customers,
                             ri.instance.facility_nodes,
                             ri.instance.capacities);
  matcher.MatchAllOnce();
  const std::vector<MatchedPair> pairs = matcher.MatchedPairs();
  int sigma_total = 0;
  for (int j = 0; j < matcher.num_facilities(); ++j) {
    const std::vector<int> customers = matcher.CustomersOf(j);
    sigma_total += static_cast<int>(customers.size());
    EXPECT_EQ(static_cast<int>(customers.size()), matcher.AssignedCount(j));
    EXPECT_LE(matcher.AssignedCount(j), matcher.Capacity(j));
  }
  EXPECT_EQ(sigma_total, static_cast<int>(pairs.size()));
}

// Property sweep: the lazily pruned incremental matching must equal the
// dense successive-shortest-path oracle, which in turn is checked
// against brute force elsewhere. Exercises Theorem 1's threshold.
class MatcherOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherOptimalityTest, MatchesDenseOracleCost) {
  Rng rng(1000 + GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(0, 50));
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 10));
  const int l = 2 + static_cast<int>(rng.UniformInt(0, 8));
  const int max_capacity = 1 + static_cast<int>(rng.UniformInt(0, 3));
  RandomInstance ri = MakeRandomInstance(n, m, l, /*k=*/l, max_capacity, rng);

  IncrementalMatcher matcher(ri.instance.graph, ri.instance.customers,
                             ri.instance.facility_nodes,
                             ri.instance.capacities);
  const bool matched_all = matcher.MatchAllOnce();

  const std::vector<double> cost = DistanceMatrix(ri.instance);
  const std::optional<TransportResult> oracle = SolveDenseTransport(
      ri.instance.m(), ri.instance.l(), cost, ri.instance.capacities);

  int64_t total_capacity = 0;
  for (const int c : ri.instance.capacities) total_capacity += c;
  if (!oracle.has_value()) {
    EXPECT_FALSE(matched_all);
    return;
  }
  ASSERT_TRUE(matched_all)
      << "oracle assigned everyone but the incremental matcher failed";
  EXPECT_NEAR(matcher.TotalCost(), oracle->cost,
              1e-6 * (1.0 + oracle->cost));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, MatcherOptimalityTest,
                         ::testing::Range(0, 60));

// Growing demands with interleaved customers must still be optimal for
// the induced demand vector: compare against the dense oracle on a
// customer list where each customer appears d_i times.
class MatcherDemandOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherDemandOptimalityTest, MultiDemandMatchesOracle) {
  Rng rng(5000 + GetParam());
  const int n = 15 + static_cast<int>(rng.UniformInt(0, 40));
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 5));
  const int l = 3 + static_cast<int>(rng.UniformInt(0, 6));
  RandomInstance ri = MakeRandomInstance(n, m, l, l, 3, rng);

  std::vector<int> demand(m);
  for (int i = 0; i < m; ++i) {
    demand[i] = 1 + static_cast<int>(rng.UniformInt(0, 2));
  }

  IncrementalMatcher matcher(ri.instance.graph, ri.instance.customers,
                             ri.instance.facility_nodes,
                             ri.instance.capacities);
  // Satisfy demands in a round-robin interleaving (as WMA iterations do).
  bool all_ok = true;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < m; ++i) {
      if (matcher.CustomerMatchCount(i) < demand[i] &&
          round < demand[i]) {
        if (!matcher.FindPair(i)) all_ok = false;
      }
    }
  }

  // Oracle: replicate customer i demand[i] times; forbid assigning two
  // replicas of the same customer to the same facility by brute force
  // enumeration on the expanded instance — the incremental matcher
  // never duplicates (customer, facility) pairs, so costs coincide when
  // duplication would not help. Skip cases where the oracle uses a
  // duplicate pair (possible when it is beneficial, which the expanded
  // dense model cannot express identically).
  std::vector<int> expanded_owner;
  std::vector<double> expanded_cost;
  const std::vector<double> cost = DistanceMatrix(ri.instance);
  for (int i = 0; i < m; ++i) {
    for (int r = 0; r < demand[i]; ++r) expanded_owner.push_back(i);
  }
  const int em = static_cast<int>(expanded_owner.size());
  expanded_cost.resize(static_cast<size_t>(em) * l);
  for (int e = 0; e < em; ++e) {
    for (int j = 0; j < l; ++j) {
      expanded_cost[static_cast<size_t>(e) * l + j] =
          cost[static_cast<size_t>(expanded_owner[e]) * l + j];
    }
  }
  const std::optional<TransportResult> oracle =
      SolveDenseTransport(em, l, expanded_cost, ri.instance.capacities);
  if (!oracle.has_value()) {
    EXPECT_FALSE(all_ok);
    return;
  }
  // Check the oracle for duplicate (customer, facility) pairs.
  std::set<std::pair<int, int>> seen;
  bool oracle_duplicates = false;
  for (int e = 0; e < em; ++e) {
    if (!seen.insert({expanded_owner[e], oracle->assignment[e]}).second) {
      oracle_duplicates = true;
    }
  }
  if (oracle_duplicates || !all_ok) return;  // models diverge; skip
  EXPECT_NEAR(matcher.TotalCost(), oracle->cost,
              1e-6 * (1.0 + oracle->cost));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, MatcherDemandOptimalityTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace mcfs
