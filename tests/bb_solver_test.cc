#include "mcfs/exact/bb_solver.h"

#include <gtest/gtest.h>

#include "mcfs/core/wma.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

TEST(SolveByEnumerationTest, TinyInstance) {
  // Path 0-1-2-3-4; customers at ends, facilities at 1, 2, 3; k=1.
  GraphBuilder builder(5);
  for (int v = 0; v < 4; ++v) builder.AddEdge(v, v + 1, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 4};
  instance.facility_nodes = {1, 2, 3};
  instance.capacities = {2, 2, 2};
  instance.k = 1;
  const ExactResult result = SolveByEnumeration(instance);
  ASSERT_TRUE(result.solution.feasible);
  // Any single facility costs 1+3 = 2+2 = 3+1 = 4 here.
  EXPECT_NEAR(result.solution.objective, 4.0, 1e-9);
  EXPECT_EQ(result.solution.selected.size(), 1u);
}

class BranchAndBoundOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(BranchAndBoundOracleTest, MatchesEnumeration) {
  Rng rng(7000 + GetParam());
  const int n = 20 + static_cast<int>(rng.UniformInt(0, 40));
  const int m = 4 + static_cast<int>(rng.UniformInt(0, 8));
  const int l = 4 + static_cast<int>(rng.UniformInt(0, 5));
  const int k = 2 + static_cast<int>(rng.UniformInt(0, 2));
  const int parts = 1 + static_cast<int>(rng.UniformInt(0, 1));
  RandomInstance ri = MakeRandomInstance(n, m, l, k, 5, rng, parts);

  const ExactResult enumerated = SolveByEnumeration(ri.instance);
  ExactOptions options;
  options.time_limit_seconds = 30.0;
  const ExactResult bb = SolveExact(ri.instance, options);
  ASSERT_FALSE(bb.failed);
  EXPECT_TRUE(bb.optimal);
  EXPECT_EQ(bb.solution.feasible, enumerated.solution.feasible);
  if (enumerated.solution.feasible) {
    EXPECT_NEAR(bb.solution.objective, enumerated.solution.objective,
                1e-5 * (1.0 + enumerated.solution.objective));
    EXPECT_TRUE(ValidateSolution(ri.instance, bb.solution, true).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, BranchAndBoundOracleTest,
                         ::testing::Range(0, 40));

TEST(SolveExactTest, LowerBoundsWmaOnMediumInstances) {
  Rng rng(88);
  RandomInstance ri = MakeRandomInstance(150, 25, 20, 6, 5, rng);
  if (!IsFeasible(ri.instance)) GTEST_SKIP();
  ExactOptions options;
  options.time_limit_seconds = 30.0;
  const ExactResult exact = SolveExact(ri.instance, options);
  const WmaResult wma = RunWma(ri.instance);
  if (exact.optimal && exact.solution.feasible && wma.solution.feasible) {
    EXPECT_LE(exact.solution.objective, wma.solution.objective + 1e-6);
  }
}

TEST(SolveExactTest, FailsGracefullyOnTinyBudget) {
  Rng rng(89);
  RandomInstance ri = MakeRandomInstance(120, 30, 25, 5, 4, rng);
  ExactOptions options;
  options.max_nodes = 1;  // guarantees budget exhaustion
  const ExactResult result = SolveExact(ri.instance, options);
  EXPECT_TRUE(result.failed);
  // The incumbent (WMA seed) is still reported.
  if (result.solution.feasible) {
    EXPECT_TRUE(ValidateSolution(ri.instance, result.solution).ok);
  }
}

TEST(SolveExactTest, MatrixCapMimicsGurobiFailure) {
  Rng rng(90);
  RandomInstance ri = MakeRandomInstance(60, 10, 12, 4, 4, rng);
  ExactOptions options;
  options.max_matrix_entries = 10;  // force immediate failure
  const ExactResult result = SolveExact(ri.instance, options);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.optimal);
}

TEST(SolveExactTest, ProvenInfeasibleInstance) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 1, 2};
  instance.facility_nodes = {1};
  instance.capacities = {2};  // three customers, capacity two
  instance.k = 1;
  ExactOptions options;
  options.use_wma_incumbent = false;
  const ExactResult result = SolveExact(instance, options);
  EXPECT_TRUE(result.optimal);
  EXPECT_FALSE(result.failed);
  EXPECT_FALSE(result.solution.feasible);
}

}  // namespace
}  // namespace mcfs
