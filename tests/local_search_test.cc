#include "mcfs/core/local_search.h"

#include <gtest/gtest.h>

#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

using testing_util::MakeRandomInstance;
using testing_util::RandomInstance;

TEST(LocalSearchTest, FixesAnObviouslyBadSelection) {
  // Path graph: customers at both ends, facilities at the ends'
  // neighbors and in the middle. Starting from the two middle
  // facilities, the search should discover the end facilities.
  GraphBuilder builder(7);
  for (int v = 0; v + 1 < 7; ++v) builder.AddEdge(v, v + 1, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 6};
  instance.facility_nodes = {1, 3, 5};  // near-left, middle, near-right
  instance.capacities = {2, 2, 2};
  instance.k = 2;

  McfsSolution bad = AssignOptimally(instance, {1});  // middle only... k=2
  bad = AssignOptimally(instance, {1, 0});  // middle + near-left
  ASSERT_TRUE(bad.feasible);
  const LocalSearchResult improved = ImproveByLocalSearch(instance, bad);
  EXPECT_TRUE(improved.solution.feasible);
  // Optimal picks facilities 0 and 2 (cost 1 + 1 = 2).
  EXPECT_NEAR(improved.solution.objective, 2.0, 1e-9);
  EXPECT_GT(improved.swaps_applied, 0);
}

TEST(LocalSearchTest, NeverWorsensTheSolution) {
  Rng rng(10);
  for (int trial = 0; trial < 8; ++trial) {
    RandomInstance ri = MakeRandomInstance(60, 15, 12, 5, 5, rng);
    const McfsSolution start = RunWma(ri.instance).solution;
    const LocalSearchResult improved =
        ImproveByLocalSearch(ri.instance, start);
    EXPECT_TRUE(ValidateSolution(ri.instance, improved.solution, true).ok);
    if (start.feasible) {
      ASSERT_TRUE(improved.solution.feasible);
      EXPECT_LE(improved.solution.objective, start.objective + 1e-9);
    }
  }
}

class LocalSearchQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(LocalSearchQualityTest, ClosesPartOfTheGapToOptimal) {
  Rng rng(8000 + GetParam());
  RandomInstance ri = MakeRandomInstance(60, 12, 8, 3, 6, rng);
  if (!IsFeasible(ri.instance)) return;
  const McfsSolution wma = RunWma(ri.instance).solution;
  ASSERT_TRUE(wma.feasible);
  const LocalSearchResult polished = ImproveByLocalSearch(ri.instance, wma);
  const ExactResult exact = SolveByEnumeration(ri.instance);
  ASSERT_TRUE(exact.solution.feasible);
  // Polished must stay sandwiched between the optimum and WMA.
  EXPECT_GE(polished.solution.objective,
            exact.solution.objective - 1e-6);
  EXPECT_LE(polished.solution.objective, wma.objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, LocalSearchQualityTest,
                         ::testing::Range(0, 20));

TEST(LocalSearchTest, RepairsInfeasibleStart) {
  // Start with a selection that cannot serve everyone; local search
  // first repairs via CoverComponents.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph graph = builder.Build();
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = {0, 2};
  instance.facility_nodes = {1, 3};
  instance.capacities = {2, 2};
  instance.k = 2;
  McfsSolution start = AssignOptimally(instance, {0});  // one component only
  ASSERT_FALSE(start.feasible);
  const LocalSearchResult improved = ImproveByLocalSearch(instance, start);
  EXPECT_TRUE(improved.solution.feasible);
  EXPECT_NEAR(improved.solution.objective, 2.0, 1e-9);
}

}  // namespace
}  // namespace mcfs
