// Independent verifier: accepts genuine solver output and rejects every
// kind of tampering — wrong distances, inflated objectives, capacity
// overloads, unselected assignments, and budget violations.

#include <gtest/gtest.h>

#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/obs/metrics.h"
#include "tests/test_util.h"

namespace mcfs {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : rng_(42),
        ri_(testing_util::MakeRandomInstance(60, 25, 10, 5, 6, rng_)) {
    ri_.instance.graph = &ri_.graph;  // re-point after relocation
    WmaOptions options;
    solution_ = RunWma(ri_.instance, options).solution;
  }
  Rng rng_;
  testing_util::RandomInstance ri_;
  McfsSolution solution_;
};

TEST_F(VerifierTest, AcceptsWmaOutput) {
  ASSERT_TRUE(solution_.feasible);
  const VerifyReport report = VerifySolution(ri_.instance, solution_);
  EXPECT_TRUE(report.ok) << report.ToString();
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_EQ(report.customers_checked, ri_.instance.m());
  EXPECT_EQ(report.dijkstra_runs,
            static_cast<int>(solution_.selected.size()));
  EXPECT_NEAR(report.recomputed_objective, solution_.objective, 1e-6);
}

TEST_F(VerifierTest, RejectsTamperedDistance) {
  McfsSolution tampered = solution_;
  tampered.distances[0] += 3.5;
  const VerifyReport report = VerifySolution(ri_.instance, tampered);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.ToStatus().code(), StatusCode::kInvalidInput);
}

TEST_F(VerifierTest, RejectsTamperedObjective) {
  McfsSolution tampered = solution_;
  tampered.objective *= 0.5;
  const VerifyReport report = VerifySolution(ri_.instance, tampered);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("objective"), std::string::npos);
}

TEST_F(VerifierTest, RejectsCapacityOverload) {
  // Funnel every customer into the first selected facility.
  McfsSolution tampered = solution_;
  const int target = tampered.selected[0];
  for (int i = 0; i < ri_.instance.m(); ++i) {
    tampered.assignment[i] = target;
  }
  const VerifyReport report = VerifySolution(ri_.instance, tampered);
  EXPECT_FALSE(report.ok);
  bool saw_capacity = false;
  for (const std::string& f : report.failures) {
    if (f.find("capacity") != std::string::npos) saw_capacity = true;
  }
  EXPECT_TRUE(saw_capacity) << report.ToString();
}

TEST_F(VerifierTest, RejectsAssignmentToUnselectedFacility) {
  McfsSolution tampered = solution_;
  int unselected = -1;
  for (int j = 0; j < ri_.instance.l(); ++j) {
    bool used = false;
    for (const int s : tampered.selected) used |= (s == j);
    if (!used) {
      unselected = j;
      break;
    }
  }
  ASSERT_NE(unselected, -1);
  tampered.assignment[0] = unselected;
  EXPECT_FALSE(VerifySolution(ri_.instance, tampered).ok);
}

TEST_F(VerifierTest, RejectsBudgetViolationAndDuplicates) {
  McfsSolution over = solution_;
  over.selected.assign(ri_.instance.k + 1, 0);
  for (int s = 0; s <= ri_.instance.k; ++s) over.selected[s] = s;
  EXPECT_FALSE(VerifySolution(ri_.instance, over).ok);

  McfsSolution duplicated = solution_;
  ASSERT_GE(duplicated.selected.size(), 2u);
  duplicated.selected[1] = duplicated.selected[0];
  EXPECT_FALSE(VerifySolution(ri_.instance, duplicated).ok);
}

TEST_F(VerifierTest, RejectsShapeMismatch) {
  McfsSolution tampered = solution_;
  tampered.assignment.pop_back();
  const VerifyReport report = VerifySolution(ri_.instance, tampered);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.dijkstra_runs, 0);
}

TEST_F(VerifierTest, FlagsFeasibleMarkWithUnassignedCustomer) {
  McfsSolution tampered = solution_;
  tampered.objective -= tampered.distances[0];
  tampered.assignment[0] = -1;
  tampered.distances[0] = 0.0;
  EXPECT_FALSE(VerifySolution(ri_.instance, tampered).ok);

  tampered.feasible = false;  // honest about the gap -> accepted
  EXPECT_TRUE(VerifySolution(ri_.instance, tampered).ok);
  VerifyOptions strict;
  strict.require_all_assigned = true;
  EXPECT_FALSE(VerifySolution(ri_.instance, tampered, strict).ok);
}

TEST_F(VerifierTest, MaintainsVerifyCounters) {
  obs::EnableMetrics(true);
  obs::ResetMetrics();
  VerifySolution(ri_.instance, solution_);
  McfsSolution tampered = solution_;
  tampered.objective += 100.0;
  VerifySolution(ri_.instance, tampered);
  const obs::MetricsSnapshot snapshot = obs::SnapshotMetrics();
  obs::EnableMetrics(false);
  EXPECT_EQ(snapshot.counters.at("verify/solutions_checked"), 2);
  EXPECT_EQ(snapshot.counters.at("verify/failures"), 1);
  EXPECT_EQ(snapshot.counters.at("verify/customers_checked"),
            2 * ri_.instance.m());
  EXPECT_GT(snapshot.counters.at("verify/dijkstra_runs"), 0);
}

}  // namespace
}  // namespace mcfs
