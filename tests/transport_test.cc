#include "mcfs/flow/transport.h"

#include <gtest/gtest.h>

#include "mcfs/common/random.h"

namespace mcfs {
namespace {

TEST(TransportTest, TrivialAssignment) {
  // 2 customers, 2 facilities, obvious diagonal optimum.
  const std::vector<double> cost = {1.0, 5.0,   // customer 0
                                    5.0, 1.0};  // customer 1
  const auto result = SolveDenseTransport(2, 2, cost, {1, 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->cost, 2.0);
  EXPECT_EQ(result->assignment[0], 0);
  EXPECT_EQ(result->assignment[1], 1);
}

TEST(TransportTest, CapacityForcesRerouting) {
  // Both customers prefer facility 0, but it only has one slot.
  const std::vector<double> cost = {1.0, 10.0,  //
                                    2.0, 3.0};
  const auto result = SolveDenseTransport(2, 2, cost, {1, 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->cost, 4.0);  // 0->f0 (1), 1->f1 (3)
}

TEST(TransportTest, InfeasibleWhenCapacityShort) {
  const std::vector<double> cost = {1.0, 2.0, 3.0};
  EXPECT_FALSE(SolveDenseTransport(3, 1, cost, {2}).has_value());
}

TEST(TransportTest, ForbiddenEdgesRespected) {
  const std::vector<double> cost = {kInfDistance, 4.0,  //
                                    1.0, kInfDistance};
  const auto result = SolveDenseTransport(2, 2, cost, {1, 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->cost, 5.0);
}

TEST(TransportTest, AllEdgesForbiddenIsInfeasible) {
  const std::vector<double> cost = {kInfDistance, kInfDistance};
  EXPECT_FALSE(SolveDenseTransport(1, 2, cost, {1, 1}).has_value());
}

class TransportOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportOracleTest, MatchesBruteForce) {
  Rng rng(300 + GetParam());
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 4));
  const int l = 1 + static_cast<int>(rng.UniformInt(0, 4));
  std::vector<double> cost(static_cast<size_t>(m) * l);
  for (double& c : cost) {
    c = rng.NextDouble() < 0.15 ? kInfDistance : rng.Uniform(0.0, 100.0);
  }
  std::vector<int> capacities(l);
  for (int& c : capacities) c = static_cast<int>(rng.UniformInt(0, 3));

  const auto fast = SolveDenseTransport(m, l, cost, capacities);
  const auto brute = BruteForceTransport(m, l, cost, capacities);
  ASSERT_EQ(fast.has_value(), brute.has_value());
  if (fast.has_value()) {
    EXPECT_NEAR(fast->cost, brute->cost, 1e-6);
    // Verify the assignment is valid and priced correctly.
    std::vector<int> load(l, 0);
    double total = 0.0;
    for (int i = 0; i < m; ++i) {
      const int j = fast->assignment[i];
      ASSERT_GE(j, 0);
      ASSERT_LT(j, l);
      load[j]++;
      total += cost[static_cast<size_t>(i) * l + j];
    }
    for (int j = 0; j < l; ++j) EXPECT_LE(load[j], capacities[j]);
    EXPECT_NEAR(total, fast->cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, TransportOracleTest,
                         ::testing::Range(0, 80));

}  // namespace
}  // namespace mcfs
