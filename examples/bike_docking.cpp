// Dockless bike-sharing station selection (the paper's Sec. VII-F-2
// application): a service periodically gathers scattered bikes and
// distributes them to "preferable" docking stations. Given candidate
// stations with dock capacities and the current bike positions, select
// k stations minimizing the total bike-to-station travel.
//
//   ./examples/bike_docking [--scale=0.02] [--k=80] [--seed=42]

#include <algorithm>
#include <cstdio>

#include "mcfs/common/flags.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/bike_sim.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.02);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  const Graph city = GenerateCity(CopenhagenPreset(scale, seed));
  BikeSimOptions sim;
  sim.num_stations = std::min(city.NumNodes() / 6, 400);
  sim.num_bikes = 400;
  sim.seed = seed + 1;
  const BikeScenario scenario = GenerateBikeScenario(city, sim);
  std::printf(
      "Copenhagen-style network: %d nodes; %zu candidate stations; %zu "
      "bikes to dock\n",
      city.NumNodes(), scenario.stations.size(), scenario.bikes.size());

  McfsInstance instance;
  instance.graph = &city;
  instance.customers = scenario.bikes;
  instance.facility_nodes = scenario.stations;
  instance.capacities = scenario.capacities;
  instance.k = static_cast<int>(flags.GetInt("k", 80));

  WmaOptions options;
  options.collect_iteration_stats = true;
  const WmaResult result = RunWma(instance, options);
  std::printf(
      "WMA selected %zu stations; total bike travel %.0f m "
      "(avg %.1f m/bike) in %.0f ms\n",
      result.solution.selected.size(), result.solution.objective,
      result.solution.objective / instance.m(),
      result.stats.total_seconds * 1e3);

  // How the coverage built up (the paper's Fig. 12b-style view).
  std::printf("coverage per iteration:");
  for (const WmaIterationStats& it : result.stats.per_iteration) {
    std::printf(" %d", it.covered_customers);
  }
  std::printf(" (of %d bikes)\n", instance.m());

  // Capacity utilization histogram of the selected stations.
  std::vector<int> load(instance.l(), 0);
  for (const int j : result.solution.assignment) {
    if (j >= 0) load[j]++;
  }
  int full = 0;
  int used = 0;
  for (const int j : result.solution.selected) {
    if (load[j] > 0) ++used;
    if (load[j] == instance.capacities[j]) ++full;
  }
  std::printf("%d selected stations receive bikes, %d are filled to "
              "capacity\n",
              used, full);
  return 0;
}
