// Coworking meet-up planning (the paper's Sec. VII-F-1 application):
// select k cafes/restaurants out of a city's venues — each with a
// capacity given by its daily operating hours — so that a crowd of
// coworkers reaches their assigned venue with the least total travel.
//
//   ./examples/coworking_meetups [--scale=0.03] [--k=40] [--seed=42]

#include <cstdio>

#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/common/flags.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/yelp_sim.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.03);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // A Las Vegas-style grid city and a Yelp-style venue/coworker
  // simulation (occupancy-driven customer placement).
  const Graph city = GenerateCity(LasVegasPreset(scale, seed));
  YelpSimOptions yelp;
  yelp.num_venues = std::min(city.NumNodes() / 4, 300);
  yelp.num_customers = 400;
  yelp.seed = seed + 1;
  const CoworkingScenario scenario = GenerateCoworkingScenario(city, yelp);
  std::printf("city: %d nodes; %zu candidate venues; %zu coworkers\n",
              city.NumNodes(), scenario.venues.size(),
              scenario.customers.size());

  McfsInstance instance;
  instance.graph = &city;
  instance.customers = scenario.customers;
  instance.facility_nodes = scenario.venues;
  instance.capacities = scenario.capacities;  // operating hours
  instance.k = static_cast<int>(flags.GetInt("k", 80));
  if (!IsFeasible(instance)) {
    std::printf("note: k=%d venues cannot host %d coworkers; results will "
                "leave some unassigned\n",
                instance.k, instance.m());
  }

  // Direct WMA vs. the Uniform-First variant vs. the Hilbert baseline.
  double direct_seconds = 0.0;
  ScopedTimer direct_timer(&direct_seconds);
  const McfsSolution direct = RunWma(instance).solution;
  direct_timer.Stop();
  double uf_seconds = 0.0;
  ScopedTimer uf_timer(&uf_seconds);
  const McfsSolution uf = RunUniformFirstWma(instance).solution;
  uf_timer.Stop();
  double hilbert_seconds = 0.0;
  ScopedTimer hilbert_timer(&hilbert_seconds);
  const McfsSolution hilbert = RunHilbertBaseline(instance);
  hilbert_timer.Stop();

  std::printf("\n%-12s %12s %10s %9s\n", "algorithm", "objective (m)",
              "runtime", "feasible");
  std::printf("%-12s %12.0f %8.0fms %9s\n", "WMA", direct.objective,
              direct_seconds * 1e3, direct.feasible ? "yes" : "no");
  std::printf("%-12s %12.0f %8.0fms %9s\n", "UF WMA", uf.objective,
              uf_seconds * 1e3, uf.feasible ? "yes" : "no");
  std::printf("%-12s %12.0f %8.0fms %9s\n", "Hilbert", hilbert.objective,
              hilbert_seconds * 1e3, hilbert.feasible ? "yes" : "no");

  // Report the busiest selected venues.
  std::printf("\nbusiest selected venues (WMA):\n");
  std::vector<int> load(instance.l(), 0);
  for (const int j : direct.assignment) {
    if (j >= 0) load[j]++;
  }
  int shown = 0;
  for (const int j : direct.selected) {
    if (load[j] == instance.capacities[j] && shown < 5) {
      const Point& p = city.coordinate(instance.facility_nodes[j]);
      std::printf("  venue@(%.0f, %.0f): %d/%d coworkers (hours=%d)\n", p.x,
                  p.y, load[j], instance.capacities[j],
                  instance.capacities[j]);
      ++shown;
    }
  }
  if (shown == 0) std::printf("  (no venue is filled to capacity)\n");
  return 0;
}
