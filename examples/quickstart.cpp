// Quickstart: build a small road network, place customers and candidate
// facilities with capacities, and solve the Multicapacity Facility
// Selection problem with the Wide Matching Algorithm.
//
//   ./examples/quickstart

#include <cstdio>

#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/graph/generators.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/workload/workload.h"

int main() {
  using namespace mcfs;

  // 1. A synthetic network: 2,000 nodes on a 1000 x 1000 plane,
  //    connected within the paper's alpha = 2 radius.
  SyntheticNetworkOptions network;
  network.num_nodes = 2000;
  network.alpha = 2.0;
  network.seed = 7;
  const Graph graph = GenerateSyntheticNetwork(network);
  std::printf("network: %d nodes, %lld edges, average degree %.2f\n",
              graph.NumNodes(), static_cast<long long>(graph.NumEdges()),
              graph.AverageDegree());

  // 2. An MCFS instance: 200 customers, every node a candidate facility
  //    with capacity 20, and a budget of k = 20 facilities.
  Rng rng(13);
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = SampleDistinctNodes(graph, 200, rng);
  instance.facility_nodes = SampleDistinctNodes(graph, graph.NumNodes(), rng);
  instance.capacities = UniformCapacities(graph.NumNodes(), 20);
  instance.k = 20;
  std::printf("instance: m=%d customers, l=%d candidates, k=%d, o=%.2f\n",
              instance.m(), instance.l(), instance.k, instance.Occupancy());

  // 3. Solve with WMA. threads = 0 picks up MCFS_THREADS (or the
  //    hardware default) and parallelizes the candidate-stream prefetch;
  //    the solution is bit-identical to threads = 1.
  WmaOptions wma_options;
  wma_options.threads = 0;
  // Turn on the instrumentation layer for this run: counters accumulate
  // in the process-wide registry and the result carries per-phase and
  // per-iteration statistics (the structured run report of step 7).
  wma_options.metrics = true;
  wma_options.collect_iteration_stats = true;
  const WmaResult result = RunWma(instance, wma_options);
  std::printf("WMA: objective %.1f in %.0f ms over %d iterations "
              "(feasible=%s)\n",
              result.solution.objective,
              result.stats.total_seconds * 1e3, result.stats.iterations,
              result.solution.feasible ? "yes" : "no");

  // 4. Validate the solution structurally and against true network
  //    distances.
  const ValidationResult validation =
      ValidateSolution(instance, result.solution, /*check_distances=*/true);
  std::printf("validation: %s\n",
              validation.ok ? "ok" : validation.message.c_str());

  // 5. Compare with the exact reference on this (still small) instance.
  ExactOptions exact_options;
  exact_options.time_limit_seconds = 30.0;
  const ExactResult exact = SolveExact(instance, exact_options);
  if (!exact.failed) {
    std::printf("exact optimum: %.1f -> WMA is within %.1f%%\n",
                exact.solution.objective,
                100.0 * (result.solution.objective /
                             exact.solution.objective -
                         1.0));
  } else {
    std::printf("exact solver exceeded its budget (expected on big "
                "instances)\n");
  }

  // 6. Inspect a few assignments.
  std::printf("sample assignments (customer -> facility node, meters):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  customer@%d -> facility@%d (%.1f)\n",
                instance.customers[i],
                instance.facility_nodes[result.solution.assignment[i]],
                result.solution.distances[i]);
  }

  // 7. The structured run report: phase breakdown from WmaStats plus the
  //    hot-path counters the instrumentation layer collected (the same
  //    numbers the bench binaries write to run_report.json).
  std::printf("\nrun report:\n");
  std::printf("  phases: matching %.1fms (prefetch %.1fms), cover %.1fms, "
              "final assign %.1fms\n",
              result.stats.matching_seconds * 1e3,
              result.stats.prefetch_seconds * 1e3,
              result.stats.cover_seconds * 1e3,
              result.stats.final_assign_seconds * 1e3);
  std::printf("  matcher: %lld edges materialized, %lld Theorem-1 prunes, "
              "%lld rewirings, %lld G_b searches\n",
              static_cast<long long>(result.stats.edges_materialized),
              static_cast<long long>(result.stats.theorem1_prunes),
              static_cast<long long>(result.stats.rewirings),
              static_cast<long long>(result.stats.dijkstra_runs));
  const obs::MetricsSnapshot metrics = obs::SnapshotMetrics();
  for (const char* key :
       {"stream/nodes_settled", "stream/edges_relaxed",
        "exec/stream/prefetch_hits", "exec/stream/prefetch_misses",
        "cover/candidates_scanned"}) {
    const auto it = metrics.counters.find(key);
    if (it != metrics.counters.end()) {
      std::printf("  %-28s %lld\n", key,
                  static_cast<long long>(it->second));
    }
  }
  return 0;
}
