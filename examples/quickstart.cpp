// Quickstart: build a small road network, place customers and candidate
// facilities with capacities, and solve the Multicapacity Facility
// Selection problem with the Wide Matching Algorithm.
//
//   ./examples/quickstart

#include <cstdio>

#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

int main() {
  using namespace mcfs;

  // 1. A synthetic network: 2,000 nodes on a 1000 x 1000 plane,
  //    connected within the paper's alpha = 2 radius.
  SyntheticNetworkOptions network;
  network.num_nodes = 2000;
  network.alpha = 2.0;
  network.seed = 7;
  const Graph graph = GenerateSyntheticNetwork(network);
  std::printf("network: %d nodes, %lld edges, average degree %.2f\n",
              graph.NumNodes(), static_cast<long long>(graph.NumEdges()),
              graph.AverageDegree());

  // 2. An MCFS instance: 200 customers, every node a candidate facility
  //    with capacity 20, and a budget of k = 20 facilities.
  Rng rng(13);
  McfsInstance instance;
  instance.graph = &graph;
  instance.customers = SampleDistinctNodes(graph, 200, rng);
  instance.facility_nodes = SampleDistinctNodes(graph, graph.NumNodes(), rng);
  instance.capacities = UniformCapacities(graph.NumNodes(), 20);
  instance.k = 20;
  std::printf("instance: m=%d customers, l=%d candidates, k=%d, o=%.2f\n",
              instance.m(), instance.l(), instance.k, instance.Occupancy());

  // 3. Solve with WMA. threads = 0 picks up MCFS_THREADS (or the
  //    hardware default) and parallelizes the candidate-stream prefetch;
  //    the solution is bit-identical to threads = 1.
  WmaOptions wma_options;
  wma_options.threads = 0;
  const WmaResult result = RunWma(instance, wma_options);
  std::printf("WMA: objective %.1f in %.0f ms over %d iterations "
              "(feasible=%s)\n",
              result.solution.objective,
              result.stats.total_seconds * 1e3, result.stats.iterations,
              result.solution.feasible ? "yes" : "no");

  // 4. Validate the solution structurally and against true network
  //    distances.
  const ValidationResult validation =
      ValidateSolution(instance, result.solution, /*check_distances=*/true);
  std::printf("validation: %s\n",
              validation.ok ? "ok" : validation.message.c_str());

  // 5. Compare with the exact reference on this (still small) instance.
  ExactOptions exact_options;
  exact_options.time_limit_seconds = 30.0;
  const ExactResult exact = SolveExact(instance, exact_options);
  if (!exact.failed) {
    std::printf("exact optimum: %.1f -> WMA is within %.1f%%\n",
                exact.solution.objective,
                100.0 * (result.solution.objective /
                             exact.solution.objective -
                         1.0));
  } else {
    std::printf("exact solver exceeded its budget (expected on big "
                "instances)\n");
  }

  // 6. Inspect a few assignments.
  std::printf("sample assignments (customer -> facility node, meters):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  customer@%d -> facility@%d (%.1f)\n",
                instance.customers[i],
                instance.facility_nodes[result.solution.assignment[i]],
                result.solution.distances[i]);
  }
  return 0;
}
