// Solves an MCFS instance on a city network, prints the solution
// analytics, and exports plot-ready CSV layers (Figure-1-style):
//   <prefix>_customers.csv    x,y,assigned_facility,distance
//   <prefix>_facilities.csv   x,y,selected,load,capacity
//   <prefix>_edges.csv        x1,y1,x2,y2        (road segments)
// plus the instance/solution in the library's text formats, so the run
// can be reloaded and re-analyzed later.
//
//   ./examples/visualize_solution [--scale=0.03] [--k=30] \
//       [--prefix=/tmp/mcfs_vegas]

#include <cstdio>
#include <fstream>

#include "mcfs/common/flags.h"
#include "mcfs/core/instance_io.h"
#include "mcfs/core/solution_stats.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/graph_io.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/yelp_sim.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.03);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string prefix = flags.GetString("prefix", "/tmp/mcfs_vegas");

  const Graph city = GenerateCity(LasVegasPreset(scale, seed));
  YelpSimOptions yelp;
  yelp.num_venues = std::min(city.NumNodes() / 4, 250);
  yelp.num_customers = 300;
  yelp.seed = seed + 1;
  const CoworkingScenario scenario = GenerateCoworkingScenario(city, yelp);

  McfsInstance instance;
  instance.graph = &city;
  instance.customers = scenario.customers;
  instance.facility_nodes = scenario.venues;
  instance.capacities = scenario.capacities;
  instance.k = static_cast<int>(flags.GetInt("k", 60));

  const WmaResult result = RunWma(instance);
  std::printf("solved: objective %.0f m over %d customers (feasible=%s)\n",
              result.solution.objective, instance.m(),
              result.solution.feasible ? "yes" : "no");
  const SolutionStats stats =
      ComputeSolutionStats(instance, result.solution);
  std::printf("%s\n", FormatSolutionStats(stats).c_str());

  // --- CSV layers ---
  {
    std::ofstream out(prefix + "_customers.csv");
    out << "x,y,assigned_facility,distance\n";
    for (int i = 0; i < instance.m(); ++i) {
      const Point& p = city.coordinate(instance.customers[i]);
      out << p.x << ',' << p.y << ',' << result.solution.assignment[i]
          << ',' << result.solution.distances[i] << '\n';
    }
  }
  {
    std::vector<uint8_t> selected(instance.l(), 0);
    std::vector<int> load(instance.l(), 0);
    for (const int j : result.solution.selected) selected[j] = 1;
    for (const int j : result.solution.assignment) {
      if (j >= 0) load[j]++;
    }
    std::ofstream out(prefix + "_facilities.csv");
    out << "x,y,selected,load,capacity\n";
    for (int j = 0; j < instance.l(); ++j) {
      const Point& p = city.coordinate(instance.facility_nodes[j]);
      out << p.x << ',' << p.y << ',' << static_cast<int>(selected[j])
          << ',' << load[j] << ',' << instance.capacities[j] << '\n';
    }
  }
  {
    std::ofstream out(prefix + "_edges.csv");
    out << "x1,y1,x2,y2\n";
    for (NodeId u = 0; u < city.NumNodes(); ++u) {
      const Point& a = city.coordinate(u);
      for (const AdjEntry& e : city.Neighbors(u)) {
        if (u < e.to) {
          const Point& b = city.coordinate(e.to);
          out << a.x << ',' << a.y << ',' << b.x << ',' << b.y << '\n';
        }
      }
    }
  }

  // --- reloadable artifacts ---
  SaveGraph(city, prefix + ".graph");
  SaveInstance(instance, prefix + ".instance");
  SaveSolution(result.solution, prefix + ".solution");
  std::printf("exported %s_{customers,facilities,edges}.csv and "
              "%s.{graph,instance,solution}\n",
              prefix.c_str(), prefix.c_str());
  return 0;
}
