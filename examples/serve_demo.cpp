// Service demo: run MCFS as a long-lived solver service. One road
// network and one candidate catalog are loaded a single time; many
// solve requests — different customer sets, budgets, catalog slices,
// and per-request deadlines — then share the warm preprocessing state
// through a bounded admission queue. Shows epoch-bumping catalog
// updates, the solve cache, and the structured service report.
//
//   ./examples/serve_demo

#include <cstdio>
#include <vector>

#include "mcfs/graph/generators.h"
#include "mcfs/serve/solver_service.h"
#include "mcfs/workload/workload.h"

int main() {
  using namespace mcfs;

  // 1. The long-lived part: one network and one candidate catalog.
  SyntheticNetworkOptions network;
  network.num_nodes = 2000;
  network.alpha = 2.0;
  network.seed = 7;
  const Graph graph = GenerateSyntheticNetwork(network);
  Rng rng(13);
  const std::vector<NodeId> catalog_nodes =
      SampleDistinctNodes(graph, 150, rng);
  const std::vector<int> catalog_caps = UniformCapacities(150, 20);

  ServiceOptions options;
  options.serve_threads = 0;  // MCFS_THREADS / hardware default
  options.queue_depth = 32;
  options.max_batch = 4;
  options.verify = true;  // re-check every answer independently
  SolverService service(&graph, catalog_nodes, catalog_caps, options);
  std::printf("service up: %d nodes, %zu candidates, epoch %llu\n",
              graph.NumNodes(), catalog_nodes.size(),
              static_cast<unsigned long long>(service.epoch()));

  // 2. Fire a burst of concurrent requests (the handles resolve as the
  //    dispatcher drains its batches).
  std::vector<std::shared_ptr<ResponseHandle>> handles;
  for (int r = 0; r < 6; ++r) {
    SolveRequest request;
    request.customers =
        SampleNodesWithReplacement(graph, 120 + 30 * r, rng);
    request.k = 15;
    handles.push_back(service.Submit(request));
  }
  for (size_t r = 0; r < handles.size(); ++r) {
    const SolveResponse& response = handles[r]->Wait();
    std::printf("request %zu: %s objective %.1f (%d iterations, "
                "%.1f ms solve, verify %s)\n",
                r, response.status.ok() ? "ok," : "FAILED:",
                response.solution.objective, response.stats.iterations,
                response.solve_seconds * 1e3,
                response.verify_ok ? "clean" : "FAILED");
  }

  // 3. A repeated request is served from the epoch's solve cache.
  SolveRequest repeat;
  repeat.customers = SampleNodesWithReplacement(graph, 100, rng);
  repeat.k = 12;
  service.SolveSync(repeat);
  const SolveResponse cached = service.SolveSync(repeat);
  std::printf("repeat request: cache_hit=%s, objective %.1f\n",
              cached.cache_hit ? "yes" : "no", cached.solution.objective);

  // 4. A catalog update (capacities shrink) bumps the epoch and
  //    invalidates the cache; the same request now re-solves.
  std::vector<int> tighter = catalog_caps;
  for (int& c : tighter) c = c / 2;
  service.UpdateCapacities(tighter);
  const SolveResponse fresh = service.SolveSync(repeat);
  std::printf("after update: epoch %llu, cache_hit=%s, objective %.1f\n",
              static_cast<unsigned long long>(fresh.epoch),
              fresh.cache_hit ? "yes" : "no", fresh.solution.objective);

  // 5. A request with its own tight deadline degrades anytime — it
  //    alone; everything else on the service is untouched.
  SolveRequest hurried;
  hurried.customers = SampleNodesWithReplacement(graph, 400, rng);
  hurried.k = 60;  // the halved capacities need the wider budget
  hurried.deadline_ms = 1;
  const SolveResponse rushed = service.SolveSync(hurried);
  std::printf("deadline request: termination=%s, feasible=%s\n",
              TerminationName(rushed.solution.termination),
              rushed.solution.feasible ? "yes" : "no");

  // 6. The aggregated service report (the JSON feeds dashboards / CI).
  const ServiceReport report = service.Report();
  std::printf("report: %lld completed (%lld failed), %lld cache hits, "
              "p50 %.1f ms, p99 %.1f ms\n%s\n",
              static_cast<long long>(report.requests_completed),
              static_cast<long long>(report.requests_failed),
              static_cast<long long>(report.cache_hits),
              report.latency.p50 * 1e3, report.latency.p99 * 1e3,
              report.Json().c_str());
  return 0;
}
