// A small CLI around the whole library: generate (or load) a road
// network, place customers and capacitated candidate facilities, solve
// with the algorithm of your choice, and optionally persist the network
// for later runs.
//
//   ./examples/city_planner --city=aalborg --scale=0.05 --m=256 --k=25 \
//       --algorithm=wma [--capacity=20] [--save=net.graph]
//   ./examples/city_planner --load=net.graph --m=128 --k=12 \
//       --algorithm=hilbert
//
// Algorithms: wma | uf | naive | hilbert | brnn | exact

#include <cstdio>
#include <string>

#include "mcfs/baselines/brnn.h"
#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/common/flags.h"
#include "mcfs/common/timer.h"
#include "mcfs/baselines/greedy_kmedian.h"
#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/graph/alt_router.h"
#include "mcfs/graph/graph_io.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"

namespace {

mcfs::CityOptions PresetFor(const std::string& name, double scale,
                            uint64_t seed) {
  if (name == "riga") return mcfs::RigaPreset(scale, seed);
  if (name == "copenhagen") return mcfs::CopenhagenPreset(scale, seed);
  if (name == "lasvegas") return mcfs::LasVegasPreset(scale, seed);
  return mcfs::AalborgPreset(scale, seed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // Obtain the network.
  Graph city;
  const std::string load_path = flags.GetString("load", "");
  if (!load_path.empty()) {
    std::optional<Graph> loaded = LoadGraph(load_path);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "could not load %s\n", load_path.c_str());
      return 1;
    }
    city = std::move(*loaded);
    std::printf("loaded %s: %d nodes, %lld edges\n", load_path.c_str(),
                city.NumNodes(), static_cast<long long>(city.NumEdges()));
  } else {
    const CityOptions preset =
        PresetFor(flags.GetString("city", "aalborg"),
                  flags.GetDouble("scale", 0.05), seed);
    city = GenerateCity(preset);
    std::printf("%s (scaled): %d nodes, %lld edges, avg degree %.2f\n",
                preset.name.c_str(), city.NumNodes(),
                static_cast<long long>(city.NumEdges()),
                city.AverageDegree());
  }
  const std::string save_path = flags.GetString("save", "");
  if (!save_path.empty() && SaveGraph(city, save_path)) {
    std::printf("saved network to %s\n", save_path.c_str());
  }

  // Optional point-to-point routing demo (ALT landmarks).
  if (flags.Has("route_from") && flags.Has("route_to")) {
    const NodeId from = static_cast<NodeId>(flags.GetInt("route_from", 0));
    const NodeId to = static_cast<NodeId>(flags.GetInt("route_to", 0));
    Rng route_rng(seed + 9);
    AltRouter router(&city, 8, route_rng);
    const double distance = router.Distance(from, to);
    std::printf("route %d -> %d: %.1f m, %zu hops (ALT settled %lld "
                "nodes)\n",
                from, to, distance, router.Path(from, to).size(),
                static_cast<long long>(router.last_settled_count()));
  }

  // Build the instance.
  Rng rng(seed + 1);
  McfsInstance instance;
  instance.graph = &city;
  const int m = static_cast<int>(flags.GetInt("m", 256));
  const int capacity = static_cast<int>(flags.GetInt("capacity", 20));
  instance.customers = SampleDistinctNodes(city, m, rng);
  instance.facility_nodes = SampleDistinctNodes(city, city.NumNodes(), rng);
  instance.capacities = UniformCapacities(city.NumNodes(), capacity);
  instance.k = static_cast<int>(flags.GetInt("k", std::max(1, m / 10)));
  std::printf("instance: m=%d, l=%d, k=%d, c=%d, occupancy=%.2f, %s\n",
              instance.m(), instance.l(), instance.k, capacity,
              instance.Occupancy(),
              IsFeasible(instance) ? "feasible" : "INFEASIBLE");

  // Solve.
  const std::string algorithm = flags.GetString("algorithm", "wma");
  WallTimer timer;
  McfsSolution solution;
  if (algorithm == "hilbert") {
    solution = RunHilbertBaseline(instance);
  } else if (algorithm == "brnn") {
    solution = RunBrnnBaseline(instance);
  } else if (algorithm == "uf") {
    solution = RunUniformFirstWma(instance).solution;
  } else if (algorithm == "kmedian") {
    solution = RunGreedyKMedian(instance);
  } else if (algorithm == "naive") {
    WmaOptions options;
    options.naive = true;
    solution = RunWma(instance, options).solution;
  } else if (algorithm == "exact") {
    ExactOptions options;
    options.time_limit_seconds = flags.GetDouble("exact_seconds", 60.0);
    const ExactResult exact = SolveExact(instance, options);
    if (exact.failed) {
      std::printf("exact solver exceeded its budget after %lld nodes\n",
                  static_cast<long long>(exact.nodes_explored));
    }
    solution = exact.solution;
  } else {
    solution = RunWma(instance).solution;
  }
  const double seconds = timer.Seconds();

  const ValidationResult validation =
      ValidateSolution(instance, solution, /*check_distances=*/false);
  std::printf("%s: objective %.0f m, %zu facilities, %s, %s, %.2f s\n",
              algorithm.c_str(), solution.objective,
              solution.selected.size(),
              solution.feasible ? "feasible" : "infeasible",
              validation.ok ? "valid" : validation.message.c_str(),
              seconds);
  return 0;
}
