#ifndef MCFS_BASELINES_BRNN_H_
#define MCFS_BASELINES_BRNN_H_

#include "mcfs/core/instance.h"

namespace mcfs {

// The BRNN (bichromatic reverse nearest neighbor) baseline of Sec. III-A
// / VII-A: the first facility minimizes the aggregate network distance
// to all customers; each subsequent round places the candidate facility
// whose Nearest Location Region overlap attracts the most customers
// (MaxSum), computed with per-customer bounded Dijkstras (a customer's
// NLR is the set of nodes strictly closer than its current nearest
// selected facility). After k rounds, capacity feasibility is repaired
// and customers are matched optimally (the "runs SIA" final step);
// `matcher` picks the engine for that final matching
// (flow/matcher_backend.h).
McfsSolution RunBrnnBaseline(const McfsInstance& instance,
                             MatcherBackendKind matcher =
                                 MatcherBackendKind::kSspa);

}  // namespace mcfs

#endif  // MCFS_BASELINES_BRNN_H_
