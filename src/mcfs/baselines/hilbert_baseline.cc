#include "mcfs/baselines/hilbert_baseline.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mcfs/common/check.h"
#include "mcfs/core/repair.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/spatial_index.h"
#include "mcfs/hilbert/hilbert.h"

namespace mcfs {

namespace {
constexpr int kHilbertOrder = 16;
}  // namespace

McfsSolution RunHilbertBaseline(const McfsInstance& instance,
                                MatcherBackendKind matcher) {
  MCFS_CHECK(instance.graph->has_coordinates())
      << "the Hilbert baseline sorts by coordinates";
  const Graph& graph = *instance.graph;
  const int m = instance.m();
  const int l = instance.l();

  // Bounding box for the Hilbert grid.
  double min_x = kInfDistance;
  double min_y = kInfDistance;
  double max_x = -kInfDistance;
  double max_y = -kInfDistance;
  for (const Point& p : graph.coordinates()) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double extent = std::max({max_x - min_x, max_y - min_y, 1e-9});

  // Partition customers and facilities by connected component.
  const ComponentLabeling components = ConnectedComponents(graph);
  std::vector<std::vector<int>> customers_in(components.num_components);
  std::vector<std::vector<int>> facilities_in(components.num_components);
  for (int i = 0; i < m; ++i) {
    customers_in[components.component_of[instance.customers[i]]].push_back(i);
  }
  for (int j = 0; j < l; ++j) {
    facilities_in[components.component_of[instance.facility_nodes[j]]]
        .push_back(j);
  }

  // Allot facilities per component proportionally to customer counts
  // (largest remainder method), at least one per populated component and
  // never more than a component offers.
  std::vector<int> quota(components.num_components, 0);
  {
    std::vector<std::pair<double, int>> remainders;
    int allotted = 0;
    for (int g = 0; g < components.num_components; ++g) {
      if (customers_in[g].empty() || facilities_in[g].empty()) continue;
      const double share =
          static_cast<double>(instance.k) * customers_in[g].size() / m;
      quota[g] = std::max(
          1, std::min<int>(static_cast<int>(share),
                           static_cast<int>(facilities_in[g].size())));
      allotted += quota[g];
      remainders.push_back({share - quota[g], g});
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [frac, g] : remainders) {
      (void)frac;
      if (allotted >= instance.k) break;
      if (quota[g] < static_cast<int>(facilities_in[g].size())) {
        quota[g]++;
        allotted++;
      }
    }
    // Spread any remaining budget wherever capacity of the quota allows.
    for (int g = 0; g < components.num_components && allotted < instance.k;
         ++g) {
      while (allotted < instance.k &&
             quota[g] < static_cast<int>(facilities_in[g].size())) {
        quota[g]++;
        allotted++;
      }
    }
    // More populated components than budget (infeasible instance):
    // trim the smallest components' quotas so at most k are selected.
    while (allotted > instance.k) {
      int victim = -1;
      for (int g = 0; g < components.num_components; ++g) {
        if (quota[g] == 0) continue;
        if (victim == -1 ||
            customers_in[g].size() < customers_in[victim].size()) {
          victim = g;
        }
      }
      quota[victim]--;
      allotted--;
    }
  }

  // Geometric index over the candidate facility coordinates for the
  // centroid -> nearest-facility lookups.
  std::vector<Point> facility_points;
  facility_points.reserve(l);
  for (int j = 0; j < l; ++j) {
    facility_points.push_back(graph.coordinate(instance.facility_nodes[j]));
  }
  const SpatialGridIndex facility_index(std::move(facility_points));

  std::vector<int> selected;
  std::vector<uint8_t> used(l, 0);
  for (int g = 0; g < components.num_components; ++g) {
    if (quota[g] == 0) continue;
    auto& customers = customers_in[g];
    // Sort the component's customers along the Hilbert curve.
    std::sort(customers.begin(), customers.end(), [&](int a, int b) {
      const Point& pa = graph.coordinate(instance.customers[a]);
      const Point& pb = graph.coordinate(instance.customers[b]);
      return HilbertIndexForPoint(kHilbertOrder, pa.x, pa.y, min_x, min_y,
                                  extent) <
             HilbertIndexForPoint(kHilbertOrder, pb.x, pb.y, min_x, min_y,
                                  extent);
    });
    const int bucket_size = static_cast<int>(
        std::ceil(static_cast<double>(customers.size()) / quota[g]));
    for (int b = 0; b < quota[g]; ++b) {
      const int lo = b * bucket_size;
      if (lo >= static_cast<int>(customers.size())) break;
      const int hi =
          std::min<int>(lo + bucket_size, static_cast<int>(customers.size()));
      Point centroid{0.0, 0.0};
      for (int idx = lo; idx < hi; ++idx) {
        const Point& p = graph.coordinate(instance.customers[customers[idx]]);
        centroid.x += p.x;
        centroid.y += p.y;
      }
      centroid.x /= (hi - lo);
      centroid.y /= (hi - lo);
      // Nearest unused candidate facility of this component (Euclidean —
      // the baseline deliberately ignores network distances here).
      const int best = facility_index.NearestNeighborIf(
          centroid, [&](int j) {
            return !used[j] &&
                   components.component_of[instance.facility_nodes[j]] == g;
          });
      if (best != -1) {
        used[best] = 1;
        selected.push_back(best);
      }
    }
  }

  // Feasibility repair and one optimal matching step.
  if (selected.empty()) {
    SelectGreedy(instance, selected);
  }
  CoverComponents(instance, selected);
  return AssignOptimally(instance, selected, /*threads=*/1, matcher);
}

}  // namespace mcfs
