#ifndef MCFS_BASELINES_GREEDY_KMEDIAN_H_
#define MCFS_BASELINES_GREEDY_KMEDIAN_H_

#include "mcfs/core/instance.h"

namespace mcfs {

// Classic greedy k-median baseline (an extra competitor beyond the
// paper): facilities are added one at a time, each round picking the
// candidate that most reduces the *uncapacitated* assignment cost
// sum_i min_{j in S} d_ij; capacities are then repaired per component
// and the final customers-to-facilities assignment is computed by one
// optimal capacitated matching — the same finishing steps as the other
// baselines, so objectives are directly comparable.
//
// Needs the dense m x l distance matrix (m network Dijkstras); refuses
// instances with m*l above `max_matrix_entries` by returning an
// infeasible empty solution (like the exact solver's failure mode).
struct GreedyKMedianOptions {
  int64_t max_matrix_entries = 20000000;
  // Engine for the finishing capacitated matching
  // (flow/matcher_backend.h).
  MatcherBackendKind matcher = MatcherBackendKind::kSspa;
};

McfsSolution RunGreedyKMedian(const McfsInstance& instance,
                              const GreedyKMedianOptions& options = {});

}  // namespace mcfs

#endif  // MCFS_BASELINES_GREEDY_KMEDIAN_H_
