#include "mcfs/baselines/brnn.h"

#include <algorithm>

#include "mcfs/core/repair.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

McfsSolution RunBrnnBaseline(const McfsInstance& instance,
                             MatcherBackendKind matcher) {
  const Graph& graph = *instance.graph;
  const int m = instance.m();
  const int l = instance.l();
  std::vector<int> facility_index_of_node(graph.NumNodes(), -1);
  for (int j = 0; j < l; ++j) {
    facility_index_of_node[instance.facility_nodes[j]] = j;
  }

  std::vector<int> selected;
  std::vector<uint8_t> used(l, 0);

  // First facility: maximize reachable customers, then minimize the
  // aggregate distance to them.
  {
    std::vector<double> sum(l, 0.0);
    std::vector<int> reached(l, 0);
    for (int i = 0; i < m; ++i) {
      const std::vector<double> dist =
          ShortestPathsFrom(graph, instance.customers[i]);
      for (int j = 0; j < l; ++j) {
        const double d = dist[instance.facility_nodes[j]];
        if (d != kInfDistance) {
          sum[j] += d;
          reached[j]++;
        }
      }
    }
    int best = 0;
    for (int j = 1; j < l; ++j) {
      if (reached[j] > reached[best] ||
          (reached[j] == reached[best] && sum[j] < sum[best])) {
        best = j;
      }
    }
    selected.push_back(best);
    used[best] = 1;
  }

  // Remaining rounds: MaxSum via NLR counting.
  while (static_cast<int>(selected.size()) < std::min(instance.k, l)) {
    std::vector<NodeId> sources;
    for (const int j : selected) {
      sources.push_back(instance.facility_nodes[j]);
    }
    const MultiSourceResult nearest = MultiSourceDijkstra(graph, sources);
    std::vector<int> attracted(l, 0);
    double worst_dist = -1.0;
    int worst_customer = -1;
    for (int i = 0; i < m; ++i) {
      const double radius = nearest.distance[instance.customers[i]];
      if (radius > worst_dist) {
        worst_dist = radius;
        worst_customer = i;
      }
      // The customer's NLR: nodes strictly closer than its nearest
      // selected facility.
      const std::vector<SettledNode> region =
          DijkstraWithinRadius(graph, instance.customers[i], radius);
      for (const SettledNode& s : region) {
        if (s.distance >= radius) continue;  // strict
        const int j = facility_index_of_node[s.node];
        if (j >= 0 && !used[j]) attracted[j]++;
      }
    }
    int best = -1;
    for (int j = 0; j < l; ++j) {
      if (used[j]) continue;
      if (best == -1 || attracted[j] > attracted[best]) best = j;
    }
    if (best == -1) break;
    if (attracted[best] == 0 && worst_customer != -1) {
      // No NLR overlaps any unused candidate; place near the
      // worst-served customer instead.
      IncrementalDijkstra dijkstra(&graph,
                                   instance.customers[worst_customer]);
      while (std::optional<SettledNode> s = dijkstra.NextSettled()) {
        const int j = facility_index_of_node[s->node];
        if (j >= 0 && !used[j]) {
          best = j;
          break;
        }
      }
    }
    selected.push_back(best);
    used[best] = 1;
  }

  CoverComponents(instance, selected);
  return AssignOptimally(instance, selected, /*threads=*/1, matcher);
}

}  // namespace mcfs
