#include "mcfs/baselines/greedy_kmedian.h"

#include <algorithm>
#include <vector>

#include "mcfs/core/repair.h"
#include "mcfs/exact/distance_matrix.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

McfsSolution RunGreedyKMedian(const McfsInstance& instance,
                              const GreedyKMedianOptions& options) {
  const int m = instance.m();
  const int l = instance.l();
  if (static_cast<int64_t>(m) * l > options.max_matrix_entries) {
    McfsSolution failed;
    failed.assignment.assign(m, -1);
    failed.distances.assign(m, 0.0);
    return failed;  // instance too large for the dense greedy
  }

  // Dense distances (per-customer Dijkstra or a CH bucket table).
  const std::vector<double> cost = ComputeDistanceMatrix(instance);

  // Greedy: each round opens the candidate with the largest reduction
  // of sum_i min-distance (uncapacitated proxy).
  std::vector<double> best_distance(m, kInfDistance);
  std::vector<uint8_t> used(l, 0);
  std::vector<int> selected;
  const int rounds = std::min(instance.k, l);
  for (int round = 0; round < rounds; ++round) {
    int best_facility = -1;
    double best_gain = -1.0;
    for (int j = 0; j < l; ++j) {
      if (used[j]) continue;
      double gain = 0.0;
      for (int i = 0; i < m; ++i) {
        const double d = cost[static_cast<size_t>(i) * l + j];
        if (d < best_distance[i]) {
          gain += (best_distance[i] == kInfDistance)
                      ? 1e12  // newly reachable customer dominates
                      : best_distance[i] - d;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_facility = j;
      }
    }
    if (best_facility == -1 || best_gain <= 0.0) break;
    used[best_facility] = 1;
    selected.push_back(best_facility);
    for (int i = 0; i < m; ++i) {
      best_distance[i] = std::min(
          best_distance[i],
          cost[static_cast<size_t>(i) * l + best_facility]);
    }
  }

  // Same finishing steps as the other baselines.
  if (static_cast<int>(selected.size()) < instance.k) {
    SelectGreedy(instance, selected);
  }
  CoverComponents(instance, selected);
  return AssignOptimally(instance, selected, /*threads=*/1, options.matcher);
}

}  // namespace mcfs
