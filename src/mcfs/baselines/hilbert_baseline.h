#ifndef MCFS_BASELINES_HILBERT_BASELINE_H_
#define MCFS_BASELINES_HILBERT_BASELINE_H_

#include "mcfs/core/instance.h"

namespace mcfs {

// The paper's Hilbert baseline (Sec. VII-A): per connected component,
// customers are sorted along a Hilbert space-filling curve and split
// into consecutive buckets of ceil(m_g / k_g) customers (k_g facilities
// allotted proportionally to the component's customer count); each
// bucket selects the unused candidate facility nearest (Euclidean) to
// its centroid. Capacity feasibility is then repaired per component
// (CoverComponents) and customers are assigned to the selected
// facilities by one optimal bipartite matching; `matcher` picks the
// engine for that final matching (flow/matcher_backend.h).
//
// Requires graph coordinates.
McfsSolution RunHilbertBaseline(const McfsInstance& instance,
                                MatcherBackendKind matcher =
                                    MatcherBackendKind::kSspa);

}  // namespace mcfs

#endif  // MCFS_BASELINES_HILBERT_BASELINE_H_
