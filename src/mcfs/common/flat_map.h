#ifndef MCFS_COMMON_FLAT_MAP_H_
#define MCFS_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mcfs/common/check.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

// Flat open-addressing hash maps for the sparse-search hot loops
// (resumable Dijkstra labels, CH query cones, witness searches). Both
// containers use a power-of-two slot array with linear probing and a
// multiplicative hash, so a relaxation pays one mixed multiply plus a
// short contiguous probe instead of std::unordered_map's bucket chase —
// and, crucially, never allocates per insert: memory is touched only
// when the whole table grows (counted under exec/alloc/*).
//
// Determinism contract: the hot paths use these maps for point lookups
// and inserts only. ForEach exists for tests and cold paths; its order
// depends on the hash layout and must not feed any order-sensitive
// logic (see DESIGN.md "Sparse-search kernels").

namespace flat_internal {

// Multiplicative (Fibonacci) mix. The table index is taken from the low
// bits, so fold the well-mixed high half down before masking.
inline size_t MixHash(uint64_t key) {
  uint64_t x = key * 0x9E3779B97F4A7C15ull;
  x ^= x >> 32;
  return static_cast<size_t>(x);
}

inline size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

inline constexpr size_t kMinCapacity = 16;

}  // namespace flat_internal

// FlatMap<Key, V>: open-addressing map keyed by a non-negative integer
// id (NodeId, customer index, ...). One slot holds {key, value}; the
// reserved `kEmptyKey` (default -1, never a valid id) marks free slots,
// keeping the slot 16 bytes for the NodeId->double workhorse case.
// Grows at 2/3 load by doubling and rehashing. No erase: the search
// kernels only ever add labels, and dropping tombstone support keeps
// probes branch-light.
template <typename Key, typename V, Key kEmptyKey = static_cast<Key>(-1)>
class FlatMap {
 public:
  FlatMap() = default;
  explicit FlatMap(size_t expected) { Reserve(expected); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  // Ensures `expected` entries fit without a growth rehash. A map that
  // later outgrows its most recent hint counts one
  // exec/alloc/flatmap_hint_misses on the first post-hint growth — the
  // signal that a caller's sizing model (e.g. a stream's G_b density
  // estimate) undershot and the table paid a rehash it was hinted to
  // avoid.
  void Reserve(size_t expected) {
    hinted_ = true;
    const size_t needed = expected + expected / 2 + 1;  // keep load <= 2/3
    if (needed <= slots_.size()) return;
    Rehash(flat_internal::NextPowerOfTwo(
        std::max(needed, flat_internal::kMinCapacity)));
  }

  // Wipes the contents but keeps the slot array (O(capacity)). For O(1)
  // reuse between searches, use StampedMap instead.
  void Clear() {
    for (Slot& slot : slots_) slot.key = kEmptyKey;
    size_ = 0;
  }

  const V* Find(Key key) const {
    if (slots_.empty()) return nullptr;
    size_t i = IndexFor(key);
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  V* Find(Key key) {
    return const_cast<V*>(static_cast<const FlatMap*>(this)->Find(key));
  }
  bool Contains(Key key) const { return Find(key) != nullptr; }

  // Returns the value for `key`, value-initializing it on first use.
  V& operator[](Key key) {
    MCFS_DCHECK(key != kEmptyKey);
    if (!slots_.empty()) {
      size_t i = IndexFor(key);
      while (true) {
        Slot& slot = slots_[i];
        if (slot.key == key) return slot.value;
        if (slot.key == kEmptyKey) {
          if ((size_ + 1) * 3 <= slots_.size() * 2) {
            slot.key = key;
            ++size_;
            return slot.value;
          }
          break;  // at the load limit: grow, then insert below
        }
        i = (i + 1) & mask_;
      }
    }
    CountHintMiss();
    Rehash(slots_.empty() ? flat_internal::kMinCapacity : slots_.size() * 2);
    size_t i = IndexFor(key);
    while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
    slots_[i].key = key;
    ++size_;
    return slots_[i].value;
  }

  // Unspecified (hash-layout) order; tests and cold paths only.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key = kEmptyKey;
    V value{};
  };

  size_t IndexFor(Key key) const {
    return flat_internal::MixHash(static_cast<uint64_t>(key)) & mask_;
  }

  // Growth rehash reached after a Reserve hint: the hint undershot.
  // Counted once per hint so the metric reads "maps whose sizing model
  // was wrong", not "doublings paid" (that is flatmap_grows).
  void CountHintMiss() {
    if (!hinted_) return;
    hinted_ = false;
    MCFS_COUNT("exec/alloc/flatmap_hint_misses", 1);
  }

  void Rehash(size_t new_capacity) {
    MCFS_COUNT("exec/alloc/flatmap_grows", 1);
    MCFS_COUNT("exec/alloc/flatmap_slots_rehashed",
               static_cast<int64_t>(size_));
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    for (Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      size_t i = IndexFor(slot.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool hinted_ = false;
};

// StampedMap<Key, V>: reusable scratch map whose Clear() is O(1) — each
// slot carries the epoch stamp of its last write, and bumping the map's
// epoch invalidates every entry at once. This is the classic timestamp
// trick for Dijkstra scratch (Flowlessly-style reusable search state):
// a per-call `dist` map becomes a long-lived member / thread_local that
// is cleared thousands of times without touching its memory. When the
// stamp type wraps (after 2^32 Clears for the default uint32_t) the
// slots are wiped once and the epoch restarts, so stale stamps can
// never alias a live epoch. Works for any key: occupancy is decided by
// the stamp, not a sentinel key.
template <typename Key, typename V, typename Stamp = uint32_t>
class StampedMap {
 public:
  StampedMap() = default;
  explicit StampedMap(size_t expected) { Reserve(expected); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  // Same hint-miss accounting as FlatMap::Reserve.
  void Reserve(size_t expected) {
    hinted_ = true;
    const size_t needed = expected + expected / 2 + 1;  // keep load <= 2/3
    if (needed <= slots_.size()) return;
    Rehash(flat_internal::NextPowerOfTwo(
        std::max(needed, flat_internal::kMinCapacity)));
  }

  // O(1) reset: previous entries become invisible under the new epoch.
  void Clear() {
    if (!slots_.empty()) MCFS_COUNT("exec/alloc/scratch_reuses", 1);
    size_ = 0;
    if (++epoch_ == 0) {  // stamp wrapped: wipe once and restart
      for (Slot& slot : slots_) slot.stamp = 0;
      epoch_ = 1;
    }
  }

  const V* Find(Key key) const {
    if (slots_.empty()) return nullptr;
    size_t i = IndexFor(key);
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.stamp != epoch_) return nullptr;  // free (or stale) slot
      if (slot.key == key) return &slot.value;
      i = (i + 1) & mask_;
    }
  }
  V* Find(Key key) {
    return const_cast<V*>(static_cast<const StampedMap*>(this)->Find(key));
  }
  bool Contains(Key key) const { return Find(key) != nullptr; }

  // Returns the value for `key`, value-initializing it on first use in
  // the current epoch (a stale slot's old value is overwritten).
  V& operator[](Key key) {
    if (!slots_.empty()) {
      size_t i = IndexFor(key);
      while (true) {
        Slot& slot = slots_[i];
        if (slot.stamp == epoch_) {
          if (slot.key == key) return slot.value;
          i = (i + 1) & mask_;
          continue;
        }
        if ((size_ + 1) * 3 <= slots_.size() * 2) {
          slot.key = key;
          slot.value = V{};
          slot.stamp = epoch_;
          ++size_;
          return slot.value;
        }
        break;  // at the load limit: grow, then insert below
      }
    }
    CountHintMiss();
    Rehash(slots_.empty() ? flat_internal::kMinCapacity : slots_.size() * 2);
    size_t i = IndexFor(key);
    while (slots_[i].stamp == epoch_) i = (i + 1) & mask_;
    Slot& slot = slots_[i];
    slot.key = key;
    slot.value = V{};
    slot.stamp = epoch_;
    ++size_;
    return slot.value;
  }

  // Unspecified (hash-layout) order; tests and cold paths only.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.stamp == epoch_) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key{};
    V value{};
    Stamp stamp = 0;
  };

  size_t IndexFor(Key key) const {
    return flat_internal::MixHash(static_cast<uint64_t>(key)) & mask_;
  }

  // See FlatMap::CountHintMiss.
  void CountHintMiss() {
    if (!hinted_) return;
    hinted_ = false;
    MCFS_COUNT("exec/alloc/flatmap_hint_misses", 1);
  }

  void Rehash(size_t new_capacity) {
    MCFS_COUNT("exec/alloc/flatmap_grows", 1);
    MCFS_COUNT("exec/alloc/flatmap_slots_rehashed",
               static_cast<int64_t>(size_));
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    const Stamp old_epoch = epoch_;
    epoch_ = 1;
    for (Slot& slot : old) {
      if (slot.stamp != old_epoch) continue;
      size_t i = IndexFor(slot.key);
      while (slots_[i].stamp == epoch_) i = (i + 1) & mask_;
      slots_[i].key = slot.key;
      slots_[i].value = std::move(slot.value);
      slots_[i].stamp = epoch_;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool hinted_ = false;
  Stamp epoch_ = 1;  // slots default to stamp 0 == free
};

}  // namespace mcfs

#endif  // MCFS_COMMON_FLAT_MAP_H_
