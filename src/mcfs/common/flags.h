#ifndef MCFS_COMMON_FLAGS_H_
#define MCFS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "mcfs/common/status.h"

namespace mcfs {

// Minimal command-line flag parser for the benchmark and example
// binaries. Accepts --name=value and bare boolean --name flags;
// positional arguments are ignored.
//
// Numeric values are parsed strictly: an empty value, trailing garbage
// ("--deadline-ms=abc", "--seed=12x"), or an out-of-range number is a
// typed kInvalidInput error naming the flag — never a silent 0. The
// TryGet* accessors surface that error as a StatusOr; the plain Get*
// convenience accessors print the diagnostic and exit(2), because a
// mistyped flag on a bench/example command line should fail loudly, not
// run the wrong experiment.
class Flags {
 public:
  Flags(int argc, char** argv);

  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  // Strict accessors: the default when the flag is absent, the parsed
  // number when well-formed, kInvalidInput naming the flag otherwise.
  StatusOr<double> TryGetDouble(const std::string& name,
                                double default_value) const;
  StatusOr<int64_t> TryGetInt(const std::string& name,
                              int64_t default_value) const;

  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mcfs

#endif  // MCFS_COMMON_FLAGS_H_
