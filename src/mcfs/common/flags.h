#ifndef MCFS_COMMON_FLAGS_H_
#define MCFS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace mcfs {

// Minimal command-line flag parser for the benchmark and example
// binaries. Accepts --name=value and bare boolean --name flags;
// positional arguments are ignored.
class Flags {
 public:
  Flags(int argc, char** argv);

  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mcfs

#endif  // MCFS_COMMON_FLAGS_H_
