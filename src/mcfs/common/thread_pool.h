#ifndef MCFS_COMMON_THREAD_POOL_H_
#define MCFS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcfs {

// Resolves an effective thread count for parallel sections:
//   * requested > 0  -> requested, verbatim;
//   * requested == 0 -> the MCFS_THREADS environment variable if set and
//     positive, else std::thread::hardware_concurrency().
// Always returns at least 1. The environment variable is read once per
// process (first call) so repeated resolution is cheap.
int ResolveThreadCount(int requested = 0);

// True while the calling thread is executing loop bodies of a
// ParallelFor (as a pool worker or as the dispatching caller).
// ParallelFor uses this to run nested parallel sections inline
// (serially) instead of deadlocking on the pool already running them.
bool InsideParallelRegion();

// A fixed-size, work-stealing-free thread pool built for deterministic
// data-parallel loops. Workers are spawned once and persist; jobs are
// broadcast to every worker and chunks of the iteration range are
// assigned *statically* (chunk c goes to participant c % P), so which
// thread executes which index is a pure function of the range, grain and
// participant count — there is no stealing and no racy redistribution.
//
// Determinism contract: ParallelFor only guarantees that fn(i) runs
// exactly once per index. Callers must keep fn's side effects disjoint
// per index (e.g. each index writes its own row / advances its own
// stream); under that discipline results are bit-identical for any
// thread count, because *what* is computed never depends on *where*.
class ThreadPool {
 public:
  // num_threads counts total participants including the calling thread;
  // 0 resolves via ResolveThreadCount(). A pool of size 1 spawns no
  // workers and runs everything inline.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total participants (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(i) exactly once for every i in [begin, end), splitting the
  // range into chunks of `grain` indices and executing chunks on up to
  // min(num_threads(), max_threads) participants (max_threads == 0 means
  // "all"; a negative cap degrades to serial). Degenerate inputs are
  // safe: begin >= end is a no-op, and the grain is clamped into
  // [1, end - begin] so oversized or non-positive grains cannot
  // overflow the chunk math. Blocks until every index is done.
  // Exceptions thrown by fn
  // are captured and the first one is rethrown on the calling thread
  // after the loop quiesces. Runs inline (serially, in index order) when
  // the effective participant count is 1, the range fits in one chunk,
  // or the call is nested inside another parallel region (nested
  // sections never block on the pool). Outer calls from distinct
  // threads are serialized against each other.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& fn,
                   int max_threads = 0);

  // Process-wide shared pool, lazily created with ResolveThreadCount(0)
  // participants. All library hot paths dispatch through this pool so a
  // process never over-subscribes cores with stacked pools.
  static ThreadPool& Default();

 private:
  struct Job {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    int participants = 0;  // chunk owners, including the caller
    const std::function<void(int64_t)>* fn = nullptr;
    // The dispatching caller's trace context: installed on every worker
    // for the duration of its chunks, so spans, flight-recorder events
    // and histogram exemplars emitted inside a parallel loop stay
    // attributed to the request that dispatched it (DESIGN.md §4.11).
    uint64_t trace_id = 0;
  };

  void WorkerLoop(int worker_index);
  // Runs participant `p`'s statically-assigned chunks of `job`.
  void RunChunks(const Job& job, int participant);
  void CaptureException();

  std::vector<std::thread> workers_;

  std::mutex dispatch_mutex_;  // serializes outer ParallelFor calls

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // caller waits for completion
  Job job_;
  uint64_t job_generation_ = 0;  // bumped when a job is published
  int workers_remaining_ = 0;    // workers still running the current job
  std::exception_ptr first_exception_;
  bool shutdown_ = false;
};

// Convenience wrapper: ThreadPool::Default().ParallelFor(...). The
// common entry point for library code; `max_threads` lets callers honor
// a per-call option (WmaOptions::threads, AlgorithmSuite::threads)
// without constructing private pools.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn,
                 int max_threads = 0);

}  // namespace mcfs

#endif  // MCFS_COMMON_THREAD_POOL_H_
