#include "mcfs/common/flags.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace mcfs {

namespace {

// Flag names treat '-' and '_' as the same character, so --trace-out
// and --trace_out both reach the "trace_out" key.
std::string NormalizeName(std::string_view name) {
  std::string normalized(name);
  std::replace(normalized.begin(), normalized.end(), '-', '_');
  return normalized;
}

Status BadValueError(const std::string& name, const std::string& value,
                     const char* reason) {
  return InvalidInputError("flag --" + name + "=" + value + ": " + reason);
}

[[noreturn]] void FatalFlagError(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  std::fflush(stderr);
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[NormalizeName(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    } else {
      values_[NormalizeName(arg)] = "true";  // bare flag = boolean true
    }
  }
}

StatusOr<double> Flags::TryGetDouble(const std::string& name,
                                     double default_value) const {
  auto it = values_.find(NormalizeName(name));
  if (it == values_.end()) return default_value;
  const std::string& value = it->second;
  if (value.empty()) return BadValueError(name, value, "empty value");
  // strtod/strtoll skip leading whitespace; a padded value is still a
  // malformed flag.
  if (std::isspace(static_cast<unsigned char>(value.front()))) {
    return BadValueError(name, value, "not a number");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || end == value.c_str()) {
    return BadValueError(name, value, "not a number");
  }
  if (errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL)) {
    return BadValueError(name, value, "out of range for double");
  }
  return parsed;
}

StatusOr<int64_t> Flags::TryGetInt(const std::string& name,
                                   int64_t default_value) const {
  auto it = values_.find(NormalizeName(name));
  if (it == values_.end()) return default_value;
  const std::string& value = it->second;
  if (value.empty()) return BadValueError(name, value, "empty value");
  if (std::isspace(static_cast<unsigned char>(value.front()))) {
    return BadValueError(name, value, "not an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || end == value.c_str()) {
    return BadValueError(name, value, "not an integer");
  }
  if (errno == ERANGE) {
    return BadValueError(name, value, "out of range for int64");
  }
  return static_cast<int64_t>(parsed);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  StatusOr<double> parsed = TryGetDouble(name, default_value);
  if (!parsed.ok()) FatalFlagError(parsed.status());
  return *parsed;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  StatusOr<int64_t> parsed = TryGetInt(name, default_value);
  if (!parsed.ok()) FatalFlagError(parsed.status());
  return *parsed;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(NormalizeName(name));
  return it == values_.end() ? default_value : it->second;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(NormalizeName(name));
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mcfs
