#include "mcfs/common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace mcfs {

namespace {

// Flag names treat '-' and '_' as the same character, so --trace-out
// and --trace_out both reach the "trace_out" key.
std::string NormalizeName(std::string_view name) {
  std::string normalized(name);
  std::replace(normalized.begin(), normalized.end(), '-', '_');
  return normalized;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[NormalizeName(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    } else {
      values_[NormalizeName(arg)] = "true";  // bare flag = boolean true
    }
  }
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::strtod(it->second.c_str(), nullptr);
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end()
             ? default_value
             : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mcfs
