#ifndef MCFS_COMMON_DEADLINE_H_
#define MCFS_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace mcfs {

// Cooperative wall-clock budget for the solvers, built on the monotonic
// steady clock (immune to wall-clock adjustments). Solver hot loops
// poll Expired() at phase boundaries — WMA iterations, SET-COVER scans,
// matcher augmentations — and wind down gracefully when it fires
// (anytime behavior; see DESIGN.md §4.8).
//
// Two modes:
//   * time mode (AfterMillis): expires once steady_clock passes the
//     armed instant — production path;
//   * poll mode (AfterPolls): expires on the n-th Expired() call —
//     a deterministic fault-injection hook so tests can fire the
//     deadline at exact, seed-reproducible points mid-solve.
// A default-constructed Deadline never expires and polls cost one
// branch.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  // Expires `ms` milliseconds from now (clamped to >= 0).
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.has_time_ = true;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       ms < 0.0 ? 0.0 : ms));
    return d;
  }

  // Fault-injection mode: the deadline reports expired from the
  // `polls`-th Expired() call onward (polls <= 0 fires immediately).
  static Deadline AfterPolls(int64_t polls) {
    Deadline d;
    d.polls_remaining_ = polls > 0 ? polls : 0;
    return d;
  }

  bool never_expires() const { return !has_time_ && polls_remaining_ < 0; }

  // Polls the deadline. In poll mode each call consumes one poll, so
  // keep a single Deadline instance per solve and poll only that one.
  bool Expired() const {
    if (polls_remaining_ >= 0) {
      if (polls_remaining_ == 0) return true;
      --polls_remaining_;
      return polls_remaining_ == 0;
    }
    if (!has_time_) return false;
    return Clock::now() >= expiry_;
  }

  // Seconds until expiry: +infinity when the deadline never expires,
  // 0 when already expired. Poll mode reports +infinity (it has no
  // clock) until it fires.
  double RemainingSeconds() const {
    if (polls_remaining_ >= 0) {
      return polls_remaining_ == 0
                 ? 0.0
                 : std::numeric_limits<double>::infinity();
    }
    if (!has_time_) return std::numeric_limits<double>::infinity();
    const double remaining =
        std::chrono::duration<double>(expiry_ - Clock::now()).count();
    return remaining < 0.0 ? 0.0 : remaining;
  }

 private:
  using Clock = std::chrono::steady_clock;

  bool has_time_ = false;
  Clock::time_point expiry_{};
  // Poll mode when >= 0; mutable because Expired() is the natural const
  // query yet must count down. Deadlines are polled from the (serial)
  // solver thread only.
  mutable int64_t polls_remaining_ = -1;
};

// Thread-safe cooperative cancellation flag: any thread calls Cancel(),
// the solver polls Cancelled() at the same boundaries as the deadline
// and returns its best-so-far solution with termination == kDeadline.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace mcfs

#endif  // MCFS_COMMON_DEADLINE_H_
