#include "mcfs/common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "mcfs/common/check.h"

namespace mcfs {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  MCFS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(header_);
  std::string sep;
  for (size_t c = 0; c < header_.size(); ++c) {
    sep.append(widths[c], '-');
    sep.append(2, ' ');
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

std::string FmtDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtSeconds(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

std::string FmtInt(long long value) {
  const std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out = value < 0 ? "-" : "";
  const size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace mcfs
