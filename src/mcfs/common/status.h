#ifndef MCFS_COMMON_STATUS_H_
#define MCFS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "mcfs/common/check.h"

namespace mcfs {

// Typed error codes for the hardened solve layer (DESIGN.md §4.8).
// Every recoverable failure in the library maps onto one of these;
// MCFS_CHECK stays reserved for programming errors (broken invariants),
// never for bad input, I/O trouble, or resource budgets.
enum class StatusCode {
  kOk = 0,
  kInvalidInput = 1,       // malformed instance / file / argument
  kInfeasible = 2,         // instance admits no feasible solution
  kDeadlineExceeded = 3,   // cooperative time budget expired
  kIoError = 4,            // filesystem-level failure (open/short write)
  kUnavailable = 5,        // resource at capacity (admission queue full)
  kUnsupported = 6,        // capability the chosen backend does not offer
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidInput:
      return "INVALID_INPUT";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
  }
  return "UNKNOWN";
}

// Value-type status: an error code plus a human-readable message with
// context (file, line number, component id, ...). Cheap to copy in the
// OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "INVALID_INPUT: bad edge weight at line 7" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  // Prefixes additional context onto an error ("graph.txt: <old>");
  // no-op on OK statuses. Returns *this for chaining.
  Status& WithContext(const std::string& context) {
    if (!ok()) message_ = context + ": " + message_;
    return *this;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidInputError(std::string message) {
  return Status(StatusCode::kInvalidInput, std::move(message));
}
inline Status InfeasibleError(std::string message) {
  return Status(StatusCode::kInfeasible, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}

// Either a value or an error status. Accessing value() on an error is a
// programming bug and CHECK-fails with the carried status message.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MCFS_CHECK(!status_.ok())
        << "StatusOr constructed from an OK status without a value";
  }
  StatusOr(T value)  // NOLINT
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MCFS_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    MCFS_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MCFS_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mcfs

// Early-returns the enclosing function with the error when `expr`
// evaluates to a non-OK Status.
#define MCFS_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::mcfs::Status mcfs_status_tmp_ = (expr);        \
    if (!mcfs_status_tmp_.ok()) return mcfs_status_tmp_; \
  } while (false)

#endif  // MCFS_COMMON_STATUS_H_
