#ifndef MCFS_COMMON_TIMER_H_
#define MCFS_COMMON_TIMER_H_

#include <chrono>

namespace mcfs {

// Simple monotonic wall-clock timer used by the benchmark harness and by
// algorithm-internal instrumentation (e.g., WMA iteration statistics).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcfs

#endif  // MCFS_COMMON_TIMER_H_
