#ifndef MCFS_COMMON_TIMER_H_
#define MCFS_COMMON_TIMER_H_

#include <chrono>

#include "mcfs/obs/metrics.h"

namespace mcfs {

// Simple monotonic wall-clock timer used by the benchmark harness and by
// algorithm-internal instrumentation (e.g., WMA iteration statistics).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// RAII timer that, on destruction, adds the elapsed seconds to a plain
// accumulator and/or observes them into a named metrics distribution
// (count = calls, sum = total seconds). Replaces the ad-hoc
// WallTimer-start/stop pairs in the bench harness, the WMA phase
// timers, and the examples:
//
//   { ScopedTimer timer(&stats.matching_seconds, "wma/matching_seconds");
//     ... }  // both sinks updated here
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator, const char* metric_name = nullptr)
      : accumulator_(accumulator), metric_name_(metric_name) {}
  explicit ScopedTimer(const char* metric_name)
      : metric_name_(metric_name) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  // Flushes the elapsed time into the sinks early; the destructor then
  // becomes a no-op. Returns the elapsed seconds.
  double Stop() {
    if (stopped_) return last_seconds_;
    stopped_ = true;
    last_seconds_ = timer_.Seconds();
    if (accumulator_ != nullptr) *accumulator_ += last_seconds_;
    if (metric_name_ != nullptr && obs::MetricsEnabled()) {
      obs::MetricsRegistry::Get()
          .GetDistribution(metric_name_)
          ->Observe(last_seconds_);
    }
    return last_seconds_;
  }

 private:
  WallTimer timer_;
  double* accumulator_ = nullptr;
  const char* metric_name_ = nullptr;
  bool stopped_ = false;
  double last_seconds_ = 0.0;
};

}  // namespace mcfs

#endif  // MCFS_COMMON_TIMER_H_
