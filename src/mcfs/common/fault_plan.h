#ifndef MCFS_COMMON_FAULT_PLAN_H_
#define MCFS_COMMON_FAULT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "mcfs/common/status.h"

namespace mcfs {

// Deterministic fault-injection schedule (DESIGN.md §4.13).
//
// Production failure paths are worthless untested, and timing-based
// chaos is unreproducible. A FaultPlan generalizes the two ad-hoc test
// hooks that existed before it (Deadline::AfterPolls planted in
// WmaOptions, ServiceOptions::inject_verify_failures) into one seeded
// schedule: each *site* that can fail polls the plan, and whether the
// i-th poll of a given fault kind fires is a pure function of
// (seed, kind, i) — the same seed replays the same fault sequence, on
// any machine, at any thread count (per-kind poll order permitting).

enum class FaultKind {
  // Plant a deterministic mid-solve deadline expiry (the served solve
  // degrades to its anytime answer exactly as a real deadline would).
  kDeadlineCut = 0,
  // Treat an independent verifier verdict as a rejection, driving the
  // rejection machinery (postmortem, fallback) on a correct solution.
  kVerifyReject,
  // Treat the admission queue as full for one Submit (overload pulse).
  kQueuePulse,
  // Fail a checkpoint write with a typed kIoError before touching disk.
  kCheckpointIo,
};

inline constexpr int kNumFaultKinds = 4;

const char* FaultKindName(FaultKind kind);

struct FaultPlanSpec {
  uint64_t seed = 0;
  // Per-kind firing probability in [0, 1] over the kind's poll sequence.
  double rate[kNumFaultKinds] = {0.0, 0.0, 0.0, 0.0};
  // Per-kind cap on total fires; < 0 = unlimited. Once a kind's budget
  // is spent it never fires again — how the chaos harness models
  // "faults stop" so convergence-after-chaos can be asserted.
  int64_t max_fires[kNumFaultKinds] = {-1, -1, -1, -1};
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanSpec& spec);

  // Parses a flag-friendly spec string:
  //   "seed=42,deadline_cut=0.1,verify_reject=0.05,queue_pulse=0.02,
  //    checkpoint_io=1,deadline_cut_max=20"
  // Keys are the snake_case kind names (rates), "<kind>_max" (fire
  // caps) and "seed". Unknown keys, malformed numbers, and rates
  // outside [0, 1] are rejected with kInvalidInput naming the token.
  // The empty string parses to an all-zero (never-firing) spec.
  static StatusOr<FaultPlanSpec> Parse(const std::string& text);

  // Polls the schedule at a failure-injection site. Thread-safe; the
  // decision for the i-th poll of `kind` is deterministic in
  // (seed, kind, i). A true return means the site must act out the
  // fault now (the poll is consumed either way).
  bool ShouldFire(FaultKind kind);

  int64_t polls(FaultKind kind) const;
  int64_t fires(FaultKind kind) const;
  int64_t total_fires() const;

  const FaultPlanSpec& spec() const { return spec_; }

  // {"seed":..,"kinds":[{"kind":"deadline_cut","rate":..,"polls":..,
  // "fires":..},..]} — for bench/CI artifacts.
  std::string Json() const;

 private:
  FaultPlanSpec spec_;
  std::atomic<int64_t> polls_[kNumFaultKinds];
  std::atomic<int64_t> fires_[kNumFaultKinds];
};

}  // namespace mcfs

#endif  // MCFS_COMMON_FAULT_PLAN_H_
