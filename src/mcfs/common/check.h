#ifndef MCFS_COMMON_CHECK_H_
#define MCFS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mcfs {
namespace internal_check {

// Terminates the process with a diagnostic message. Used by the CHECK
// macros below; never returns.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr,
                                   const std::string& message) {
  std::fprintf(stderr, "MCFS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Accumulates an optional streamed message for a failing check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace mcfs

// Always-on invariant check. Usage: MCFS_CHECK(x > 0) << "context " << x;
#define MCFS_CHECK(condition)                                       \
  while (!(condition))                                              \
  ::mcfs::internal_check::CheckMessageBuilder(__FILE__, __LINE__,   \
                                              #condition)

#define MCFS_CHECK_EQ(a, b) MCFS_CHECK((a) == (b))
#define MCFS_CHECK_NE(a, b) MCFS_CHECK((a) != (b))
#define MCFS_CHECK_LE(a, b) MCFS_CHECK((a) <= (b))
#define MCFS_CHECK_LT(a, b) MCFS_CHECK((a) < (b))
#define MCFS_CHECK_GE(a, b) MCFS_CHECK((a) >= (b))
#define MCFS_CHECK_GT(a, b) MCFS_CHECK((a) > (b))

// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define MCFS_DCHECK(condition) MCFS_CHECK(true || (condition))
#else
#define MCFS_DCHECK(condition) MCFS_CHECK(condition)
#endif

#endif  // MCFS_COMMON_CHECK_H_
