#include "mcfs/common/random.h"

#include <algorithm>
#include <numeric>

namespace mcfs {

std::vector<int> Rng::SampleWithoutReplacement(int universe, int count) {
  MCFS_CHECK_GE(universe, count);
  MCFS_CHECK_GE(count, 0);
  if (count == 0) return {};
  // Partial Fisher–Yates: shuffle only the prefix we need.
  std::vector<int> pool(universe);
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < count; ++i) {
    const int j = static_cast<int>(UniformInt(i, universe - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace mcfs
