#ifndef MCFS_COMMON_LINE_READER_H_
#define MCFS_COMMON_LINE_READER_H_

#include <istream>
#include <sstream>
#include <string>

#include "mcfs/common/status.h"

namespace mcfs {

// Line-oriented reader for the plain-text persistence formats: tracks
// the 1-based line number so loaders can return parse diagnostics like
// "graph file: line 7: expected 3 fields". Used by graph_io and
// instance_io (DESIGN.md §4.8); deliberately minimal — the formats are
// strict, one record per line.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  // Reads the next line; false at end of file.
  bool NextLine(std::string* line) {
    if (!std::getline(in_, *line)) return false;
    ++line_number_;
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return true;
  }

  // 1-based number of the line NextLine returned last (0 before the
  // first read).
  int64_t line_number() const { return line_number_; }

  // "line N: <what>" as a kInvalidInput status.
  Status ParseError(const std::string& what) const {
    std::ostringstream msg;
    msg << "line " << line_number_ << ": " << what;
    return InvalidInputError(msg.str());
  }

  // Premature end of file after `expected` records were promised.
  Status TruncatedError(const std::string& expected) const {
    std::ostringstream msg;
    msg << "unexpected end of file after line " << line_number_
        << " (expected " << expected << ")";
    return InvalidInputError(msg.str());
  }

 private:
  std::istream& in_;
  int64_t line_number_ = 0;
};

namespace line_reader_internal {

inline bool ReadOneField(std::istringstream& in, int* out) {
  return static_cast<bool>(in >> *out);
}
inline bool ReadOneField(std::istringstream& in, int64_t* out) {
  return static_cast<bool>(in >> *out);
}
inline bool ReadOneField(std::istringstream& in, size_t* out) {
  // Parse through a signed temporary so "-3" fails instead of wrapping.
  int64_t value = 0;
  if (!(in >> value) || value < 0) return false;
  *out = static_cast<size_t>(value);
  return true;
}
inline bool ReadOneField(std::istringstream& in, double* out) {
  return static_cast<bool>(in >> *out);
}
inline bool ReadOneField(std::istringstream& in, std::string* out) {
  return static_cast<bool>(in >> *out);
}

}  // namespace line_reader_internal

// Parses whitespace-separated fields out of one line. Trailing
// whitespace is fine; trailing junk is a parse failure (strict formats
// catch column drift early).
template <typename... Fields>
bool ParseFields(const std::string& line, Fields*... fields) {
  std::istringstream in(line);
  if (!(line_reader_internal::ReadOneField(in, fields) && ...)) {
    return false;
  }
  std::string rest;
  return !(in >> rest);
}

}  // namespace mcfs

#endif  // MCFS_COMMON_LINE_READER_H_
