#ifndef MCFS_COMMON_DARY_HEAP_H_
#define MCFS_COMMON_DARY_HEAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "mcfs/common/check.h"

namespace mcfs {

// Flat d-ary min-heap. A drop-in replacement for
// std::priority_queue<T, std::vector<T>, std::greater<T>> on Dijkstra
// workloads: 4-ary layout halves the tree height and keeps children in
// one cache line, which wins on pop-heavy priority queues (see
// bench_micro's heap comparison).
//
// T must be movable and comparable via Less (default: operator<, with
// the smallest element on top).
template <typename T, int Arity = 4, typename Less = std::less<T>>
class DaryHeap {
  static_assert(Arity >= 2, "heaps need at least two children per node");

 public:
  DaryHeap() = default;

  bool empty() const { return data_.empty(); }
  size_t size() const { return data_.size(); }
  // Retained backing storage; clear() keeps it, so a hoisted heap can
  // be reused allocation-free across searches.
  size_t capacity() const { return data_.capacity(); }
  void clear() { data_.clear(); }
  void reserve(size_t n) { data_.reserve(n); }

  const T& top() const {
    MCFS_DCHECK(!data_.empty());
    return data_.front();
  }

  void push(T value) {
    data_.push_back(std::move(value));
    SiftUp(data_.size() - 1);
  }

  void pop() {
    MCFS_DCHECK(!data_.empty());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) SiftDown(0);
  }

 private:
  void SiftUp(size_t index) {
    T value = std::move(data_[index]);
    while (index > 0) {
      const size_t parent = (index - 1) / Arity;
      if (!less_(value, data_[parent])) break;
      data_[index] = std::move(data_[parent]);
      index = parent;
    }
    data_[index] = std::move(value);
  }

  void SiftDown(size_t index) {
    T value = std::move(data_[index]);
    const size_t n = data_.size();
    while (true) {
      const size_t first_child = index * Arity + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      const size_t last_child = std::min(first_child + Arity, n);
      for (size_t child = first_child + 1; child < last_child; ++child) {
        if (less_(data_[child], data_[best])) best = child;
      }
      if (!less_(data_[best], value)) break;
      data_[index] = std::move(data_[best]);
      index = best;
    }
    data_[index] = std::move(value);
  }

  std::vector<T> data_;
  Less less_;
};

}  // namespace mcfs

#endif  // MCFS_COMMON_DARY_HEAP_H_
