#ifndef MCFS_COMMON_RANDOM_H_
#define MCFS_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "mcfs/common/check.h"

namespace mcfs {

// Deterministic, fast pseudo-random generator (xoshiro256**) used across
// the library so that every experiment is reproducible from a seed.
// Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MCFS_CHECK_LE(lo, hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>((*this)() % span);
  }

  // Standard normal via Box–Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return mean + stddev * cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-12) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(0, i - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Samples `count` distinct values from [0, universe) without
  // replacement (Floyd's algorithm would also work; we shuffle a prefix).
  std::vector<int> SampleWithoutReplacement(int universe, int count);

 private:
  static uint64_t Rotl(uint64_t x, int s) {
    return (x << s) | (x >> (64 - s));
  }

  uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mcfs

#endif  // MCFS_COMMON_RANDOM_H_
