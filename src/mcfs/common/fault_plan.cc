#include "mcfs/common/fault_plan.h"

#include <cstdlib>
#include <sstream>

#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {

// SplitMix64 finalizer: a high-quality 64 -> 64 mixer, so the firing
// decision is an evenly distributed pure function of (seed, kind, i).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char* const kKindNames[kNumFaultKinds] = {
    "deadline_cut", "verify_reject", "queue_pulse", "checkpoint_io"};

}  // namespace

const char* FaultKindName(FaultKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

FaultPlan::FaultPlan(const FaultPlanSpec& spec) : spec_(spec) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    polls_[k].store(0, std::memory_order_relaxed);
    fires_[k].store(0, std::memory_order_relaxed);
  }
}

StatusOr<FaultPlanSpec> FaultPlan::Parse(const std::string& text) {
  FaultPlanSpec spec;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidInputError("fault plan token '" + token +
                               "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    char* end = nullptr;
    if (key == "seed") {
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidInputError("fault plan seed '" + value +
                                 "' is not an unsigned integer");
      }
      spec.seed = static_cast<uint64_t>(parsed);
      continue;
    }
    int kind = -1;
    bool is_max = false;
    for (int k = 0; k < kNumFaultKinds; ++k) {
      if (key == kKindNames[k]) {
        kind = k;
      } else if (key == std::string(kKindNames[k]) + "_max") {
        kind = k;
        is_max = true;
      }
    }
    if (kind < 0) {
      return InvalidInputError("unknown fault plan key '" + key + "'");
    }
    if (is_max) {
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidInputError("fault plan cap '" + key + "=" + value +
                                 "' is not an integer");
      }
      spec.max_fires[kind] = static_cast<int64_t>(parsed);
    } else {
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return InvalidInputError("fault plan rate '" + key + "=" + value +
                                 "' is not a number");
      }
      if (!(parsed >= 0.0 && parsed <= 1.0)) {
        return InvalidInputError("fault plan rate '" + key + "=" + value +
                                 "' outside [0, 1]");
      }
      spec.rate[kind] = parsed;
    }
  }
  return spec;
}

bool FaultPlan::ShouldFire(FaultKind kind) {
  const int k = static_cast<int>(kind);
  const int64_t index = polls_[k].fetch_add(1, std::memory_order_relaxed);
  if (spec_.rate[k] <= 0.0) return false;
  // Decision for poll `index`: uniform in [0, 1) from the mixed bits.
  const uint64_t bits =
      Mix64(spec_.seed ^ Mix64(static_cast<uint64_t>(k) * 0x9e3779b97f4a7c15ULL +
                               static_cast<uint64_t>(index)));
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  if (u >= spec_.rate[k]) return false;
  // Enforce the fire budget exactly: claim a slot, give it back if the
  // budget was already spent.
  const int64_t claimed = fires_[k].fetch_add(1, std::memory_order_relaxed);
  if (spec_.max_fires[k] >= 0 && claimed >= spec_.max_fires[k]) {
    fires_[k].fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  MCFS_COUNT("fault/fires", 1);
  return true;
}

int64_t FaultPlan::polls(FaultKind kind) const {
  return polls_[static_cast<int>(kind)].load(std::memory_order_relaxed);
}

int64_t FaultPlan::fires(FaultKind kind) const {
  return fires_[static_cast<int>(kind)].load(std::memory_order_relaxed);
}

int64_t FaultPlan::total_fires() const {
  int64_t total = 0;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    total += fires_[k].load(std::memory_order_relaxed);
  }
  return total;
}

std::string FaultPlan::Json() const {
  std::ostringstream out;
  out << "{\"seed\": " << spec_.seed << ", \"kinds\": [";
  for (int k = 0; k < kNumFaultKinds; ++k) {
    if (k > 0) out << ", ";
    out << "{\"kind\": \"" << kKindNames[k] << "\", \"rate\": " << spec_.rate[k]
        << ", \"max_fires\": " << spec_.max_fires[k]
        << ", \"polls\": " << polls_[k].load(std::memory_order_relaxed)
        << ", \"fires\": " << fires_[k].load(std::memory_order_relaxed) << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace mcfs
