#include "mcfs/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {

namespace {

thread_local bool t_inside_parallel_region = false;

int EnvironmentThreadCount() {
  static const int count = [] {
    const char* env = std::getenv("MCFS_THREADS");
    if (env != nullptr) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<int>(std::min(parsed, 1024L));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return count;
}

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  return EnvironmentThreadCount();
}

bool InsideParallelRegion() { return t_inside_parallel_region; }

ThreadPool::ThreadPool(int num_threads) {
  const int total = std::max(1, ResolveThreadCount(num_threads));
  workers_.reserve(total - 1);
  for (int w = 0; w < total - 1; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Default() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (other statics they might touch could already be gone).
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ThreadPool::RunChunks(const Job& job, int participant) {
  int64_t chunks_run = 0;
  for (int64_t chunk = participant; chunk < job.num_chunks;
       chunk += job.participants) {
    const int64_t chunk_begin = job.begin + chunk * job.grain;
    const int64_t chunk_end = std::min(job.end, chunk_begin + job.grain);
    ++chunks_run;
    for (int64_t i = chunk_begin; i < chunk_end; ++i) {
      try {
        (*job.fn)(i);
      } catch (...) {
        CaptureException();
      }
    }
  }
  // Everything the pool measures is physical execution (how work was
  // dispatched, not what was computed), so it all lives under exec/ and
  // is exempt from the cross-thread-count determinism contract; the
  // per-participant chunk distribution is the load-balance signal.
  MCFS_COUNT("exec/pool/chunks", chunks_run);
  MCFS_OBSERVE("exec/pool/chunks_per_participant",
               static_cast<double>(chunks_run));
}

void ThreadPool::CaptureException() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_exception_ == nullptr) {
    first_exception_ = std::current_exception();
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_inside_parallel_region = true;
  uint64_t seen_generation = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      job = job_;
    }
    // Worker w owns participant index w + 1 (the caller is 0); workers
    // beyond the job's participant cap simply report done. The caller's
    // trace context rides along with the job so all instrumentation in
    // the loop body stays attributed to the dispatching request.
    if (worker_index + 1 < job.participants) {
      obs::ScopedTraceContext trace_scope(job.trace_id);
      RunChunks(job, worker_index + 1);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_remaining_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn,
                             int max_threads) {
  if (begin >= end) return;
  // Clamp the grain into [1, range]: a non-positive grain means "one
  // index per chunk", and a grain beyond the range would overflow the
  // chunk-count rounding below (int64 UB for e.g. grain == INT64_MAX).
  grain = std::max<int64_t>(1, std::min(grain, end - begin));
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  // max_threads == 0 means "all participants"; a negative cap is
  // nonsensical and degrades to serial (the conservative reading).
  int participants = max_threads < 0 ? 1 : num_threads();
  if (max_threads > 0) participants = std::min(participants, max_threads);
  participants =
      static_cast<int>(std::min<int64_t>(participants, num_chunks));

  MCFS_COUNT("exec/pool/parallel_fors", 1);
  MCFS_COUNT("exec/pool/indices", end - begin);

  // Serial fast path: one effective participant, or a nested call from
  // inside a running parallel region (blocking on the pool that is
  // executing us would deadlock).
  if (participants <= 1 || t_inside_parallel_region) {
    MCFS_COUNT("exec/pool/inline_sections", 1);
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // One outer loop at a time; concurrent outer callers queue up here.
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);

  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.num_chunks = num_chunks;
  job.participants = participants;
  job.fn = &fn;
  job.trace_id = obs::CurrentTraceId();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_generation_;
    workers_remaining_ = static_cast<int>(workers_.size());
    first_exception_ = nullptr;
  }
  work_cv_.notify_all();

  t_inside_parallel_region = true;
  RunChunks(job, /*participant=*/0);
  t_inside_parallel_region = false;

  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_remaining_ == 0; });
    pending = first_exception_;
    first_exception_ = nullptr;
  }
  if (pending != nullptr) std::rethrow_exception(pending);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn, int max_threads) {
  ThreadPool::Default().ParallelFor(begin, end, grain, fn, max_threads);
}

}  // namespace mcfs
