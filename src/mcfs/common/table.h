#ifndef MCFS_COMMON_TABLE_H_
#define MCFS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace mcfs {

// Fixed-width console table used by the benchmark harness to print
// paper-style result tables and series. Cells are strings; use the
// Fmt* helpers for numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders the table (header, separator, rows) to stdout.
  void Print() const;

  // Renders the table as CSV to the given file; returns false on I/O
  // failure.
  bool WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` significant decimals.
std::string FmtDouble(double value, int digits = 3);

// Formats a duration in seconds as a human-friendly string (ms / s / min).
std::string FmtSeconds(double seconds);

// Formats an integer with thousands separators (e.g., 50,961).
std::string FmtInt(long long value);

}  // namespace mcfs

#endif  // MCFS_COMMON_TABLE_H_
