#include "mcfs/serve/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace mcfs {

namespace {

constexpr char kMagic[] = "MCFSCKPT";
constexpr int kVersion = 1;

// FNV-1a 64: tiny, dependency-free, and plenty to catch truncation and
// bit rot (this is an integrity check, not an adversarial MAC).
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvAbsorb(uint64_t hash, const std::string& line) {
  for (const char c : line) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  hash ^= static_cast<unsigned char>('\n');
  hash *= kFnvPrime;
  return hash;
}

// Doubles travel as raw IEEE-754 bit patterns: exact round trip, no
// locale or precision drift — the restored seed must replay warm
// answers byte-identical to the process that exported it.
std::string DoubleHex(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(bits));
  return std::string(buffer);
}

bool HexDouble(const std::string& text, double* out) {
  if (text.size() != 16) return false;
  char* end = nullptr;
  const unsigned long long bits = std::strtoull(text.c_str(), &end, 16);
  if (end != text.c_str() + text.size()) return false;
  const uint64_t fixed = static_cast<uint64_t>(bits);
  std::memcpy(out, &fixed, sizeof(fixed));
  return true;
}

void WriteWarmSeed(std::ostringstream& out, const WarmSeed& seed) {
  out << "warmseed " << seed.customers.size() << " "
      << seed.facility_nodes.size() << "\n";
  for (const WarmSeedCustomer& customer : seed.customers) {
    out << "cust " << customer.node << " " << DoubleHex(customer.potential)
        << " " << customer.edges.size() << " " << customer.buffered.size()
        << " " << (customer.stream_exhausted ? 1 : 0) << " "
        << (customer.has_next ? 1 : 0) << " "
        << DoubleHex(customer.next_distance) << "\n";
    for (const WarmSeedEdge& edge : customer.edges) {
      out << "edge " << edge.facility_node << " " << DoubleHex(edge.weight)
          << " " << (edge.matched ? 1 : 0) << "\n";
    }
    for (const WarmSeedEdge& edge : customer.buffered) {
      out << "edge " << edge.facility_node << " " << DoubleHex(edge.weight)
          << " " << (edge.matched ? 1 : 0) << "\n";
    }
  }
  for (size_t j = 0; j < seed.facility_nodes.size(); ++j) {
    out << "fac " << seed.facility_nodes[j] << " "
        << DoubleHex(seed.facility_potentials[j]) << "\n";
  }
}

// Checksum-aware line reader: payload lines are absorbed into the FNV
// state as they are consumed, so by the time the checksum line appears
// the expected value is already on hand.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream& in) : in_(in) {}

  bool Next(std::string* line) {
    if (!std::getline(in_, *line)) return false;
    ++line_number_;
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return true;
  }

  bool NextPayload(std::string* line) {
    if (!Next(line)) return false;
    hash_ = FnvAbsorb(hash_, *line);
    return true;
  }

  int64_t line_number() const { return line_number_; }
  uint64_t hash() const { return hash_; }

  Status Error(const std::string& what) const {
    std::ostringstream msg;
    msg << "checkpoint line " << line_number_ << ": " << what;
    return IoError(msg.str());
  }

  Status Truncated(const std::string& expected) const {
    std::ostringstream msg;
    msg << "checkpoint truncated after line " << line_number_ << " (expected "
        << expected << ")";
    return IoError(msg.str());
  }

 private:
  std::istream& in_;
  int64_t line_number_ = 0;
  uint64_t hash_ = kFnvOffset;
};

Status ReadWarmSeed(CheckpointReader& reader, WarmSeed* seed) {
  std::string line;
  if (!reader.NextPayload(&line)) return reader.Truncated("warmseed header");
  std::istringstream header(line);
  std::string keyword;
  size_t num_customers = 0;
  size_t num_facilities = 0;
  if (!(header >> keyword >> num_customers >> num_facilities) ||
      keyword != "warmseed") {
    return reader.Error("expected 'warmseed <customers> <facilities>'");
  }
  seed->customers.resize(num_customers);
  for (WarmSeedCustomer& customer : seed->customers) {
    if (!reader.NextPayload(&line)) return reader.Truncated("cust record");
    std::istringstream cust(line);
    std::string potential_hex;
    std::string next_hex;
    size_t num_edges = 0;
    size_t num_buffered = 0;
    int exhausted = 0;
    int has_next = 0;
    if (!(cust >> keyword >> customer.node >> potential_hex >> num_edges >>
          num_buffered >> exhausted >> has_next >> next_hex) ||
        keyword != "cust" || !HexDouble(potential_hex, &customer.potential) ||
        !HexDouble(next_hex, &customer.next_distance)) {
      return reader.Error("malformed cust record");
    }
    customer.stream_exhausted = exhausted != 0;
    customer.has_next = has_next != 0;
    customer.edges.resize(num_edges);
    customer.buffered.resize(num_buffered);
    for (size_t e = 0; e < num_edges + num_buffered; ++e) {
      WarmSeedEdge& edge = e < num_edges ? customer.edges[e]
                                         : customer.buffered[e - num_edges];
      if (!reader.NextPayload(&line)) return reader.Truncated("edge record");
      std::istringstream es(line);
      std::string weight_hex;
      int matched = 0;
      if (!(es >> keyword >> edge.facility_node >> weight_hex >> matched) ||
          keyword != "edge" || !HexDouble(weight_hex, &edge.weight)) {
        return reader.Error("malformed edge record");
      }
      edge.matched = matched != 0;
    }
  }
  seed->facility_nodes.resize(num_facilities);
  seed->facility_potentials.resize(num_facilities);
  for (size_t j = 0; j < num_facilities; ++j) {
    if (!reader.NextPayload(&line)) return reader.Truncated("fac record");
    std::istringstream fac(line);
    std::string potential_hex;
    if (!(fac >> keyword >> seed->facility_nodes[j] >> potential_hex) ||
        keyword != "fac" ||
        !HexDouble(potential_hex, &seed->facility_potentials[j])) {
      return reader.Error("malformed fac record");
    }
  }
  return OkStatus();
}

}  // namespace

Status WriteServiceCheckpoint(const ServiceCheckpoint& checkpoint,
                              const std::string& path) {
  std::ostringstream payload;
  payload << kMagic << " " << kVersion << "\n";
  payload << "epoch " << checkpoint.epoch << "\n";
  payload << "catalog " << checkpoint.facility_nodes.size() << "\n";
  for (size_t j = 0; j < checkpoint.facility_nodes.size(); ++j) {
    payload << checkpoint.facility_nodes[j] << " " << checkpoint.capacities[j]
            << "\n";
  }
  payload << "tracked " << checkpoint.tracked_customers.size() << "\n";
  for (const NodeId node : checkpoint.tracked_customers) {
    payload << node << "\n";
  }
  payload << "seed " << (checkpoint.has_seed ? 1 : 0) << " "
          << checkpoint.seed_k << "\n";
  if (checkpoint.has_seed) {
    WriteWarmSeed(payload, checkpoint.seed.trajectory);
    WriteWarmSeed(payload, checkpoint.seed.final_assign);
  }

  const std::string body = payload.str();
  uint64_t hash = kFnvOffset;
  {
    // Absorb line by line (without the trailing '\n' the loop re-adds)
    // so writer and reader hash exactly the same byte stream.
    size_t start = 0;
    while (start < body.size()) {
      const size_t newline = body.find('\n', start);
      hash = FnvAbsorb(hash, body.substr(start, newline - start));
      start = newline + 1;
    }
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return IoError("cannot open checkpoint file for writing: " + path);
  }
  char checksum[17];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(hash));
  file << body << "checksum " << checksum << "\n";
  file.flush();
  if (!file.good()) {
    return IoError("short write to checkpoint file: " + path);
  }
  return OkStatus();
}

StatusOr<ServiceCheckpoint> ReadServiceCheckpoint(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return IoError("cannot open checkpoint file: " + path);
  }
  CheckpointReader reader(file);
  std::string line;
  if (!reader.NextPayload(&line)) {
    return IoError("checkpoint file is empty: " + path);
  }
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != kMagic) {
      return reader.Error("not a checkpoint file (bad magic)");
    }
    if (version != kVersion) {
      return reader.Error("unsupported checkpoint version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kVersion) + ")");
    }
  }
  ServiceCheckpoint checkpoint;
  std::string keyword;
  if (!reader.NextPayload(&line)) return reader.Truncated("epoch record");
  {
    std::istringstream in(line);
    if (!(in >> keyword >> checkpoint.epoch) || keyword != "epoch") {
      return reader.Error("expected 'epoch <n>'");
    }
  }
  size_t catalog_size = 0;
  if (!reader.NextPayload(&line)) return reader.Truncated("catalog header");
  {
    std::istringstream in(line);
    if (!(in >> keyword >> catalog_size) || keyword != "catalog") {
      return reader.Error("expected 'catalog <l>'");
    }
  }
  checkpoint.facility_nodes.resize(catalog_size);
  checkpoint.capacities.resize(catalog_size);
  for (size_t j = 0; j < catalog_size; ++j) {
    if (!reader.NextPayload(&line)) return reader.Truncated("catalog record");
    std::istringstream in(line);
    if (!(in >> checkpoint.facility_nodes[j] >> checkpoint.capacities[j])) {
      return reader.Error("malformed catalog record");
    }
  }
  size_t tracked_size = 0;
  if (!reader.NextPayload(&line)) return reader.Truncated("tracked header");
  {
    std::istringstream in(line);
    if (!(in >> keyword >> tracked_size) || keyword != "tracked") {
      return reader.Error("expected 'tracked <m>'");
    }
  }
  checkpoint.tracked_customers.resize(tracked_size);
  for (size_t i = 0; i < tracked_size; ++i) {
    if (!reader.NextPayload(&line)) return reader.Truncated("tracked record");
    std::istringstream in(line);
    if (!(in >> checkpoint.tracked_customers[i])) {
      return reader.Error("malformed tracked customer record");
    }
  }
  if (!reader.NextPayload(&line)) return reader.Truncated("seed header");
  {
    std::istringstream in(line);
    int has_seed = 0;
    if (!(in >> keyword >> has_seed >> checkpoint.seed_k) ||
        keyword != "seed") {
      return reader.Error("expected 'seed <has_seed> <k>'");
    }
    checkpoint.has_seed = has_seed != 0;
  }
  if (checkpoint.has_seed) {
    Status status = ReadWarmSeed(reader, &checkpoint.seed.trajectory);
    if (!status.ok()) return status;
    status = ReadWarmSeed(reader, &checkpoint.seed.final_assign);
    if (!status.ok()) return status;
  }
  // The payload hash is complete; the next line must carry it.
  const uint64_t expected = reader.hash();
  if (!reader.Next(&line)) return reader.Truncated("checksum record");
  {
    std::istringstream in(line);
    std::string checksum_hex;
    if (!(in >> keyword >> checksum_hex) || keyword != "checksum" ||
        checksum_hex.size() != 16) {
      return reader.Error("expected 'checksum <fnv64 hex>'");
    }
    char* end = nullptr;
    const unsigned long long stored =
        std::strtoull(checksum_hex.c_str(), &end, 16);
    if (end != checksum_hex.c_str() + checksum_hex.size()) {
      return reader.Error("malformed checksum value");
    }
    if (static_cast<uint64_t>(stored) != expected) {
      return reader.Error("checksum mismatch (file corrupted)");
    }
  }
  if (reader.Next(&line)) {
    return reader.Error("trailing data after checksum");
  }
  return checkpoint;
}

}  // namespace mcfs
