#include "mcfs/serve/service_report.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "mcfs/obs/metrics.h"

namespace mcfs {

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary summary;
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  summary.count = static_cast<int64_t>(n);
  double sum = 0.0;
  for (const double s : samples) sum += s;
  summary.mean = sum / static_cast<double>(n);
  // Nearest-rank on the sorted samples; with one sample every quantile
  // is that sample.
  summary.p50 = samples[(n - 1) / 2];
  summary.p95 = samples[(n - 1) * 95 / 100];
  summary.p99 = samples[(n - 1) * 99 / 100];
  summary.max = samples.back();
  return summary;
}

LatencySummary SummarizeHistogram(const obs::HistogramSnapshot& snapshot) {
  LatencySummary summary;
  if (snapshot.count == 0) return summary;
  summary.count = snapshot.count;
  summary.mean = snapshot.Mean();
  summary.p50 = snapshot.Quantile(0.50);
  summary.p95 = snapshot.Quantile(0.95);
  summary.p99 = snapshot.Quantile(0.99);
  summary.max = snapshot.max;
  summary.p99_exemplar = snapshot.TailExemplar(0.99);
  return summary;
}

std::string LatencySummaryJson(const LatencySummary& latency) {
  using obs::JsonNumber;
  std::ostringstream out;
  out << "{\"count\": " << latency.count;
  if (latency.count == 0) {
    out << ", \"mean\": null, \"p50\": null, \"p95\": null"
        << ", \"p99\": null, \"max\": null, \"p99_exemplar\": null}";
  } else {
    out << ", \"mean\": " << JsonNumber(latency.mean)
        << ", \"p50\": " << JsonNumber(latency.p50)
        << ", \"p95\": " << JsonNumber(latency.p95)
        << ", \"p99\": " << JsonNumber(latency.p99)
        << ", \"max\": " << JsonNumber(latency.max)
        << ", \"p99_exemplar\": " << latency.p99_exemplar << "}";
  }
  return out.str();
}

std::string SloReportsJson(const std::vector<SloReport>& slos) {
  using obs::JsonNumber;
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < slos.size(); ++i) {
    const SloReport& slo = slos[i];
    if (i > 0) out << ", ";
    out << "{\"tier\": \"" << obs::JsonEscape(slo.tier) << "\""
        << ", \"target_latency_ms\": " << JsonNumber(slo.target_latency_ms)
        << ", \"error_budget\": " << JsonNumber(slo.error_budget)
        << ", \"requests\": " << slo.requests
        << ", \"violations\": " << slo.violations
        << ", \"burn\": " << JsonNumber(slo.burn)
        << ", \"last_violation_trace_id\": " << slo.last_violation_trace_id
        << "}";
  }
  out << "]";
  return out.str();
}

std::string ServiceReport::Json() const {
  using obs::JsonNumber;
  const double per_request_preprocess =
      requests_completed == 0
          ? 0.0
          : preprocess_seconds_total / static_cast<double>(requests_completed);
  // One warm-state build does the same component scan a cold
  // ValidateInstance pays per solve, so build_seconds / builds is the
  // per-request preprocessing cost the service amortizes away.
  const double cold_estimate =
      epochs_built == 0 ? 0.0
                        : warm_build_seconds / static_cast<double>(epochs_built);
  std::ostringstream out;
  out << "{\"service\": {\"epoch\": " << epoch
      << ", \"epochs_built\": " << epochs_built
      << ", \"warm_build_seconds\": " << JsonNumber(warm_build_seconds)
      << ", \"matcher_backend\": \""
      << (matcher_backend.empty() ? "sspa" : matcher_backend) << "\"}"
      << ", \"requests\": {\"admitted\": " << requests_admitted
      << ", \"rejected\": " << requests_rejected
      << ", \"completed\": " << requests_completed
      << ", \"failed\": " << requests_failed
      << ", \"shed\": " << requests_shed
      << ", \"degraded\": " << degraded_responses
      << ", \"fast\": " << fast_responses
      << ", \"cache_hits\": " << cache_hits
      << ", \"deadline_terminations\": " << deadline_terminations << "}"
      << ", \"batches\": {\"count\": " << batches
      << ", \"max_size\": " << max_batch_size << "}";
  // Latency block: histogram-derived quantiles. An empty histogram has
  // no statistics — the helper emits explicit nulls so consumers never
  // see 0.0 (or worse, +/-inf fold results) masquerading as a
  // measurement.
  out << ", \"latency_seconds\": " << LatencySummaryJson(latency);
  out << ", \"slo\": " << SloReportsJson(slos)
      << ", \"phase_seconds\": {\"queue\": " << JsonNumber(queue_seconds_total)
      << ", \"preprocess\": " << JsonNumber(preprocess_seconds_total)
      << ", \"solve\": " << JsonNumber(solve_seconds_total) << "}"
      << ", \"resolve\": {\"updates\": " << resolve_updates
      << ", \"noop_updates\": " << resolve_noop_updates
      << ", \"ops_applied\": " << resolve_ops_applied
      << ", \"components_dirtied\": " << resolve_components_dirtied
      << ", \"warm\": " << resolves_warm << ", \"cold\": " << resolves_cold
      << ", \"verify_rejections\": " << resolve_verify_rejections
      << ", \"warm_customers_reused\": " << warm_customers_reused
      << ", \"warm_customers_repaired\": " << warm_customers_repaired
      << ", \"warm_seconds\": " << JsonNumber(resolve_warm_seconds)
      << ", \"cold_seconds\": " << JsonNumber(resolve_cold_seconds) << "}"
      << ", \"postmortems\": " << postmortems
      << ", \"tiered\": {\"fast_responses\": " << fast_responses
      << ", \"fast_fallthroughs\": " << fast_fallthroughs
      << ", \"refines_enqueued\": " << refines_enqueued
      << ", \"refine_runs\": " << refine_runs
      << ", \"refine_upgrades\": " << refine_upgrades
      << ", \"refine_discards\": " << refine_discards << "}"
      << ", \"latency_by_tier\": {\"fast\": "
      << LatencySummaryJson(latency_fast)
      << ", \"full\": " << LatencySummaryJson(latency_full)
      << ", \"degraded\": " << LatencySummaryJson(latency_degraded) << "}"
      << ", \"fault_tolerance\": {\"degraded_responses\": "
      << degraded_responses << ", \"degraded_fallbacks\": " << degraded_fallbacks
      << ", \"requests_shed\": " << requests_shed
      << ", \"checkpoints\": {\"saved\": " << checkpoints_saved
      << ", \"restored\": " << checkpoints_restored
      << ", \"failures\": " << checkpoint_failures << "}"
      << ", \"faults_injected\": " << faults_injected << "}"
      << ", \"amortization\": {\"cold_preprocess_seconds_per_request\": "
      << JsonNumber(cold_estimate)
      << ", \"warm_preprocess_seconds_per_request\": "
      << JsonNumber(per_request_preprocess) << "}}";
  return out.str();
}

bool ServiceReport::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << Json() << "\n";
  return file.good();
}

}  // namespace mcfs
