#include "mcfs/serve/solver_service.h"

#include <algorithm>
#include <functional>
#include <tuple>
#include <utility>

#include "mcfs/common/check.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/validate.h"
#include "mcfs/core/verifier.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {

namespace {

double NowSeconds() { return static_cast<double>(obs::TraceNowUs()) * 1e-6; }

}  // namespace

// --------------------------------------------------------------------------
// ResponseHandle

const SolveResponse& ResponseHandle::Wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool ResponseHandle::Done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void ResponseHandle::Complete(SolveResponse response) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MCFS_CHECK(!done_) << "response completed twice";
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

// --------------------------------------------------------------------------
// SolverService

bool SolverService::CacheKey::operator<(const CacheKey& other) const {
  return std::tie(k, customers, facility_subset) <
         std::tie(other.k, other.customers, other.facility_subset);
}

SolverService::SolverService(const Graph* graph,
                             std::vector<NodeId> facility_nodes,
                             std::vector<int> capacities,
                             const ServiceOptions& options)
    : graph_(graph), options_(options) {
  MCFS_CHECK(graph_ != nullptr) << "SolverService needs a graph";
  MCFS_CHECK_EQ(facility_nodes.size(), capacities.size());
  PublishWarmState(
      BuildWarmState(1, std::move(facility_nodes), std::move(capacities)));
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

SolverService::~SolverService() { Shutdown(); }

std::shared_ptr<const SolverService::WarmState> SolverService::BuildWarmState(
    uint64_t epoch, std::vector<NodeId> facility_nodes,
    std::vector<int> capacities) const {
  MCFS_SPAN("serve/warm_build");
  WallTimer timer;
  auto state = std::make_shared<WarmState>();
  state->epoch = epoch;
  state->facility_nodes = std::move(facility_nodes);
  state->capacities = std::move(capacities);
  // The catalog is service configuration, validated once here (requests
  // get graceful Status errors; a broken catalog is a deployment bug).
  MCFS_CHECK_EQ(state->facility_nodes.size(), state->capacities.size());
  const int num_nodes = graph_->NumNodes();
  state->facility_index_of_node.assign(num_nodes, -1);
  for (size_t j = 0; j < state->facility_nodes.size(); ++j) {
    const NodeId node = state->facility_nodes[j];
    MCFS_CHECK(node >= 0 && node < num_nodes)
        << "catalog facility " << j << " at node " << node << " out of range";
    MCFS_CHECK(state->facility_index_of_node[node] < 0)
        << "catalog facility node " << node << " appears twice";
    state->facility_index_of_node[node] = static_cast<int>(j);
    MCFS_CHECK_GE(state->capacities[j], 0)
        << "catalog facility " << j << " has negative capacity";
  }
  // The O(V + E) component scan every cold ValidateInstance pays, done
  // once per epoch, plus the per-component descending capacity lists
  // the Theorem-3 accounting consumes.
  state->components = ConnectedComponents(*graph_);
  state->component_caps_sorted.assign(state->components.num_components, {});
  for (size_t j = 0; j < state->facility_nodes.size(); ++j) {
    const int g = state->components.component_of[state->facility_nodes[j]];
    state->component_caps_sorted[g].push_back(state->capacities[j]);
  }
  for (std::vector<int>& caps : state->component_caps_sorted) {
    std::sort(caps.begin(), caps.end(), std::greater<int>());
  }
  state->build_seconds = timer.Seconds();
  MCFS_COUNT("serve/epoch_rebuilds", 1);
  MCFS_OBSERVE("serve/warm_build_seconds", state->build_seconds);
  return state;
}

void SolverService::PublishWarmState(std::shared_ptr<const WarmState> state) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_epoch_ != state->epoch) {
      cache_.clear();
      cache_order_.clear();
      cache_epoch_ = state->epoch;
    }
  }
  const double build_seconds = state->build_seconds;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    warm_state_ = std::move(state);
  }
  std::lock_guard<std::mutex> lock(report_mutex_);
  stats_.epochs_built++;
  stats_.warm_build_seconds += build_seconds;
}

std::shared_ptr<const SolverService::WarmState>
SolverService::SnapshotWarmState() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return warm_state_;
}

void SolverService::UpdateCapacities(std::vector<int> capacities) {
  // Serialized read-build-publish: two concurrent updates must not read
  // the same epoch and publish twins.
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  std::vector<NodeId> nodes;
  uint64_t next_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    nodes = warm_state_->facility_nodes;
    next_epoch = warm_state_->epoch + 1;
  }
  PublishWarmState(
      BuildWarmState(next_epoch, std::move(nodes), std::move(capacities)));
}

void SolverService::UpdateCandidates(std::vector<NodeId> facility_nodes,
                                     std::vector<int> capacities) {
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  uint64_t next_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    next_epoch = warm_state_->epoch + 1;
  }
  PublishWarmState(BuildWarmState(next_epoch, std::move(facility_nodes),
                                  std::move(capacities)));
}

uint64_t SolverService::epoch() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return warm_state_->epoch;
}

std::shared_ptr<ResponseHandle> SolverService::Submit(SolveRequest request) {
  auto handle = std::make_shared<ResponseHandle>();
  const char* rejection = nullptr;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) {
      rejection = "service is shut down";
    } else if (static_cast<int>(queue_.size()) >= options_.queue_depth) {
      rejection = "admission queue full";
    } else {
      queue_.push_back({std::move(request), handle, NowSeconds()});
    }
  }
  if (rejection != nullptr) {
    MCFS_COUNT("serve/requests_rejected", 1);
    {
      std::lock_guard<std::mutex> lock(report_mutex_);
      stats_.requests_rejected++;
    }
    SolveResponse response;
    response.status = UnavailableError(
        std::string(rejection) + " (queue_depth = " +
        std::to_string(options_.queue_depth) + ")");
    handle->Complete(std::move(response));
    return handle;
  }
  MCFS_COUNT("serve/requests_admitted", 1);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.requests_admitted++;
  }
  queue_cv_.notify_one();
  return handle;
}

SolveResponse SolverService::SolveSync(SolveRequest request) {
  return Submit(std::move(request))->Wait();
}

void SolverService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void SolverService::DispatcherLoop() {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // admitted request still gets a response.
      if (queue_.empty()) return;
      const int take = std::min<int>(options_.max_batch < 1
                                         ? 1
                                         : options_.max_batch,
                                     static_cast<int>(queue_.size()));
      batch.reserve(take);
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    MCFS_SPAN("serve/batch");
    MCFS_COUNT("serve/batches", 1);
    const int n = static_cast<int>(batch.size());
    MCFS_OBSERVE("serve/batch_size", static_cast<double>(n));
    {
      std::lock_guard<std::mutex> lock(report_mutex_);
      stats_.batches++;
      stats_.max_batch_size = std::max(stats_.max_batch_size, n);
    }
    if (n == 1) {
      Execute(batch[0]);
    } else {
      // One batch = one ParallelFor on the shared pool: requests in the
      // batch run concurrently up to serve_threads, and the solvers'
      // nested parallel sections degrade to inline serial inside the
      // region — which is exactly what keeps responses bit-identical to
      // direct SolveWma calls (the determinism contract).
      ParallelFor(
          0, n, 1, [&](int64_t i) { Execute(batch[i]); },
          options_.serve_threads);
    }
  }
}

bool SolverService::WarmValidate(const WarmState& warm,
                                 const McfsInstance& instance,
                                 const std::vector<int>& subset) const {
  // Mirror of DiagnoseInstance's verdict against the cached epoch
  // preprocessing, request-sized work only: O(m + |subset| log + C)
  // instead of the cold O(V + E) component scan. Kept in lockstep with
  // core/validate.cc — any defect found here is re-derived on the cold
  // path so the Status message stays byte-identical.
  if (instance.k < 0) return false;
  const int num_nodes = graph_->NumNodes();
  for (const NodeId c : instance.customers) {
    if (c < 0 || c >= num_nodes) return false;
  }
  // Catalog nodes are distinct and in range by construction; a subset
  // only introduces defects by repeating an index (duplicate node).
  if (!subset.empty()) {
    std::vector<int> seen;
    seen.reserve(subset.size());
    for (const int idx : subset) {
      if (std::find(seen.begin(), seen.end(), idx) != seen.end()) return false;
      seen.push_back(idx);
    }
  }
  // Theorem-3 accounting per component holding customers.
  const ComponentLabeling& components = warm.components;
  std::vector<int64_t> customers_in(components.num_components, 0);
  for (const NodeId c : instance.customers) {
    customers_in[components.component_of[c]]++;
  }
  std::vector<std::vector<int>> subset_caps;
  if (!subset.empty()) {
    subset_caps.assign(components.num_components, {});
    for (const int idx : subset) {
      const int g = components.component_of[warm.facility_nodes[idx]];
      subset_caps[g].push_back(warm.capacities[idx]);
    }
    for (std::vector<int>& caps : subset_caps) {
      std::sort(caps.begin(), caps.end(), std::greater<int>());
    }
  }
  int64_t required_facilities = 0;
  for (int g = 0; g < components.num_components; ++g) {
    if (customers_in[g] == 0) continue;
    const std::vector<int>& caps =
        subset.empty() ? warm.component_caps_sorted[g] : subset_caps[g];
    int64_t remaining = customers_in[g];
    for (const int c : caps) {
      if (remaining <= 0) break;
      remaining -= c;
      ++required_facilities;
    }
    if (remaining > 0) return false;
  }
  return required_facilities <= instance.k;
}

void SolverService::Execute(PendingRequest& pending) {
  MCFS_SPAN("serve/request");
  const SolveRequest& request = pending.request;
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();

  SolveResponse response;
  response.epoch = warm->epoch;
  response.queue_seconds = NowSeconds() - pending.admitted_at;

  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  const bool cacheable = options_.cache_capacity > 0 && deadline_ms == 0 &&
                         request.cancel == nullptr;

  // Materialize the instance view this request describes. The response
  // must be bit-identical to SolveWma on exactly this instance.
  McfsInstance instance;
  instance.graph = graph_;
  instance.customers = request.customers;
  instance.k = request.k;
  bool subset_in_range = true;
  const int catalog_size = static_cast<int>(warm->facility_nodes.size());
  if (request.facility_subset.empty()) {
    instance.facility_nodes = warm->facility_nodes;
    instance.capacities = warm->capacities;
  } else {
    instance.facility_nodes.reserve(request.facility_subset.size());
    instance.capacities.reserve(request.facility_subset.size());
    for (const int idx : request.facility_subset) {
      if (idx < 0 || idx >= catalog_size) {
        subset_in_range = false;
        break;
      }
      instance.facility_nodes.push_back(warm->facility_nodes[idx]);
      instance.capacities.push_back(warm->capacities[idx]);
    }
  }
  if (!subset_in_range) {
    // A service-level defect: the subset indexes the catalog, a concept
    // SolveWma never sees, so this error is the service's own.
    response.status = InvalidInputError(
        "facility subset index out of range [0, " +
        std::to_string(catalog_size) + ")");
    FinishRequest(pending, std::move(response));
    return;
  }

  if (cacheable) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_epoch_ == warm->epoch) {
      const auto it = cache_.find(
          CacheKey{request.customers, request.k, request.facility_subset});
      if (it != cache_.end()) {
        const CacheEntry& entry = it->second;
        response.solution = entry.solution;
        response.stats = entry.stats;
        response.verify_ran = entry.verify_ran;
        response.verify_ok = entry.verify_ok;
        response.cache_hit = true;
        MCFS_COUNT("serve/cache_hits", 1);
        FinishRequest(pending, std::move(response));
        return;
      }
    }
  }

  WallTimer preprocess_timer;
  if (!WarmValidate(*warm, instance, request.facility_subset)) {
    // The warm verdict says SolveWma would reject; re-derive the
    // canonical diagnosis on the cold path so the message matches the
    // direct call byte for byte.
    response.status = ValidateInstance(instance);
    MCFS_CHECK(!response.status.ok())
        << "warm validation rejected an instance the cold path accepts";
    response.preprocess_seconds = preprocess_timer.Seconds();
    FinishRequest(pending, std::move(response));
    return;
  }
  response.preprocess_seconds = preprocess_timer.Seconds();

  if (instance.m() == 0) {
    // SolveWma's trivial shortcut, replicated exactly.
    response.solution.feasible = true;
    FinishRequest(pending, std::move(response));
    return;
  }

  WmaOptions wma = options_.wma;
  wma.deadline_ms = deadline_ms;
  wma.deadline = Deadline::Infinite();
  wma.cancel = request.cancel;
  WallTimer solve_timer;
  WmaResult result = RunWma(instance, wma);
  response.solve_seconds = solve_timer.Seconds();
  response.solution = std::move(result.solution);
  response.stats = std::move(result.stats);

  if (response.solution.termination == Termination::kDeadline) {
    MCFS_COUNT("serve/deadline_terminations", 1);
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.deadline_terminations++;
  }

  if (options_.verify) {
    const VerifyReport verdict = VerifySolution(instance, response.solution);
    response.verify_ran = true;
    response.verify_ok = verdict.ok;
  }

  if (cacheable && response.solution.termination == Termination::kConverged) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_epoch_ == warm->epoch) {
      CacheKey key{request.customers, request.k, request.facility_subset};
      const auto inserted = cache_.emplace(
          key, CacheEntry{response.solution, response.stats,
                          response.verify_ran, response.verify_ok});
      if (inserted.second) {
        cache_order_.push_back(std::move(key));
        while (static_cast<int>(cache_.size()) > options_.cache_capacity) {
          cache_.erase(cache_order_.front());
          cache_order_.pop_front();
        }
      }
    }
  }

  FinishRequest(pending, std::move(response));
}

void SolverService::FinishRequest(PendingRequest& pending,
                                  SolveResponse response) {
  const double latency = NowSeconds() - pending.admitted_at;
  MCFS_OBSERVE("serve/queue_seconds", response.queue_seconds);
  MCFS_OBSERVE("serve/solve_seconds", response.solve_seconds);
  MCFS_OBSERVE("serve/latency_seconds", latency);
  if (response.status.ok()) {
    MCFS_COUNT("serve/requests_completed", 1);
  } else {
    MCFS_COUNT("serve/requests_failed", 1);
  }
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.requests_completed++;
    if (!response.status.ok()) stats_.requests_failed++;
    stats_.queue_seconds_total += response.queue_seconds;
    stats_.preprocess_seconds_total += response.preprocess_seconds;
    stats_.solve_seconds_total += response.solve_seconds;
    if (response.cache_hit) stats_.cache_hits++;
    latency_samples_.push_back(latency);
  }
  pending.handle->Complete(std::move(response));
}

ServiceReport SolverService::Report() const {
  ServiceReport report;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    report = stats_;
    samples = latency_samples_;
  }
  report.epoch = epoch();
  report.latency = SummarizeLatencies(std::move(samples));
  return report;
}

}  // namespace mcfs
