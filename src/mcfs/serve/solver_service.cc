#include "mcfs/serve/solver_service.h"

#include <algorithm>
#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>
#include <tuple>
#include <utility>

#include "mcfs/baselines/greedy_kmedian.h"
#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/common/check.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/repair.h"
#include "mcfs/core/validate.h"
#include "mcfs/core/verifier.h"
#include "mcfs/flow/fast_match.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/obs/flight_recorder.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"
#include "mcfs/serve/checkpoint.h"

namespace mcfs {

namespace {

double NowSeconds() { return static_cast<double>(obs::TraceNowUs()) * 1e-6; }

// Lowers the calling thread's CPU priority by `nice` (see
// ServiceOptions::background_nice). Raising niceness needs no
// privileges; errors are ignored — the setting is best-effort latency
// isolation, never correctness.
void ApplyBackgroundNice(int nice) {
  if (nice <= 0) return;
#ifdef __linux__
  setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)), nice);
#endif
}

const char kDefaultTier[] = "default";

// Runs `fn` when the scope unwinds (in-flight bookkeeping on functions
// with several return points).
template <typename F>
struct ScopeExit {
  F fn;
  ~ScopeExit() { fn(); }
};
template <typename F>
ScopeExit<F> OnScopeExit(F fn) {
  return {std::move(fn)};
}

}  // namespace

double UpdateEwma(std::atomic<double>& ewma, double sample) {
  // Compare-exchange loop: two completions landing together must both
  // take effect. The old load-then-store read-modify-write let one
  // overwrite the other, silently under-counting service time and
  // skewing the queue-delay shedding estimate under exactly the load
  // that makes shedding matter.
  double prev = ewma.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev <= 0.0 ? sample : 0.8 * prev + 0.2 * sample;
  } while (!ewma.compare_exchange_weak(prev, next, std::memory_order_relaxed,
                                       std::memory_order_relaxed));
  return next;
}

// --------------------------------------------------------------------------
// ResponseHandle

const SolveResponse& ResponseHandle::Wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool ResponseHandle::WaitFor(int64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (timeout_ms <= 0) return done_;
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [this] { return done_; });
}

bool ResponseHandle::Done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void ResponseHandle::Complete(SolveResponse response) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MCFS_CHECK(!done_) << "response completed twice";
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

// --------------------------------------------------------------------------
// SolverService

bool SolverService::CacheKey::operator<(const CacheKey& other) const {
  return std::tie(k, matcher, customers, facility_subset) <
         std::tie(other.k, other.matcher, other.customers,
                  other.facility_subset);
}

SolverService::SolverService(const Graph* graph,
                             std::vector<NodeId> facility_nodes,
                             std::vector<int> capacities,
                             const ServiceOptions& options)
    : graph_(graph), options_(options) {
  MCFS_CHECK(graph_ != nullptr) << "SolverService needs a graph";
  MCFS_CHECK_EQ(facility_nodes.size(), capacities.size());
  if (options_.flight_recorder) obs::EnableFlightRecorder(true);
  effective_parallelism_ = std::max(
      1, std::min(options_.max_batch < 1 ? 1 : options_.max_batch,
                  ResolveThreadCount(options_.serve_threads)));
  if (options_.expected_solve_ms > 0.0) {
    ewma_service_seconds_.store(options_.expected_solve_ms * 1e-3,
                                std::memory_order_relaxed);
  }
  slo_states_.reserve(options_.slos.size());
  for (const SloPolicy& policy : options_.slos) {
    SloState state;
    state.policy = policy;
    if (state.policy.tier.empty()) state.policy.tier = kDefaultTier;
    slo_states_.push_back(std::move(state));
  }
  PublishWarmState(
      BuildWarmState(1, std::move(facility_nodes), std::move(capacities)));
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  refiner_ = std::thread([this] { RefinerLoop(); });
}

SolverService::~SolverService() { Shutdown(); }

std::shared_ptr<const SolverService::WarmState> SolverService::BuildWarmState(
    uint64_t epoch, std::vector<NodeId> facility_nodes,
    std::vector<int> capacities) const {
  MCFS_SPAN("serve/warm_build");
  WallTimer timer;
  auto state = std::make_shared<WarmState>();
  state->epoch = epoch;
  state->facility_nodes = std::move(facility_nodes);
  state->capacities = std::move(capacities);
  // The catalog is service configuration, validated once here (requests
  // get graceful Status errors; a broken catalog is a deployment bug).
  MCFS_CHECK_EQ(state->facility_nodes.size(), state->capacities.size());
  const int num_nodes = graph_->NumNodes();
  state->facility_index_of_node.assign(num_nodes, -1);
  for (size_t j = 0; j < state->facility_nodes.size(); ++j) {
    const NodeId node = state->facility_nodes[j];
    MCFS_CHECK(node >= 0 && node < num_nodes)
        << "catalog facility " << j << " at node " << node << " out of range";
    MCFS_CHECK(state->facility_index_of_node[node] < 0)
        << "catalog facility node " << node << " appears twice";
    state->facility_index_of_node[node] = static_cast<int>(j);
    MCFS_CHECK_GE(state->capacities[j], 0)
        << "catalog facility " << j << " has negative capacity";
  }
  // The O(V + E) component scan every cold ValidateInstance pays, done
  // once per epoch, plus the per-component descending capacity lists
  // the Theorem-3 accounting consumes.
  state->components = ConnectedComponents(*graph_);
  state->component_caps_sorted.assign(state->components.num_components, {});
  for (size_t j = 0; j < state->facility_nodes.size(); ++j) {
    const int g = state->components.component_of[state->facility_nodes[j]];
    state->component_caps_sorted[g].push_back(state->capacities[j]);
  }
  for (std::vector<int>& caps : state->component_caps_sorted) {
    std::sort(caps.begin(), caps.end(), std::greater<int>());
  }
  // Nearest catalog facility per node (DESIGN.md §4.14): one
  // multi-source Dijkstra per epoch buys the instant responder its
  // selection signal and the quality-bound denominator without any
  // per-request graph work.
  state->nearest_facility =
      MultiSourceDijkstra(*graph_, state->facility_nodes);
  state->build_seconds = timer.Seconds();
  MCFS_COUNT("serve/epoch_rebuilds", 1);
  MCFS_OBSERVE("serve/warm_build_seconds", state->build_seconds);
  return state;
}

void SolverService::PublishWarmState(std::shared_ptr<const WarmState> state) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_epoch_ != state->epoch) {
      cache_.clear();
      cache_order_.clear();
      cache_epoch_ = state->epoch;
    }
  }
  const double build_seconds = state->build_seconds;
  const uint64_t epoch = state->epoch;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    warm_state_ = std::move(state);
  }
  MCFS_RECORD("serve/epoch_swap", static_cast<int64_t>(epoch), 0);
  std::lock_guard<std::mutex> lock(report_mutex_);
  stats_.epochs_built++;
  stats_.warm_build_seconds += build_seconds;
}

std::shared_ptr<const SolverService::WarmState>
SolverService::SnapshotWarmState() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return warm_state_;
}

int SolverService::MarkDirty(const std::vector<uint8_t>& stream_dirty,
                             const std::vector<uint8_t>& match_dirty) {
  const size_t size = std::max(stream_dirty.size(), match_dirty.size());
  if (resolve_.stream_dirty.size() < size) {
    resolve_.stream_dirty.resize(size, 0);
    resolve_.match_dirty.resize(size, 0);
  }
  int newly = 0;
  for (size_t g = 0; g < size; ++g) {
    if (g < stream_dirty.size() && stream_dirty[g] != 0 &&
        resolve_.stream_dirty[g] == 0) {
      resolve_.stream_dirty[g] = 1;
      ++newly;
    }
    if (g < match_dirty.size() && match_dirty[g] != 0 &&
        resolve_.match_dirty[g] == 0) {
      resolve_.match_dirty[g] = 1;
      ++newly;
    }
  }
  if (newly > 0) {
    MCFS_COUNT("resolve/components_dirtied", newly);
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.resolve_components_dirtied += newly;
  }
  return newly;
}

Status SolverService::UpdateCapacities(std::vector<int> capacities) {
  // Serialized read-validate-build-publish: two concurrent updates must
  // not read the same epoch and publish twins. resolve_mutex_ is taken
  // second (the service-wide lock order) so the dirty bits and the warm
  // state move together.
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();
  if (capacities.size() != warm->facility_nodes.size()) {
    return InvalidInputError(
        "capacity vector has " + std::to_string(capacities.size()) +
        " entries for a catalog of " +
        std::to_string(warm->facility_nodes.size()));
  }
  for (size_t j = 0; j < capacities.size(); ++j) {
    if (capacities[j] < 0) {
      return InvalidInputError("negative capacity " +
                               std::to_string(capacities[j]) + " (facility " +
                               std::to_string(j) + ")");
    }
  }
  if (capacities == warm->capacities) {
    // No-op delta: the state is already exactly this. Keep the epoch —
    // and with it the response cache and the warm-resolve seed.
    MCFS_COUNT("resolve/noop_updates", 1);
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.resolve_noop_updates++;
    return OkStatus();
  }
  // Capacity increases relax the matching problem: the resumed matching
  // could no longer be optimal in those components (decreases only shed
  // overflow, which the resume handles in place).
  std::vector<uint8_t> match_dirty(warm->components.num_components, 0);
  for (size_t j = 0; j < capacities.size(); ++j) {
    if (capacities[j] > warm->capacities[j]) {
      match_dirty[warm->components.component_of[warm->facility_nodes[j]]] = 1;
    }
  }
  MarkDirty({}, match_dirty);
  std::vector<NodeId> nodes = warm->facility_nodes;
  PublishWarmState(BuildWarmState(warm->epoch + 1, std::move(nodes),
                                  std::move(capacities)));
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.resolve_updates++;
  }
  return OkStatus();
}

Status SolverService::UpdateCandidates(std::vector<NodeId> facility_nodes,
                                       std::vector<int> capacities) {
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();
  if (facility_nodes.size() != capacities.size()) {
    return InvalidInputError(
        "catalog has " + std::to_string(facility_nodes.size()) +
        " facility nodes but " + std::to_string(capacities.size()) +
        " capacities");
  }
  const int num_nodes = graph_->NumNodes();
  std::vector<int> index_of_node(num_nodes, -1);
  for (size_t j = 0; j < facility_nodes.size(); ++j) {
    const NodeId node = facility_nodes[j];
    if (node < 0 || node >= num_nodes) {
      return InvalidInputError("facility node " + std::to_string(node) +
                               " out of range (facility " + std::to_string(j) +
                               ")");
    }
    if (index_of_node[node] >= 0) {
      // Same shape as DiagnoseInstance's duplicate diagnosis.
      return InvalidInputError("duplicate facility node " +
                               std::to_string(node) + " (facility " +
                               std::to_string(j) + ")");
    }
    index_of_node[node] = static_cast<int>(j);
    if (capacities[j] < 0) {
      return InvalidInputError("negative capacity " +
                               std::to_string(capacities[j]) + " (facility " +
                               std::to_string(j) + ")");
    }
  }
  if (facility_nodes == warm->facility_nodes &&
      capacities == warm->capacities) {
    MCFS_COUNT("resolve/noop_updates", 1);
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.resolve_noop_updates++;
    return OkStatus();
  }
  // Added candidates invalidate their component's discovery prefixes
  // (the new facility can appear mid-prefix) and matches; capacity
  // increases on persisting nodes invalidate matches only.
  std::vector<uint8_t> stream_dirty(warm->components.num_components, 0);
  std::vector<uint8_t> match_dirty(warm->components.num_components, 0);
  for (size_t j = 0; j < facility_nodes.size(); ++j) {
    const NodeId node = facility_nodes[j];
    const int old_index =
        node < static_cast<NodeId>(warm->facility_index_of_node.size())
            ? warm->facility_index_of_node[node]
            : -1;
    const int g = warm->components.component_of[node];
    if (old_index < 0) {
      stream_dirty[g] = 1;
      match_dirty[g] = 1;
    } else if (capacities[j] > warm->capacities[old_index]) {
      match_dirty[g] = 1;
    }
  }
  MarkDirty(stream_dirty, match_dirty);
  PublishWarmState(BuildWarmState(warm->epoch + 1, std::move(facility_nodes),
                                  std::move(capacities)));
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.resolve_updates++;
  }
  return OkStatus();
}

StatusOr<UpdateResult> SolverService::ApplyUpdate(
    const UpdateRequest& update) {
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();
  const int num_nodes = graph_->NumNodes();

  // Working copies: every op validates against (and mutates) these, and
  // nothing is committed until all ops passed — all-or-nothing.
  std::vector<NodeId> nodes = warm->facility_nodes;
  std::vector<int> caps = warm->capacities;
  std::vector<int> index_of_node = warm->facility_index_of_node;
  std::vector<NodeId> tracked = tracked_customers_;
  std::vector<uint8_t> stream_dirty(warm->components.num_components, 0);
  std::vector<uint8_t> match_dirty(warm->components.num_components, 0);

  for (size_t op_index = 0; op_index < update.ops.size(); ++op_index) {
    const UpdateOp& op = update.ops[op_index];
    auto op_error = [op_index](const std::string& message) {
      return InvalidInputError("update op " + std::to_string(op_index) +
                               ": " + message);
    };
    if (op.node < 0 || op.node >= num_nodes) {
      return op_error("node " + std::to_string(op.node) +
                      " out of range [0, " + std::to_string(num_nodes) + ")");
    }
    const int g = warm->components.component_of[op.node];
    switch (op.kind) {
      case UpdateKind::kCapacityDelta: {
        const int j = index_of_node[op.node];
        if (j < 0) {
          return op_error("capacity delta on node " +
                          std::to_string(op.node) +
                          " which holds no candidate facility");
        }
        const int next = caps[j] + op.capacity_delta;
        if (next < 0) {
          return op_error("capacity of the facility at node " +
                          std::to_string(op.node) + " would drop to " +
                          std::to_string(next));
        }
        if (op.capacity_delta > 0) match_dirty[g] = 1;
        caps[j] = next;
        break;
      }
      case UpdateKind::kCandidateAdd: {
        if (index_of_node[op.node] >= 0) {
          // Same shape as DiagnoseInstance's duplicate diagnosis.
          return op_error("duplicate facility node " +
                          std::to_string(op.node) + " (facility " +
                          std::to_string(index_of_node[op.node]) + ")");
        }
        if (op.capacity_delta < 0) {
          return op_error("negative capacity " +
                          std::to_string(op.capacity_delta) +
                          " for the candidate added at node " +
                          std::to_string(op.node));
        }
        index_of_node[op.node] = static_cast<int>(nodes.size());
        nodes.push_back(op.node);
        caps.push_back(op.capacity_delta);
        stream_dirty[g] = 1;
        match_dirty[g] = 1;
        break;
      }
      case UpdateKind::kCandidateRemove: {
        const int j = index_of_node[op.node];
        if (j < 0) {
          return op_error("no candidate facility at node " +
                          std::to_string(op.node) + " to remove");
        }
        // Swap-remove; the catalog order changes, which is fine — the
        // catalog defines itself and warm seeds are node-keyed.
        index_of_node[op.node] = -1;
        const int last = static_cast<int>(nodes.size()) - 1;
        if (j != last) {
          nodes[j] = nodes[last];
          caps[j] = caps[last];
          index_of_node[nodes[j]] = j;
        }
        nodes.pop_back();
        caps.pop_back();
        break;
      }
      case UpdateKind::kCustomerArrive: {
        tracked.push_back(op.node);
        break;
      }
      case UpdateKind::kCustomerDepart: {
        bool found = false;
        for (size_t i = tracked.size(); i-- > 0;) {
          if (tracked[i] == op.node) {
            tracked.erase(tracked.begin() + static_cast<int64_t>(i));
            found = true;
            break;
          }
        }
        if (!found) {
          return op_error("no tracked customer at node " +
                          std::to_string(op.node) + " to depart");
        }
        break;
      }
    }
  }

  MCFS_COUNT("resolve/deltas_classified",
             static_cast<int64_t>(update.ops.size()));

  UpdateResult out;
  out.ops_applied = static_cast<int>(update.ops.size());
  const bool catalog_changed =
      nodes != warm->facility_nodes || caps != warm->capacities;
  const bool tracked_changed = tracked != tracked_customers_;
  if (!catalog_changed && !tracked_changed) {
    out.noop = true;
    out.epoch = warm->epoch;
    MCFS_COUNT("resolve/noop_updates", 1);
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.resolve_noop_updates++;
    stats_.resolve_ops_applied += out.ops_applied;
    return out;
  }
  out.components_dirtied = MarkDirty(stream_dirty, match_dirty);
  if (catalog_changed) {
    PublishWarmState(
        BuildWarmState(warm->epoch + 1, std::move(nodes), std::move(caps)));
    out.epoch_bumped = true;
    out.epoch = warm->epoch + 1;
  } else {
    out.epoch = warm->epoch;
  }
  tracked_customers_ = std::move(tracked);
  tracked_count_.store(static_cast<int64_t>(tracked_customers_.size()),
                       std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.resolve_updates++;
    stats_.resolve_ops_applied += out.ops_applied;
  }
  return out;
}

uint64_t SolverService::epoch() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return warm_state_->epoch;
}

McfsInstance SolverService::TrackedInstance(int k) const {
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();
  McfsInstance instance;
  instance.graph = graph_;
  instance.customers = tracked_customers_;
  instance.facility_nodes = warm->facility_nodes;
  instance.capacities = warm->capacities;
  instance.k = k;
  return instance;
}

size_t SolverService::tracked_customer_count() const {
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  return tracked_customers_.size();
}

SolveResponse SolverService::ResolveTracked(int k, int64_t deadline_ms,
                                            bool force_cold) {
  const uint64_t trace_id = obs::NewTraceId();
  obs::ScopedTraceContext trace_scope(trace_id);
  MCFS_SPAN("resolve/tracked");
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    in_flight_.push_back(trace_id);
  }
  auto in_flight_guard = OnScopeExit([this, trace_id] {
    std::lock_guard<std::mutex> lock(report_mutex_);
    in_flight_.erase(
        std::find(in_flight_.begin(), in_flight_.end(), trace_id));
  });
  // Held for the whole solve: the seed, the dirty bits, and the tracked
  // population must not move under a resolve, and concurrent resolves
  // would race on the exported seed. Updates queue behind (lock order:
  // update_mutex_ -> resolve_mutex_, and we take only the latter).
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();

  SolveResponse response;
  response.epoch = warm->epoch;
  response.trace_id = trace_id;

  McfsInstance instance;
  instance.graph = graph_;
  instance.customers = tracked_customers_;
  instance.facility_nodes = warm->facility_nodes;
  instance.capacities = warm->capacities;
  instance.k = k;

  WallTimer preprocess_timer;
  if (!WarmValidate(*warm, instance, {})) {
    // Invalid or infeasible state for this k: report the canonical cold
    // diagnosis and keep the seed — a later delta can restore validity.
    response.status = ValidateInstance(instance);
    MCFS_CHECK(!response.status.ok())
        << "warm validation rejected an instance the cold path accepts";
    if (response.status.code() == StatusCode::kInfeasible) {
      RecordPostmortem("infeasible", trace_id, warm->epoch);
    }
    response.preprocess_seconds = preprocess_timer.Seconds();
    return response;
  }
  response.preprocess_seconds = preprocess_timer.Seconds();

  if (instance.m() == 0) {
    response.solution.feasible = true;
    resolve_.seed.reset();  // nothing to resume from next time
    return response;
  }

  // options_.wma.deadline is copied through deliberately (each copy has
  // its own poll budget) — that is how tests plant AfterPolls expiries.
  WmaOptions wma = options_.wma;
  wma.deadline_ms = deadline_ms;
  wma.cancel = nullptr;
  wma.export_warm_seed = true;
  wma.trace_id = trace_id;

  const bool warm_started = !force_cold && !wma.naive &&
                            resolve_.seed != nullptr && resolve_.seed_k == k &&
                            !resolve_.seed->trajectory.customers.empty();
  if (warm_started) {
    wma.warm_seed = resolve_.seed;
    // Expand the per-component dirty bits into per-seed-customer
    // invalidation masks (the narrowing that makes repairs cheap: clean
    // components resume wholesale).
    const std::vector<WarmSeedCustomer>& seeded =
        resolve_.seed->trajectory.customers;
    wma.warm_stream_invalid.assign(seeded.size(), 0);
    wma.warm_match_invalid.assign(seeded.size(), 0);
    for (size_t s = 0; s < seeded.size(); ++s) {
      const int g = warm->components.component_of[seeded[s].node];
      if (g < static_cast<int>(resolve_.stream_dirty.size()) &&
          resolve_.stream_dirty[g] != 0) {
        wma.warm_stream_invalid[s] = 1;
      }
      if (g < static_cast<int>(resolve_.match_dirty.size()) &&
          resolve_.match_dirty[g] != 0) {
        wma.warm_match_invalid[s] = 1;
      }
    }
  }

  WallTimer solve_timer;
  WmaResult result = RunWma(instance, wma);
  response.solve_seconds = solve_timer.Seconds();

  bool fell_back_cold = false;
  if (warm_started) {
    // Safety net: every warm-started solve is verified independently,
    // whatever options_.verify says. A bad verdict falls back to cold.
    const VerifyReport verdict = VerifySolution(instance, result.solution);
    response.verify_ran = true;
    bool verify_ok = verdict.ok;
    if (verify_ok && options_.inject_verify_failures > 0) {
      // Fault injection (tests/CI): treat this verdict as a rejection so
      // the whole failure path — postmortem capture + cold fallback —
      // runs deterministically. The response stays correct.
      options_.inject_verify_failures--;
      MCFS_RECORD("resolve/inject_verify_failure",
                  static_cast<int64_t>(trace_id), 0);
      verify_ok = false;
    }
    response.verify_ok = verify_ok;
    if (!verify_ok) {
      MCFS_COUNT("resolve/verify_rejections", 1);
      {
        std::lock_guard<std::mutex> lock(report_mutex_);
        stats_.resolve_verify_rejections++;
      }
      RecordPostmortem("verify_rejection", trace_id, warm->epoch);
      WmaOptions cold = options_.wma;
      cold.deadline_ms = deadline_ms;
      cold.cancel = nullptr;
      cold.export_warm_seed = true;
      cold.trace_id = trace_id;
      WallTimer cold_timer;
      result = RunWma(instance, cold);
      response.solve_seconds += cold_timer.Seconds();
      const VerifyReport cold_verdict =
          VerifySolution(instance, result.solution);
      response.verify_ok = cold_verdict.ok;
      fell_back_cold = true;
    }
  } else if (options_.verify) {
    const VerifyReport verdict = VerifySolution(instance, result.solution);
    response.verify_ran = true;
    response.verify_ok = verdict.ok;
  }

  if (result.solution.termination == Termination::kDeadline) {
    // A deadline-cut tracked resolve hands back an anytime solution the
    // next epoch builds on — exactly the situation a postmortem's recent
    // phase history explains.
    RecordPostmortem("warm_deadline", trace_id, warm->epoch);
  }

  response.solution = std::move(result.solution);
  response.stats = std::move(result.stats);

  // The exported end-of-run state seeds the next resolve; the deltas it
  // saw are now baked in, so the dirty bits reset.
  resolve_.seed = std::move(result.warm_seed);
  resolve_.seed_k = k;
  std::fill(resolve_.stream_dirty.begin(), resolve_.stream_dirty.end(), 0);
  std::fill(resolve_.match_dirty.begin(), resolve_.match_dirty.end(), 0);

  const bool counted_warm = warm_started && !fell_back_cold;
  response.warm_attempted = warm_started;
  response.warm_served = counted_warm;
  if (counted_warm) {
    MCFS_COUNT("resolve/warm_repairs", 1);
  } else {
    MCFS_COUNT("resolve/cold_fallbacks", 1);
  }
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    if (counted_warm) {
      stats_.resolves_warm++;
      stats_.resolve_warm_seconds += response.solve_seconds;
    } else {
      stats_.resolves_cold++;
      stats_.resolve_cold_seconds += response.solve_seconds;
    }
    stats_.warm_customers_reused += response.stats.warm_customers_reused;
    stats_.warm_customers_repaired += response.stats.warm_customers_repaired;
  }
  return response;
}

Status SolverService::CheckpointTo(const std::string& path) {
  MCFS_SPAN("serve/checkpoint_save");
  // Lock order: update -> resolve. The catalog, tracked population, and
  // seed move together; serving continues around the snapshot.
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  if (options_.fault_plan != nullptr &&
      options_.fault_plan->ShouldFire(FaultKind::kCheckpointIo)) {
    MCFS_RECORD("serve/fault_checkpoint_io", 0, 0);
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.checkpoint_failures++;
    stats_.faults_injected++;
    return IoError("fault-injected checkpoint write failure: " + path);
  }
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();
  ServiceCheckpoint checkpoint;
  checkpoint.epoch = warm->epoch;
  checkpoint.facility_nodes = warm->facility_nodes;
  checkpoint.capacities = warm->capacities;
  checkpoint.tracked_customers = tracked_customers_;
  // The seed travels only when its dirty bits are all clean: a dirty
  // seed needs the invalidation masks to repair safely, and those are
  // transient in-process state. A restore without the seed is just a
  // cold first resolve — correct, only slower.
  const auto clean = [](const std::vector<uint8_t>& bits) {
    return std::all_of(bits.begin(), bits.end(),
                       [](uint8_t b) { return b == 0; });
  };
  if (resolve_.seed != nullptr && clean(resolve_.stream_dirty) &&
      clean(resolve_.match_dirty)) {
    checkpoint.has_seed = true;
    checkpoint.seed_k = resolve_.seed_k;
    checkpoint.seed = *resolve_.seed;
  }
  const Status status = WriteServiceCheckpoint(checkpoint, path);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    if (status.ok()) {
      stats_.checkpoints_saved++;
    } else {
      stats_.checkpoint_failures++;
    }
  }
  if (status.ok()) MCFS_COUNT("serve/checkpoints_saved", 1);
  return status;
}

Status SolverService::RestoreFrom(const std::string& path) {
  MCFS_SPAN("serve/checkpoint_restore");
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
  const auto fail = [this](Status status) {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.checkpoint_failures++;
    return status;
  };
  StatusOr<ServiceCheckpoint> loaded = ReadServiceCheckpoint(path);
  if (!loaded.ok()) return fail(loaded.status());
  ServiceCheckpoint checkpoint = std::move(loaded).value();
  // Validate against the live graph before touching any state: a
  // checkpoint from a different network is corruption from this
  // service's point of view, and BuildWarmState would CHECK-crash on it.
  const int num_nodes = graph_->NumNodes();
  std::vector<uint8_t> seen(static_cast<size_t>(num_nodes), 0);
  for (size_t j = 0; j < checkpoint.facility_nodes.size(); ++j) {
    const NodeId node = checkpoint.facility_nodes[j];
    if (node < 0 || node >= num_nodes) {
      return fail(IoError("checkpoint does not match the service graph: "
                          "facility node " +
                          std::to_string(node) + " out of range [0, " +
                          std::to_string(num_nodes) + ")"));
    }
    if (seen[node] != 0) {
      return fail(IoError(
          "corrupted checkpoint: duplicate facility node " +
          std::to_string(node)));
    }
    seen[node] = 1;
    if (checkpoint.capacities[j] < 0) {
      return fail(IoError("corrupted checkpoint: negative capacity " +
                          std::to_string(checkpoint.capacities[j]) +
                          " (facility " + std::to_string(j) + ")"));
    }
  }
  for (const NodeId node : checkpoint.tracked_customers) {
    if (node < 0 || node >= num_nodes) {
      return fail(IoError("checkpoint does not match the service graph: "
                          "tracked customer node " +
                          std::to_string(node) + " out of range [0, " +
                          std::to_string(num_nodes) + ")"));
    }
  }
  // Commit: republish the warm state at the checkpointed epoch (epoch
  // continuity across restart), adopt population + seed, clear the
  // dirty bits (the checkpointed seed is clean by construction) and the
  // response cache. Intended as a startup-time operation — concurrent
  // in-flight requests finish under the snapshot they admitted with.
  PublishWarmState(BuildWarmState(checkpoint.epoch,
                                  std::move(checkpoint.facility_nodes),
                                  std::move(checkpoint.capacities)));
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
    cache_order_.clear();
    cache_epoch_ = checkpoint.epoch;
  }
  tracked_customers_ = std::move(checkpoint.tracked_customers);
  tracked_count_.store(static_cast<int64_t>(tracked_customers_.size()),
                       std::memory_order_relaxed);
  resolve_.seed =
      checkpoint.has_seed
          ? std::make_shared<WmaWarmSeed>(std::move(checkpoint.seed))
          : nullptr;
  resolve_.seed_k = checkpoint.seed_k;
  std::fill(resolve_.stream_dirty.begin(), resolve_.stream_dirty.end(), 0);
  std::fill(resolve_.match_dirty.begin(), resolve_.match_dirty.end(), 0);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.checkpoints_restored++;
  }
  MCFS_COUNT("serve/checkpoints_restored", 1);
  return OkStatus();
}

int64_t SolverService::RetryAfterMs(size_t queue_len) const {
  const double ewma = ewma_service_seconds_.load(std::memory_order_relaxed);
  const double drain_ms = static_cast<double>(queue_len) * ewma * 1000.0 /
                          static_cast<double>(effective_parallelism_);
  return std::max<int64_t>(1, std::llround(drain_ms * 0.5));
}

std::shared_ptr<ResponseHandle> SolverService::Submit(SolveRequest request) {
  auto handle = std::make_shared<ResponseHandle>();
  // Trace identity is assigned at admission so even a rejected request
  // has a joinable id in spans / flight events / the response.
  if (request.trace_id == 0) request.trace_id = obs::NewTraceId();
  const uint64_t trace_id = request.trace_id;
  const char* rejection = nullptr;
  std::string shed_reason;  // nonempty = admission-time overload shed
  bool fault_fired = false;
  bool stopped = false;    // rejection came from a shut-down service
  bool fast_path = false;  // answer inline via the instant responder
  int64_t retry_after_ms = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) {
      // No retry hint: retrying a shut-down service cannot succeed.
      rejection = "service is shut down";
      stopped = true;
    } else if (static_cast<int>(queue_.size()) >= options_.queue_depth) {
      rejection = "admission queue full";
      retry_after_ms = RetryAfterMs(queue_.size());
    } else if (options_.fault_plan != nullptr &&
               options_.fault_plan->ShouldFire(FaultKind::kQueuePulse)) {
      shed_reason = "fault-injected queue-overflow pulse";
      fault_fired = true;
      retry_after_ms = RetryAfterMs(queue_.size() + 1);
    } else {
      // Tight-SLA admission (DESIGN.md §4.14): when the estimated queue
      // drain plus one full solve cannot fit the request's latency
      // budget — or the estimator is still blind — the request is
      // answered inline by the instant responder instead of queuing
      // behind full-solve batches (the wait alone would blow the SLA).
      // Checked before shedding: an SLA request the queue would starve
      // is exactly what the fast tier exists for.
      if (request.max_latency_ms > 0) {
        const double ewma =
            ewma_service_seconds_.load(std::memory_order_relaxed);
        const double est_ms =
            ewma * 1000.0 *
            (1.0 + static_cast<double>(queue_.size()) /
                       static_cast<double>(effective_parallelism_));
        fast_path = ewma <= 0.0 ||
                    est_ms > static_cast<double>(request.max_latency_ms);
      }
      // Queue-delay-aware shedding (DESIGN.md §4.13): when the work
      // already waiting is estimated to outlast this request's own
      // deadline, admitting it only burns a queue slot on a response
      // that will arrive dead. Reject now, with a drain-time hint.
      const int64_t deadline_ms = request.deadline_ms > 0
                                      ? request.deadline_ms
                                      : options_.default_deadline_ms;
      const double ewma =
          ewma_service_seconds_.load(std::memory_order_relaxed);
      if (!fast_path && deadline_ms > 0 && ewma > 0.0 && !queue_.empty()) {
        const double est_wait_ms =
            static_cast<double>(queue_.size()) * ewma * 1000.0 /
            static_cast<double>(effective_parallelism_);
        if (est_wait_ms > static_cast<double>(deadline_ms)) {
          shed_reason = "estimated queue wait " +
                        std::to_string(std::llround(est_wait_ms)) +
                        " ms exceeds the request deadline " +
                        std::to_string(deadline_ms) + " ms";
          retry_after_ms = RetryAfterMs(queue_.size());
        }
      }
      if (!fast_path && shed_reason.empty()) {
        queue_.push_back({std::move(request), handle, NowSeconds()});
      }
    }
  }
  if (rejection != nullptr || !shed_reason.empty()) {
    const bool shed = !shed_reason.empty();
    if (shed) {
      MCFS_COUNT("serve/requests_shed", 1);
    } else {
      MCFS_COUNT("serve/requests_rejected", 1);
    }
    {
      std::lock_guard<std::mutex> lock(report_mutex_);
      if (shed) {
        stats_.requests_shed++;
      } else {
        stats_.requests_rejected++;
      }
      if (fault_fired) stats_.faults_injected++;
    }
    SolveResponse response;
    response.trace_id = trace_id;
    response.retry_after_ms = retry_after_ms;
    // The one rejection retrying can never outwait (satellite of
    // DESIGN.md §4.14): clients key "stop retrying" on this flag, not
    // on retry_after_ms == 0 — a live-but-idle service also hints 0.
    response.shutdown = stopped;
    response.status = UnavailableError(
        shed ? shed_reason
             : std::string(rejection) + " (queue_depth = " +
                   std::to_string(options_.queue_depth) + ")");
    handle->Complete(std::move(response));
    return handle;
  }
  MCFS_COUNT("serve/requests_admitted", 1);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.requests_admitted++;
  }
  if (!fast_path) {
    queue_cv_.notify_one();
    return handle;
  }
  // Instant responder (DESIGN.md §4.14), inline on the submitting
  // thread: the queue is the latency the SLA cannot afford.
  PendingRequest pending{std::move(request), handle, NowSeconds()};
  if (FastServe(pending)) return handle;
  // The fast attempt could not produce a verified feasible answer; fall
  // through to the queued full solve (fidelity over the SLA). The queue
  // is re-checked — admission raced other submitters while we tried.
  MCFS_COUNT("serve/fast_fallthroughs", 1);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.fast_fallthroughs++;
  }
  bool requeued = false;
  stopped = false;
  int64_t hint_ms = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) {
      stopped = true;
    } else if (static_cast<int>(queue_.size()) >= options_.queue_depth) {
      hint_ms = RetryAfterMs(queue_.size());
    } else {
      queue_.push_back(std::move(pending));
      requeued = true;
    }
  }
  if (requeued) {
    queue_cv_.notify_one();
    return handle;
  }
  MCFS_COUNT("serve/requests_rejected", 1);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.requests_rejected++;
  }
  SolveResponse response;
  response.trace_id = trace_id;
  response.retry_after_ms = hint_ms;
  response.shutdown = stopped;
  response.status = UnavailableError(
      std::string(stopped ? "service is shut down" : "admission queue full") +
      " (queue_depth = " + std::to_string(options_.queue_depth) + ")");
  handle->Complete(std::move(response));
  return handle;
}

SolveResponse SolverService::SolveSync(SolveRequest request) {
  return Submit(std::move(request))->Wait();
}

void SolverService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The refiner stops only after the dispatcher drained: queued full
  // solves can still plant upgrades, and every fast answer's promised
  // refinement runs before the service goes dark (drain-on-shutdown,
  // same contract as the admission queue).
  {
    std::lock_guard<std::mutex> lock(refine_mutex_);
    refine_stop_ = true;
  }
  refine_cv_.notify_all();
  if (refiner_.joinable()) refiner_.join();
}

void SolverService::DispatcherLoop() {
  ApplyBackgroundNice(options_.background_nice);
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // admitted request still gets a response.
      if (queue_.empty()) return;
      const int take = std::min<int>(options_.max_batch < 1
                                         ? 1
                                         : options_.max_batch,
                                     static_cast<int>(queue_.size()));
      batch.reserve(take);
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    MCFS_SPAN("serve/batch");
    MCFS_COUNT("serve/batches", 1);
    const int n = static_cast<int>(batch.size());
    MCFS_OBSERVE("serve/batch_size", static_cast<double>(n));
    {
      std::lock_guard<std::mutex> lock(report_mutex_);
      stats_.batches++;
      stats_.max_batch_size = std::max(stats_.max_batch_size, n);
    }
    if (n == 1) {
      Execute(batch[0]);
    } else {
      // One batch = one ParallelFor on the shared pool: requests in the
      // batch run concurrently up to serve_threads, and the solvers'
      // nested parallel sections degrade to inline serial inside the
      // region — which is exactly what keeps responses bit-identical to
      // direct SolveWma calls (the determinism contract).
      ParallelFor(
          0, n, 1, [&](int64_t i) { Execute(batch[i]); },
          options_.serve_threads);
    }
  }
}

bool SolverService::WarmValidate(const WarmState& warm,
                                 const McfsInstance& instance,
                                 const std::vector<int>& subset) const {
  // Mirror of DiagnoseInstance's verdict against the cached epoch
  // preprocessing, request-sized work only: O(m + |subset| log + C)
  // instead of the cold O(V + E) component scan. Kept in lockstep with
  // core/validate.cc — any defect found here is re-derived on the cold
  // path so the Status message stays byte-identical.
  if (instance.k < 0) return false;
  const int num_nodes = graph_->NumNodes();
  for (const NodeId c : instance.customers) {
    if (c < 0 || c >= num_nodes) return false;
  }
  // Catalog nodes are distinct and in range by construction; a subset
  // only introduces defects by repeating an index (duplicate node).
  if (!subset.empty()) {
    std::vector<int> seen;
    seen.reserve(subset.size());
    for (const int idx : subset) {
      if (std::find(seen.begin(), seen.end(), idx) != seen.end()) return false;
      seen.push_back(idx);
    }
  }
  // Theorem-3 accounting per component holding customers.
  const ComponentLabeling& components = warm.components;
  std::vector<int64_t> customers_in(components.num_components, 0);
  for (const NodeId c : instance.customers) {
    customers_in[components.component_of[c]]++;
  }
  std::vector<std::vector<int>> subset_caps;
  if (!subset.empty()) {
    subset_caps.assign(components.num_components, {});
    for (const int idx : subset) {
      const int g = components.component_of[warm.facility_nodes[idx]];
      subset_caps[g].push_back(warm.capacities[idx]);
    }
    for (std::vector<int>& caps : subset_caps) {
      std::sort(caps.begin(), caps.end(), std::greater<int>());
    }
  }
  int64_t required_facilities = 0;
  for (int g = 0; g < components.num_components; ++g) {
    if (customers_in[g] == 0) continue;
    const std::vector<int>& caps =
        subset.empty() ? warm.component_caps_sorted[g] : subset_caps[g];
    int64_t remaining = customers_in[g];
    for (const int c : caps) {
      if (remaining <= 0) break;
      remaining -= c;
      ++required_facilities;
    }
    if (remaining > 0) return false;
  }
  return required_facilities <= instance.k;
}

void SolverService::Execute(PendingRequest& pending) {
  const SolveRequest& request = pending.request;
  // The trace context is installed before anything measurable happens:
  // every span, flight event, and histogram exemplar below — including
  // from the batch's ParallelFor workers, which inherit the id — joins
  // back to this request, whichever batch or worker served it.
  obs::ScopedTraceContext trace_scope(request.trace_id);
  MCFS_SPAN("serve/request");
  MCFS_RECORD("serve/request_begin",
              static_cast<int64_t>(request.customers.size()), request.k);
  // Erased by FinishRequest (every exit path runs it) *before* the
  // handle completes, so a waiter never observes its own finished
  // request as in flight.
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    in_flight_.push_back(request.trace_id);
  }
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();

  SolveResponse response;
  response.epoch = warm->epoch;
  response.trace_id = request.trace_id;
  response.queue_seconds = NowSeconds() - pending.admitted_at;

  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  const bool cacheable = options_.cache_capacity > 0 && deadline_ms == 0 &&
                         request.cancel == nullptr;

  // Materialize the instance view this request describes. The response
  // must be bit-identical to SolveWma on exactly this instance.
  McfsInstance instance;
  instance.graph = graph_;
  instance.customers = request.customers;
  instance.k = request.k;
  bool subset_in_range = true;
  const int catalog_size = static_cast<int>(warm->facility_nodes.size());
  if (request.facility_subset.empty()) {
    instance.facility_nodes = warm->facility_nodes;
    instance.capacities = warm->capacities;
  } else {
    instance.facility_nodes.reserve(request.facility_subset.size());
    instance.capacities.reserve(request.facility_subset.size());
    for (const int idx : request.facility_subset) {
      if (idx < 0 || idx >= catalog_size) {
        subset_in_range = false;
        break;
      }
      instance.facility_nodes.push_back(warm->facility_nodes[idx]);
      instance.capacities.push_back(warm->capacities[idx]);
    }
  }
  if (!subset_in_range) {
    // A service-level defect: the subset indexes the catalog, a concept
    // SolveWma never sees, so this error is the service's own.
    response.status = InvalidInputError(
        "facility subset index out of range [0, " +
        std::to_string(catalog_size) + ")");
    FinishRequest(pending, std::move(response));
    return;
  }

  // Resolve the engine for this request's shape once: the same resolved
  // kind keys the response cache and runs the solve, so an auto-picked
  // engine never serves a cache entry another engine produced.
  MatchShape request_shape;
  request_shape.customers = static_cast<int64_t>(instance.m());
  request_shape.facilities = static_cast<int64_t>(instance.l());
  for (const int c : instance.capacities) request_shape.total_capacity += c;
  const MatcherBackendKind request_matcher =
      ResolveMatcherBackend(options_.wma.matcher, request_shape);

  if (cacheable) {
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (cache_epoch_ == warm->epoch) {
        const auto it = cache_.find(CacheKey{request.customers, request.k,
                                             request.facility_subset,
                                             request_matcher});
        if (it != cache_.end()) {
          const CacheEntry& entry = it->second;
          response.solution = entry.solution;
          response.stats = entry.stats;
          response.verify_ran = entry.verify_ran;
          response.verify_ok = entry.verify_ok;
          // Hits carry the tier of the entry they hit: an upgraded-in-
          // place entry serves "full" (bound cleared), a still-awaiting-
          // refinement entry serves "fast" with its recorded bound.
          response.tier = entry.tier;
          response.quality_bound = entry.quality_bound;
          response.cache_hit = true;
          hit = true;
        }
      }
    }
    // Completion happens outside cache_mutex_: FinishRequest fulfills
    // the handle, and a woken client can preempt this thread (single-
    // core boxes especially) — holding the lock through that wake
    // convoys every concurrent lookup behind a descheduled holder.
    if (hit) {
      MCFS_COUNT("serve/cache_hits", 1);
      FinishRequest(pending, std::move(response));
      return;
    }
  }

  WallTimer preprocess_timer;
  if (!WarmValidate(*warm, instance, request.facility_subset)) {
    // The warm verdict says SolveWma would reject; re-derive the
    // canonical diagnosis on the cold path so the message matches the
    // direct call byte for byte.
    response.status = ValidateInstance(instance);
    MCFS_CHECK(!response.status.ok())
        << "warm validation rejected an instance the cold path accepts";
    response.preprocess_seconds = preprocess_timer.Seconds();
    FinishRequest(pending, std::move(response));
    return;
  }
  response.preprocess_seconds = preprocess_timer.Seconds();

  if (instance.m() == 0) {
    // SolveWma's trivial shortcut, replicated exactly.
    response.solution.feasible = true;
    FinishRequest(pending, std::move(response));
    return;
  }

  // options_.wma.deadline is copied through deliberately (each copy has
  // its own poll budget) — that is how tests plant AfterPolls expiries.
  WmaOptions wma = options_.wma;
  wma.deadline_ms = deadline_ms;
  wma.cancel = request.cancel;
  wma.trace_id = request.trace_id;
  wma.matcher = request_matcher;
  bool fault_deadline = false;
  if (options_.fault_plan != nullptr &&
      options_.fault_plan->ShouldFire(FaultKind::kDeadlineCut)) {
    // Deterministic mid-solve expiry at a solver checkpoint — the
    // generalized AfterPolls hook. The solve degrades to its anytime
    // answer exactly as a real wall-clock deadline would.
    fault_deadline = true;
    wma.deadline_ms = 0;
    wma.deadline = Deadline::AfterPolls(2);
    MCFS_RECORD("serve/fault_deadline_cut",
                static_cast<int64_t>(request.trace_id), 0);
  }
  WallTimer solve_timer;
  WmaResult result = RunWma(instance, wma);
  response.solve_seconds = solve_timer.Seconds();
  response.solution = std::move(result.solution);
  response.stats = std::move(result.stats);

  if (response.solution.termination == Termination::kDeadline) {
    MCFS_COUNT("serve/deadline_terminations", 1);
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.deadline_terminations++;
  }

  bool injected_reject = false;
  if (options_.fault_plan != nullptr &&
      options_.fault_plan->ShouldFire(FaultKind::kVerifyReject)) {
    // Treat the verdict below as a rejection (the solution itself is
    // fine) so the rejection machinery — postmortem capture, degraded
    // fallback — runs deterministically.
    injected_reject = true;
    MCFS_RECORD("serve/fault_verify_reject",
                static_cast<int64_t>(request.trace_id), 0);
  }
  if (fault_deadline || injected_reject) {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.faults_injected +=
        (fault_deadline ? 1 : 0) + (injected_reject ? 1 : 0);
  }
  // Degraded-opted deadline-cut answers are verified too: the anytime
  // solution only serves (as tier=degraded) once the independent
  // verifier blesses it.
  const bool verify_degrade_candidate =
      request.allow_degraded &&
      response.solution.termination == Termination::kDeadline;
  if (options_.verify || injected_reject || verify_degrade_candidate) {
    const VerifyReport verdict = VerifySolution(instance, response.solution);
    response.verify_ran = true;
    response.verify_ok = verdict.ok && !injected_reject;
  }

  if (request.allow_degraded &&
      ((response.verify_ran && !response.verify_ok) ||
       response.solution.termination == Termination::kDeadline)) {
    DegradeResponse(instance, request_matcher, warm->epoch,
                    response.verify_ran && !response.verify_ok,
                    request.facility_subset.empty()
                        ? &warm->nearest_facility
                        : nullptr,
                    &response);
  }

  if (cacheable && response.tier == "full" &&
      response.solution.termination == Termination::kConverged) {
    bool overtook_fast = false;
    // Built outside the lock: this thread may be running at
    // background_nice, and a preemption inside cache_mutex_ would
    // convoy the inline fast tier behind a starved holder.
    CacheKey key{request.customers, request.k, request.facility_subset,
                 request_matcher};
    CacheEntry full_entry{response.solution, response.stats,
                          response.verify_ran, response.verify_ok, "full",
                          0.0, request.trace_id};
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (cache_epoch_ == warm->epoch) {
        // try_emplace keeps full_entry intact when the key is taken, so
        // the upgrade below can move from it instead of re-copying the
        // solution while holding the lock.
        const auto inserted = cache_.try_emplace(key, std::move(full_entry));
        if (inserted.second) {
          cache_order_.push_back(std::move(key));
          while (static_cast<int>(cache_.size()) > options_.cache_capacity) {
            cache_.erase(cache_order_.front());
            cache_order_.pop_front();
          }
        } else if (inserted.first->second.tier == "fast") {
          // A queued full solve on the same identity overtook the
          // background refinement: upgrade in place now (same key, same
          // epoch, planting trace id kept) — the refiner will find the
          // entry already converged and discard its task.
          CacheEntry& entry = inserted.first->second;
          const uint64_t planting_trace = entry.trace_id;
          entry = std::move(full_entry);
          entry.trace_id = planting_trace;
          overtook_fast = true;
        }
      }
    }
    if (overtook_fast) {
      MCFS_COUNT("serve/tier_upgrades", 1);
      MCFS_RECORD("serve/cache_upgrade",
                  static_cast<int64_t>(request.trace_id),
                  static_cast<int64_t>(warm->epoch));
      std::lock_guard<std::mutex> lock(report_mutex_);
      stats_.refine_upgrades++;
    }
  }

  FinishRequest(pending, std::move(response));
}

McfsSolution SolverService::DegradedFallback(const McfsInstance& instance,
                                             MatcherBackendKind matcher) const {
  MCFS_SPAN("serve/degraded_fallback");
  if (instance.graph->has_coordinates()) {
    return RunHilbertBaseline(instance, matcher);
  }
  GreedyKMedianOptions greedy;
  greedy.matcher = matcher;
  return RunGreedyKMedian(instance, greedy);
}

double SolverService::NearestFacilityQualityBound(
    const McfsInstance& instance, double objective,
    const MultiSourceResult* nearest) const {
  // Lower bound on any solution's objective: every customer served by
  // its nearest instance facility, with capacities and the budget k
  // relaxed away. Full-catalog callers pass the epoch's precomputed
  // multi-source result; subset callers pay one MultiSourceDijkstra.
  MultiSourceResult computed;
  if (nearest == nullptr) {
    computed = MultiSourceDijkstra(*instance.graph, instance.facility_nodes);
    nearest = &computed;
  }
  double lower = 0.0;
  for (const NodeId c : instance.customers) {
    const double d = nearest->distance[c];
    if (std::isfinite(d)) lower += d;
  }
  if (objective <= lower) return 1.0;
  // Degenerate: every customer co-located with a facility makes the
  // relaxed bound 0 while capacity overflow can still force a positive
  // objective. objective / 0 would be inf (JSON nulls it, comparisons
  // and SLO accounting misread it) — report the defined sentinel
  // instead, distinguishable from both real bounds (>= 1) and "no
  // bound computed" (0).
  if (lower <= 0.0) return kDegenerateQualityBound;
  return objective / lower;
}

void SolverService::DegradeResponse(const McfsInstance& instance,
                                    MatcherBackendKind matcher,
                                    uint64_t epoch_at, bool rejected,
                                    const MultiSourceResult* nearest,
                                    SolveResponse* response) {
  MCFS_SPAN("serve/degrade");
  // Rung 1: the anytime best-so-far answer, which the caller already
  // ran through the independent verifier — unless that verdict (or an
  // injected rejection) marked it untrusted wholesale.
  bool synthesized = false;
  if (rejected || !response->solution.feasible) {
    // Rung 2: synthesize a fresh feasible answer from the baseline and
    // verify it from first principles. Degraded answers never serve
    // unchecked.
    WallTimer fallback_timer;
    McfsSolution fallback = DegradedFallback(instance, matcher);
    response->solve_seconds += fallback_timer.Seconds();
    const VerifyReport verdict = VerifySolution(instance, fallback);
    if (!fallback.feasible || !verdict.ok) {
      // Ladder exhausted: fail closed with a typed status. A validated
      // feasible instance should never land here.
      response->status =
          UnavailableError("degraded fallback failed verification");
      response->verify_ran = true;
      response->verify_ok = false;
      RecordPostmortem("degraded_exhausted", response->trace_id, epoch_at);
      return;
    }
    // Keep the primary attempt's failure marker: a synthesized answer
    // never claims the convergence it replaced.
    fallback.termination = response->solution.termination;
    response->solution = std::move(fallback);
    synthesized = true;
  }
  response->tier = "degraded";
  response->verify_ran = true;
  response->verify_ok = true;
  response->quality_bound = NearestFacilityQualityBound(
      instance, response->solution.objective, nearest);
  RecordPostmortem(
      rejected ? "degraded_verify_rejection" : "degraded_deadline",
      response->trace_id, epoch_at);
  MCFS_COUNT("serve/degraded_responses", 1);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.degraded_responses++;
    if (synthesized) stats_.degraded_fallbacks++;
  }
}

bool SolverService::FastServe(PendingRequest& pending) {
  const SolveRequest& request = pending.request;
  obs::ScopedTraceContext trace_scope(request.trace_id);
  MCFS_SPAN("serve/fast");
  MCFS_RECORD("serve/fast_begin",
              static_cast<int64_t>(request.customers.size()), request.k);
  // The instant responder must never block behind a background thread
  // that was descheduled inside a critical section (a nice'd dispatcher
  // holding a lock can starve for a full scheduler round — priority
  // inversion that lands straight in the fast tier's p99). Every lock
  // this path takes before its latency is recorded is therefore a
  // try-lock, and contention skips the optional work: the in-flight
  // marker is diagnostic, a skipped cache lookup is a cache miss, and a
  // skipped plant just means a later occurrence plants instead.
  {
    std::unique_lock<std::mutex> lock(report_mutex_, std::try_to_lock);
    if (lock.owns_lock()) in_flight_.push_back(request.trace_id);
  }
  // Fallthrough exits bypass FinishRequest, so they retire the
  // in-flight marker themselves before handing the request back.
  auto retire = [&] {
    std::lock_guard<std::mutex> lock(report_mutex_);
    const auto it =
        std::find(in_flight_.begin(), in_flight_.end(), request.trace_id);
    if (it != in_flight_.end()) in_flight_.erase(it);
  };

  // The instant responder leans on the epoch's precomputed
  // nearest-facility distances; a catalog subset would need its own
  // multi-source Dijkstra — no longer instant — so subset requests take
  // the full path.
  if (!request.facility_subset.empty()) {
    retire();
    return false;
  }

  std::shared_ptr<const WarmState> warm = SnapshotWarmState();

  SolveResponse response;
  response.epoch = warm->epoch;
  response.trace_id = request.trace_id;
  response.queue_seconds = NowSeconds() - pending.admitted_at;

  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  const bool cacheable = options_.cache_capacity > 0 && deadline_ms == 0 &&
                         request.cancel == nullptr;

  McfsInstance instance;
  instance.graph = graph_;
  instance.customers = request.customers;
  instance.k = request.k;
  instance.facility_nodes = warm->facility_nodes;
  instance.capacities = warm->capacities;

  MatchShape request_shape;
  request_shape.customers = static_cast<int64_t>(instance.m());
  request_shape.facilities = static_cast<int64_t>(instance.l());
  for (const int c : instance.capacities) request_shape.total_capacity += c;
  const MatcherBackendKind request_matcher =
      ResolveMatcherBackend(options_.wma.matcher, request_shape);

  if (cacheable) {
    bool hit = false;
    {
      // try-lock: a contended cache is treated as a miss rather than a
      // wait — recomputing a 0.5ms fast answer beats blocking behind a
      // possibly-descheduled background holder.
      std::unique_lock<std::mutex> lock(cache_mutex_, std::try_to_lock);
      if (lock.owns_lock() && cache_epoch_ == warm->epoch) {
        const auto it = cache_.find(CacheKey{request.customers, request.k,
                                             request.facility_subset,
                                             request_matcher});
        if (it != cache_.end()) {
          const CacheEntry& entry = it->second;
          response.solution = entry.solution;
          response.stats = entry.stats;
          response.verify_ran = entry.verify_ran;
          response.verify_ok = entry.verify_ok;
          response.tier = entry.tier;
          response.quality_bound = entry.quality_bound;
          response.cache_hit = true;
          hit = true;
        }
      }
    }
    // Finish outside cache_mutex_ — same wake-preemption convoy hazard
    // as Execute's hit path; the fast tier is the one that pays for it.
    if (hit) {
      MCFS_COUNT("serve/cache_hits", 1);
      FinishRequest(pending, std::move(response));
      return true;
    }
  }

  WallTimer preprocess_timer;
  if (!WarmValidate(*warm, instance, request.facility_subset)) {
    // Definitive: the full path would reject with the same canonical
    // status — no point burning a queue slot to find out.
    response.status = ValidateInstance(instance);
    MCFS_CHECK(!response.status.ok())
        << "warm validation rejected an instance the cold path accepts";
    response.preprocess_seconds = preprocess_timer.Seconds();
    FinishRequest(pending, std::move(response));
    return true;
  }
  response.preprocess_seconds = preprocess_timer.Seconds();

  if (instance.m() == 0) {
    // SolveWma's trivial shortcut, replicated exactly.
    response.solution.feasible = true;
    FinishRequest(pending, std::move(response));
    return true;
  }

  // Selection: demand-ranked top-k over the precomputed nearest map —
  // each facility is scored by how many request customers it is nearest
  // to (ties by catalog index, deterministic) — then component-coverage
  // repair and the bounded-work greedy matcher.
  WallTimer solve_timer;
  const int catalog = static_cast<int>(instance.l());
  const int budget = std::min(request.k, catalog);
  std::vector<int64_t> demand(catalog, 0);
  for (const NodeId c : instance.customers) {
    const int f = warm->nearest_facility.nearest_index[c];
    if (f >= 0) demand[f]++;
  }
  std::vector<int> order(catalog);
  for (int j = 0; j < catalog; ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (demand[a] != demand[b]) return demand[a] > demand[b];
    return a < b;
  });
  std::vector<int> selected(order.begin(), order.begin() + budget);
  if (!CoverComponents(instance, selected)) {
    retire();
    return false;
  }
  const FastMatchResult match =
      FastGreedyMatch(*graph_, instance.customers, instance.facility_nodes,
                      instance.capacities, selected);
  if (!match.all_assigned) {
    retire();
    return false;
  }
  McfsSolution solution;
  solution.selected = std::move(selected);
  solution.assignment = match.assignment;
  solution.distances = match.distances;
  solution.objective = match.total_cost;
  solution.feasible = true;
  solution.termination = Termination::kConverged;
  // Always verified from first principles — a fast answer that cannot
  // be proven feasible is not served fast, it is solved for real. The
  // targeted strategy keeps the check sub-millisecond: per-customer
  // early-exit searches instead of one full Dijkstra per facility.
  VerifyOptions fast_verify;
  fast_verify.targeted = true;
  const VerifyReport verdict = VerifySolution(instance, solution, fast_verify);
  if (!verdict.ok) {
    retire();
    return false;
  }
  response.solve_seconds = solve_timer.Seconds();
  response.verify_ran = true;
  response.verify_ok = true;
  response.tier = "fast";
  response.quality_bound = NearestFacilityQualityBound(
      instance, solution.objective, &warm->nearest_facility);
  response.solution = std::move(solution);

  // Plant the cache entry at tier "fast" and queue its background
  // refinement (same key, same epoch, same trace id). refine == false
  // answers are final and never cached, mirroring degraded answers.
  if (cacheable && request.refine) {
    CacheKey key{request.customers, request.k, request.facility_subset,
                 request_matcher};
    // The entry is built (solution copied) before taking the lock so
    // the critical section is a map move-insert, and the acquisition is
    // a try-lock: losing a plant to contention only defers caching and
    // refinement to the identity's next occurrence.
    CacheEntry planted_entry{response.solution, response.stats, true, true,
                             "fast", response.quality_bound,
                             request.trace_id};
    bool planted = false;
    {
      std::unique_lock<std::mutex> lock(cache_mutex_, std::try_to_lock);
      if (lock.owns_lock() && cache_epoch_ == warm->epoch) {
        const auto inserted = cache_.emplace(key, std::move(planted_entry));
        if (inserted.second) {
          cache_order_.push_back(key);
          while (static_cast<int>(cache_.size()) > options_.cache_capacity) {
            cache_.erase(cache_order_.front());
            cache_order_.pop_front();
          }
          planted = true;
        }
      }
    }
    if (planted) {
      bool enqueued = false;
      {
        std::lock_guard<std::mutex> lock(refine_mutex_);
        if (!refine_stop_) {
          // Dedup by (key, epoch): N identical fast answers need one
          // refinement. (Planting already required an empty slot, so a
          // duplicate here means a racing eviction + re-plant.)
          bool duplicate = false;
          for (const RefineTask& task : refine_queue_) {
            if (task.epoch == warm->epoch && !(task.key < key) &&
                !(key < task.key)) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) {
            refine_queue_.push_back(
                RefineTask{std::move(key), warm->epoch, request.trace_id});
            enqueued = true;
          }
        }
      }
      if (enqueued) {
        refine_cv_.notify_one();
        MCFS_COUNT("serve/refines_enqueued", 1);
        std::lock_guard<std::mutex> lock(report_mutex_);
        stats_.refines_enqueued++;
      }
    }
  }
  MCFS_COUNT("serve/tier_fast", 1);
  FinishRequest(pending, std::move(response));
  return true;
}

void SolverService::RefinerLoop() {
  ApplyBackgroundNice(options_.background_nice);
  for (;;) {
    RefineTask task;
    {
      std::unique_lock<std::mutex> lock(refine_mutex_);
      refine_cv_.wait(
          lock, [this] { return refine_stop_ || !refine_queue_.empty(); });
      // Drain-on-shutdown: every fast answer's promised refinement runs.
      if (refine_queue_.empty()) return;
      task = std::move(refine_queue_.front());
      refine_queue_.pop_front();
      // Covers the pop-to-completion window so DrainRefinements has no
      // gap to race through ("queue empty" alone is not "idle").
      refine_active_ = true;
    }
    RunRefinement(task);
    {
      std::lock_guard<std::mutex> lock(refine_mutex_);
      refine_active_ = false;
    }
    refine_cv_.notify_all();
  }
}

void SolverService::RunRefinement(const RefineTask& task) {
  // Same trace id as the fast answer it refines: spans, flight events,
  // and the upgraded entry all join back to the original request.
  obs::ScopedTraceContext trace_scope(task.trace_id);
  MCFS_SPAN("serve/refine");
  const auto discard = [&] {
    MCFS_COUNT("serve/refine_discards", 1);
    MCFS_RECORD("serve/refine_discard", static_cast<int64_t>(task.trace_id),
                static_cast<int64_t>(task.epoch));
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.refine_discards++;
  };
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();
  if (warm->epoch != task.epoch) {
    // The catalog moved on; the entry this refinement would upgrade was
    // invalidated with its epoch. Solving against the new catalog would
    // answer a different question.
    discard();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(task.key);
    if (cache_epoch_ != task.epoch || it == cache_.end() ||
        it->second.tier != "fast") {
      // Evicted, invalidated, or a queued full solve already overtook
      // the upgrade — nothing left to refine.
      discard();
      return;
    }
  }
  // Re-materialize the instance from the key under the epoch's catalog
  // (fast plants are full-catalog by construction) and run the solve
  // the SLA preempted, converged and deadline-free.
  McfsInstance instance;
  instance.graph = graph_;
  instance.customers = task.key.customers;
  instance.k = task.key.k;
  instance.facility_nodes = warm->facility_nodes;
  instance.capacities = warm->capacities;
  WmaOptions wma = options_.wma;
  wma.deadline_ms = 0;
  wma.cancel = nullptr;
  wma.trace_id = task.trace_id;
  wma.matcher = task.key.matcher;
  WallTimer solve_timer;
  WmaResult result = RunWma(instance, wma);
  // Fast completions are excluded from the admission estimator;
  // refinements are where the fast tier teaches it what the full solve
  // it displaced actually costs.
  UpdateEwma(ewma_service_seconds_, solve_timer.Seconds());
  MCFS_COUNT("serve/refine_runs", 1);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.refine_runs++;
  }
  if (!result.solution.feasible ||
      result.solution.termination != Termination::kConverged) {
    // Only converged answers upgrade a cache entry (the same condition
    // Execute's insert enforces). The fast answer stays served.
    discard();
    return;
  }
  bool verify_ran = false;
  bool verify_ok = false;
  if (options_.verify) {
    const VerifyReport refined_verdict =
        VerifySolution(instance, result.solution);
    verify_ran = true;
    verify_ok = refined_verdict.ok;
  }
  bool upgraded = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(task.key);
    if (cache_epoch_ == task.epoch && it != cache_.end() &&
        it->second.tier == "fast") {
      // Upgrade in place: same key, same epoch; the trace id of the
      // planting fast answer is kept — the refined entry is that
      // request's converged continuation, not a new identity.
      CacheEntry& entry = it->second;
      entry.solution = std::move(result.solution);
      entry.stats = std::move(result.stats);
      entry.verify_ran = verify_ran;
      entry.verify_ok = verify_ok;
      entry.tier = "full";
      entry.quality_bound = 0.0;
      upgraded = true;
    }
  }
  if (upgraded) {
    MCFS_COUNT("serve/tier_upgrades", 1);
    MCFS_RECORD("serve/cache_upgrade", static_cast<int64_t>(task.trace_id),
                static_cast<int64_t>(task.epoch));
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.refine_upgrades++;
  } else {
    discard();
  }
}

void SolverService::DrainRefinements() {
  std::unique_lock<std::mutex> lock(refine_mutex_);
  refine_cv_.wait(
      lock, [this] { return refine_queue_.empty() && !refine_active_; });
}

CacheProbe SolverService::ProbeCache(const SolveRequest& request) const {
  CacheProbe probe;
  std::shared_ptr<const WarmState> warm = SnapshotWarmState();
  // Same key derivation as Execute: the shape-resolved engine is part
  // of the identity, so the probe must resolve it the same way.
  MatchShape shape;
  shape.customers = static_cast<int64_t>(request.customers.size());
  if (request.facility_subset.empty()) {
    shape.facilities = static_cast<int64_t>(warm->facility_nodes.size());
    for (const int c : warm->capacities) shape.total_capacity += c;
  } else {
    shape.facilities = static_cast<int64_t>(request.facility_subset.size());
    for (const int idx : request.facility_subset) {
      if (idx >= 0 && idx < static_cast<int>(warm->capacities.size())) {
        shape.total_capacity += warm->capacities[idx];
      }
    }
  }
  const MatcherBackendKind matcher =
      ResolveMatcherBackend(options_.wma.matcher, shape);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(CacheKey{request.customers, request.k,
                                       request.facility_subset, matcher});
  if (it == cache_.end()) return probe;
  probe.present = true;
  probe.tier = it->second.tier;
  probe.epoch = cache_epoch_;
  probe.trace_id = it->second.trace_id;
  probe.quality_bound = it->second.quality_bound;
  probe.verify_ok = it->second.verify_ok;
  return probe;
}

void SolverService::FinishRequest(PendingRequest& pending,
                                  SolveResponse response) {
  const double latency = NowSeconds() - pending.admitted_at;
  // Teach the admission-time overload control what a *full* request
  // costs (EWMA of the execution phases; queue wait excluded — it is
  // the quantity being estimated). Fast-tier completions are excluded:
  // their sub-millisecond samples would teach the estimator that full
  // solves are cheap, flip the next SLA decision to the queue, miss it,
  // and oscillate — background refinements feed the full-solve estimate
  // instead (RunRefinement). Cache hits are excluded too: they report
  // near-zero preprocess+solve time, and a burst of hits would collapse
  // the estimate until every SLA request believed the full path fit its
  // budget. The CAS loop in UpdateEwma keeps concurrent completions
  // from losing each other's updates.
  if (response.tier != "fast" && !response.cache_hit) {
    UpdateEwma(ewma_service_seconds_,
               response.preprocess_seconds + response.solve_seconds);
  }
  response.trace_id = pending.request.trace_id;
  MCFS_OBSERVE("serve/queue_seconds", response.queue_seconds);
  MCFS_OBSERVE("serve/solve_seconds", response.solve_seconds);
  MCFS_OBSERVE("serve/latency_seconds", latency);
  // The report's quantiles come from here. Execute installed this
  // request's trace context, so the bucket exemplar is its trace id.
  latency_hist_.Observe(latency);
  // Per-tier split (DESIGN.md §4.14), served responses only — the tier
  // of a rejection is meaningless and would pollute the comparison.
  if (response.status.ok()) {
    if (response.tier == "fast") {
      latency_fast_hist_.Observe(latency);
    } else if (response.tier == "degraded") {
      latency_degraded_hist_.Observe(latency);
    } else {
      latency_full_hist_.Observe(latency);
    }
  }
  MCFS_RECORD("serve/request_end",
              static_cast<int64_t>(response.trace_id),
              static_cast<int64_t>(response.status.code()));
  if (response.status.code() == StatusCode::kInfeasible) {
    RecordPostmortem("infeasible", response.trace_id, response.epoch);
  }
  if (response.status.ok()) {
    MCFS_COUNT("serve/requests_completed", 1);
  } else {
    MCFS_COUNT("serve/requests_failed", 1);
  }
  const std::string tier =
      pending.request.tier.empty() ? std::string(kDefaultTier)
                                   : pending.request.tier;
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    const auto in_flight_it =
        std::find(in_flight_.begin(), in_flight_.end(), response.trace_id);
    if (in_flight_it != in_flight_.end()) in_flight_.erase(in_flight_it);
    stats_.requests_completed++;
    if (!response.status.ok()) stats_.requests_failed++;
    if (response.status.ok() && response.tier == "fast") {
      stats_.fast_responses++;
    }
    stats_.queue_seconds_total += response.queue_seconds;
    stats_.preprocess_seconds_total += response.preprocess_seconds;
    stats_.solve_seconds_total += response.solve_seconds;
    if (response.cache_hit) stats_.cache_hits++;
    latency_samples_.push_back(latency);
    for (SloState& slo : slo_states_) {
      if (slo.policy.tier != tier) continue;
      slo.requests++;
      if (slo.policy.target_latency_ms > 0.0 &&
          latency * 1000.0 > slo.policy.target_latency_ms) {
        slo.violations++;
        slo.last_violation_trace_id = response.trace_id;
      }
      break;
    }
  }
  pending.handle->Complete(std::move(response));
}

std::vector<SloReport> SolverService::SloRowsLocked() const {
  std::vector<SloReport> rows;
  rows.reserve(slo_states_.size());
  for (const SloState& state : slo_states_) {
    SloReport row;
    row.tier = state.policy.tier;
    row.target_latency_ms = state.policy.target_latency_ms;
    row.error_budget = state.policy.error_budget;
    row.requests = state.requests;
    row.violations = state.violations;
    const double budget =
        state.policy.error_budget * static_cast<double>(state.requests);
    row.burn =
        budget > 0.0 ? static_cast<double>(state.violations) / budget : 0.0;
    row.last_violation_trace_id = state.last_violation_trace_id;
    rows.push_back(std::move(row));
  }
  return rows;
}

ServiceReport SolverService::Report() const {
  ServiceReport report;
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    report = stats_;
    report.slos = SloRowsLocked();
  }
  report.epoch = epoch();
  report.matcher_backend = MatcherBackendName(options_.wma.matcher);
  report.latency = SummarizeHistogram(latency_hist_.Snapshot());
  report.latency_fast = SummarizeHistogram(latency_fast_hist_.Snapshot());
  report.latency_full = SummarizeHistogram(latency_full_hist_.Snapshot());
  report.latency_degraded =
      SummarizeHistogram(latency_degraded_hist_.Snapshot());
  return report;
}

ServiceSnapshot SolverService::DebugSnapshot() const {
  ServiceSnapshot snap;
  snap.t_us = obs::TraceNowUs();
  snap.epoch = epoch();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    snap.queue_depth = static_cast<int>(queue_.size());
  }
  snap.queue_capacity = options_.queue_depth;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    snap.cache_size = static_cast<int>(cache_.size());
  }
  snap.cache_capacity = options_.cache_capacity;
  {
    std::lock_guard<std::mutex> lock(refine_mutex_);
    snap.refine_backlog = static_cast<int>(refine_queue_.size()) +
                          (refine_active_ ? 1 : 0);
  }
  // Relaxed mirror, not resolve_mutex_: a snapshot must never block
  // behind a long ResolveTracked (that is the moment operators need it).
  snap.tracked_customers = tracked_count_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    snap.in_flight = in_flight_;
    snap.slos = SloRowsLocked();
    snap.postmortems = stats_.postmortems;
    snap.degraded = stats_.degraded_responses;
    snap.shed = stats_.requests_shed;
    snap.checkpoints = stats_.checkpoints_saved + stats_.checkpoints_restored;
    snap.fast = stats_.fast_responses;
    snap.upgrades = stats_.refine_upgrades;
  }
  snap.latency = SummarizeHistogram(latency_hist_.Snapshot());
  return snap;
}

void SolverService::RecordPostmortem(const char* reason, uint64_t trace_id,
                                     uint64_t epoch_at) {
  // Collect events BEFORE counting, so the dump describes the failure,
  // not the dump machinery.
  std::ostringstream out;
  out << "{\"reason\": \"" << obs::JsonEscape(reason) << "\""
      << ", \"trace_id\": " << trace_id << ", \"epoch\": " << epoch_at
      << ", \"t_us\": " << obs::TraceNowUs() << ", \"events\": "
      << obs::FlightEventsJson(options_.postmortem_events) << "}";
  std::string json = out.str();
  MCFS_COUNT("serve/postmortems", 1);
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    stats_.postmortems++;
    last_postmortem_ = json;
  }
  if (!options_.postmortem_path.empty()) {
    std::ofstream file(options_.postmortem_path);
    if (file.is_open()) file << json << "\n";
  }
}

std::string SolverService::DumpPostmortem(const std::string& reason) {
  RecordPostmortem(reason.c_str(), obs::CurrentTraceId(), epoch());
  return LastPostmortem();
}

std::string SolverService::LastPostmortem() const {
  std::lock_guard<std::mutex> lock(report_mutex_);
  return last_postmortem_;
}

std::vector<double> SolverService::LatencySamplesForTesting() const {
  std::lock_guard<std::mutex> lock(report_mutex_);
  return latency_samples_;
}

std::string ServiceSnapshot::Json() const {
  std::ostringstream out;
  out << "{\"epoch\": " << epoch << ", \"t_us\": " << t_us
      << ", \"queue\": {\"depth\": " << queue_depth
      << ", \"capacity\": " << queue_capacity << "}"
      << ", \"cache\": {\"size\": " << cache_size
      << ", \"capacity\": " << cache_capacity << "}"
      << ", \"tracked_customers\": " << tracked_customers
      << ", \"in_flight\": [";
  for (size_t i = 0; i < in_flight.size(); ++i) {
    if (i > 0) out << ", ";
    out << in_flight[i];
  }
  out << "], \"latency_seconds\": " << LatencySummaryJson(latency)
      << ", \"slo\": " << SloReportsJson(slos)
      << ", \"postmortems\": " << postmortems
      << ", \"degraded\": " << degraded << ", \"shed\": " << shed
      << ", \"checkpoints\": " << checkpoints << ", \"fast\": " << fast
      << ", \"upgrades\": " << upgrades
      << ", \"refine_backlog\": " << refine_backlog << "}";
  return out.str();
}

}  // namespace mcfs
