#ifndef MCFS_SERVE_SOLVER_SERVICE_H_
#define MCFS_SERVE_SOLVER_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mcfs/common/deadline.h"
#include "mcfs/common/fault_plan.h"
#include "mcfs/common/status.h"
#include "mcfs/core/instance.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/graph.h"
#include "mcfs/serve/service_report.h"

namespace mcfs {

// Long-lived warm-state solver service (DESIGN.md §4.9). Loads one road
// network and one candidate-facility catalog, builds the shared
// read-only preprocessing a single time (connected components with
// per-component capacity accounting, the node -> candidate map), and
// then admits many solve requests — each with its own customers, k,
// optional candidate subset, and per-request deadline/cancellation —
// through a bounded admission queue. A dispatcher thread drains the
// queue in batches and executes each batch as one ParallelFor on the
// shared ThreadPool, so concurrent requests respect one process-wide
// concurrency limit instead of stacking private pools.
//
// Contract: a response is bit-identical to calling SolveWma directly on
// the instance the request describes (same graph, catalog slice,
// customers, k, options) — warm state only moves *where* preprocessing
// happens, never what is computed. Per-request deadlines degrade that
// request alone to an anytime solution; other requests in the same
// batch are unaffected.
//
// Catalog updates (capacities / candidate set — the core/dynamic
// scenario) bump an epoch and atomically publish a freshly built warm
// state; in-flight requests keep the snapshot they admitted under, so a
// request always sees a fully pre- or fully post-update catalog, never
// a torn mix. The epoch also stamps (and on change invalidates) the
// solve cache that short-circuits repeated identical requests.

// One latency SLO tier (DESIGN.md §4.11): requests naming `tier` are
// held to `target_latency_ms` end to end, with `error_budget` the
// tolerated violation fraction. Report()/DebugSnapshot() expose the
// per-tier request/violation counts and the budget burn rate.
struct SloPolicy {
  std::string tier = "default";
  double target_latency_ms = 0.0;  // 0 = no target (tier only counts)
  double error_budget = 0.01;      // tolerated violation fraction
};

struct ServiceOptions {
  // Participants for each batch's ParallelFor (0 = MCFS_THREADS /
  // hardware default, 1 = serial). Responses are bit-identical for
  // every value (determinism contract of the pool).
  int serve_threads = 0;
  // Bounded admission queue: Submit rejects with kUnavailable once this
  // many requests are waiting (load shedding, never silent loss).
  int queue_depth = 64;
  // Requests drained per dispatcher wake-up into one batch.
  int max_batch = 8;
  // Deadline applied to requests that carry none (0 = unlimited).
  int64_t default_deadline_ms = 0;
  // Run the independent verifier on every OK response (outside the
  // solve timing; verdict lands in SolveResponse::verify_ok).
  bool verify = false;
  // Completed deadline-free responses cached per epoch, keyed by the
  // full request (customers, k, subset). 0 disables the cache.
  int cache_capacity = 128;
  // Base solver options applied to every request (seed, tie-break,
  // threads for the nested prefetch, metrics...). The per-request
  // deadline_ms and cancel fields are overridden per request; the
  // `deadline` object is NOT — it is copied into every solve (each copy
  // gets its own poll budget), which is how the fault-injection tests
  // plant a deterministic Deadline::AfterPolls(n) expiry inside served
  // solves.
  WmaOptions wma;

  // --- Observability v2 (DESIGN.md §4.11) ---
  // Latency SLO tiers surfaced in Report()/DebugSnapshot(). Requests
  // with an empty tier land on "default"; a request naming an
  // unconfigured tier is counted nowhere (no implicit tiers).
  std::vector<SloPolicy> slos;
  // Turn the process-wide flight recorder on at construction (same as
  // MCFS_FLIGHT_RECORDER=1). Postmortems still work when this is off —
  // they just dump empty event lists.
  bool flight_recorder = false;
  // When nonempty, every captured postmortem is also written to this
  // path (overwriting; the file always holds the most recent one).
  std::string postmortem_path;
  // Events included in a postmortem dump (most recent, across threads).
  int postmortem_events = 128;
  // Fault injection for tests/CI: force this many warm ResolveTracked
  // verifier verdicts to read as rejections. Each injection exercises
  // the full rejection path — postmortem capture + cold fallback — so
  // the response stays correct while the failure machinery is driven
  // deterministically.
  int inject_verify_failures = 0;

  // --- Fault-tolerant serving (DESIGN.md §4.13) ---
  // Seeded deterministic fault schedule (common/fault_plan.h), polled
  // at the failure-injection sites: pre-solve (deadline cut), post-
  // solve (verifier rejection), admission (queue-overflow pulse), and
  // checkpoint write (IO error). Shared so the chaos harness can read
  // fire counts after the run. Null = no injection (zero overhead).
  std::shared_ptr<FaultPlan> fault_plan;
  // Seeds the queue-delay estimator (overload control) before the first
  // completion: expected per-request service time in ms. 0 = the
  // estimator starts blind and shedding begins only after the first
  // completed request taught it a service time.
  double expected_solve_ms = 0.0;

  // --- Tiered serving (DESIGN.md §4.14) ---
  // CPU niceness applied to the service's background threads (the
  // dispatcher running full batches and the refiner): > 0 lowers their
  // scheduling priority so the inline instant responder — which runs
  // on the submitting thread — preempts batch work instead of being
  // descheduled behind it. This is what keeps the fast tier's tail
  // latency honest on CPU-saturated hosts; on a single-core box a
  // nice-0 batch burst otherwise adds a full scheduler round (~5-10ms)
  // to p99 of a 0.5ms fast answer. Linux-only (no-op elsewhere);
  // 0 = inherit the process priority. Shared ThreadPool workers are
  // not re-niced — only threads the service owns.
  int background_nice = 0;
};

// --- Delta-typed updates (DESIGN.md §4.10) ---
//
// Instead of replacing whole catalogs, callers describe what changed.
// The service classifies each delta, accumulates per-component dirty
// bits against the previous ResolveTracked's warm seed, and the next
// re-solve repairs the previous epoch's matching instead of
// cold-running WMA.

enum class UpdateKind {
  // `node` holds a catalog facility; its capacity changes by
  // `capacity_delta`. Decreases are warm-repairable in place (the
  // resumed matching sheds deterministic overflow); increases dirty the
  // component's matches (a relaxed constraint can lower the optimum).
  kCapacityDelta = 0,
  // `node` joins the catalog with capacity `capacity_delta` (>= 0).
  // Dirties the component's streams and matches: a new candidate can
  // appear anywhere inside a customer's discovery prefix.
  kCandidateAdd,
  // The facility on `node` leaves the catalog. Warm-repairable: stale
  // edges/matches are filtered at resume and their customers re-enqueued.
  kCandidateRemove,
  // One customer appears on `node` (tracked population).
  kCustomerArrive,
  // One tracked customer on `node` departs.
  kCustomerDepart,
};

struct UpdateOp {
  UpdateKind kind = UpdateKind::kCapacityDelta;
  NodeId node = -1;
  // kCapacityDelta: signed change; kCandidateAdd: initial capacity.
  int capacity_delta = 0;
};

// One atomic delta: every op is validated up front and either all ops
// apply or none do.
struct UpdateRequest {
  std::vector<UpdateOp> ops;
};

// How ApplyUpdate classified and applied a delta.
struct UpdateResult {
  uint64_t epoch = 0;          // epoch after the update
  bool epoch_bumped = false;   // catalog changed -> new warm state
  bool noop = false;           // state identical afterwards; epoch kept
  // The next ResolveTracked can still repair from its seed (per-
  // component invalidation only). Every supported op kind is
  // warm-repairable; kept explicit for forward compatibility.
  bool warm_repairable = true;
  int components_dirtied = 0;  // components newly invalidated
  int ops_applied = 0;
};

struct SolveRequest {
  std::vector<NodeId> customers;
  int k = 0;
  // Indices into the service catalog; empty = the whole catalog.
  std::vector<int> facility_subset;
  // Per-request wall-clock budget in ms (0 = the service default).
  int64_t deadline_ms = 0;
  // Optional external cancellation, polled at the solver checkpoints.
  const CancelToken* cancel = nullptr;
  // Request-scoped trace id (DESIGN.md §4.11). 0 = the service assigns
  // a fresh process-unique id at admission. Every span, flight event
  // and histogram exemplar the request produces carries this id, and it
  // comes back in SolveResponse::trace_id.
  uint64_t trace_id = 0;
  // SLO tier this request is held to; empty = "default".
  std::string tier;
  // Opt into degraded-mode answers (DESIGN.md §4.13): when this solve
  // deadline-cuts or the verifier rejects it, the service walks the
  // degradation ladder — anytime answer if it verifies, else a
  // synthesized Hilbert/greedy baseline fallback — and responds with
  // SolveResponse::tier == "degraded" plus a quality bound instead of
  // surfacing the failure. Degraded answers are always verifier-checked
  // and never cached. Off = the pre-existing fail-closed behavior.
  bool allow_degraded = false;
  // --- Tiered serving (DESIGN.md §4.14) ---
  // End-to-end latency SLA in ms; 0 = no SLA (the full-fidelity path).
  // When set, admission estimates whether the queue wait plus a full
  // solve fits the budget (the same EWMA the overload control reads; a
  // blind estimator is treated as "will not fit"). If not, the request
  // is answered inline by the instant responder — greedy selection +
  // bounded-work matching over precomputed nearest-facility distances —
  // as tier == "fast" with a quality bound, bypassing the queue
  // entirely. Fast answers are always verifier-checked; a fast attempt
  // that fails verification (or the instance) falls through to the
  // normal queued full solve, trading the SLA for fidelity.
  int64_t max_latency_ms = 0;
  // When a fast answer was served for a cacheable request, run the full
  // WMA in the background under the same trace id and upgrade the
  // cached fast entry in place with the converged answer (same key,
  // same epoch), so later hits see tier == "full". false = the fast
  // answer is final and never cached (mirrors degraded answers).
  bool refine = true;
};

struct SolveResponse {
  // kOk, or kInvalidInput / kInfeasible / kUnavailable. The message is
  // byte-identical to what SolveWma returns for the same instance.
  Status status;
  McfsSolution solution;
  WmaStats stats;
  // Warm-state epoch this request was served under.
  uint64_t epoch = 0;
  // True when the response came from the epoch's solve cache.
  bool cache_hit = false;
  bool verify_ran = false;
  bool verify_ok = false;
  // ResolveTracked only: a warm seed was on offer for this solve, and
  // whether the served solution actually came from the warm repair path
  // (false when the verifier vetoed it and the solve fell back cold, or
  // when no seed was usable). bench_serve --churn classifies rows by
  // warm_served — the path taken — never by warm_attempted.
  bool warm_attempted = false;
  bool warm_served = false;
  double queue_seconds = 0.0;       // admission -> execution start
  double preprocess_seconds = 0.0;  // warm validation + instance view
  double solve_seconds = 0.0;       // SolveWma proper
  // The trace id this request was served under (assigned at admission
  // when the request carried none) — the join key into trace spans,
  // flight-recorder events, and histogram exemplars.
  uint64_t trace_id = 0;
  // "full" for the normal path; "degraded" when the answer came off the
  // degradation ladder (allow_degraded requests only; DESIGN.md §4.13);
  // "fast" when the instant responder answered under a max_latency_ms
  // SLA (DESIGN.md §4.14). Cache hits carry the tier of the entry they
  // hit — a refined entry serves "full" even to an SLA request.
  std::string tier = "full";
  // Degraded and fast responses: upper bound on objective / optimum,
  // derived from the capacity- and budget-relaxed lower bound (every
  // customer at its nearest catalog facility, one multi-source
  // Dijkstra — precomputed per epoch for full-catalog requests). 0 when
  // the response is full-tier (no bound computed);
  // kDegenerateQualityBound when the lower bound is 0 with a positive
  // objective (every customer co-located with a facility) — no finite
  // ratio exists, which is not the same as "unbounded".
  double quality_bound = 0.0;
  // kUnavailable responses: suggested client backoff before retrying,
  // derived from the estimated queue drain time. 0 on non-kUnavailable
  // responses and on shutdown rejections (a retry cannot succeed).
  int64_t retry_after_ms = 0;
  // True only on kUnavailable rejections from a stopped service: the
  // one rejection a retry can never outwait. Clients must key "stop
  // retrying" on this, not on retry_after_ms == 0 — a live-but-idle
  // service also hints 0.
  bool shutdown = false;
};

// SolveResponse::quality_bound sentinel: the nearest-facility lower
// bound was exactly 0 (every customer sits on a facility node) while
// the served objective was positive, so no finite approximation ratio
// exists. Distinct from 0.0, which means "no bound computed" (full-tier
// responses). Consumers comparing bounds against 1.0 must accept this
// value as "served, bound degenerate", not as a quality failure.
inline constexpr double kDegenerateQualityBound = -1.0;

// Lock-free EWMA teach-in shared by the request-completion paths: the
// first positive-state sample seeds the estimate, later samples decay
// it 0.8/0.2. A compare-exchange loop, not load-then-store — concurrent
// completions must not lose updates (admission-time shedding and the
// fast-tier admission estimate both read this). Returns the value
// installed.
double UpdateEwma(std::atomic<double>& ewma, double sample);

// Point-in-time live introspection of a running service (DESIGN.md
// §4.11): what an operator needs to answer "is it stuck, backed up, or
// slow?" without stopping anything. Produced by
// SolverService::DebugSnapshot(); serialized by bench_serve
// --introspect-every-ms and validated in CI.
struct ServiceSnapshot {
  uint64_t epoch = 0;
  int64_t t_us = 0;  // obs::TraceNowUs() at capture
  int queue_depth = 0;
  int queue_capacity = 0;
  int cache_size = 0;
  int cache_capacity = 0;
  int64_t tracked_customers = 0;
  // Trace ids of requests currently inside Execute/ResolveTracked.
  std::vector<uint64_t> in_flight;
  LatencySummary latency;
  std::vector<SloReport> slos;
  int64_t postmortems = 0;
  // Fault-tolerance counters (DESIGN.md §4.13): degraded-tier responses
  // served, admission-time sheds, and checkpoints saved + restored.
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t checkpoints = 0;
  // Tiered serving (DESIGN.md §4.14): fast-tier responses served,
  // cache entries upgraded in place, and the refinement backlog.
  int64_t fast = 0;
  int64_t upgrades = 0;
  int refine_backlog = 0;

  std::string Json() const;
};

// What ProbeCache found for one request identity (DESIGN.md §4.14) —
// the introspection the upgrade-in-place tests and the bench gate on:
// after a refinement drains, the entry a fast answer planted must still
// sit under the same key, same epoch, and same trace id, now holding
// the converged tier.
struct CacheProbe {
  bool present = false;
  std::string tier;          // "fast" or "full"
  uint64_t epoch = 0;        // cache epoch the entry lives under
  uint64_t trace_id = 0;     // request that planted (and refines) it
  double quality_bound = 0.0;
  bool verify_ok = false;
};

// Completion handle for one submitted request. Wait() blocks until the
// dispatcher has filled the response; handles are single-use and safe
// to wait on from any thread.
class ResponseHandle {
 public:
  const SolveResponse& Wait() const;
  // Bounded wait: true once the response is ready (Wait() then returns
  // without blocking), false when `timeout_ms` elapsed first. A
  // non-positive timeout is an instantaneous poll. The escape hatch a
  // caller needs against a wedged dispatcher — Wait() alone can hang.
  bool WaitFor(int64_t timeout_ms) const;
  bool Done() const;

 private:
  friend class SolverService;
  void Complete(SolveResponse response);

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  SolveResponse response_;
};

class SolverService {
 public:
  // The graph must outlive the service. `facility_nodes` / `capacities`
  // form the candidate catalog (distinct in-range nodes, caps >= 0 —
  // checked). Builds the epoch-0 warm state and starts the dispatcher.
  SolverService(const Graph* graph, std::vector<NodeId> facility_nodes,
                std::vector<int> capacities,
                const ServiceOptions& options = {});
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  // Enqueues a request. Returns immediately; when the admission queue
  // is full the returned handle is already completed with kUnavailable.
  std::shared_ptr<ResponseHandle> Submit(SolveRequest request);

  // Convenience: Submit + Wait.
  SolveResponse SolveSync(SolveRequest request);

  // Catalog updates (the core/dynamic scenario): bump the epoch,
  // rebuild the warm state, invalidate the solve cache. In-flight
  // requests finish under the snapshot they started with. A no-op
  // update (new state identical to the current one) keeps the epoch and
  // the response cache. Structural defects (size mismatch, negative
  // capacity, out-of-range or duplicate facility node) are rejected
  // with kInvalidInput and change nothing.
  Status UpdateCapacities(std::vector<int> capacities);
  Status UpdateCandidates(std::vector<NodeId> facility_nodes,
                          std::vector<int> capacities);

  // Applies one typed delta atomically: every op is validated first and
  // a failure (kInvalidInput naming the offending op and node) leaves
  // catalog, tracked population, and epoch untouched. Catalog-changing
  // deltas bump the epoch and publish a fresh warm state; customer-only
  // deltas do not. Deltas that leave the state identical are detected
  // as no-ops (epoch and cache kept). Per-component dirty bits
  // accumulate for the next ResolveTracked.
  StatusOr<UpdateResult> ApplyUpdate(const UpdateRequest& update);

  // Re-solves the current catalog + tracked customer population for a
  // budget of k, warm-starting from the previous ResolveTracked's
  // exported seed whenever the deltas since then allow it (same k, seed
  // present, per-component dirty bits narrowing what gets re-enqueued).
  // Every warm-started solve runs the independent verifier as a safety
  // net; a failed verdict falls back to a cold solve (counted under
  // resolve/verify_rejections). The response is equal in objective to a
  // cold SolveWma on TrackedInstance(k) — and bit-identical in solution
  // bytes when nothing changed since the seed was exported.
  // `deadline_ms` 0 = unlimited; `force_cold` skips the seed (the
  // bench's cold baseline). Serialized: concurrent calls run one at a
  // time.
  SolveResponse ResolveTracked(int k, int64_t deadline_ms = 0,
                               bool force_cold = false);

  // Snapshot of the instance ResolveTracked(k) would solve.
  McfsInstance TrackedInstance(int k) const;

  // Current tracked customer population size.
  size_t tracked_customer_count() const;

  uint64_t epoch() const;

  // --- Warm-state checkpoint/restore (DESIGN.md §4.13) ---
  // Writes a versioned, checksummed snapshot of the catalog, the
  // tracked customer population, and the exported warm seed (when the
  // dirty bits say it is still clean) to `path`. Serialized against
  // updates and resolves; serving continues around it. Failures
  // (including fault-injected kCheckpointIo) return typed kIoError.
  Status CheckpointTo(const std::string& path);

  // Restores a checkpoint into this service: republishes the warm state
  // at the checkpointed epoch (epoch continuity across process
  // restart), adopts the tracked population and warm seed, and clears
  // the response cache. The checkpoint is validated against the current
  // graph first; any defect — unreadable, truncated, corrupted,
  // version-mismatched, or graph-incompatible — returns typed kIoError
  // and leaves the service untouched (a clean cold start).
  Status RestoreFrom(const std::string& path);

  // Blocks until every queued background refinement has run to
  // completion (queue empty, worker idle). Tests and the bench call
  // this to observe the post-upgrade cache deterministically; serving
  // continues around it.
  void DrainRefinements();

  // Cache introspection for one request identity (same key derivation
  // as Execute, including the shape-resolved matcher backend): what
  // tier the entry holds, under which epoch and trace id. Safe to call
  // concurrently; the answer is a snapshot.
  CacheProbe ProbeCache(const SolveRequest& request) const;

  // Stops admission, drains the queue, joins the dispatcher, then
  // drains and joins the background refiner (every fast answer's
  // promised refinement still happens). Idempotent (also run by the
  // destructor).
  void Shutdown();

  // Aggregated service statistics (counts, latency percentiles, phase
  // seconds, amortization inputs). Safe to call concurrently.
  ServiceReport Report() const;

  // Live introspection (DESIGN.md §4.11): epoch, queue/cache occupancy,
  // in-flight request trace ids, histogram latency summary, SLO burn.
  // Safe to call concurrently with serving; takes each internal lock
  // briefly and in the service lock order.
  ServiceSnapshot DebugSnapshot() const;

  // Captures a flight-recorder postmortem on demand (same bounded JSON
  // the automatic triggers produce) and returns it. Also stored as
  // LastPostmortem() and written to ServiceOptions::postmortem_path.
  std::string DumpPostmortem(const std::string& reason);

  // The most recent postmortem JSON; empty when none was captured.
  std::string LastPostmortem() const;

  // Raw end-to-end latency samples, in completion order — the
  // brute-force reference the histogram-derived report quantiles are
  // validated against (tests only; unbounded like the report itself).
  std::vector<double> LatencySamplesForTesting() const;

 private:
  // Immutable per-epoch preprocessing shared by every request admitted
  // under that epoch. Requests hold it by shared_ptr, so an epoch bump
  // never tears state under an in-flight solve.
  struct WarmState {
    uint64_t epoch = 0;
    std::vector<NodeId> facility_nodes;
    std::vector<int> capacities;
    // node -> catalog index (or -1); the map every matcher build scans
    // the whole node array for, computed once here.
    std::vector<int> facility_index_of_node;
    ComponentLabeling components;
    // Catalog capacities per component, sorted descending — the
    // Theorem-3 accounting input, precomputed for full-catalog requests.
    std::vector<std::vector<int>> component_caps_sorted;
    // Nearest catalog facility per node (one multi-source Dijkstra per
    // epoch; DESIGN.md §4.14): the instant responder's selection signal
    // and the quality-bound denominator for full-catalog requests.
    // Subset requests recompute against their own facility slice.
    MultiSourceResult nearest_facility;
    double build_seconds = 0.0;
  };

  struct PendingRequest {
    SolveRequest request;
    std::shared_ptr<ResponseHandle> handle;
    double admitted_at = 0.0;  // TraceNowUs-based, seconds
  };

  // Cache key: the full request identity (no hashing collisions). The
  // resolved matcher backend is part of the identity: with
  // options.wma.matcher == kAuto the engine depends on the request's
  // shape, and a cached entry must only be served to requests the same
  // engine would have produced (timings and stats are engine-specific
  // even though objectives agree).
  struct CacheKey {
    std::vector<NodeId> customers;
    int k;
    std::vector<int> facility_subset;
    MatcherBackendKind matcher = MatcherBackendKind::kSspa;
    bool operator<(const CacheKey& other) const;
  };
  struct CacheEntry {
    McfsSolution solution;
    WmaStats stats;
    bool verify_ran = false;
    bool verify_ok = false;
    // Tiered serving (DESIGN.md §4.14): "full" entries are converged
    // WMA answers; "fast" entries are instant-responder answers
    // awaiting background refinement, carrying their quality bound and
    // the trace id of the request that planted them (the refinement
    // publishes the converged answer in place under the same id).
    std::string tier = "full";
    double quality_bound = 0.0;
    uint64_t trace_id = 0;
  };

  // One queued background refinement (DESIGN.md §4.14): re-solve the
  // fast-answered request with the full WMA and upgrade its cache entry
  // in place — same key, same epoch, same trace id.
  struct RefineTask {
    CacheKey key;
    uint64_t epoch = 0;
    uint64_t trace_id = 0;
  };

  std::shared_ptr<const WarmState> BuildWarmState(
      uint64_t epoch, std::vector<NodeId> facility_nodes,
      std::vector<int> capacities) const;
  void PublishWarmState(std::shared_ptr<const WarmState> state);
  std::shared_ptr<const WarmState> SnapshotWarmState() const;

  void DispatcherLoop();
  void Execute(PendingRequest& pending);
  // Records the phase metrics / report row and completes the handle.
  void FinishRequest(PendingRequest& pending, SolveResponse response);
  // Walks the degradation ladder (DESIGN.md §4.13) for an allow_degraded
  // request whose solve deadline-cut or verify-rejected: serve the
  // anytime answer if the independent verifier blesses it, else
  // synthesize a baseline fallback — always re-verified, never cached,
  // postmortem recorded. `rejected` marks the candidate untrusted.
  // `nearest` forwards the epoch's precomputed nearest-facility result
  // for full-catalog requests (null = recompute for the subset).
  void DegradeResponse(const McfsInstance& instance,
                       MatcherBackendKind matcher, uint64_t epoch_at,
                       bool rejected, const MultiSourceResult* nearest,
                       SolveResponse* response);
  // Feasible fallback answer against the instance: Hilbert sweep when
  // the graph has coordinates, greedy k-median otherwise.
  McfsSolution DegradedFallback(const McfsInstance& instance,
                                MatcherBackendKind matcher) const;
  // objective / (capacity- and budget-relaxed nearest-facility lower
  // bound), shared by the degraded and fast tiers;
  // kDegenerateQualityBound when the lower bound is 0 with a positive
  // objective. `nearest` skips the MultiSourceDijkstra when the caller
  // holds the epoch's precomputed full-catalog result (null = compute
  // against instance.facility_nodes).
  double NearestFacilityQualityBound(const McfsInstance& instance,
                                     double objective,
                                     const MultiSourceResult* nearest) const;
  // The instant responder (DESIGN.md §4.14): serves `pending` inline on
  // the submitting thread — cache lookup, greedy selection over the
  // nearest-facility distances, bounded-work FastGreedyMatch,
  // first-principles verification, quality bound — and completes the
  // handle as tier == "fast". Returns false when the fast attempt could
  // not produce a verified feasible answer (the caller enqueues the
  // request for the normal full solve) and true when the handle was
  // completed (fast answer, cache hit, or a definitive error).
  bool FastServe(PendingRequest& pending);
  // Background refinement worker: full WMA re-solves of fast-answered
  // requests, upgrading their cache entries in place.
  void RefinerLoop();
  void RunRefinement(const RefineTask& task);
  // Suggested client backoff for a kUnavailable rejection: half the
  // estimated queue drain time at the current service-time estimate,
  // never less than 1 ms.
  int64_t RetryAfterMs(size_t queue_len) const;
  // Builds + stores (and optionally writes) a bounded flight-recorder
  // postmortem. `reason` must outlive the call (string literal).
  void RecordPostmortem(const char* reason, uint64_t trace_id,
                        uint64_t epoch_at);
  // Warm-path replica of ValidateInstance's verdict (structural checks
  // + Theorem-3 accounting against the cached components). Returns true
  // when SolveWma would accept; on false the caller re-derives the
  // canonical Status on the cold path.
  bool WarmValidate(const WarmState& warm, const McfsInstance& instance,
                    const std::vector<int>& subset) const;

  // Warm-resolve state (DESIGN.md §4.10): the previous ResolveTracked's
  // exported seed plus per-component dirty bits accumulated by updates
  // since that export. Guarded by resolve_mutex_, which is held for the
  // whole of ResolveTracked — updates racing a resolve serialize behind
  // it (lock order: update_mutex_ -> resolve_mutex_ -> the rest).
  struct ResolveState {
    std::shared_ptr<const WmaWarmSeed> seed;
    int seed_k = 0;
    std::vector<uint8_t> stream_dirty;  // per graph component
    std::vector<uint8_t> match_dirty;
  };

  // Marks component dirty bits (resizing lazily), returning how many
  // (component, kind) bits flipped 0 -> 1. Caller holds resolve_mutex_.
  int MarkDirty(const std::vector<uint8_t>& stream_dirty,
                const std::vector<uint8_t>& match_dirty);

  // SLO report rows with burn rates. Caller holds report_mutex_.
  std::vector<SloReport> SloRowsLocked() const;

  const Graph* graph_;
  ServiceOptions options_;
  // Effective batch parallelism (min of max_batch and the resolved
  // serve_threads) — the divisor in the queue-delay estimate.
  int effective_parallelism_ = 1;
  // EWMA of per-request service seconds (preprocess + solve), updated
  // at completion, read lock-free at admission by the overload control.
  std::atomic<double> ewma_service_seconds_{0.0};

  mutable std::mutex state_mutex_;  // guards the warm_state_ pointer
  std::mutex update_mutex_;  // serializes whole catalog updates
  std::shared_ptr<const WarmState> warm_state_;

  mutable std::mutex resolve_mutex_;
  ResolveState resolve_;
  std::vector<NodeId> tracked_customers_;  // guarded by resolve_mutex_
  // Mirror of tracked_customers_.size(), readable without resolve_mutex_
  // — DebugSnapshot must not block behind a long ResolveTracked.
  std::atomic<int64_t> tracked_count_{0};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  bool stop_ = false;

  mutable std::mutex cache_mutex_;
  uint64_t cache_epoch_ = 0;
  std::map<CacheKey, CacheEntry> cache_;
  std::deque<CacheKey> cache_order_;  // insertion order for eviction

  // Background refinement (DESIGN.md §4.14). Tasks are deduplicated by
  // (key, epoch) at enqueue — N identical fast answers need one
  // refinement. refine_active_ covers the window between pop and
  // completion so DrainRefinements has no gap to race through.
  mutable std::mutex refine_mutex_;
  std::condition_variable refine_cv_;
  std::deque<RefineTask> refine_queue_;
  bool refine_stop_ = false;
  bool refine_active_ = false;

  // Per-tier SLO accounting (report_mutex_).
  struct SloState {
    SloPolicy policy;
    int64_t requests = 0;
    int64_t violations = 0;
    uint64_t last_violation_trace_id = 0;
  };

  mutable std::mutex report_mutex_;
  ServiceReport stats_;
  std::vector<double> latency_samples_;  // brute-force quantile reference
  std::vector<SloState> slo_states_;
  std::vector<uint64_t> in_flight_;  // trace ids inside Execute/Resolve
  std::string last_postmortem_;

  // End-to-end latency histogram (always on — request completion is not
  // a hot path; one Observe per request). The report's quantiles and
  // exemplars come from here, not from sampled percentiles.
  obs::Histogram latency_hist_{"serve/latency_seconds"};
  // Per-tier latency histograms (DESIGN.md §4.14), keyed by the tier
  // the response was actually served at — the bench's fast-vs-converged
  // p99 comparison reads these.
  obs::Histogram latency_fast_hist_{"serve/latency_fast_seconds"};
  obs::Histogram latency_full_hist_{"serve/latency_full_seconds"};
  obs::Histogram latency_degraded_hist_{"serve/latency_degraded_seconds"};

  std::thread dispatcher_;
  std::thread refiner_;
};

}  // namespace mcfs

#endif  // MCFS_SERVE_SOLVER_SERVICE_H_
