#ifndef MCFS_SERVE_SOLVER_SERVICE_H_
#define MCFS_SERVE_SOLVER_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mcfs/common/deadline.h"
#include "mcfs/common/status.h"
#include "mcfs/core/instance.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/graph.h"
#include "mcfs/serve/service_report.h"

namespace mcfs {

// Long-lived warm-state solver service (DESIGN.md §4.9). Loads one road
// network and one candidate-facility catalog, builds the shared
// read-only preprocessing a single time (connected components with
// per-component capacity accounting, the node -> candidate map), and
// then admits many solve requests — each with its own customers, k,
// optional candidate subset, and per-request deadline/cancellation —
// through a bounded admission queue. A dispatcher thread drains the
// queue in batches and executes each batch as one ParallelFor on the
// shared ThreadPool, so concurrent requests respect one process-wide
// concurrency limit instead of stacking private pools.
//
// Contract: a response is bit-identical to calling SolveWma directly on
// the instance the request describes (same graph, catalog slice,
// customers, k, options) — warm state only moves *where* preprocessing
// happens, never what is computed. Per-request deadlines degrade that
// request alone to an anytime solution; other requests in the same
// batch are unaffected.
//
// Catalog updates (capacities / candidate set — the core/dynamic
// scenario) bump an epoch and atomically publish a freshly built warm
// state; in-flight requests keep the snapshot they admitted under, so a
// request always sees a fully pre- or fully post-update catalog, never
// a torn mix. The epoch also stamps (and on change invalidates) the
// solve cache that short-circuits repeated identical requests.

struct ServiceOptions {
  // Participants for each batch's ParallelFor (0 = MCFS_THREADS /
  // hardware default, 1 = serial). Responses are bit-identical for
  // every value (determinism contract of the pool).
  int serve_threads = 0;
  // Bounded admission queue: Submit rejects with kUnavailable once this
  // many requests are waiting (load shedding, never silent loss).
  int queue_depth = 64;
  // Requests drained per dispatcher wake-up into one batch.
  int max_batch = 8;
  // Deadline applied to requests that carry none (0 = unlimited).
  int64_t default_deadline_ms = 0;
  // Run the independent verifier on every OK response (outside the
  // solve timing; verdict lands in SolveResponse::verify_ok).
  bool verify = false;
  // Completed deadline-free responses cached per epoch, keyed by the
  // full request (customers, k, subset). 0 disables the cache.
  int cache_capacity = 128;
  // Base solver options applied to every request (seed, tie-break,
  // threads for the nested prefetch, metrics...). Deadline/cancel
  // fields are overridden per request.
  WmaOptions wma;
};

// --- Delta-typed updates (DESIGN.md §4.10) ---
//
// Instead of replacing whole catalogs, callers describe what changed.
// The service classifies each delta, accumulates per-component dirty
// bits against the previous ResolveTracked's warm seed, and the next
// re-solve repairs the previous epoch's matching instead of
// cold-running WMA.

enum class UpdateKind {
  // `node` holds a catalog facility; its capacity changes by
  // `capacity_delta`. Decreases are warm-repairable in place (the
  // resumed matching sheds deterministic overflow); increases dirty the
  // component's matches (a relaxed constraint can lower the optimum).
  kCapacityDelta = 0,
  // `node` joins the catalog with capacity `capacity_delta` (>= 0).
  // Dirties the component's streams and matches: a new candidate can
  // appear anywhere inside a customer's discovery prefix.
  kCandidateAdd,
  // The facility on `node` leaves the catalog. Warm-repairable: stale
  // edges/matches are filtered at resume and their customers re-enqueued.
  kCandidateRemove,
  // One customer appears on `node` (tracked population).
  kCustomerArrive,
  // One tracked customer on `node` departs.
  kCustomerDepart,
};

struct UpdateOp {
  UpdateKind kind = UpdateKind::kCapacityDelta;
  NodeId node = -1;
  // kCapacityDelta: signed change; kCandidateAdd: initial capacity.
  int capacity_delta = 0;
};

// One atomic delta: every op is validated up front and either all ops
// apply or none do.
struct UpdateRequest {
  std::vector<UpdateOp> ops;
};

// How ApplyUpdate classified and applied a delta.
struct UpdateResult {
  uint64_t epoch = 0;          // epoch after the update
  bool epoch_bumped = false;   // catalog changed -> new warm state
  bool noop = false;           // state identical afterwards; epoch kept
  // The next ResolveTracked can still repair from its seed (per-
  // component invalidation only). Every supported op kind is
  // warm-repairable; kept explicit for forward compatibility.
  bool warm_repairable = true;
  int components_dirtied = 0;  // components newly invalidated
  int ops_applied = 0;
};

struct SolveRequest {
  std::vector<NodeId> customers;
  int k = 0;
  // Indices into the service catalog; empty = the whole catalog.
  std::vector<int> facility_subset;
  // Per-request wall-clock budget in ms (0 = the service default).
  int64_t deadline_ms = 0;
  // Optional external cancellation, polled at the solver checkpoints.
  const CancelToken* cancel = nullptr;
};

struct SolveResponse {
  // kOk, or kInvalidInput / kInfeasible / kUnavailable. The message is
  // byte-identical to what SolveWma returns for the same instance.
  Status status;
  McfsSolution solution;
  WmaStats stats;
  // Warm-state epoch this request was served under.
  uint64_t epoch = 0;
  // True when the response came from the epoch's solve cache.
  bool cache_hit = false;
  bool verify_ran = false;
  bool verify_ok = false;
  double queue_seconds = 0.0;       // admission -> execution start
  double preprocess_seconds = 0.0;  // warm validation + instance view
  double solve_seconds = 0.0;       // SolveWma proper
};

// Completion handle for one submitted request. Wait() blocks until the
// dispatcher has filled the response; handles are single-use and safe
// to wait on from any thread.
class ResponseHandle {
 public:
  const SolveResponse& Wait() const;
  bool Done() const;

 private:
  friend class SolverService;
  void Complete(SolveResponse response);

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  SolveResponse response_;
};

class SolverService {
 public:
  // The graph must outlive the service. `facility_nodes` / `capacities`
  // form the candidate catalog (distinct in-range nodes, caps >= 0 —
  // checked). Builds the epoch-0 warm state and starts the dispatcher.
  SolverService(const Graph* graph, std::vector<NodeId> facility_nodes,
                std::vector<int> capacities,
                const ServiceOptions& options = {});
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  // Enqueues a request. Returns immediately; when the admission queue
  // is full the returned handle is already completed with kUnavailable.
  std::shared_ptr<ResponseHandle> Submit(SolveRequest request);

  // Convenience: Submit + Wait.
  SolveResponse SolveSync(SolveRequest request);

  // Catalog updates (the core/dynamic scenario): bump the epoch,
  // rebuild the warm state, invalidate the solve cache. In-flight
  // requests finish under the snapshot they started with. A no-op
  // update (new state identical to the current one) keeps the epoch and
  // the response cache. Structural defects (size mismatch, negative
  // capacity, out-of-range or duplicate facility node) are rejected
  // with kInvalidInput and change nothing.
  Status UpdateCapacities(std::vector<int> capacities);
  Status UpdateCandidates(std::vector<NodeId> facility_nodes,
                          std::vector<int> capacities);

  // Applies one typed delta atomically: every op is validated first and
  // a failure (kInvalidInput naming the offending op and node) leaves
  // catalog, tracked population, and epoch untouched. Catalog-changing
  // deltas bump the epoch and publish a fresh warm state; customer-only
  // deltas do not. Deltas that leave the state identical are detected
  // as no-ops (epoch and cache kept). Per-component dirty bits
  // accumulate for the next ResolveTracked.
  StatusOr<UpdateResult> ApplyUpdate(const UpdateRequest& update);

  // Re-solves the current catalog + tracked customer population for a
  // budget of k, warm-starting from the previous ResolveTracked's
  // exported seed whenever the deltas since then allow it (same k, seed
  // present, per-component dirty bits narrowing what gets re-enqueued).
  // Every warm-started solve runs the independent verifier as a safety
  // net; a failed verdict falls back to a cold solve (counted under
  // resolve/verify_rejections). The response is equal in objective to a
  // cold SolveWma on TrackedInstance(k) — and bit-identical in solution
  // bytes when nothing changed since the seed was exported.
  // `deadline_ms` 0 = unlimited; `force_cold` skips the seed (the
  // bench's cold baseline). Serialized: concurrent calls run one at a
  // time.
  SolveResponse ResolveTracked(int k, int64_t deadline_ms = 0,
                               bool force_cold = false);

  // Snapshot of the instance ResolveTracked(k) would solve.
  McfsInstance TrackedInstance(int k) const;

  // Current tracked customer population size.
  size_t tracked_customer_count() const;

  uint64_t epoch() const;

  // Stops admission, drains the queue, joins the dispatcher. Idempotent
  // (also run by the destructor).
  void Shutdown();

  // Aggregated service statistics (counts, latency percentiles, phase
  // seconds, amortization inputs). Safe to call concurrently.
  ServiceReport Report() const;

 private:
  // Immutable per-epoch preprocessing shared by every request admitted
  // under that epoch. Requests hold it by shared_ptr, so an epoch bump
  // never tears state under an in-flight solve.
  struct WarmState {
    uint64_t epoch = 0;
    std::vector<NodeId> facility_nodes;
    std::vector<int> capacities;
    // node -> catalog index (or -1); the map every matcher build scans
    // the whole node array for, computed once here.
    std::vector<int> facility_index_of_node;
    ComponentLabeling components;
    // Catalog capacities per component, sorted descending — the
    // Theorem-3 accounting input, precomputed for full-catalog requests.
    std::vector<std::vector<int>> component_caps_sorted;
    double build_seconds = 0.0;
  };

  struct PendingRequest {
    SolveRequest request;
    std::shared_ptr<ResponseHandle> handle;
    double admitted_at = 0.0;  // TraceNowUs-based, seconds
  };

  // Cache key: the full request identity (no hashing collisions).
  struct CacheKey {
    std::vector<NodeId> customers;
    int k;
    std::vector<int> facility_subset;
    bool operator<(const CacheKey& other) const;
  };
  struct CacheEntry {
    McfsSolution solution;
    WmaStats stats;
    bool verify_ran = false;
    bool verify_ok = false;
  };

  std::shared_ptr<const WarmState> BuildWarmState(
      uint64_t epoch, std::vector<NodeId> facility_nodes,
      std::vector<int> capacities) const;
  void PublishWarmState(std::shared_ptr<const WarmState> state);
  std::shared_ptr<const WarmState> SnapshotWarmState() const;

  void DispatcherLoop();
  void Execute(PendingRequest& pending);
  // Records the phase metrics / report row and completes the handle.
  void FinishRequest(PendingRequest& pending, SolveResponse response);
  // Warm-path replica of ValidateInstance's verdict (structural checks
  // + Theorem-3 accounting against the cached components). Returns true
  // when SolveWma would accept; on false the caller re-derives the
  // canonical Status on the cold path.
  bool WarmValidate(const WarmState& warm, const McfsInstance& instance,
                    const std::vector<int>& subset) const;

  // Warm-resolve state (DESIGN.md §4.10): the previous ResolveTracked's
  // exported seed plus per-component dirty bits accumulated by updates
  // since that export. Guarded by resolve_mutex_, which is held for the
  // whole of ResolveTracked — updates racing a resolve serialize behind
  // it (lock order: update_mutex_ -> resolve_mutex_ -> the rest).
  struct ResolveState {
    std::shared_ptr<const WmaWarmSeed> seed;
    int seed_k = 0;
    std::vector<uint8_t> stream_dirty;  // per graph component
    std::vector<uint8_t> match_dirty;
  };

  // Marks component dirty bits (resizing lazily), returning how many
  // (component, kind) bits flipped 0 -> 1. Caller holds resolve_mutex_.
  int MarkDirty(const std::vector<uint8_t>& stream_dirty,
                const std::vector<uint8_t>& match_dirty);

  const Graph* graph_;
  ServiceOptions options_;

  mutable std::mutex state_mutex_;  // guards the warm_state_ pointer
  std::mutex update_mutex_;  // serializes whole catalog updates
  std::shared_ptr<const WarmState> warm_state_;

  mutable std::mutex resolve_mutex_;
  ResolveState resolve_;
  std::vector<NodeId> tracked_customers_;  // guarded by resolve_mutex_

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  bool stop_ = false;

  std::mutex cache_mutex_;
  uint64_t cache_epoch_ = 0;
  std::map<CacheKey, CacheEntry> cache_;
  std::deque<CacheKey> cache_order_;  // insertion order for eviction

  mutable std::mutex report_mutex_;
  ServiceReport stats_;
  std::vector<double> latency_samples_;

  std::thread dispatcher_;
};

}  // namespace mcfs

#endif  // MCFS_SERVE_SOLVER_SERVICE_H_
