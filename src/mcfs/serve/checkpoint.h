#ifndef MCFS_SERVE_CHECKPOINT_H_
#define MCFS_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcfs/common/status.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// Warm-state checkpoint (DESIGN.md §4.13): everything a restarted
// process needs to keep serving the epoch it died in — the catalog, the
// tracked customer population, and the previous ResolveTracked's
// exported warm seed — without the graph itself (the graph is loaded
// from its own file and validated against the checkpoint on restore).
//
// On-disk format: versioned line-oriented text ("MCFSCKPT 1" magic),
// doubles serialized as raw IEEE-754 bit patterns (hex) so a restored
// seed replays *byte-identical* warm answers, closed by an FNV-1a 64
// checksum over every payload byte. Truncated, corrupted,
// version-mismatched, or checksum-failing files are rejected with a
// typed kIoError naming the line — the caller falls back to a clean
// cold start, never to half-restored state.

struct ServiceCheckpoint {
  uint64_t epoch = 0;
  std::vector<NodeId> facility_nodes;
  std::vector<int> capacities;
  std::vector<NodeId> tracked_customers;
  // Budget the seed was exported under; meaningful when has_seed.
  int seed_k = 0;
  bool has_seed = false;
  WmaWarmSeed seed;
};

// Writes the checkpoint atomically enough for a single writer: payload
// first, checksum line last, so a torn write is always detectable.
Status WriteServiceCheckpoint(const ServiceCheckpoint& checkpoint,
                              const std::string& path);

// Parses and checksum-verifies `path`. Every defect — unopenable file,
// bad magic or version, short file, malformed field, checksum mismatch
// — comes back as kIoError with a line diagnosis.
StatusOr<ServiceCheckpoint> ReadServiceCheckpoint(const std::string& path);

}  // namespace mcfs

#endif  // MCFS_SERVE_CHECKPOINT_H_
