#ifndef MCFS_SERVE_SERVICE_REPORT_H_
#define MCFS_SERVE_SERVICE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcfs/obs/histogram.h"

namespace mcfs {

// End-to-end request latency summary (seconds, admission to completion).
// Derived from the service's log-scale latency histogram — quantiles
// are exact to within one histogram bucket width (a factor of
// obs::kHistogramGrowth) and clamped to the exact tracked max, so
// p50 <= p95 <= p99 <= max always holds. `count == 0` means "no data":
// Json() then emits null for every statistic, never garbage.
struct LatencySummary {
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  // Trace id of a recent request in the tail (>= p99) bucket, 0 when
  // unattributed — the "why is p99 bad" jump-off point.
  uint64_t p99_exemplar = 0;
};

// Per-tier SLO accounting (DESIGN.md §4.11). A tier's error budget is
// the tolerated fraction of requests allowed to miss the latency
// target; `burn` is the fraction of that budget consumed so far
// (violations / (budget * requests), >1 = budget blown).
struct SloReport {
  std::string tier;
  double target_latency_ms = 0.0;
  double error_budget = 0.0;  // tolerated violation fraction, in (0,1]
  int64_t requests = 0;
  int64_t violations = 0;
  double burn = 0.0;
  // Trace id of the most recent violating request (0 = none).
  uint64_t last_violation_trace_id = 0;
};

// Aggregated SolverService statistics: request counts, batch shape,
// phase times, and the inputs of the cold-vs-warm amortization story
// (what one warm-state build cost vs. what requests pay per solve).
// Produced by SolverService::Report(); serialized by Json() with
// non-finite doubles rendered as null (obs::JsonNumber).
struct ServiceReport {
  uint64_t epoch = 0;         // current warm-state epoch
  int64_t epochs_built = 0;   // warm-state builds (initial + updates)
  double warm_build_seconds = 0.0;  // total across all builds
  // Matching engine the service was configured with ("sspa",
  // "cost_scaling" or "auto"; flow/matcher_backend.h). Surfaced as
  // serve/matcher_backend in the report JSON so recorded reports say
  // which engine produced their timings.
  std::string matcher_backend;

  int64_t requests_admitted = 0;
  int64_t requests_rejected = 0;  // queue full / shut down
  int64_t requests_completed = 0;
  int64_t requests_failed = 0;  // completed with a non-OK status
  // Admission-time overload sheds (DESIGN.md §4.13): estimated queue
  // wait already exceeded the request deadline, or a fault-injected
  // queue pulse. Distinct from requests_rejected (hard queue-full).
  int64_t requests_shed = 0;
  int64_t cache_hits = 0;
  int64_t deadline_terminations = 0;

  int64_t batches = 0;
  int max_batch_size = 0;

  // Totals across completed requests, by phase.
  double queue_seconds_total = 0.0;
  double preprocess_seconds_total = 0.0;
  double solve_seconds_total = 0.0;

  // --- Incremental re-solve (DESIGN.md §4.10) ---
  int64_t resolve_updates = 0;       // state-changing updates applied
  int64_t resolve_noop_updates = 0;  // updates detected as no-ops
  int64_t resolve_ops_applied = 0;   // typed ops across ApplyUpdate calls
  int64_t resolve_components_dirtied = 0;  // dirty bits flipped 0 -> 1
  int64_t resolves_warm = 0;         // ResolveTracked runs off a seed
  int64_t resolves_cold = 0;         // ResolveTracked cold runs
  int64_t resolve_verify_rejections = 0;  // warm solves the verifier vetoed
  int64_t warm_customers_reused = 0;      // adopted from the previous epoch
  int64_t warm_customers_repaired = 0;    // re-enqueued after the resume
  double resolve_warm_seconds = 0.0;
  double resolve_cold_seconds = 0.0;

  // --- Observability v2 (DESIGN.md §4.11) ---
  // Flight-recorder postmortems captured (verifier rejections,
  // kInternal/kInfeasible responses, deadline-exceeded warm solves).
  int64_t postmortems = 0;

  // --- Fault-tolerant serving (DESIGN.md §4.13) ---
  int64_t degraded_responses = 0;  // responses served tier=degraded
  int64_t degraded_fallbacks = 0;  // of those, synthesized baselines
  int64_t checkpoints_saved = 0;
  int64_t checkpoints_restored = 0;
  int64_t checkpoint_failures = 0;  // failed saves + failed restores
  int64_t faults_injected = 0;      // FaultPlan fires acted on in-serve

  // --- Tiered serving (DESIGN.md §4.14) ---
  int64_t fast_responses = 0;     // responses served tier=fast
  int64_t fast_fallthroughs = 0;  // fast attempts that fell to the queue
  int64_t refines_enqueued = 0;   // background refinements queued
  int64_t refine_runs = 0;        // background refinements completed
  int64_t refine_upgrades = 0;    // cache entries upgraded in place
  // Refinements whose target vanished first: the epoch moved, the entry
  // was evicted, or a full solve already overtook the upgrade.
  int64_t refine_discards = 0;

  LatencySummary latency;
  // Latency split by the tier the response was served at (DESIGN.md
  // §4.14) — the fast-vs-converged p99 comparison the tiered bench
  // gates on. Tiers with no traffic carry count == 0 (JSON nulls).
  LatencySummary latency_fast;
  LatencySummary latency_full;
  LatencySummary latency_degraded;
  std::vector<SloReport> slos;  // one row per configured tier

  std::string Json() const;
  bool WriteJson(const std::string& path) const;
};

// Fills `latency` from raw per-request samples (sorts a copy; empty
// input yields an all-zero summary). Exact nearest-rank quantiles —
// kept as the brute-force reference the histogram path is tested
// against (quantile agreement within one bucket width).
LatencySummary SummarizeLatencies(std::vector<double> samples);

// Fills `latency` from a log-scale histogram snapshot: exact
// count/mean/max, bucket-quantile p50/p95/p99 clamped to the exact
// extremes, and the tail exemplar trace id.
LatencySummary SummarizeHistogram(const obs::HistogramSnapshot& snapshot);

// JSON object for one latency summary: {"count":..,"mean":..,"p50":..,
// "p95":..,"p99":..,"max":..,"p99_exemplar":..}. count == 0 emits null
// for every statistic (no data is not the same as 0 seconds). Shared by
// ServiceReport::Json and ServiceSnapshot::Json so the two stay
// schema-identical.
std::string LatencySummaryJson(const LatencySummary& latency);

// JSON array of SLO rows, one object per tier.
std::string SloReportsJson(const std::vector<SloReport>& slos);

}  // namespace mcfs

#endif  // MCFS_SERVE_SERVICE_REPORT_H_
