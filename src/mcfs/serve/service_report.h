#ifndef MCFS_SERVE_SERVICE_REPORT_H_
#define MCFS_SERVE_SERVICE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mcfs {

// End-to-end request latency summary (seconds, admission to completion).
struct LatencySummary {
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Aggregated SolverService statistics: request counts, batch shape,
// phase times, and the inputs of the cold-vs-warm amortization story
// (what one warm-state build cost vs. what requests pay per solve).
// Produced by SolverService::Report(); serialized by Json() with
// non-finite doubles rendered as null (obs::JsonNumber).
struct ServiceReport {
  uint64_t epoch = 0;         // current warm-state epoch
  int64_t epochs_built = 0;   // warm-state builds (initial + updates)
  double warm_build_seconds = 0.0;  // total across all builds

  int64_t requests_admitted = 0;
  int64_t requests_rejected = 0;  // queue full / shut down
  int64_t requests_completed = 0;
  int64_t requests_failed = 0;  // completed with a non-OK status
  int64_t cache_hits = 0;
  int64_t deadline_terminations = 0;

  int64_t batches = 0;
  int max_batch_size = 0;

  // Totals across completed requests, by phase.
  double queue_seconds_total = 0.0;
  double preprocess_seconds_total = 0.0;
  double solve_seconds_total = 0.0;

  // --- Incremental re-solve (DESIGN.md §4.10) ---
  int64_t resolve_updates = 0;       // state-changing updates applied
  int64_t resolve_noop_updates = 0;  // updates detected as no-ops
  int64_t resolve_ops_applied = 0;   // typed ops across ApplyUpdate calls
  int64_t resolve_components_dirtied = 0;  // dirty bits flipped 0 -> 1
  int64_t resolves_warm = 0;         // ResolveTracked runs off a seed
  int64_t resolves_cold = 0;         // ResolveTracked cold runs
  int64_t resolve_verify_rejections = 0;  // warm solves the verifier vetoed
  int64_t warm_customers_reused = 0;      // adopted from the previous epoch
  int64_t warm_customers_repaired = 0;    // re-enqueued after the resume
  double resolve_warm_seconds = 0.0;
  double resolve_cold_seconds = 0.0;

  LatencySummary latency;

  std::string Json() const;
  bool WriteJson(const std::string& path) const;
};

// Fills `latency` from raw per-request samples (sorts a copy; empty
// input yields an all-zero summary).
LatencySummary SummarizeLatencies(std::vector<double> samples);

}  // namespace mcfs

#endif  // MCFS_SERVE_SERVICE_REPORT_H_
