#ifndef MCFS_BENCH_RUNNER_H_
#define MCFS_BENCH_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "mcfs/core/instance.h"
#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

// Outcome of running one algorithm on one instance: the two quantities
// every figure in the paper reports (objective, runtime) plus status,
// phase breakdowns, and (when AlgorithmSuite::metrics is on) the cell's
// slice of the process-wide counter registry.
struct AlgoOutcome {
  std::string algorithm;
  double objective = 0.0;
  double seconds = 0.0;
  bool feasible = false;
  bool failed = false;  // exact solver exceeded its budget ("Gurobi fails")
  // How the solver ended: kDeadline marks an anytime result cut short
  // by AlgorithmSuite::cell_timeout_ms (still feasible, best-so-far).
  Termination termination = Termination::kConverged;
  // Verdict of the independent verifier (core/verifier.h); verify_ran
  // is false unless the suite/caller asked for verification.
  bool verify_ran = false;
  bool verify_ok = false;
  // WMA-variant cells carry the full phase/iteration breakdown
  // (iterations, matching/cover/prefetch/final-assign seconds,
  // per-iteration rows); other algorithms leave it default.
  bool has_wma_stats = false;
  WmaStats wma_stats;
  // Counters and distributions attributed to exactly this cell: with
  // metrics on, RunSuite runs cells serially and resets the registry
  // between them, so the snapshot is the cell's own work (the nested
  // WMA prefetch still parallelizes). Empty with metrics off.
  obs::MetricsSnapshot metrics;
};

using AlgorithmFn = std::function<McfsSolution(const McfsInstance&)>;

// Runs `fn` on the instance under a wall timer, validates the solution
// structurally, and records objective/runtime. With verify, also runs
// the independent verifier (fresh Dijkstras; core/verifier.h) on the
// result and records the verdict in verify_ran/verify_ok — outside the
// timed window, so cell runtimes stay comparable.
AlgoOutcome RunAlgorithm(const std::string& name, const AlgorithmFn& fn,
                         const McfsInstance& instance, bool verify = false);

// Standard algorithm set used across the experiment suite. `exact`
// carries its own budget so large points fail gracefully.
struct AlgorithmSuite {
  bool with_wma = true;
  bool with_wma_naive = true;
  bool with_hilbert = true;
  bool with_brnn = false;  // expensive; only where the paper shows it
  bool with_uf_wma = false;
  // Classic uncapacitated-greedy k-median baseline (library extension).
  bool with_greedy_kmedian = false;
  // WMA followed by the swap local search (library extension).
  bool with_wma_ls = false;
  bool with_exact = true;
  ExactOptions exact_options;
  uint64_t seed = 42;
  // Threads for the suite: independent (instance, algorithm) cells run
  // concurrently on the shared pool, and the WMA variants inherit the
  // same value for their batched stream prefetch. Default 1 keeps the
  // per-cell runtimes contention-free (comparable, as the figures
  // require); raise it (bench binaries: --threads=N) to trade timing
  // fidelity for wall-clock. Objectives and solutions are identical for
  // every value.
  int threads = 1;
  // Per-cell observability (on by default — the suite exists to produce
  // reports): enables the obs MetricsRegistry, runs cells serially with
  // a registry reset between them, and stores each cell's counter
  // snapshot in its AlgoOutcome. Turn off to run cells concurrently on
  // the pool (suite.threads > 1) without attribution.
  bool metrics = true;
  // Per-cell wall-clock budget in milliseconds; 0 = unlimited. The WMA
  // variants take it as their cooperative deadline and degrade anytime
  // (best-so-far solution, termination == kDeadline); the exact
  // solver's own time budget is capped to it.
  int64_t cell_timeout_ms = 0;
  // Run the independent verifier on every cell's solution (bench
  // binaries: --verify). Verdicts land in AlgoOutcome::verify_ok and
  // the verify/* counters in the cell's metrics snapshot.
  bool verify = false;
  // Matching engine for every cell's final/transport assignments
  // (bench binaries: --matcher=sspa|cost_scaling|auto, or the
  // MCFS_MATCHER env fallback; flow/matcher_backend.h). Objectives are
  // identical across engines; runtimes are the thing being compared.
  MatcherBackendKind matcher = MatcherBackendKind::kSspa;
};

// Runs the configured suite on one instance and returns one outcome per
// enabled algorithm (order: BRNN, Hilbert, WMA Naive, WMA, UF WMA,
// Exact — the order the paper's tables use).
std::vector<AlgoOutcome> RunSuite(const McfsInstance& instance,
                                  const AlgorithmSuite& suite);

// Formats an outcome as "objective / runtime" (or "fail / runtime").
std::string FormatOutcome(const AlgoOutcome& outcome);

}  // namespace mcfs

#endif  // MCFS_BENCH_RUNNER_H_
