#include "mcfs/bench/runner.h"

#include "mcfs/baselines/brnn.h"
#include "mcfs/baselines/greedy_kmedian.h"
#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/common/check.h"
#include "mcfs/common/table.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/local_search.h"
#include "mcfs/core/wma.h"

namespace mcfs {

AlgoOutcome RunAlgorithm(const std::string& name, const AlgorithmFn& fn,
                         const McfsInstance& instance) {
  WallTimer timer;
  const McfsSolution solution = fn(instance);
  AlgoOutcome outcome;
  outcome.algorithm = name;
  outcome.seconds = timer.Seconds();
  outcome.objective = solution.objective;
  outcome.feasible = solution.feasible;
  const ValidationResult validation = ValidateSolution(instance, solution);
  MCFS_CHECK(validation.ok) << name << ": " << validation.message;
  return outcome;
}

std::vector<AlgoOutcome> RunSuite(const McfsInstance& instance,
                                  const AlgorithmSuite& suite) {
  // Build the enabled cells first (paper's table order), then execute
  // them as one parallel point sweep: every cell only reads the shared
  // instance and writes its own outcome slot, so the outcome vector is
  // identical for any thread count. WMA variants inherit suite.threads
  // for their batched stream prefetch; when cells themselves run on the
  // pool, the nested prefetch loops degrade gracefully to inline serial.
  WmaOptions wma_options;
  wma_options.seed = suite.seed;
  wma_options.threads = suite.threads;
  WmaOptions naive_options = wma_options;
  naive_options.naive = true;

  std::vector<std::function<AlgoOutcome()>> cells;
  if (suite.with_brnn) {
    cells.push_back(
        [&] { return RunAlgorithm("BRNN", RunBrnnBaseline, instance); });
  }
  if (suite.with_hilbert) {
    cells.push_back(
        [&] { return RunAlgorithm("Hilbert", RunHilbertBaseline, instance); });
  }
  if (suite.with_greedy_kmedian) {
    cells.push_back([&] {
      return RunAlgorithm(
          "Greedy k-med",
          [](const McfsInstance& inst) { return RunGreedyKMedian(inst); },
          instance);
    });
  }
  if (suite.with_wma_naive) {
    cells.push_back([&] {
      return RunAlgorithm(
          "WMA Naive",
          [&](const McfsInstance& inst) {
            return RunWma(inst, naive_options).solution;
          },
          instance);
    });
  }
  if (suite.with_wma) {
    cells.push_back([&] {
      return RunAlgorithm(
          "WMA",
          [&](const McfsInstance& inst) {
            return RunWma(inst, wma_options).solution;
          },
          instance);
    });
  }
  if (suite.with_uf_wma) {
    cells.push_back([&] {
      return RunAlgorithm(
          "UF WMA",
          [&](const McfsInstance& inst) {
            return RunUniformFirstWma(inst, wma_options).solution;
          },
          instance);
    });
  }
  if (suite.with_wma_ls) {
    cells.push_back([&] {
      return RunAlgorithm(
          "WMA+LS",
          [&](const McfsInstance& inst) {
            const McfsSolution wma = RunWma(inst, wma_options).solution;
            return ImproveByLocalSearch(inst, wma).solution;
          },
          instance);
    });
  }
  if (suite.with_exact) {
    cells.push_back([&] {
      WallTimer timer;
      const ExactResult exact = SolveExact(instance, suite.exact_options);
      AlgoOutcome outcome;
      outcome.algorithm = "Exact (B&B)";
      outcome.seconds = timer.Seconds();
      outcome.objective = exact.solution.objective;
      outcome.feasible = exact.solution.feasible;
      outcome.failed = exact.failed || !exact.optimal;
      return outcome;
    });
  }

  std::vector<AlgoOutcome> outcomes(cells.size());
  ParallelFor(
      0, static_cast<int64_t>(cells.size()), /*grain=*/1,
      [&](int64_t c) { outcomes[c] = cells[c](); }, suite.threads);
  return outcomes;
}

std::string FormatOutcome(const AlgoOutcome& outcome) {
  if (outcome.failed) return "fail (" + FmtSeconds(outcome.seconds) + ")";
  if (!outcome.feasible) return "infeasible";
  return FmtDouble(outcome.objective, 0) + " / " +
         FmtSeconds(outcome.seconds);
}

}  // namespace mcfs
