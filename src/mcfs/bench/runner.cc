#include "mcfs/bench/runner.h"

#include "mcfs/baselines/brnn.h"
#include "mcfs/baselines/greedy_kmedian.h"
#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/common/check.h"
#include "mcfs/common/table.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/local_search.h"
#include "mcfs/core/wma.h"

namespace mcfs {

AlgoOutcome RunAlgorithm(const std::string& name, const AlgorithmFn& fn,
                         const McfsInstance& instance) {
  WallTimer timer;
  const McfsSolution solution = fn(instance);
  AlgoOutcome outcome;
  outcome.algorithm = name;
  outcome.seconds = timer.Seconds();
  outcome.objective = solution.objective;
  outcome.feasible = solution.feasible;
  const ValidationResult validation = ValidateSolution(instance, solution);
  MCFS_CHECK(validation.ok) << name << ": " << validation.message;
  return outcome;
}

std::vector<AlgoOutcome> RunSuite(const McfsInstance& instance,
                                  const AlgorithmSuite& suite) {
  std::vector<AlgoOutcome> outcomes;
  if (suite.with_brnn) {
    outcomes.push_back(RunAlgorithm("BRNN", RunBrnnBaseline, instance));
  }
  if (suite.with_hilbert) {
    outcomes.push_back(
        RunAlgorithm("Hilbert", RunHilbertBaseline, instance));
  }
  if (suite.with_greedy_kmedian) {
    outcomes.push_back(RunAlgorithm(
        "Greedy k-med",
        [](const McfsInstance& inst) { return RunGreedyKMedian(inst); },
        instance));
  }
  if (suite.with_wma_naive) {
    WmaOptions options;
    options.naive = true;
    options.seed = suite.seed;
    outcomes.push_back(RunAlgorithm(
        "WMA Naive",
        [&](const McfsInstance& inst) { return RunWma(inst, options).solution; },
        instance));
  }
  if (suite.with_wma) {
    WmaOptions options;
    options.seed = suite.seed;
    outcomes.push_back(RunAlgorithm(
        "WMA",
        [&](const McfsInstance& inst) { return RunWma(inst, options).solution; },
        instance));
  }
  if (suite.with_uf_wma) {
    WmaOptions options;
    options.seed = suite.seed;
    outcomes.push_back(RunAlgorithm(
        "UF WMA",
        [&](const McfsInstance& inst) {
          return RunUniformFirstWma(inst, options).solution;
        },
        instance));
  }
  if (suite.with_wma_ls) {
    WmaOptions options;
    options.seed = suite.seed;
    outcomes.push_back(RunAlgorithm(
        "WMA+LS",
        [&](const McfsInstance& inst) {
          const McfsSolution wma = RunWma(inst, options).solution;
          return ImproveByLocalSearch(inst, wma).solution;
        },
        instance));
  }
  if (suite.with_exact) {
    WallTimer timer;
    const ExactResult exact = SolveExact(instance, suite.exact_options);
    AlgoOutcome outcome;
    outcome.algorithm = "Exact (B&B)";
    outcome.seconds = timer.Seconds();
    outcome.objective = exact.solution.objective;
    outcome.feasible = exact.solution.feasible;
    outcome.failed = exact.failed || !exact.optimal;
    outcomes.push_back(outcome);
  }
  return outcomes;
}

std::string FormatOutcome(const AlgoOutcome& outcome) {
  if (outcome.failed) return "fail (" + FmtSeconds(outcome.seconds) + ")";
  if (!outcome.feasible) return "infeasible";
  return FmtDouble(outcome.objective, 0) + " / " +
         FmtSeconds(outcome.seconds);
}

}  // namespace mcfs
