#include "mcfs/bench/runner.h"

#include <algorithm>

#include "mcfs/baselines/brnn.h"
#include "mcfs/baselines/greedy_kmedian.h"
#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/common/check.h"
#include "mcfs/common/table.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/local_search.h"
#include "mcfs/core/verifier.h"
#include "mcfs/core/wma.h"
#include "mcfs/obs/trace.h"

namespace mcfs {

AlgoOutcome RunAlgorithm(const std::string& name, const AlgorithmFn& fn,
                         const McfsInstance& instance, bool verify) {
  obs::TraceSpan span(("run/" + name).c_str());
  WallTimer timer;
  const McfsSolution solution = fn(instance);
  AlgoOutcome outcome;
  outcome.algorithm = name;
  outcome.seconds = timer.Seconds();
  outcome.objective = solution.objective;
  outcome.feasible = solution.feasible;
  outcome.termination = solution.termination;
  const ValidationResult validation = ValidateSolution(instance, solution);
  MCFS_CHECK(validation.ok) << name << ": " << validation.message;
  if (verify) {
    outcome.verify_ran = true;
    outcome.verify_ok = VerifySolution(instance, solution).ok;
  }
  return outcome;
}

std::vector<AlgoOutcome> RunSuite(const McfsInstance& instance,
                                  const AlgorithmSuite& suite) {
  // Build the enabled cells first (paper's table order), then execute
  // them as one parallel point sweep: every cell only reads the shared
  // instance and writes its own outcome slot, so the outcome vector is
  // identical for any thread count. WMA variants inherit suite.threads
  // for their batched stream prefetch; when cells themselves run on the
  // pool, the nested prefetch loops degrade gracefully to inline serial.
  WmaOptions wma_options;
  wma_options.seed = suite.seed;
  wma_options.threads = suite.threads;
  // Iteration rows are cheap (a handful of scalars per iteration), and
  // the suite exists to produce reports — always collect them.
  wma_options.collect_iteration_stats = true;
  wma_options.metrics = suite.metrics;
  wma_options.deadline_ms = suite.cell_timeout_ms;
  wma_options.matcher = suite.matcher;
  if (suite.metrics) obs::EnableMetrics(true);
  WmaOptions naive_options = wma_options;
  naive_options.naive = true;
  ExactOptions exact_options = suite.exact_options;
  exact_options.matcher = suite.matcher;
  if (suite.cell_timeout_ms > 0) {
    exact_options.time_limit_seconds =
        std::min(exact_options.time_limit_seconds,
                 static_cast<double>(suite.cell_timeout_ms) / 1000.0);
  }
  const bool verify = suite.verify;

  // Captures a WMA-variant cell: runs it through RunAlgorithm (timer +
  // validation) and attaches the phase/iteration breakdown.
  auto wma_cell = [&instance, verify](const std::string& name, auto run) {
    return [&instance, verify, name, run] {
      WmaStats stats;
      AlgoOutcome outcome = RunAlgorithm(
          name,
          [&](const McfsInstance& inst) {
            WmaResult result = run(inst);
            stats = std::move(result.stats);
            return std::move(result.solution);
          },
          instance, verify);
      outcome.has_wma_stats = true;
      outcome.wma_stats = std::move(stats);
      return outcome;
    };
  };

  std::vector<std::function<AlgoOutcome()>> cells;
  if (suite.with_brnn) {
    cells.push_back([&] {
      return RunAlgorithm(
          "BRNN",
          [&](const McfsInstance& inst) {
            return RunBrnnBaseline(inst, suite.matcher);
          },
          instance, verify);
    });
  }
  if (suite.with_hilbert) {
    cells.push_back([&] {
      return RunAlgorithm(
          "Hilbert",
          [&](const McfsInstance& inst) {
            return RunHilbertBaseline(inst, suite.matcher);
          },
          instance, verify);
    });
  }
  if (suite.with_greedy_kmedian) {
    cells.push_back([&] {
      return RunAlgorithm(
          "Greedy k-med",
          [&](const McfsInstance& inst) {
            GreedyKMedianOptions kmed_options;
            kmed_options.matcher = suite.matcher;
            return RunGreedyKMedian(inst, kmed_options);
          },
          instance, verify);
    });
  }
  if (suite.with_wma_naive) {
    cells.push_back(wma_cell("WMA Naive", [&](const McfsInstance& inst) {
      return RunWma(inst, naive_options);
    }));
  }
  if (suite.with_wma) {
    cells.push_back(wma_cell("WMA", [&](const McfsInstance& inst) {
      return RunWma(inst, wma_options);
    }));
  }
  if (suite.with_uf_wma) {
    cells.push_back(wma_cell("UF WMA", [&](const McfsInstance& inst) {
      return RunUniformFirstWma(inst, wma_options);
    }));
  }
  if (suite.with_wma_ls) {
    cells.push_back([&] {
      return RunAlgorithm(
          "WMA+LS",
          [&](const McfsInstance& inst) {
            const McfsSolution wma = RunWma(inst, wma_options).solution;
            LocalSearchOptions ls_options;
            ls_options.matcher = suite.matcher;
            return ImproveByLocalSearch(inst, wma, ls_options).solution;
          },
          instance, verify);
    });
  }
  if (suite.with_exact) {
    cells.push_back([&, exact_options] {
      obs::TraceSpan span("run/Exact (B&B)");
      WallTimer timer;
      const ExactResult exact = SolveExact(instance, exact_options);
      AlgoOutcome outcome;
      outcome.algorithm = "Exact (B&B)";
      outcome.seconds = timer.Seconds();
      outcome.objective = exact.solution.objective;
      outcome.feasible = exact.solution.feasible;
      outcome.failed = exact.failed || !exact.optimal;
      if (verify && !outcome.failed) {
        outcome.verify_ran = true;
        outcome.verify_ok = VerifySolution(instance, exact.solution).ok;
      }
      return outcome;
    });
  }

  std::vector<AlgoOutcome> outcomes(cells.size());
  if (suite.metrics) {
    // Serial cells with a registry reset between them: every counter in
    // a cell's snapshot was incremented by that cell alone. The cells
    // run inline (not on the pool), so the WMA variants' nested
    // prefetch still fans out across suite.threads.
    for (size_t c = 0; c < cells.size(); ++c) {
      obs::ResetMetrics();
      outcomes[c] = cells[c]();
      outcomes[c].metrics = obs::SnapshotMetrics();
    }
  } else {
    ParallelFor(
        0, static_cast<int64_t>(cells.size()), /*grain=*/1,
        [&](int64_t c) { outcomes[c] = cells[c](); }, suite.threads);
  }
  return outcomes;
}

std::string FormatOutcome(const AlgoOutcome& outcome) {
  if (outcome.failed) return "fail (" + FmtSeconds(outcome.seconds) + ")";
  if (!outcome.feasible) return "infeasible";
  std::string text = FmtDouble(outcome.objective, 0) + " / " +
                     FmtSeconds(outcome.seconds);
  if (outcome.termination == Termination::kDeadline) text += " [deadline]";
  if (outcome.verify_ran && !outcome.verify_ok) text += " [VERIFY FAIL]";
  return text;
}

}  // namespace mcfs
