#include "mcfs/bench/run_report.h"

#include <fstream>
#include <sstream>

#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {

// Doubles go through obs::JsonNumber so inf/NaN (e.g. an infeasible or
// deadline-truncated cell's objective) serialize as null, never as the
// invalid-JSON tokens "inf"/"nan".
using obs::JsonNumber;

void AppendWmaStats(const WmaStats& stats, std::ostringstream& out) {
  out << "{\"iterations\": " << stats.iterations
      << ", \"dijkstra_runs\": " << stats.dijkstra_runs
      << ", \"edges_materialized\": " << stats.edges_materialized
      << ", \"theorem1_prunes\": " << stats.theorem1_prunes
      << ", \"rewirings\": " << stats.rewirings
      << ", \"label_correcting_runs\": " << stats.label_correcting_runs
      << ", \"matching_seconds\": " << JsonNumber(stats.matching_seconds)
      << ", \"cover_seconds\": " << JsonNumber(stats.cover_seconds)
      << ", \"prefetch_seconds\": " << JsonNumber(stats.prefetch_seconds)
      << ", \"final_assign_seconds\": "
      << JsonNumber(stats.final_assign_seconds)
      << ", \"total_seconds\": " << JsonNumber(stats.total_seconds)
      << ", \"per_iteration\": [";
  for (size_t i = 0; i < stats.per_iteration.size(); ++i) {
    const WmaIterationStats& iter = stats.per_iteration[i];
    if (i > 0) out << ", ";
    out << "{\"iteration\": " << iter.iteration
        << ", \"covered_customers\": " << iter.covered_customers
        << ", \"matching_seconds\": " << JsonNumber(iter.matching_seconds)
        << ", \"cover_seconds\": " << JsonNumber(iter.cover_seconds)
        << ", \"dijkstra_runs\": " << iter.dijkstra_runs
        << ", \"edges_materialized\": " << iter.edges_materialized << "}";
  }
  out << "]}";
}

}  // namespace

void RunReport::AddCell(const std::string& instance_label,
                        const AlgoOutcome& outcome) {
  cells_.push_back({instance_label, outcome});
}

void RunReport::AddSuite(const std::string& instance_label,
                         const std::vector<AlgoOutcome>& outcomes) {
  for (const AlgoOutcome& outcome : outcomes) {
    AddCell(instance_label, outcome);
  }
}

std::string RunReport::Json() const {
  std::ostringstream out;
  out << "{\"bench\": \"" << obs::JsonEscape(bench_name_)
      << "\", \"cells\": [";
  for (size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    const AlgoOutcome& outcome = cell.outcome;
    if (c > 0) out << ", ";
    out << "{\"instance\": \"" << obs::JsonEscape(cell.instance_label)
        << "\", \"algorithm\": \"" << obs::JsonEscape(outcome.algorithm)
        << "\", \"objective\": " << JsonNumber(outcome.objective)
        << ", \"seconds\": " << JsonNumber(outcome.seconds)
        << ", \"feasible\": " << (outcome.feasible ? "true" : "false")
        << ", \"failed\": " << (outcome.failed ? "true" : "false")
        << ", \"termination\": \"" << TerminationName(outcome.termination)
        << "\"";
    if (outcome.verify_ran) {
      out << ", \"verified\": " << (outcome.verify_ok ? "true" : "false");
    }
    if (outcome.has_wma_stats) {
      out << ", \"wma\": ";
      AppendWmaStats(outcome.wma_stats, out);
    }
    if (!outcome.metrics.empty()) {
      // Derived convenience value: share of consumed stream candidates
      // an earlier parallel prefetch had already buffered (0 when the
      // cell ran serially).
      const auto hits = outcome.metrics.counters.find(
          "exec/stream/prefetch_hits");
      const auto misses = outcome.metrics.counters.find(
          "exec/stream/prefetch_misses");
      if (hits != outcome.metrics.counters.end() &&
          misses != outcome.metrics.counters.end()) {
        const int64_t total = hits->second + misses->second;
        out << ", \"prefetch_hit_rate\": "
            << JsonNumber(total == 0 ? 0.0
                                     : static_cast<double>(hits->second) /
                                           static_cast<double>(total));
      }
      out << ", \"metrics\": " << obs::MetricsJson(outcome.metrics);
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

bool RunReport::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << Json() << "\n";
  return file.good();
}

}  // namespace mcfs
