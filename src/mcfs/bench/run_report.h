#ifndef MCFS_BENCH_RUN_REPORT_H_
#define MCFS_BENCH_RUN_REPORT_H_

#include <string>
#include <vector>

#include "mcfs/bench/runner.h"

namespace mcfs {

// Structured machine-readable record of one benchmark run: one entry
// per (instance, algorithm) cell with the headline numbers the paper's
// tables print (objective, runtime, status), the WMA phase/iteration
// breakdown, and the cell's counter snapshot from the obs registry.
// The bench harness writes it next to the human-readable table
// (--report-out=<path>, default run_report.json when metrics are on),
// so sweeps can be diffed, plotted, and asserted on in CI without
// scraping stdout.
class RunReport {
 public:
  explicit RunReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  // Records one suite cell under the given instance label (e.g.
  // "m=1000 l=100 k=10").
  void AddCell(const std::string& instance_label,
               const AlgoOutcome& outcome);

  // Convenience: records every outcome of one RunSuite call.
  void AddSuite(const std::string& instance_label,
                const std::vector<AlgoOutcome>& outcomes);

  int NumCells() const { return static_cast<int>(cells_.size()); }

  // The whole report as a JSON document:
  //   {"bench": "...", "cells": [{"instance": ..., "algorithm": ...,
  //    "objective": ..., "seconds": ..., "feasible": ..., "failed": ...,
  //    "wma": {...phase seconds, iterations, per_iteration...},
  //    "metrics": {"counters": {...}, "distributions": {...}}}, ...]}
  // The "wma" and "metrics" keys appear only when populated.
  std::string Json() const;

  // Writes Json() to `path`; returns false (and leaves no partial file
  // behind) when the file cannot be opened.
  bool WriteJson(const std::string& path) const;

 private:
  struct Cell {
    std::string instance_label;
    AlgoOutcome outcome;
  };

  std::string bench_name_;
  std::vector<Cell> cells_;
};

}  // namespace mcfs

#endif  // MCFS_BENCH_RUN_REPORT_H_
