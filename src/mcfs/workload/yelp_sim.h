#ifndef MCFS_WORKLOAD_YELP_SIM_H_
#define MCFS_WORKLOAD_YELP_SIM_H_

#include <cstdint>
#include <vector>

#include "mcfs/graph/graph.h"

namespace mcfs {

// Parameters of the coworking scenario generator (Sec. VII-F-1). This
// substitutes the Yelp check-in data of the paper: synthetic venues with
// occupancies stand in for restaurants with check-in counts, and the
// customer distribution is derived with the paper's own occupancy/area
// mixture formula (omega-weighted) over *network* Voronoi cells.
struct YelpSimOptions {
  int num_venues = 400;     // candidate facilities (4089 in the paper's LV)
  int num_customers = 500;  // coworkers to place (1000 in the paper's LV)
  int num_hotspots = 3;     // venue concentration centers ("the strip")
  double omega = 0.5;       // paper's default mixing weight
  uint64_t seed = 42;
};

struct CoworkingScenario {
  std::vector<NodeId> venues;      // candidate facility nodes (distinct)
  std::vector<int> capacities;     // operating hours per venue
  std::vector<double> occupancy;   // per venue, arbitrary positive scale
  std::vector<NodeId> customers;   // derived customer locations
};

// Generates venues concentrated around hotspots, assigns each an
// occupancy (higher near hotspots) and an operating-hours capacity, and
// places customers according to the occupancy-driven per-node weights:
// within venue i's network Voronoi cell, a node's weight is
//   O_i * (omega * O_j / sum_j O_j + (1 - omega) / |cell_i|),
// where O_j is the occupancy of the neighboring cell the node borders
// (interior nodes use the area term only) — the road-network adaptation
// of the paper's Voronoi/triangle construction.
CoworkingScenario GenerateCoworkingScenario(const Graph& city,
                                            const YelpSimOptions& options);

}  // namespace mcfs

#endif  // MCFS_WORKLOAD_YELP_SIM_H_
