#include "mcfs/workload/yelp_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mcfs/common/check.h"
#include "mcfs/common/random.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/workload/workload.h"

namespace mcfs {

CoworkingScenario GenerateCoworkingScenario(const Graph& city,
                                            const YelpSimOptions& options) {
  MCFS_CHECK(city.has_coordinates());
  MCFS_CHECK_GE(city.NumNodes(), options.num_venues);
  Rng rng(options.seed);
  CoworkingScenario scenario;

  // Hotspot centers where venues (and occupancies) concentrate.
  std::vector<Point> hotspots;
  for (int h = 0; h < options.num_hotspots; ++h) {
    const NodeId v =
        static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1));
    hotspots.push_back(city.coordinate(v));
  }
  // Characteristic hotspot radius: a fraction of the city extent.
  double min_x = kInfDistance, max_x = -kInfDistance;
  double min_y = kInfDistance, max_y = -kInfDistance;
  for (const Point& p : city.coordinates()) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double radius =
      0.15 * std::max({max_x - min_x, max_y - min_y, 1.0});

  auto hotspot_affinity = [&](NodeId v) {
    const Point& p = city.coordinate(v);
    double best = kInfDistance;
    for (const Point& h : hotspots) {
      best = std::min(best, EuclideanDistance(p, h));
    }
    return std::exp(-(best * best) / (2.0 * radius * radius));
  };

  // Venues: weighted sample favoring hotspot proximity.
  std::vector<double> venue_weights(city.NumNodes());
  for (NodeId v = 0; v < city.NumNodes(); ++v) {
    venue_weights[v] = 0.05 + hotspot_affinity(v);
  }
  scenario.venues =
      SampleDistinctNodesWeighted(venue_weights, options.num_venues, rng);

  // Occupancies: lognormal-ish scale boosted near hotspots.
  scenario.occupancy.resize(options.num_venues);
  for (int i = 0; i < options.num_venues; ++i) {
    const double base = std::exp(rng.Gaussian(0.0, 0.6));
    scenario.occupancy[i] =
        base * (0.3 + 2.0 * hotspot_affinity(scenario.venues[i]));
  }
  scenario.capacities = OperatingHoursCapacities(options.num_venues, rng);

  // Network Voronoi cells of the venues.
  const MultiSourceResult voronoi = MultiSourceDijkstra(city, scenario.venues);
  std::vector<int64_t> cell_size(options.num_venues, 0);
  for (NodeId v = 0; v < city.NumNodes(); ++v) {
    if (voronoi.nearest_index[v] >= 0) cell_size[voronoi.nearest_index[v]]++;
  }
  const double occupancy_total = std::accumulate(
      scenario.occupancy.begin(), scenario.occupancy.end(), 0.0);

  // Per-node customer weights following the paper's mixture: the
  // omega-term pulls customers toward cell boundaries shared with
  // high-occupancy neighbors, the (1-omega)-term spreads them evenly
  // over the cell.
  std::vector<double> node_weights(city.NumNodes(), 0.0);
  for (NodeId v = 0; v < city.NumNodes(); ++v) {
    const int cell = voronoi.nearest_index[v];
    if (cell < 0) continue;  // unreachable from every venue
    // Neighboring cell (if this node borders one).
    double neighbor_occupancy = 0.0;
    for (const AdjEntry& e : city.Neighbors(v)) {
      const int other = voronoi.nearest_index[e.to];
      if (other >= 0 && other != cell) {
        neighbor_occupancy =
            std::max(neighbor_occupancy, scenario.occupancy[other]);
      }
    }
    const double boundary_term =
        occupancy_total > 0.0 ? neighbor_occupancy / occupancy_total : 0.0;
    const double area_term =
        cell_size[cell] > 0 ? 1.0 / static_cast<double>(cell_size[cell]) : 0.0;
    node_weights[v] = scenario.occupancy[cell] *
                      (options.omega * boundary_term +
                       (1.0 - options.omega) * area_term);
  }

  // Customers sampled with replacement from the weight field (several
  // coworkers can share a street corner).
  std::vector<double> cumulative(node_weights.size());
  std::partial_sum(node_weights.begin(), node_weights.end(),
                   cumulative.begin());
  const double total_weight = cumulative.back();
  MCFS_CHECK_GT(total_weight, 0.0);
  scenario.customers.reserve(options.num_customers);
  for (int i = 0; i < options.num_customers; ++i) {
    const double target = rng.Uniform(0.0, total_weight);
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), target);
    scenario.customers.push_back(
        static_cast<NodeId>(it - cumulative.begin()));
  }
  return scenario;
}

}  // namespace mcfs
