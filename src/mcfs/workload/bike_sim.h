#ifndef MCFS_WORKLOAD_BIKE_SIM_H_
#define MCFS_WORKLOAD_BIKE_SIM_H_

#include <cstdint>
#include <vector>

#include "mcfs/graph/graph.h"

namespace mcfs {

// Parameters of the dockless-bike scenario generator (Sec. VII-F-2).
// This substitutes the Copenhagen open-data feeds: synthetic commuting
// flows stand in for the bike traffic counters, and the paper's own
// pipeline — per-hour bike flow on streets, node divergence (bikes
// parked per hour), variance of the divergence across hours, normalized
// into a docking-demand distribution — is reproduced on top of them.
struct BikeSimOptions {
  int num_stations = 600;  // candidate docking stations (6000 in the paper)
  int num_bikes = 500;     // scattered bikes = customers (1000 in the paper)
  int num_commuter_flows = 200;  // simulated home->work origin/destination pairs
  int hours = 24;
  uint64_t seed = 42;
};

struct BikeScenario {
  std::vector<NodeId> stations;      // candidate facility nodes (distinct)
  std::vector<int> capacities;       // docks per station
  std::vector<NodeId> bikes;         // customer locations
  std::vector<double> demand;        // normalized per-node docking demand
};

// Simulates commuter traffic between home and work districts across the
// day, accumulates per-node divergence per hour along shortest paths,
// takes the variance across hours as docking demand, and places bikes
// accordingly. Stations are sampled uniformly with skewed capacities.
BikeScenario GenerateBikeScenario(const Graph& city,
                                  const BikeSimOptions& options);

}  // namespace mcfs

#endif  // MCFS_WORKLOAD_BIKE_SIM_H_
