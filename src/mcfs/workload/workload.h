#ifndef MCFS_WORKLOAD_WORKLOAD_H_
#define MCFS_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "mcfs/common/random.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// --- capacity generators -------------------------------------------------

// All facilities share capacity c (the paper's uniform experiments).
std::vector<int> UniformCapacities(int l, int c);

// Independent uniform capacities in [lo, hi] (Fig. 6d uses [1, 10]).
std::vector<int> RandomCapacities(int l, int lo, int hi, Rng& rng);

// Daily operating hours as capacity proxy (Sec. VII-F: venues average 9
// opening hours); clamped integer Gaussian around 9 in [4, 14].
std::vector<int> OperatingHoursCapacities(int l, Rng& rng);

// --- customer / facility placement ---------------------------------------

// m node ids sampled uniformly with replacement (customers may share a
// node).
std::vector<NodeId> SampleNodesWithReplacement(const Graph& graph, int m,
                                               Rng& rng);

// m distinct node ids sampled uniformly (e.g., "customers at 10% of all
// nodes", facility sites).
std::vector<NodeId> SampleDistinctNodes(const Graph& graph, int m, Rng& rng);

// m distinct nodes sampled from an explicit per-node weight vector
// (weights need not be normalized; nodes with zero weight are excluded).
std::vector<NodeId> SampleDistinctNodesWeighted(
    const std::vector<double>& weights, int m, Rng& rng);

// Customers placed proportionally to district populations (the paper's
// Copenhagen coworking setup, Sec. VII-F-1b): `num_districts` Gaussian
// population centers with random weights; every node gets a population
// density and m customers are drawn from it (with replacement).
// Requires graph coordinates.
std::vector<NodeId> PlaceCustomersByDistricts(const Graph& graph, int m,
                                              int num_districts, Rng& rng);

}  // namespace mcfs

#endif  // MCFS_WORKLOAD_WORKLOAD_H_
