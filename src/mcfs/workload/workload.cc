#include "mcfs/workload/workload.h"

#include <algorithm>
#include <cmath>

#include "mcfs/common/check.h"

namespace mcfs {

std::vector<int> UniformCapacities(int l, int c) {
  MCFS_CHECK_GE(c, 0);
  return std::vector<int>(l, c);
}

std::vector<int> RandomCapacities(int l, int lo, int hi, Rng& rng) {
  std::vector<int> capacities(l);
  for (int& c : capacities) {
    c = static_cast<int>(rng.UniformInt(lo, hi));
  }
  return capacities;
}

std::vector<int> OperatingHoursCapacities(int l, Rng& rng) {
  std::vector<int> capacities(l);
  for (int& c : capacities) {
    c = std::clamp(static_cast<int>(std::lround(rng.Gaussian(9.0, 2.5))), 4,
                   14);
  }
  return capacities;
}

std::vector<NodeId> SampleNodesWithReplacement(const Graph& graph, int m,
                                               Rng& rng) {
  std::vector<NodeId> nodes(m);
  for (NodeId& v : nodes) {
    v = static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1));
  }
  return nodes;
}

std::vector<NodeId> SampleDistinctNodes(const Graph& graph, int m, Rng& rng) {
  const std::vector<int> sample =
      rng.SampleWithoutReplacement(graph.NumNodes(), m);
  return std::vector<NodeId>(sample.begin(), sample.end());
}

std::vector<NodeId> SampleDistinctNodesWeighted(
    const std::vector<double>& weights, int m, Rng& rng) {
  // Weighted sampling without replacement via exponential sort keys
  // (Efraimidis–Spirakis): key = -log(u) / w, keep the m smallest.
  std::vector<std::pair<double, NodeId>> keyed;
  keyed.reserve(weights.size());
  for (size_t v = 0; v < weights.size(); ++v) {
    if (weights[v] <= 0.0) continue;
    double u = 0.0;
    while (u <= 1e-300) u = rng.NextDouble();
    keyed.push_back({-std::log(u) / weights[v], static_cast<NodeId>(v)});
  }
  MCFS_CHECK_GE(keyed.size(), static_cast<size_t>(m))
      << "not enough positively weighted nodes to sample from";
  std::partial_sort(keyed.begin(), keyed.begin() + m, keyed.end());
  std::vector<NodeId> nodes(m);
  for (int i = 0; i < m; ++i) nodes[i] = keyed[i].second;
  return nodes;
}

std::vector<NodeId> PlaceCustomersByDistricts(const Graph& graph, int m,
                                              int num_districts, Rng& rng) {
  MCFS_CHECK(graph.has_coordinates());
  MCFS_CHECK_GT(num_districts, 0);
  // District centers with lognormal-ish population weights and radii
  // proportional to the city extent.
  double min_x = graph.coordinate(0).x;
  double min_y = graph.coordinate(0).y;
  double max_x = min_x;
  double max_y = min_y;
  for (const Point& p : graph.coordinates()) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double extent = std::max({max_x - min_x, max_y - min_y, 1e-9});
  struct District {
    Point center;
    double weight;
    double radius;
  };
  std::vector<District> districts(num_districts);
  for (District& d : districts) {
    d.center = {rng.Uniform(min_x, max_x), rng.Uniform(min_y, max_y)};
    d.weight = std::exp(rng.Gaussian(0.0, 0.7));
    d.radius = extent * rng.Uniform(0.06, 0.18);
  }
  // Per-node density: sum of district kernels plus a small floor.
  std::vector<double> cumulative(graph.NumNodes());
  double run = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const Point& p = graph.coordinate(v);
    double density = 0.02;
    for (const District& d : districts) {
      const double dist = EuclideanDistance(p, d.center);
      density +=
          d.weight * std::exp(-(dist * dist) / (2.0 * d.radius * d.radius));
    }
    run += density;
    cumulative[v] = run;
  }
  std::vector<NodeId> customers(m);
  for (NodeId& c : customers) {
    const double target = rng.Uniform(0.0, run);
    c = static_cast<NodeId>(
        std::lower_bound(cumulative.begin(), cumulative.end(), target) -
        cumulative.begin());
    if (c >= graph.NumNodes()) c = graph.NumNodes() - 1;
  }
  return customers;
}

}  // namespace mcfs
