#include "mcfs/workload/bike_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "mcfs/common/check.h"
#include "mcfs/common/random.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/workload/workload.h"

namespace mcfs {

namespace {

// Shortest path between two nodes as a node sequence (empty when
// unreachable). One Dijkstra bounded by reaching the target.
std::vector<NodeId> ShortestPathNodes(const Graph& graph, NodeId from,
                                      NodeId to) {
  std::vector<double> dist(graph.NumNodes(), kInfDistance);
  std::vector<NodeId> parent(graph.NumNodes(), kInvalidNode);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  dist[from] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    if (v == to) break;
    for (const AdjEntry& e : graph.Neighbors(v)) {
      if (d + e.weight < dist[e.to]) {
        dist[e.to] = d + e.weight;
        parent[e.to] = v;
        heap.push({dist[e.to], e.to});
      }
    }
  }
  if (dist[to] == kInfDistance) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != kInvalidNode; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

// Hourly intensity of commuting: a morning peak toward work and an
// evening peak back home (sign encodes direction).
double CommuteIntensity(int hour) {
  const double morning = std::exp(-0.5 * std::pow((hour - 8.5) / 1.5, 2));
  const double evening = std::exp(-0.5 * std::pow((hour - 17.0) / 1.8, 2));
  return morning - evening;
}

}  // namespace

BikeScenario GenerateBikeScenario(const Graph& city,
                                  const BikeSimOptions& options) {
  MCFS_CHECK_GE(city.NumNodes(), options.num_stations);
  Rng rng(options.seed);
  BikeScenario scenario;

  // Home and work district anchors.
  const int num_districts = 4;
  std::vector<NodeId> homes;
  std::vector<NodeId> works;
  for (int d = 0; d < num_districts; ++d) {
    homes.push_back(
        static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1)));
    works.push_back(
        static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1)));
  }

  // Commuter origin/destination flows routed along shortest paths; the
  // endpoints act as sources/sinks of bikes (divergence), interior path
  // nodes are flow-through (zero net divergence).
  std::vector<std::vector<double>> divergence(
      options.hours, std::vector<double>(city.NumNodes(), 0.0));
  for (int f = 0; f < options.num_commuter_flows; ++f) {
    // Jittered endpoints near a random home/work anchor: walk a few
    // random hops from the anchor.
    auto jitter = [&](NodeId anchor) {
      NodeId v = anchor;
      const int hops = static_cast<int>(rng.UniformInt(0, 12));
      for (int h = 0; h < hops; ++h) {
        const auto neighbors = city.Neighbors(v);
        if (neighbors.empty()) break;
        v = neighbors[rng.UniformInt(0, neighbors.size() - 1)].to;
      }
      return v;
    };
    const NodeId home = jitter(homes[rng.UniformInt(0, num_districts - 1)]);
    const NodeId work = jitter(works[rng.UniformInt(0, num_districts - 1)]);
    const std::vector<NodeId> path = ShortestPathNodes(city, home, work);
    if (path.empty()) continue;
    const double volume = rng.Uniform(0.5, 2.0);
    for (int hour = 0; hour < options.hours; ++hour) {
      const double g = volume * CommuteIntensity(hour) +
                       volume * 0.1 * rng.Gaussian();
      // Positive g: bikes leave home (negative divergence) and arrive
      // at work (positive divergence); negative g is the reverse leg.
      divergence[hour][path.front()] -= g;
      divergence[hour][path.back()] += g;
    }
  }

  // Docking demand = variance of the divergence across hours, per node.
  scenario.demand.assign(city.NumNodes(), 0.0);
  double total = 0.0;
  for (NodeId v = 0; v < city.NumNodes(); ++v) {
    double mean = 0.0;
    for (int hour = 0; hour < options.hours; ++hour) {
      mean += divergence[hour][v];
    }
    mean /= options.hours;
    double var = 0.0;
    for (int hour = 0; hour < options.hours; ++hour) {
      const double d = divergence[hour][v] - mean;
      var += d * d;
    }
    scenario.demand[v] = var / options.hours;
    total += scenario.demand[v];
  }
  MCFS_CHECK_GT(total, 0.0);
  for (double& d : scenario.demand) d /= total;

  // Bikes: sampled with replacement from the demand distribution, with
  // a small uniform smoothing so bikes also appear off the main flows.
  std::vector<double> cumulative(city.NumNodes());
  {
    const double smoothing = 0.1 / city.NumNodes();
    double run = 0.0;
    for (NodeId v = 0; v < city.NumNodes(); ++v) {
      run += 0.9 * scenario.demand[v] + smoothing;
      cumulative[v] = run;
    }
  }
  for (int b = 0; b < options.num_bikes; ++b) {
    const double target = rng.Uniform(0.0, cumulative.back());
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), target);
    scenario.bikes.push_back(static_cast<NodeId>(it - cumulative.begin()));
  }

  // Stations: uniform distinct sites with skewed dock counts.
  scenario.stations = SampleDistinctNodes(city, options.num_stations, rng);
  scenario.capacities.resize(options.num_stations);
  for (int s = 0; s < options.num_stations; ++s) {
    scenario.capacities[s] =
        2 + static_cast<int>(std::floor(std::exp(rng.Uniform(0.0, 3.0))));
  }
  return scenario;
}

}  // namespace mcfs
