#ifndef MCFS_CORE_WMA_H_
#define MCFS_CORE_WMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mcfs/common/deadline.h"
#include "mcfs/common/status.h"
#include "mcfs/core/instance.h"
#include "mcfs/flow/matcher.h"

namespace mcfs {

// Cross-epoch warm-start state for the exact WMA path (DESIGN.md
// §4.10). Node-keyed, so it stays meaningful after catalog edits; the
// consuming run maps nodes back into its own index space and drops
// whatever a delta invalidated.
struct WmaWarmSeed {
  // Full-catalog matcher snapshot from the demand-growth loop. Only its
  // *stream prefixes* are reused: the discovery sequence is a pure
  // function of (graph, source, candidate membership), so seeding them
  // replays the trajectory bit-identically to a cold run minus the
  // network-Dijkstra cost. Its matches/potentials are never adopted —
  // that could steer the loop onto a different selection than cold.
  WarmSeed trajectory;
  // Final-assignment matcher snapshot over the previously selected
  // facilities. Resumed wholesale (edges, matches, potentials) when the
  // new run selects the same facility node set.
  WarmSeed final_assign;
};

// Exact equality (bitwise on doubles) — see flow/matcher.h; used to
// hold checkpoint round trips to byte identity.
inline bool operator==(const WmaWarmSeed& a, const WmaWarmSeed& b) {
  return a.trajectory == b.trajectory && a.final_assign == b.final_assign;
}

// Options for the Wide Matching Algorithm.
struct WmaOptions {
  // Use the greedy "WMA Naive" matching instead of the exact
  // incremental bipartite matching (the paper's scalable baseline,
  // Sec. VII-A): each iteration assigns customers to their nearest
  // available facilities in a random order, without rewiring.
  bool naive = false;
  // Seed for the naive variant's random customer orders.
  uint64_t seed = 42;
  // Break equal-coverage ties in CheckCover toward the facility whose
  // matched customers are nearest (improves the objective noticeably on
  // sparse instances; see the tie-break ablation bench). When false,
  // ties fall back to the paper's recency-only rule.
  bool cost_tie_break = true;
  // Record per-iteration statistics (Fig. 12b).
  bool collect_iteration_stats = false;
  // Safety cap on main-loop iterations; 0 derives the paper's m*l bound.
  int max_iterations = 0;
  // Threads for the batched nearest-facility prefetch that runs before
  // each matching phase (and before the final assignment): 0 resolves
  // via MCFS_THREADS / hardware_concurrency, 1 disables prefetch (fully
  // serial). Results are bit-identical for every value — parallelism
  // only moves when distances are computed, never which entry the
  // matcher consumes next (see DESIGN.md "Parallel execution layer").
  int threads = 0;
  // Turn on the process-wide obs MetricsRegistry for this run (same as
  // exporting MCFS_METRICS=1): hot-path counters and phase-time
  // distributions accumulate under wma/, matcher/, stream/, dijkstra/,
  // cover/, ch/ and exec/* names. Off by default — the guarded macros
  // then cost one relaxed atomic load per site (see DESIGN.md
  // "Observability").
  bool metrics = false;
  // Wall-clock budget in milliseconds; 0 = unlimited. On expiry the
  // demand-growth loop stops at the next checkpoint (iteration top,
  // per-customer augmentation boundary, every 64 CheckCover scans) and
  // the run degrades to anytime mode: the wrap-up provisions and the
  // final assignment still execute, so the returned solution is the
  // best-so-far feasible one, marked Termination::kDeadline. Without a
  // deadline the solver's behavior is bit-identical to before.
  int64_t deadline_ms = 0;
  // Direct deadline object; used when deadline_ms == 0. Lets callers
  // share one budget across phases, and Deadline::AfterPolls(n) gives
  // the fault-injection tests a deterministic mid-solve expiry point.
  Deadline deadline = Deadline::Infinite();
  // Optional external cancellation, polled at the same checkpoints as
  // the deadline and reported as Termination::kDeadline.
  const CancelToken* cancel = nullptr;
  // Matching engine for the *final assignment* (the demand-growth loop
  // always runs the SSPA IncrementalMatcher — its per-iteration deltas
  // have no cost-scaling counterpart). kSspa keeps the seed-identical
  // path; kCostScaling batch-solves the closing assignment; kAuto
  // resolves by shape (flow/matcher_backend.h). Cost scaling has no
  // warm resume: a warm seed on offer is refused with a typed
  // kUnsupported status (counted in stats.warm_backend_refusals) and
  // the final assignment runs cold; with export_warm_seed only the
  // trajectory half of the seed is exported (final_assign stays empty,
  // so the next epoch re-matches from seeded streams). Both engines
  // reach the same objective on every feasible instance.
  MatcherBackendKind matcher = MatcherBackendKind::kSspa;

  // --- Warm-started re-solve (DESIGN.md §4.10) ---
  // Previous epoch's exported state; ignored by the naive variant.
  std::shared_ptr<const WmaWarmSeed> warm_seed;
  // Per-seed-customer invalidation masks, aligned with
  // warm_seed->trajectory.customers (the final_assign customers are the
  // same list). Empty mask = nothing invalidated.
  //   warm_stream_invalid[s] != 0: drop seed customer s entirely — its
  //     component's candidate set changed, so even its discovery prefix
  //     may be stale (a new facility can appear mid-prefix).
  //   warm_match_invalid[s] != 0: reuse streams and edges but drop the
  //     customer's matched pairs — the repair for deltas that relax the
  //     problem without touching distances (e.g. a capacity increase).
  std::vector<uint8_t> warm_stream_invalid;
  std::vector<uint8_t> warm_match_invalid;
  // Export the end-of-run matcher state into WmaResult::warm_seed (only
  // the exact variant exports; naive runs leave it null).
  bool export_warm_seed = false;

  // --- Request-scoped attribution (DESIGN.md §4.11) ---
  // Trace context id for this solve. When nonzero, RunWma installs it
  // as the calling thread's obs::ScopedTraceContext for the whole run,
  // so every span, flight-recorder event and histogram exemplar emitted
  // by the solve (including inside ParallelFor workers) carries this
  // id. 0 = inherit whatever context the caller already installed.
  // Purely observational: has no effect on the computed solution.
  uint64_t trace_id = 0;
};

// Per-iteration instrumentation (covered customers after CheckCover,
// matching time, set-cover time) — the quantities of Fig. 12b.
struct WmaIterationStats {
  int iteration = 0;
  int covered_customers = 0;
  double matching_seconds = 0.0;
  double cover_seconds = 0.0;
  // Work done within this iteration (deltas of the matcher's cumulative
  // counts; zero for the naive variant).
  int64_t dijkstra_runs = 0;
  int64_t edges_materialized = 0;
};

struct WmaStats {
  int iterations = 0;
  int64_t dijkstra_runs = 0;         // on G_b (exact variant only)
  int64_t edges_materialized = 0;    // bipartite edges added on demand
  // Exact-variant matcher detail (zero for naive): augmentations
  // accepted early by the Theorem-1 threshold, matched edges flipped
  // back while augmenting, and searches that ran in label-correcting
  // mode because of temporarily negative reduced costs.
  int64_t theorem1_prunes = 0;
  int64_t rewirings = 0;
  int64_t label_correcting_runs = 0;
  double matching_seconds = 0.0;
  double cover_seconds = 0.0;
  // Subset of matching_seconds spent in the batched parallel stream
  // prefetch (zero when running with one thread).
  double prefetch_seconds = 0.0;
  // The single assignment of every customer to the selected facilities
  // that closes the algorithm.
  double final_assign_seconds = 0.0;
  double total_seconds = 0.0;
  // Mirrors solution.termination (kDeadline when the demand-growth loop
  // was cut short; the solution is still the best-so-far feasible one).
  Termination termination = Termination::kConverged;
  std::vector<WmaIterationStats> per_iteration;
  // --- Warm-start effectiveness (all zero on cold runs) ---
  // Customers whose previous-epoch final assignment was adopted
  // unchanged vs. re-enqueued through FindPair after the resume.
  int64_t warm_customers_reused = 0;
  int64_t warm_customers_repaired = 0;
  // Discovery-prefix entries handed to the trajectory replay.
  int64_t warm_stream_entries = 0;
  // The final assignment resumed the previous epoch's matching (same
  // selected facility node set); false = it re-matched from seeded
  // streams only.
  bool warm_final_resumed = false;
  // Engine that actually ran the final assignment ("sspa" or
  // "cost_scaling", after kAuto resolution).
  std::string matcher_backend;
  // Warm seeds offered to a backend without warm-resume support
  // (cost scaling): each refusal is typed kUnsupported and the final
  // assignment ran cold instead.
  int64_t warm_backend_refusals = 0;
};

struct WmaResult {
  McfsSolution solution;
  WmaStats stats;
  // End-of-run state for the next epoch; null unless
  // WmaOptions::export_warm_seed was set on the exact variant.
  std::shared_ptr<WmaWarmSeed> warm_seed;
};

// Runs the Wide Matching Algorithm (Algorithm 1) on the instance:
// iteratively grows customer demands, matches customers to candidate
// facilities (optimal incremental matching, or greedy when
// options.naive), selects k facilities by the CheckCover max-coverage
// heuristic, applies the SelectGreedy / CoverComponents provisions, and
// finishes with a single optimal (or greedy, when naive) assignment of
// every customer to the selected facilities.
WmaResult RunWma(const McfsInstance& instance, const WmaOptions& options = {});

// The "Uniform First" (UF) variant of Sec. VII-F: select facilities as
// if every facility had the average capacity, then assign customers
// under the true nonuniform capacities in one bipartite matching step
// (repairing per-component feasibility first if needed).
WmaResult RunUniformFirstWma(const McfsInstance& instance,
                             const WmaOptions& options = {});

// Checked entry point: preflight-validates the instance (core/validate)
// and returns kInvalidInput / kInfeasible with a diagnosis instead of
// tripping RunWma's MCFS_CHECKs or grinding on a hopeless instance.
// Infeasible instances are rejected here; callers that want WMA's
// best-effort partial cover on them should call RunWma directly.
StatusOr<WmaResult> SolveWma(const McfsInstance& instance,
                             const WmaOptions& options = {});

}  // namespace mcfs

#endif  // MCFS_CORE_WMA_H_
