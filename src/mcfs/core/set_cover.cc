#include "mcfs/core/set_cover.h"

#include <queue>

#include "mcfs/common/check.h"
#include "mcfs/obs/flight_recorder.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {

struct HeapEntry {
  int gain;
  double cost;  // 0 when the cost-aware tie-break is off
  int64_t last_selected;
  int facility;
};

// Max-gain first; among equal gains the cheaper matched cost first (if
// provided), then the least recently selected.
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (a.cost != b.cost) return a.cost > b.cost;
    if (a.last_selected != b.last_selected) {
      return a.last_selected > b.last_selected;
    }
    return a.facility > b.facility;
  }
};

}  // namespace

CoverResult CheckCover(const CoverInput& input,
                       std::vector<int64_t>& last_selected,
                       int64_t iteration) {
  MCFS_CHECK(input.customers_of_facility != nullptr);
  MCFS_CHECK(input.demand != nullptr);
  const auto& sigma = *input.customers_of_facility;
  const int l = static_cast<int>(sigma.size());
  MCFS_CHECK_EQ(last_selected.size(), sigma.size());

  CoverResult result;
  result.covered.assign(input.num_customers, 0);

  auto facility_cost = [&](int j) {
    return input.matched_cost == nullptr ? 0.0 : (*input.matched_cost)[j];
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (int j = 0; j < l; ++j) {
    if (!sigma[j].empty()) {
      heap.push({static_cast<int>(sigma[j].size()), facility_cost(j),
                 last_selected[j], j});
    }
  }

  int64_t candidates_scanned = 0;
  int64_t stale_reinserts = 0;
  int64_t recency_tiebreaks = 0;
  while (static_cast<int>(result.selected.size()) < input.k &&
         !heap.empty()) {
    if (input.deadline != nullptr && (candidates_scanned & 63) == 0 &&
        input.deadline->Expired()) {
      result.deadline_expired = true;
      break;
    }
    const HeapEntry top = heap.top();
    heap.pop();
    ++candidates_scanned;
    int gain = 0;
    for (const int customer : sigma[top.facility]) {
      if (!result.covered[customer]) ++gain;
    }
    if (gain != top.gain) {
      // Stale entry: re-insert with the refreshed marginal gain
      // (Algorithm 3, lines 10-12). Gains only shrink, so lazy
      // re-evaluation is sound.
      if (gain > 0) {
        heap.push({gain, top.cost, top.last_selected, top.facility});
        ++stale_reinserts;
      }
      continue;
    }
    if (gain == 0) break;  // nothing more to cover
    // Did the recency rule (least-recently-selected wins) decide this
    // pick? True when the next-best entry matches on both gain and the
    // cost tie-break — the diversification the paper leans on to rotate
    // the selection between iterations.
    if (!heap.empty() && heap.top().gain == top.gain &&
        heap.top().cost == top.cost) {
      ++recency_tiebreaks;
    }
    result.selected.push_back(top.facility);
    for (const int customer : sigma[top.facility]) {
      result.covered[customer] = 1;
    }
  }
  MCFS_COUNT("cover/candidates_scanned", candidates_scanned);
  MCFS_COUNT("cover/stale_reinserts", stale_reinserts);
  MCFS_COUNT("cover/recency_tiebreaks", recency_tiebreaks);
  MCFS_COUNT("cover/selections",
             static_cast<int64_t>(result.selected.size()));
  MCFS_RECORD("cover/check_cover",
              static_cast<int64_t>(result.selected.size()),
              candidates_scanned);

  for (const int j : result.selected) last_selected[j] = iteration;

  // Exploration vector (Sec. IV-F): grow demand only for customers the
  // selection left uncovered and that can still explore new facilities.
  result.delta_demand.assign(input.num_customers, 0);
  result.all_delta_zero = true;
  result.fully_covered = true;
  for (int i = 0; i < input.num_customers; ++i) {
    if (result.covered[i]) continue;
    result.fully_covered = false;
    const bool can_explore =
        (*input.demand)[i] < input.demand_cap &&
        (input.saturated == nullptr || !(*input.saturated)[i]);
    if (can_explore) {
      result.delta_demand[i] = 1;
      result.all_delta_zero = false;
    }
  }
  return result;
}

}  // namespace mcfs
