#include "mcfs/core/local_search.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "mcfs/common/random.h"
#include "mcfs/core/repair.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/facility_stream.h"

namespace mcfs {

namespace {

// A candidate swap: replace selected facility `out` with candidate `in`
// (in == -1 means "no-op": only used when filling below k).
struct Move {
  int out;
  int in;
};

// Nearest unselected candidate facilities to `node`, up to `limit`.
std::vector<int> NearestUnselected(const McfsInstance& instance,
                                   const std::vector<int>& facility_of_node,
                                   const std::vector<uint8_t>& is_selected,
                                   NodeId node, int limit) {
  std::vector<int> found;
  IncrementalDijkstra dijkstra(instance.graph, node);
  while (static_cast<int>(found.size()) < limit) {
    const std::optional<SettledNode> settled = dijkstra.NextSettled();
    if (!settled.has_value()) break;
    const int j = facility_of_node[settled->node];
    if (j >= 0 && !is_selected[j]) found.push_back(j);
  }
  return found;
}

}  // namespace

LocalSearchResult ImproveByLocalSearch(const McfsInstance& instance,
                                       const McfsSolution& start,
                                       const LocalSearchOptions& options) {
  LocalSearchResult result;
  std::vector<int> selected = start.selected;
  if (!start.feasible) {
    if (static_cast<int>(selected.size()) < instance.k) {
      SelectGreedy(instance, selected);
    }
    CoverComponents(instance, selected);
  }
  McfsSolution best =
      AssignOptimally(instance, selected, /*threads=*/1, options.matcher);
  if (!best.feasible && start.feasible) {
    best = start;  // repair hurt; keep the original
    selected = start.selected;
  }

  std::vector<int> facility_of_node(instance.graph->NumNodes(), -1);
  for (int j = 0; j < instance.l(); ++j) {
    facility_of_node[instance.facility_nodes[j]] = j;
  }
  Rng rng(options.seed);

  for (int round = 0; round < options.max_rounds && !selected.empty();
       ++round) {
    result.rounds = round + 1;
    std::vector<uint8_t> is_selected(instance.l(), 0);
    for (const int j : selected) is_selected[j] = 1;

    // Load and served-cost per selected facility.
    std::vector<int> load(instance.l(), 0);
    std::vector<double> served_cost(instance.l(), 0.0);
    std::vector<std::pair<double, int>> worst_customers;  // (dist, i)
    for (int i = 0; i < instance.m(); ++i) {
      const int j = best.assignment[i];
      if (j < 0) continue;
      load[j]++;
      served_cost[j] += best.distances[i];
      worst_customers.push_back({best.distances[i], i});
    }
    std::sort(worst_customers.begin(), worst_customers.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    // Facilities to consider closing: lightly used or expensive ones.
    std::vector<std::pair<double, int>> close_candidates;  // (score, j)
    for (const int j : selected) {
      const double score =
          load[j] == 0 ? -1.0 : served_cost[j] / load[j] - load[j];
      close_candidates.push_back({score, j});
    }
    std::sort(close_candidates.begin(), close_candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    // Build the move set: open a facility near a badly served customer,
    // close one of the close-candidates.
    std::vector<Move> moves;
    const int probes = std::max(1, options.moves_per_round / 4);
    for (int w = 0; w < probes &&
                    w < static_cast<int>(worst_customers.size());
         ++w) {
      const NodeId customer_node =
          instance.customers[worst_customers[w].second];
      for (const int in : NearestUnselected(instance, facility_of_node,
                                            is_selected, customer_node, 2)) {
        for (int c = 0; c < 2 &&
                        c < static_cast<int>(close_candidates.size());
             ++c) {
          moves.push_back({close_candidates[c].second, in});
        }
        // Also try closing a random selected facility (diversification).
        moves.push_back(
            {selected[rng.UniformInt(0, selected.size() - 1)], in});
      }
      if (static_cast<int>(moves.size()) >= options.moves_per_round) break;
    }

    // Deduplicate and cap.
    std::set<std::pair<int, int>> seen;
    std::vector<Move> unique_moves;
    for (const Move& move : moves) {
      if (move.out == move.in) continue;
      if (seen.insert({move.out, move.in}).second) {
        unique_moves.push_back(move);
      }
      if (static_cast<int>(unique_moves.size()) >= options.moves_per_round) {
        break;
      }
    }

    // Steepest descent over the sampled moves.
    double best_gain = 0.0;
    McfsSolution best_move_solution;
    std::vector<int> best_move_selected;
    for (const Move& move : unique_moves) {
      std::vector<int> trial = selected;
      std::replace(trial.begin(), trial.end(), move.out, move.in);
      ++result.moves_evaluated;
      const McfsSolution candidate =
          AssignOptimally(instance, trial, /*threads=*/1, options.matcher);
      if (!candidate.feasible) continue;
      const double gain = best.objective - candidate.objective;
      if (gain > best_gain) {
        best_gain = gain;
        best_move_solution = candidate;
        best_move_selected = std::move(trial);
      }
    }
    if (best_gain <=
        options.min_relative_gain * (1.0 + best.objective)) {
      break;  // local minimum w.r.t. the sampled neighborhood
    }
    best = std::move(best_move_solution);
    selected = std::move(best_move_selected);
    ++result.swaps_applied;
  }
  result.solution = std::move(best);
  return result;
}

}  // namespace mcfs
