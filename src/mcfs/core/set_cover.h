#ifndef MCFS_CORE_SET_COVER_H_
#define MCFS_CORE_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "mcfs/common/deadline.h"

namespace mcfs {

// Input to the CheckCover routine (Algorithm 3): for every candidate
// facility j, the set sigma_j of customers currently assigned to it in
// G_b, plus the demand state used to compute the exploration vector.
struct CoverInput {
  int num_customers = 0;
  int k = 0;
  // sigma_j per facility; customers listed by index.
  const std::vector<std::vector<int>>* customers_of_facility = nullptr;
  const std::vector<int>* demand = nullptr;     // d_i per customer
  int demand_cap = 0;                           // l in the paper
  const std::vector<uint8_t>* saturated = nullptr;  // no augmenting path
  // Optional: total matched distance per facility. When set, equal
  // marginal gains are first broken toward the facility whose matched
  // customers are nearer (cost-aware tie-break; see WmaOptions), then
  // by recency.
  const std::vector<double>* matched_cost = nullptr;
  // Optional cooperative deadline, polled every 64 candidate scans.
  // On expiry the scan stops early: the partial selection so far is
  // returned with deadline_expired set (still a valid greedy prefix).
  const Deadline* deadline = nullptr;
};

struct CoverResult {
  std::vector<int> selected;          // chosen facilities, size <= k
  std::vector<uint8_t> covered;       // per customer
  std::vector<uint8_t> delta_demand;  // exploration vector (0/1)
  bool all_delta_zero = false;        // WMA main-loop termination signal
  bool fully_covered = false;         // every customer truly covered
  bool deadline_expired = false;      // scan cut short by input.deadline
};

// Greedy max-coverage selection of up to k facilities with lazy marginal
// gain re-evaluation; ties between equal gains are broken in favor of
// the facility selected least recently (the paper's diversification
// strategy, Sec. IV-A), then by facility id. `last_selected[j]` is the
// iteration at which j was last part of the selection (-1 = never); it
// is updated for the facilities selected now.
//
// delta_demand[i] = 1 iff customer i is uncovered by the selection and
// can still explore (d_i < demand_cap and not saturated).
CoverResult CheckCover(const CoverInput& input,
                       std::vector<int64_t>& last_selected,
                       int64_t iteration);

}  // namespace mcfs

#endif  // MCFS_CORE_SET_COVER_H_
