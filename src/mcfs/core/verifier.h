#ifndef MCFS_CORE_VERIFIER_H_
#define MCFS_CORE_VERIFIER_H_

#include <string>
#include <vector>

#include "mcfs/common/status.h"
#include "mcfs/core/instance.h"

namespace mcfs {

// Independent solution verifier (DESIGN.md §4.8). Deliberately shares
// no code with the solvers: distances are recomputed with one fresh
// full Dijkstra per selected facility and every claim a solution makes
// (selection within budget, assignment validity, capacities, per-
// customer distances, the objective sum) is re-derived from scratch.
// Used by the benches behind --verify and by the integration tests as
// a cross-check on WMA, the baselines, and the exact solver.

struct VerifyOptions {
  // Tolerance for comparing distances/objectives: values a and b match
  // when |a - b| <= epsilon * max(1, |a|, |b|).
  double epsilon = 1e-6;
  // When set, an unassigned customer (assignment == -1) is a failure
  // even if the solution flags itself infeasible. Off by default so
  // best-effort solutions on infeasible instances can still be checked.
  bool require_all_assigned = false;
  // Distance re-derivation strategy. The default runs one full Dijkstra
  // per selected facility — thorough, but O(k) full searches. `targeted`
  // instead runs one early-exit point-to-point search per distinct
  // customer node, settled only until the assigned facility is reached
  // (or the claimed distance is provably exceeded). Work is bounded by
  // the claimed distance's ball around each customer, which makes it
  // cheap enough for the serving fast path; every structural claim
  // (selection, assignment validity, capacities, objective sum) is
  // checked identically in both modes.
  bool targeted = false;
};

struct VerifyReport {
  bool ok = true;
  std::vector<std::string> failures;   // one line per violated claim
  int customers_checked = 0;
  int dijkstra_runs = 0;
  double recomputed_objective = 0.0;   // sum of re-derived distances

  // kOk, or kInvalidInput carrying the first failure.
  Status ToStatus() const;
  std::string ToString() const;
};

// Verifies `solution` against `instance` from first principles.
// Maintains the verify/* counters (solutions_checked, failures,
// dijkstra_runs, customers_checked) when metrics are enabled.
VerifyReport VerifySolution(const McfsInstance& instance,
                            const McfsSolution& solution,
                            const VerifyOptions& options = {});

}  // namespace mcfs

#endif  // MCFS_CORE_VERIFIER_H_
