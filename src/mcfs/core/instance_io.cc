#include "mcfs/core/instance_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "mcfs/common/line_reader.h"

namespace mcfs {

namespace {

Status ImplausibleCount(const char* what, int64_t count, int64_t bytes) {
  std::ostringstream msg;
  msg << "header claims " << count << " " << what << " but the file has "
      << bytes << " bytes";
  return InvalidInputError(msg.str());
}

int64_t FileSizeBytes(std::ifstream& in) {
  const std::streampos current = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(current);
  return end < 0 ? -1 : static_cast<int64_t>(end);
}

// "MCFS 1"-style magic/version line shared by both readers.
Status ExpectMagic(LineReader& reader, const std::string& magic) {
  std::string line;
  if (!reader.NextLine(&line)) {
    return InvalidInputError("empty file (expected \"" + magic +
                             " 1\" header)");
  }
  std::string found;
  int version = 0;
  if (!ParseFields(line, &found, &version) || found != magic ||
      version != 1) {
    return reader.ParseError("expected \"" + magic + " 1\", got \"" + line +
                             "\"");
  }
  return OkStatus();
}

}  // namespace

Status WriteInstance(const McfsInstance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoError("cannot open for writing: " + path);
  out << "MCFS 1\n";
  out << instance.m() << ' ' << instance.l() << ' ' << instance.k << '\n';
  for (const NodeId customer : instance.customers) out << customer << '\n';
  for (int j = 0; j < instance.l(); ++j) {
    out << instance.facility_nodes[j] << ' ' << instance.capacities[j]
        << '\n';
  }
  if (!out) return IoError("short write: " + path);
  return OkStatus();
}

StatusOr<McfsInstance> ReadInstance(const Graph* graph,
                                    const std::string& path) {
  MCFS_CHECK(graph != nullptr);
  std::ifstream in(path);
  if (!in) return IoError("cannot open: " + path);
  const int64_t bytes = FileSizeBytes(in);
  LineReader reader(in);
  MCFS_RETURN_IF_ERROR(ExpectMagic(reader, "MCFS"));

  std::string line;
  if (!reader.NextLine(&line)) {
    return reader.TruncatedError("\"<m> <l> <k>\" header");
  }
  int64_t m = 0;
  int64_t l = 0;
  int64_t k = 0;
  if (!ParseFields(line, &m, &l, &k) || m < 0 || l < 0 || k < 0) {
    return reader.ParseError("expected nonnegative \"<m> <l> <k>\", got \"" +
                             line + "\"");
  }
  if (bytes >= 0 && m > bytes) return ImplausibleCount("customers", m, bytes);
  if (bytes >= 0 && l > bytes) return ImplausibleCount("facilities", l, bytes);

  McfsInstance instance;
  instance.graph = graph;
  instance.k = static_cast<int>(k);
  instance.customers.reserve(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    if (!reader.NextLine(&line)) {
      return reader.TruncatedError(std::to_string(m) + " customer lines");
    }
    int64_t customer = 0;
    if (!ParseFields(line, &customer)) {
      return reader.ParseError("expected customer node id, got \"" + line +
                               "\"");
    }
    if (customer < 0 || customer >= graph->NumNodes()) {
      return reader.ParseError(
          "customer node " + std::to_string(customer) +
          " out of range [0, " + std::to_string(graph->NumNodes()) + ")");
    }
    instance.customers.push_back(static_cast<NodeId>(customer));
  }
  instance.facility_nodes.reserve(static_cast<size_t>(l));
  instance.capacities.reserve(static_cast<size_t>(l));
  for (int64_t j = 0; j < l; ++j) {
    if (!reader.NextLine(&line)) {
      return reader.TruncatedError(std::to_string(l) + " facility lines");
    }
    int64_t node = 0;
    int64_t capacity = 0;
    if (!ParseFields(line, &node, &capacity)) {
      return reader.ParseError("expected \"<facility node> <capacity>\", "
                               "got \"" + line + "\"");
    }
    if (node < 0 || node >= graph->NumNodes()) {
      return reader.ParseError(
          "facility node " + std::to_string(node) + " out of range [0, " +
          std::to_string(graph->NumNodes()) + ")");
    }
    if (capacity < 0) {
      return reader.ParseError("negative capacity " +
                               std::to_string(capacity));
    }
    instance.facility_nodes.push_back(static_cast<NodeId>(node));
    instance.capacities.push_back(static_cast<int>(capacity));
  }
  return instance;
}

Status WriteSolution(const McfsSolution& solution, const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoError("cannot open for writing: " + path);
  out.precision(12);
  out << "MCFSSOL 1\n";
  out << solution.selected.size() << ' ' << solution.assignment.size()
      << ' ' << solution.objective << ' ' << (solution.feasible ? 1 : 0)
      << '\n';
  for (size_t s = 0; s < solution.selected.size(); ++s) {
    out << solution.selected[s]
        << (s + 1 == solution.selected.size() ? '\n' : ' ');
  }
  if (solution.selected.empty()) out << '\n';
  for (size_t i = 0; i < solution.assignment.size(); ++i) {
    out << solution.assignment[i] << ' ' << solution.distances[i] << '\n';
  }
  if (!out) return IoError("short write: " + path);
  return OkStatus();
}

StatusOr<McfsSolution> ReadSolution(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open: " + path);
  const int64_t bytes = FileSizeBytes(in);
  LineReader reader(in);
  MCFS_RETURN_IF_ERROR(ExpectMagic(reader, "MCFSSOL"));

  std::string line;
  if (!reader.NextLine(&line)) {
    return reader.TruncatedError(
        "\"<num_selected> <m> <objective> <feasible>\" header");
  }
  int64_t num_selected = 0;
  int64_t m = 0;
  double objective = 0.0;
  int feasible = 0;
  if (!ParseFields(line, &num_selected, &m, &objective, &feasible) ||
      num_selected < 0 || m < 0 || (feasible != 0 && feasible != 1) ||
      !std::isfinite(objective)) {
    return reader.ParseError(
        "expected \"<num_selected> <m> <objective> <feasible:0|1>\" with a "
        "finite objective, got \"" + line + "\"");
  }
  if (bytes >= 0 && num_selected > bytes) {
    return ImplausibleCount("selected facilities", num_selected, bytes);
  }
  if (bytes >= 0 && m > bytes) {
    return ImplausibleCount("assignments", m, bytes);
  }

  McfsSolution solution;
  solution.objective = objective;
  solution.feasible = feasible != 0;
  if (!reader.NextLine(&line)) {
    return reader.TruncatedError("selected-facilities line");
  }
  {
    std::istringstream fields(line);
    int64_t j = 0;
    while (fields >> j) {
      if (j < 0) {
        return reader.ParseError("negative selected facility index " +
                                 std::to_string(j));
      }
      solution.selected.push_back(static_cast<int>(j));
    }
    if (!fields.eof()) {
      return reader.ParseError("expected facility indices, got \"" + line +
                               "\"");
    }
    if (static_cast<int64_t>(solution.selected.size()) != num_selected) {
      return reader.ParseError(
          "expected " + std::to_string(num_selected) +
          " selected facilities, found " +
          std::to_string(solution.selected.size()));
    }
  }
  solution.assignment.reserve(static_cast<size_t>(m));
  solution.distances.reserve(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    if (!reader.NextLine(&line)) {
      return reader.TruncatedError(std::to_string(m) + " assignment lines");
    }
    int64_t assignment = 0;
    double distance = 0.0;
    if (!ParseFields(line, &assignment, &distance) || assignment < -1 ||
        !std::isfinite(distance) || distance < 0.0) {
      return reader.ParseError(
          "expected \"<assignment >= -1> <distance >= 0>\", got \"" + line +
          "\"");
    }
    solution.assignment.push_back(static_cast<int>(assignment));
    solution.distances.push_back(distance);
  }
  return solution;
}

Status CheckSolutionAgainstInstance(const McfsSolution& solution,
                                    const McfsInstance& instance) {
  if (static_cast<int>(solution.assignment.size()) != instance.m() ||
      solution.distances.size() != solution.assignment.size()) {
    std::ostringstream msg;
    msg << "solution covers " << solution.assignment.size()
        << " customers (" << solution.distances.size()
        << " distances) but the instance has " << instance.m();
    return InvalidInputError(msg.str());
  }
  if (static_cast<int>(solution.selected.size()) > instance.k) {
    std::ostringstream msg;
    msg << solution.selected.size() << " facilities selected, budget k = "
        << instance.k;
    return InvalidInputError(msg.str());
  }
  std::vector<uint8_t> is_selected(instance.l(), 0);
  for (const int j : solution.selected) {
    if (j < 0 || j >= instance.l()) {
      return InvalidInputError("selected facility index " +
                               std::to_string(j) + " out of range [0, " +
                               std::to_string(instance.l()) + ")");
    }
    if (is_selected[j]) {
      return InvalidInputError("facility " + std::to_string(j) +
                               " selected twice");
    }
    is_selected[j] = 1;
  }
  for (int i = 0; i < instance.m(); ++i) {
    const int j = solution.assignment[i];
    if (j == -1) continue;
    if (j < 0 || j >= instance.l()) {
      return InvalidInputError(
          "customer " + std::to_string(i) + " assigned to facility index " +
          std::to_string(j) + " out of range [0, " +
          std::to_string(instance.l()) + ")");
    }
    if (!is_selected[j]) {
      return InvalidInputError("customer " + std::to_string(i) +
                               " assigned to unselected facility " +
                               std::to_string(j));
    }
    if (!std::isfinite(solution.distances[i]) ||
        solution.distances[i] < 0.0) {
      return InvalidInputError("customer " + std::to_string(i) +
                               " carries a non-finite or negative distance");
    }
  }
  return OkStatus();
}

bool SaveInstance(const McfsInstance& instance, const std::string& path) {
  return WriteInstance(instance, path).ok();
}

std::optional<McfsInstance> LoadInstance(const Graph* graph,
                                         const std::string& path) {
  StatusOr<McfsInstance> instance = ReadInstance(graph, path);
  if (!instance.ok()) return std::nullopt;
  return std::move(instance).value();
}

bool SaveSolution(const McfsSolution& solution, const std::string& path) {
  return WriteSolution(solution, path).ok();
}

std::optional<McfsSolution> LoadSolution(const std::string& path) {
  StatusOr<McfsSolution> solution = ReadSolution(path);
  if (!solution.ok()) return std::nullopt;
  return std::move(solution).value();
}

}  // namespace mcfs
