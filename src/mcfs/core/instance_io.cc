#include "mcfs/core/instance_io.h"

#include <fstream>

namespace mcfs {

bool SaveInstance(const McfsInstance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "MCFS 1\n";
  out << instance.m() << ' ' << instance.l() << ' ' << instance.k << '\n';
  for (const NodeId customer : instance.customers) out << customer << '\n';
  for (int j = 0; j < instance.l(); ++j) {
    out << instance.facility_nodes[j] << ' ' << instance.capacities[j]
        << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<McfsInstance> LoadInstance(const Graph* graph,
                                         const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "MCFS" || version != 1) {
    return std::nullopt;
  }
  int m = 0;
  int l = 0;
  McfsInstance instance;
  instance.graph = graph;
  if (!(in >> m >> l >> instance.k) || m < 0 || l < 0 || instance.k < 0) {
    return std::nullopt;
  }
  instance.customers.resize(m);
  for (NodeId& customer : instance.customers) {
    if (!(in >> customer) || customer < 0 ||
        customer >= graph->NumNodes()) {
      return std::nullopt;
    }
  }
  instance.facility_nodes.resize(l);
  instance.capacities.resize(l);
  for (int j = 0; j < l; ++j) {
    if (!(in >> instance.facility_nodes[j] >> instance.capacities[j]) ||
        instance.facility_nodes[j] < 0 ||
        instance.facility_nodes[j] >= graph->NumNodes() ||
        instance.capacities[j] < 0) {
      return std::nullopt;
    }
  }
  return instance;
}

bool SaveSolution(const McfsSolution& solution, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(12);
  out << "MCFSSOL 1\n";
  out << solution.selected.size() << ' ' << solution.assignment.size()
      << ' ' << solution.objective << ' ' << (solution.feasible ? 1 : 0)
      << '\n';
  for (size_t s = 0; s < solution.selected.size(); ++s) {
    out << solution.selected[s]
        << (s + 1 == solution.selected.size() ? '\n' : ' ');
  }
  if (solution.selected.empty()) out << '\n';
  for (size_t i = 0; i < solution.assignment.size(); ++i) {
    out << solution.assignment[i] << ' ' << solution.distances[i] << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<McfsSolution> LoadSolution(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "MCFSSOL" || version != 1) {
    return std::nullopt;
  }
  size_t num_selected = 0;
  size_t m = 0;
  int feasible = 0;
  McfsSolution solution;
  if (!(in >> num_selected >> m >> solution.objective >> feasible)) {
    return std::nullopt;
  }
  solution.feasible = feasible != 0;
  solution.selected.resize(num_selected);
  for (int& j : solution.selected) {
    if (!(in >> j)) return std::nullopt;
  }
  solution.assignment.resize(m);
  solution.distances.resize(m);
  for (size_t i = 0; i < m; ++i) {
    if (!(in >> solution.assignment[i] >> solution.distances[i])) {
      return std::nullopt;
    }
  }
  return solution;
}

}  // namespace mcfs
