#ifndef MCFS_CORE_VALIDATE_H_
#define MCFS_CORE_VALIDATE_H_

#include <string>
#include <vector>

#include "mcfs/common/status.h"
#include "mcfs/core/instance.h"

namespace mcfs {

// Preflight validation for MCFS instances (DESIGN.md §4.8): catches
// malformed inputs (kInvalidInput) and provably unsolvable ones
// (kInfeasible) with a structured diagnosis *before* any solver runs,
// instead of an MCFS_CHECK abort or a silent infeasible grind deep
// inside WMA.

// Why one connected component cannot be served (Theorem 3 accounting).
struct ComponentDiagnosis {
  int component = 0;           // component id from ConnectedComponents
  int64_t customers = 0;       // demand |S_g| inside the component
  int64_t capacity_sum = 0;    // total capacity of facilities inside it
  int num_facilities = 0;      // candidate facilities inside it
  // Minimum facilities (largest capacities first) whose capacity sum
  // reaches the demand; -1 when even all of them fall short.
  int min_facilities_needed = 0;

  std::string ToString() const;
};

// Full preflight report. `status` carries the verdict; the rest explains
// it: structural problems as human-readable strings, infeasible
// components with their capacity accounting, and the global budget math.
struct InstanceDiagnosis {
  Status status;                          // kOk / kInvalidInput / kInfeasible
  std::vector<std::string> problems;      // structural defects, if any
  std::vector<ComponentDiagnosis> infeasible_components;
  int64_t total_demand = 0;               // m
  int64_t total_capacity = 0;             // sum of all capacities
  // Sum over components of min_facilities_needed; compare against k.
  // Meaningful only when every component is individually coverable.
  int required_facilities = 0;

  bool ok() const { return status.ok(); }
  // Multi-line report for logs / CLI output.
  std::string ToString() const;
};

// Diagnoses an instance. Structural defects (null/empty graph, k < 0,
// out-of-range customer or facility nodes, duplicate facility nodes,
// negative capacities) yield kInvalidInput and fill `problems`;
// structurally sound but unsolvable instances yield kInfeasible with
// per-component deficits. Agrees with IsFeasible on the verdict for
// structurally valid instances.
InstanceDiagnosis DiagnoseInstance(const McfsInstance& instance);

// Convenience wrapper: just the Status of DiagnoseInstance.
Status ValidateInstance(const McfsInstance& instance);

}  // namespace mcfs

#endif  // MCFS_CORE_VALIDATE_H_
