#include "mcfs/core/verifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>

#include "mcfs/graph/dijkstra.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {

bool Close(double a, double b, double epsilon) {
  return std::abs(a - b) <=
         epsilon * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

Status VerifyReport::ToStatus() const {
  if (ok) return OkStatus();
  std::ostringstream msg;
  msg << failures.size() << " verification failure(s); first: "
      << failures.front();
  return InvalidInputError(msg.str());
}

std::string VerifyReport::ToString() const {
  std::ostringstream out;
  out << (ok ? "VERIFIED" : "REJECTED") << ": " << customers_checked
      << " customers, " << dijkstra_runs << " dijkstras, objective "
      << recomputed_objective;
  for (const std::string& failure : failures) out << "\n  " << failure;
  return out.str();
}

VerifyReport VerifySolution(const McfsInstance& instance,
                            const McfsSolution& solution,
                            const VerifyOptions& options) {
  VerifyReport report;
  auto fail = [&report](const std::string& what) {
    report.ok = false;
    report.failures.push_back(what);
  };
  MCFS_COUNT("verify/solutions_checked", 1);

  // --- Shape: a solution that is not even structurally sound is
  // rejected before any distance work.
  if (static_cast<int>(solution.assignment.size()) != instance.m() ||
      solution.distances.size() != solution.assignment.size()) {
    fail("assignment/distances sized " +
         std::to_string(solution.assignment.size()) + "/" +
         std::to_string(solution.distances.size()) + " for " +
         std::to_string(instance.m()) + " customers");
    MCFS_COUNT("verify/failures", 1);
    return report;
  }

  // --- Selection: distinct in-range indices, within the k budget.
  if (static_cast<int>(solution.selected.size()) > instance.k) {
    fail(std::to_string(solution.selected.size()) +
         " facilities selected, budget k = " + std::to_string(instance.k));
  }
  std::vector<int> selected_slot(instance.l(), -1);
  bool selection_sound = true;
  for (size_t s = 0; s < solution.selected.size(); ++s) {
    const int j = solution.selected[s];
    if (j < 0 || j >= instance.l()) {
      fail("selected facility index " + std::to_string(j) +
           " out of range [0, " + std::to_string(instance.l()) + ")");
      selection_sound = false;
    } else if (selected_slot[j] >= 0) {
      fail("facility " + std::to_string(j) + " selected twice");
      selection_sound = false;
    } else {
      selected_slot[j] = static_cast<int>(s);
    }
  }
  if (!selection_sound) {
    MCFS_COUNT("verify/failures", 1);
    return report;
  }

  // --- Independent distances. Default: one fresh full Dijkstra per
  // selected facility (undirected graphs, so dist(facility -> customer)
  // == dist(customer -> facility)). Targeted: one early-exit
  // point-to-point search per distinct customer node, settled just past
  // the claimed distance — enough to either confirm the assigned
  // facility's true distance or prove the claim understates it.
  std::vector<std::vector<double>> dist_from;
  std::map<NodeId, IncrementalDijkstra> searches;
  if (!options.targeted) {
    dist_from.resize(solution.selected.size());
    for (size_t s = 0; s < solution.selected.size(); ++s) {
      dist_from[s] = ShortestPathsFrom(
          *instance.graph, instance.facility_nodes[solution.selected[s]]);
      ++report.dijkstra_runs;
    }
    MCFS_COUNT("verify/dijkstra_runs", report.dijkstra_runs);
  }

  // --- Assignments: valid targets, true distances, load within
  // capacity, and the objective as the re-derived sum.
  std::vector<int64_t> load(solution.selected.size(), 0);
  int unassigned = 0;
  bool distances_complete = true;
  for (int i = 0; i < instance.m(); ++i) {
    ++report.customers_checked;
    const int j = solution.assignment[i];
    if (j == -1) {
      ++unassigned;
      continue;
    }
    if (j < 0 || j >= instance.l() || selected_slot[j] < 0) {
      fail("customer " + std::to_string(i) +
           " assigned to unselected or invalid facility " +
           std::to_string(j));
      continue;
    }
    const int s = selected_slot[j];
    ++load[s];
    double true_distance;
    if (options.targeted) {
      const NodeId origin = instance.customers[i];
      const NodeId target = instance.facility_nodes[j];
      auto it = searches.find(origin);
      if (it == searches.end()) {
        it = searches
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(origin),
                          std::forward_as_tuple(instance.graph, origin))
                 .first;
        ++report.dijkstra_runs;
      }
      IncrementalDijkstra& search = it->second;
      const double claimed = solution.distances[i];
      // Settling past this limit without reaching the target proves the
      // true distance is larger than anything Close() would accept.
      const double limit =
          claimed +
          options.epsilon * std::max({1.0, std::abs(claimed)});
      true_distance = search.SettledDistance(target);
      while (!std::isfinite(true_distance) &&
             search.PeekNextDistance() <= limit) {
        const std::optional<SettledNode> settled = search.NextSettled();
        if (!settled.has_value()) break;
        if (settled->node == target) true_distance = settled->distance;
      }
      if (!std::isfinite(true_distance)) {
        distances_complete = false;
        if (search.PeekNextDistance() == kInfDistance) {
          fail("customer " + std::to_string(i) +
               " unreachable from its facility " + std::to_string(j));
        } else {
          std::ostringstream msg;
          msg << "customer " << i << " claims distance " << claimed
              << " but the network distance exceeds it";
          fail(msg.str());
        }
        continue;
      }
    } else {
      true_distance = dist_from[s][instance.customers[i]];
      if (!std::isfinite(true_distance)) {
        distances_complete = false;
        fail("customer " + std::to_string(i) +
             " unreachable from its facility " + std::to_string(j));
        continue;
      }
    }
    if (!Close(solution.distances[i], true_distance, options.epsilon)) {
      std::ostringstream msg;
      msg << "customer " << i << " claims distance "
          << solution.distances[i] << " but the network distance is "
          << true_distance;
      fail(msg.str());
    }
    report.recomputed_objective += true_distance;
  }
  if (options.targeted) {
    MCFS_COUNT("verify/dijkstra_runs", report.dijkstra_runs);
  }
  MCFS_COUNT("verify/customers_checked", report.customers_checked);
  for (size_t s = 0; s < load.size(); ++s) {
    const int j = solution.selected[s];
    if (load[s] > instance.capacities[j]) {
      fail("facility " + std::to_string(j) + " serves " +
           std::to_string(load[s]) + " customers, capacity " +
           std::to_string(instance.capacities[j]));
    }
  }
  if (unassigned > 0 && (solution.feasible || options.require_all_assigned)) {
    fail(std::to_string(unassigned) + " customers unassigned" +
         (solution.feasible ? " in a solution marked feasible" : ""));
  }
  // An early-exited targeted search leaves the re-derived sum partial;
  // the per-customer failure is already recorded, so the objective
  // comparison would only add noise. (The default mode keeps its
  // historical behavior of always comparing.)
  if ((distances_complete || !options.targeted) &&
      !Close(solution.objective, report.recomputed_objective,
             options.epsilon)) {
    std::ostringstream msg;
    msg << "objective claims " << solution.objective
        << " but the assignments sum to " << report.recomputed_objective;
    fail(msg.str());
  }
  if (!report.ok) MCFS_COUNT("verify/failures", 1);
  return report;
}

}  // namespace mcfs
