#include "mcfs/core/solution_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace mcfs {

namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double position = q * (sorted.size() - 1);
  const size_t lo = static_cast<size_t>(position);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = position - lo;
  return sorted[lo] * (1.0 - t) + sorted[hi] * t;
}

}  // namespace

SolutionStats ComputeSolutionStats(const McfsInstance& instance,
                                   const McfsSolution& solution) {
  SolutionStats stats;
  std::unordered_map<int, int> selected_index;
  for (size_t s = 0; s < solution.selected.size(); ++s) {
    selected_index[solution.selected[s]] = static_cast<int>(s);
  }
  stats.load.assign(solution.selected.size(), 0);

  std::vector<double> distances;
  for (int i = 0; i < instance.m(); ++i) {
    const int j = solution.assignment[i];
    if (j < 0) {
      stats.unassigned_customers++;
      continue;
    }
    stats.assigned_customers++;
    distances.push_back(solution.distances[i]);
    auto it = selected_index.find(j);
    if (it != selected_index.end()) stats.load[it->second]++;
  }
  std::sort(distances.begin(), distances.end());
  if (!distances.empty()) {
    double total = 0.0;
    for (const double d : distances) total += d;
    stats.mean_distance = total / distances.size();
    stats.max_distance = distances.back();
    stats.median_distance = Percentile(distances, 0.5);
    stats.p90_distance = Percentile(distances, 0.9);
    stats.p99_distance = Percentile(distances, 0.99);
  }

  double utilization_total = 0.0;
  for (size_t s = 0; s < solution.selected.size(); ++s) {
    const int capacity = instance.capacities[solution.selected[s]];
    if (stats.load[s] > 0) stats.facilities_used++;
    if (capacity > 0 && stats.load[s] >= capacity) stats.facilities_full++;
    if (capacity > 0) {
      utilization_total += static_cast<double>(stats.load[s]) / capacity;
    }
    stats.max_load = std::max(stats.max_load, stats.load[s]);
  }
  if (!solution.selected.empty()) {
    stats.mean_utilization = utilization_total / solution.selected.size();
  }
  return stats;
}

std::string FormatSolutionStats(const SolutionStats& stats) {
  std::ostringstream out;
  out << "customers: " << stats.assigned_customers << " assigned";
  if (stats.unassigned_customers > 0) {
    out << ", " << stats.unassigned_customers << " UNASSIGNED";
  }
  out << "\ndistance: mean " << stats.mean_distance << ", median "
      << stats.median_distance << ", p90 " << stats.p90_distance
      << ", p99 " << stats.p99_distance << ", max " << stats.max_distance;
  out << "\nfacilities: " << stats.facilities_used << " used, "
      << stats.facilities_full << " at capacity, mean utilization "
      << stats.mean_utilization << ", max load " << stats.max_load;
  return out.str();
}

}  // namespace mcfs
