#include "mcfs/core/repair.h"

#include <algorithm>
#include <numeric>

#include "mcfs/common/check.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

void SelectGreedy(const McfsInstance& instance, std::vector<int>& selected) {
  const int l = instance.l();
  std::vector<uint8_t> is_selected(l, 0);
  for (const int j : selected) is_selected[j] = 1;
  std::vector<int> facility_index_of_node(instance.graph->NumNodes(), -1);
  for (int j = 0; j < l; ++j) {
    facility_index_of_node[instance.facility_nodes[j]] = j;
  }

  while (static_cast<int>(selected.size()) < instance.k &&
         static_cast<int>(selected.size()) < l) {
    // Distance of every customer to its nearest selected facility.
    std::vector<NodeId> sources;
    sources.reserve(selected.size());
    for (const int j : selected) {
      sources.push_back(instance.facility_nodes[j]);
    }
    std::vector<std::pair<double, int>> by_distance;  // (-dist proxy)
    by_distance.reserve(instance.m());
    if (sources.empty()) {
      for (int i = 0; i < instance.m(); ++i) {
        by_distance.push_back({kInfDistance, i});
      }
    } else {
      const MultiSourceResult msd =
          MultiSourceDijkstra(*instance.graph, sources);
      for (int i = 0; i < instance.m(); ++i) {
        by_distance.push_back({msd.distance[instance.customers[i]], i});
      }
    }
    std::sort(by_distance.begin(), by_distance.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    int added = -1;
    for (const auto& [dist, customer] : by_distance) {
      (void)dist;
      IncrementalDijkstra dijkstra(instance.graph,
                                   instance.customers[customer]);
      while (std::optional<SettledNode> s = dijkstra.NextSettled()) {
        const int j = facility_index_of_node[s->node];
        if (j >= 0 && !is_selected[j]) {
          added = j;
          break;
        }
      }
      if (added != -1) break;
    }
    if (added == -1) {
      // No unselected facility reachable from any customer; fill the
      // budget with arbitrary unselected candidates.
      for (int j = 0; j < l && added == -1; ++j) {
        if (!is_selected[j]) added = j;
      }
      if (added == -1) return;
    }
    selected.push_back(added);
    is_selected[added] = 1;
  }
}

namespace {

// Direct reconstruction used when the swap loop of Algorithm 5 stalls:
// per component, pick the largest-capacity facilities (preferring ones
// already selected) until the component's customers fit, then top up to
// the original selection size. Returns false when infeasible.
bool DirectConstruct(const McfsInstance& instance,
                     const ComponentLabeling& components,
                     std::vector<int>& selected) {
  const int l = instance.l();
  const size_t target = selected.size();
  std::vector<uint8_t> was_selected(l, 0);
  for (const int j : selected) was_selected[j] = 1;

  std::vector<int64_t> customers_in(components.num_components, 0);
  for (const NodeId c : instance.customers) {
    customers_in[components.component_of[c]]++;
  }
  std::vector<std::vector<int>> facilities_in(components.num_components);
  for (int j = 0; j < l; ++j) {
    facilities_in[components.component_of[instance.facility_nodes[j]]]
        .push_back(j);
  }

  std::vector<int> result;
  std::vector<uint8_t> used(l, 0);
  for (int g = 0; g < components.num_components; ++g) {
    if (customers_in[g] == 0) continue;
    auto& candidates = facilities_in[g];
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      if (instance.capacities[a] != instance.capacities[b]) {
        return instance.capacities[a] > instance.capacities[b];
      }
      if (was_selected[a] != was_selected[b]) {
        return was_selected[a] > was_selected[b];
      }
      return a < b;
    });
    int64_t remaining = customers_in[g];
    for (const int j : candidates) {
      if (remaining <= 0) break;
      result.push_back(j);
      used[j] = 1;
      remaining -= instance.capacities[j];
    }
    if (remaining > 0) return false;
  }
  if (result.size() > target) return false;
  // Top back up to the original size, preferring prior selections.
  for (const int j : selected) {
    if (result.size() >= target) break;
    if (!used[j]) {
      result.push_back(j);
      used[j] = 1;
    }
  }
  for (int j = 0; j < l && result.size() < target; ++j) {
    if (!used[j]) {
      result.push_back(j);
      used[j] = 1;
    }
  }
  selected = std::move(result);
  return true;
}

}  // namespace

bool CoverComponents(const McfsInstance& instance,
                     std::vector<int>& selected) {
  const ComponentLabeling components = ConnectedComponents(*instance.graph);
  const int l = instance.l();
  std::vector<uint8_t> is_selected(l, 0);
  for (const int j : selected) is_selected[j] = 1;

  std::vector<int64_t> surplus(components.num_components, 0);
  for (const NodeId c : instance.customers) {
    surplus[components.component_of[c]]--;
  }
  auto component_of_facility = [&](int j) {
    return components.component_of[instance.facility_nodes[j]];
  };
  for (const int j : selected) {
    surplus[component_of_facility(j)] += instance.capacities[j];
  }

  const int max_swaps = 4 * l + 16;
  for (int swap = 0; swap < max_swaps; ++swap) {
    int g_min = -1;
    int g_max = -1;
    for (int g = 0; g < components.num_components; ++g) {
      if (surplus[g] < 0 && (g_min == -1 || surplus[g] < surplus[g_min])) {
        g_min = g;
      }
    }
    if (g_min == -1) break;  // every component is covered

    // Donor: the highest-surplus component that still has a selected
    // facility to give away.
    int f_out = -1;
    for (int j = 0; j < l; ++j) {
      if (!is_selected[j]) continue;
      const int g = component_of_facility(j);
      if (g == g_min) continue;
      if (g_max == -1 || surplus[g] > surplus[g_max] ||
          (surplus[g] == surplus[g_max] &&
           instance.capacities[j] < instance.capacities[f_out])) {
        g_max = g;
        f_out = j;
      } else if (g == g_max &&
                 instance.capacities[j] < instance.capacities[f_out]) {
        f_out = j;
      }
    }
    int f_in = -1;
    for (int j = 0; j < l; ++j) {
      if (is_selected[j] || component_of_facility(j) != g_min) continue;
      if (f_in == -1 || instance.capacities[j] > instance.capacities[f_in]) {
        f_in = j;
      }
    }
    if (f_out == -1 || f_in == -1) break;  // swap loop stalled
    is_selected[f_out] = 0;
    is_selected[f_in] = 1;
    surplus[g_max] -= instance.capacities[f_out];
    surplus[g_min] += instance.capacities[f_in];
  }

  // Rebuild `selected` from the bitmap if the loop made progress, then
  // verify; otherwise fall back to the direct construction.
  std::vector<int> revised;
  for (int j = 0; j < l; ++j) {
    if (is_selected[j]) revised.push_back(j);
  }
  bool all_covered = true;
  {
    std::vector<int64_t> check(components.num_components, 0);
    for (const NodeId c : instance.customers) {
      check[components.component_of[c]]--;
    }
    for (const int j : revised) {
      check[component_of_facility(j)] += instance.capacities[j];
    }
    for (const int64_t s : check) all_covered = all_covered && s >= 0;
  }
  if (all_covered) {
    selected = std::move(revised);
    return true;
  }
  return DirectConstruct(instance, components, selected);
}

}  // namespace mcfs
