#ifndef MCFS_CORE_REPAIR_H_
#define MCFS_CORE_REPAIR_H_

#include <vector>

#include "mcfs/core/instance.h"

namespace mcfs {

// Algorithm 4 (SelectGreedy): extends `selected` up to k facilities.
// Each round finds the customer whose distance to the nearest selected
// facility is largest and adds the unselected candidate facility nearest
// to that customer. Unreachable customers count as infinitely far, so
// this also plugs uncovered network components when possible.
void SelectGreedy(const McfsInstance& instance, std::vector<int>& selected);

// Algorithm 5 (CoverComponents): revises `selected` (keeping its size)
// so that every connected component holds enough selected capacity for
// its customers, by swapping the lowest-capacity selected facility of
// the most over-provisioned component for the highest-capacity
// unselected facility of the most under-provisioned one. Falls back to
// a direct per-component reconstruction if the swap loop stalls.
// Returns false when no assignment of `selected.size()` facilities can
// cover all components (infeasible instance).
bool CoverComponents(const McfsInstance& instance,
                     std::vector<int>& selected);

}  // namespace mcfs

#endif  // MCFS_CORE_REPAIR_H_
