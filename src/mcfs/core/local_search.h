#ifndef MCFS_CORE_LOCAL_SEARCH_H_
#define MCFS_CORE_LOCAL_SEARCH_H_

#include <cstdint>

#include "mcfs/core/instance.h"

namespace mcfs {

// Swap-based local search over the selected facility set — an extension
// beyond the paper (its related work, e.g. Korupolu et al. [2], studies
// local search for *uncapacitated* facility location; here every move
// is evaluated under hard nonuniform capacities via one optimal
// transportation). Useful as a polishing step after WMA or any
// baseline.
struct LocalSearchOptions {
  int max_rounds = 30;
  // Swap candidates examined per round: replacements are drawn from the
  // unselected facilities nearest to the worst-served customers and to
  // the customers of the least useful selected facility.
  int moves_per_round = 12;
  // Stop when the best move improves the objective by less than this
  // relative amount.
  double min_relative_gain = 1e-9;
  uint64_t seed = 42;
  // Engine for the per-move optimal re-assignment
  // (flow/matcher_backend.h). Moves are accepted on objective value, so
  // both engines walk the same descent path.
  MatcherBackendKind matcher = MatcherBackendKind::kSspa;
};

struct LocalSearchResult {
  McfsSolution solution;
  int rounds = 0;
  int swaps_applied = 0;
  int moves_evaluated = 0;
};

// Improves `start` (must be structurally valid; may be infeasible, in
// which case the search first tries to repair it) by single-facility
// swaps, re-assigning customers optimally after each tentative move.
// Steepest-descent over the sampled move set; terminates at a local
// minimum or after max_rounds.
LocalSearchResult ImproveByLocalSearch(const McfsInstance& instance,
                                       const McfsSolution& start,
                                       const LocalSearchOptions& options = {});

}  // namespace mcfs

#endif  // MCFS_CORE_LOCAL_SEARCH_H_
