#ifndef MCFS_CORE_SOLUTION_STATS_H_
#define MCFS_CORE_SOLUTION_STATS_H_

#include <string>
#include <vector>

#include "mcfs/core/instance.h"

namespace mcfs {

// Descriptive statistics of a solution, for reports and dashboards:
// distance distribution over customers and capacity utilization over
// the selected facilities.
struct SolutionStats {
  int assigned_customers = 0;
  int unassigned_customers = 0;

  // Distance distribution over assigned customers.
  double mean_distance = 0.0;
  double max_distance = 0.0;
  double median_distance = 0.0;
  double p90_distance = 0.0;
  double p99_distance = 0.0;

  // Capacity utilization over selected facilities.
  int facilities_used = 0;     // selected facilities with >= 1 customer
  int facilities_full = 0;     // selected facilities at capacity
  double mean_utilization = 0.0;  // load / capacity over selected
  int max_load = 0;

  // Per-selected-facility loads, aligned with solution.selected.
  std::vector<int> load;
};

// Computes the statistics; the solution must be structurally valid for
// the instance (see ValidateSolution).
SolutionStats ComputeSolutionStats(const McfsInstance& instance,
                                   const McfsSolution& solution);

// Renders the statistics as a short human-readable report.
std::string FormatSolutionStats(const SolutionStats& stats);

}  // namespace mcfs

#endif  // MCFS_CORE_SOLUTION_STATS_H_
