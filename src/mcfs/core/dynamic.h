#ifndef MCFS_CORE_DYNAMIC_H_
#define MCFS_CORE_DYNAMIC_H_

#include <cstdint>
#include <vector>

#include "mcfs/core/instance.h"
#include "mcfs/core/wma.h"

namespace mcfs {

// Dynamic MCFS — the use case motivating the paper's introduction
// ("the problem may need to be solved repeatedly... depending on which
// customers declare interest"). Maintains a mutable customer set over a
// fixed network and candidate-facility catalog, and re-solves on
// demand with a cheap warm-start policy:
//   * while the current facility selection still serves the updated
//     customer set well (feasible, and per-customer cost within
//     `reselect_ratio` of the last full solve), only the assignment is
//     recomputed (one optimal transportation);
//   * otherwise a full WMA re-selection runs and the baseline resets.
struct DynamicOptions {
  // Re-select facilities when the keep-selection per-customer cost
  // exceeds this multiple of the last full solve's per-customer cost.
  double reselect_ratio = 1.25;
  WmaOptions wma;
};

class DynamicMcfs {
 public:
  DynamicMcfs(const Graph* graph, std::vector<NodeId> facility_nodes,
              std::vector<int> capacities, int k,
              const DynamicOptions& options = {});

  // Registers a customer; returns its id. Ids are stable; removed ids
  // are not reused.
  int AddCustomer(NodeId node);
  // Removes a previously added customer. Safe to call once per id.
  void RemoveCustomer(int id);

  int num_active_customers() const { return num_active_; }

  // Re-solves for the current customer set and returns the solution
  // (assignments indexed by *active* customer order, see
  // ActiveCustomerIds). Also reports whether this call did a full
  // re-selection.
  const McfsSolution& Resolve(bool* reselected = nullptr);

  // Ids of the active customers, aligned with Resolve()'s assignment.
  std::vector<int> ActiveCustomerIds() const;

  // Instrumentation.
  int full_solves() const { return full_solves_; }
  int incremental_solves() const { return incremental_solves_; }

 private:
  McfsInstance CurrentInstance() const;

  const Graph* graph_;
  std::vector<NodeId> facility_nodes_;
  std::vector<int> capacities_;
  int k_;
  DynamicOptions options_;

  std::vector<NodeId> customer_nodes_;  // by id
  std::vector<uint8_t> active_;         // by id
  int num_active_ = 0;

  McfsSolution last_solution_;
  std::vector<int> last_selected_;
  double baseline_cost_per_customer_ = 0.0;
  bool have_baseline_ = false;
  int full_solves_ = 0;
  int incremental_solves_ = 0;
};

}  // namespace mcfs

#endif  // MCFS_CORE_DYNAMIC_H_
