#include "mcfs/core/instance.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "mcfs/common/thread_pool.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/flow/matcher_backend.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

const char* TerminationName(Termination termination) {
  switch (termination) {
    case Termination::kConverged:
      return "converged";
    case Termination::kDeadline:
      return "deadline";
    case Termination::kInfeasible:
      return "infeasible";
  }
  return "unknown";
}

double McfsInstance::Occupancy() const {
  if (k <= 0 || capacities.empty()) return 0.0;
  const double mean_capacity =
      std::accumulate(capacities.begin(), capacities.end(), 0.0) /
      capacities.size();
  if (mean_capacity <= 0.0) return 0.0;
  return static_cast<double>(m()) / (mean_capacity * k);
}

ValidationResult ValidateSolution(const McfsInstance& instance,
                                  const McfsSolution& solution,
                                  bool check_distances) {
  auto fail = [](const std::string& message) {
    return ValidationResult{false, message};
  };
  if (static_cast<int>(solution.selected.size()) > instance.k) {
    return fail("more than k facilities selected");
  }
  std::set<int> selected_set;
  for (const int j : solution.selected) {
    if (j < 0 || j >= instance.l()) return fail("selected index out of range");
    if (!selected_set.insert(j).second) return fail("duplicate selection");
  }
  if (solution.assignment.size() != instance.customers.size()) {
    return fail("assignment size mismatch");
  }
  std::vector<int> load(instance.l(), 0);
  double total = 0.0;
  for (int i = 0; i < instance.m(); ++i) {
    const int j = solution.assignment[i];
    if (j == -1) {
      if (solution.feasible) return fail("feasible solution left a customer unassigned");
      continue;
    }
    if (selected_set.count(j) == 0) {
      return fail("customer assigned to unselected facility");
    }
    if (++load[j] > instance.capacities[j]) {
      std::ostringstream msg;
      msg << "capacity of facility " << j << " exceeded";
      return fail(msg.str());
    }
    total += solution.distances[i];
  }
  if (std::abs(total - solution.objective) > 1e-6 * (1.0 + total)) {
    return fail("objective does not match the sum of distances");
  }
  if (check_distances) {
    for (const int j : solution.selected) {
      const std::vector<double> dist =
          ShortestPathsFrom(*instance.graph, instance.facility_nodes[j]);
      for (int i = 0; i < instance.m(); ++i) {
        if (solution.assignment[i] != j) continue;
        if (std::abs(dist[instance.customers[i]] - solution.distances[i]) >
            1e-6 * (1.0 + solution.distances[i])) {
          return fail("recorded distance differs from network distance");
        }
      }
    }
  }
  return {true, ""};
}

bool IsFeasible(const McfsInstance& instance) {
  if (instance.k > instance.l()) return false;
  const ComponentLabeling components = ConnectedComponents(*instance.graph);
  std::vector<int64_t> customers_in(components.num_components, 0);
  for (const NodeId c : instance.customers) {
    customers_in[components.component_of[c]]++;
  }
  std::vector<std::vector<int>> capacities_in(components.num_components);
  for (int j = 0; j < instance.l(); ++j) {
    capacities_in[components.component_of[instance.facility_nodes[j]]]
        .push_back(instance.capacities[j]);
  }
  int64_t required = 0;
  for (int g = 0; g < components.num_components; ++g) {
    if (customers_in[g] == 0) continue;
    auto& caps = capacities_in[g];
    std::sort(caps.begin(), caps.end(), std::greater<int>());
    int64_t remaining = customers_in[g];
    for (const int c : caps) {
      if (remaining <= 0) break;
      remaining -= c;
      ++required;
    }
    if (remaining > 0) return false;  // component cannot be covered
  }
  return required <= instance.k;
}

McfsSolution AssignOptimally(const McfsInstance& instance,
                             const std::vector<int>& selected, int threads,
                             MatcherBackendKind matcher) {
  std::vector<NodeId> nodes;
  std::vector<int> capacities;
  nodes.reserve(selected.size());
  int64_t total_capacity = 0;
  for (const int j : selected) {
    nodes.push_back(instance.facility_nodes[j]);
    capacities.push_back(instance.capacities[j]);
    total_capacity += instance.capacities[j];
  }
  MatchShape shape;
  shape.customers = instance.m();
  shape.facilities = static_cast<int64_t>(selected.size());
  shape.total_capacity = total_capacity;
  const MatcherBackendKind resolved = ResolveMatcherBackend(matcher, shape);
  if (resolved == MatcherBackendKind::kSspa) {
    // Kept on the pre-registry inline path so SSPA results stay
    // bit-identical to the seed behavior.
    IncrementalMatcher sspa(instance.graph, instance.customers, nodes,
                            capacities);
    return AssignWithMatcher(instance, selected, sspa, threads);
  }
  const BatchMatchResult batch =
      MakeMatcherBackend(resolved)->Match(instance.graph, instance.customers,
                                          nodes, capacities, threads);
  McfsSolution solution;
  solution.selected = selected;
  solution.assignment.assign(instance.m(), -1);
  solution.distances.assign(instance.m(), 0.0);
  solution.feasible = batch.all_assigned;
  for (const MatchedPair& pair : batch.pairs) {
    solution.assignment[pair.customer] = selected[pair.facility];
    solution.distances[pair.customer] = pair.distance;
    solution.objective += pair.distance;
  }
  return solution;
}

McfsSolution AssignWithMatcher(const McfsInstance& instance,
                               const std::vector<int>& selected,
                               IncrementalMatcher& matcher, int threads) {
  McfsSolution solution;
  solution.selected = selected;
  solution.assignment.assign(instance.m(), -1);
  solution.distances.assign(instance.m(), 0.0);
  if (ResolveThreadCount(threads) > 1) {
    // Every still-unassigned customer needs one assignment plus the
    // threshold lookahead; front-load those two stream entries in
    // parallel. On a fresh matcher every customer qualifies.
    std::vector<int> counts(instance.m(), 0);
    for (int i = 0; i < instance.m(); ++i) {
      if (matcher.CustomerMatchCount(i) < 1) counts[i] = 2;
    }
    matcher.PrefetchCandidates(counts, threads);
  }
  bool all_ok = true;
  for (int i = 0; i < instance.m(); ++i) {
    if (matcher.CustomerMatchCount(i) >= 1) continue;  // warm-adopted
    if (!matcher.FindPair(i)) all_ok = false;
  }
  solution.feasible = all_ok;
  for (const MatchedPair& pair : matcher.MatchedPairs()) {
    solution.assignment[pair.customer] = selected[pair.facility];
    solution.distances[pair.customer] = pair.distance;
    solution.objective += pair.distance;
  }
  return solution;
}

}  // namespace mcfs
