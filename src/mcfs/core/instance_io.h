#ifndef MCFS_CORE_INSTANCE_IO_H_
#define MCFS_CORE_INSTANCE_IO_H_

#include <optional>
#include <string>

#include "mcfs/core/instance.h"

namespace mcfs {

// Plain-text persistence for instances and solutions, so repeated /
// dynamic planning workflows (and the CLI example) can store and reload
// problems. The graph itself is saved separately via SaveGraph.
//
// Instance format:
//   "MCFS 1"
//   "<m> <l> <k>"
//   m lines: customer node id
//   l lines: "<facility node id> <capacity>"
bool SaveInstance(const McfsInstance& instance, const std::string& path);

// Loads an instance; `graph` must be the network it was built against
// (node ids are validated against it). nullopt on failure.
std::optional<McfsInstance> LoadInstance(const Graph* graph,
                                         const std::string& path);

// Solution format:
//   "MCFSSOL 1"
//   "<num_selected> <m> <objective> <feasible>"
//   selected facility indices (one line)
//   m lines: "<assignment> <distance>"
bool SaveSolution(const McfsSolution& solution, const std::string& path);

std::optional<McfsSolution> LoadSolution(const std::string& path);

}  // namespace mcfs

#endif  // MCFS_CORE_INSTANCE_IO_H_
