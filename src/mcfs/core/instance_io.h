#ifndef MCFS_CORE_INSTANCE_IO_H_
#define MCFS_CORE_INSTANCE_IO_H_

#include <optional>
#include <string>

#include "mcfs/common/status.h"
#include "mcfs/core/instance.h"

namespace mcfs {

// Plain-text persistence for instances and solutions, so repeated /
// dynamic planning workflows (and the CLI example) can store and reload
// problems. The graph itself is saved separately via WriteGraph.
//
// The Status API is primary (line-numbered parse diagnostics, typed
// kIoError/kInvalidInput codes; DESIGN.md §4.8); the bool/optional
// Save*/Load* signatures are thin deprecated shims.
//
// Instance format:
//   "MCFS 1"
//   "<m> <l> <k>"
//   m lines: customer node id
//   l lines: "<facility node id> <capacity>"
Status WriteInstance(const McfsInstance& instance, const std::string& path);

// Loads an instance; `graph` must be the network it was built against
// (node ids are validated against it). kIoError when the file cannot
// be opened; kInvalidInput with the offending line number for bad
// magic/version, negative counts, counts larger than the file could
// hold, out-of-range node ids, and negative capacities.
StatusOr<McfsInstance> ReadInstance(const Graph* graph,
                                    const std::string& path);

// Solution format:
//   "MCFSSOL 1"
//   "<num_selected> <m> <objective> <feasible>"
//   selected facility indices (one line)
//   m lines: "<assignment> <distance>"
Status WriteSolution(const McfsSolution& solution, const std::string& path);

StatusOr<McfsSolution> ReadSolution(const std::string& path);

// Consistency of a (possibly reloaded) solution against the instance it
// claims to solve: matching customer count, selected facility indices
// in [0, l) and within the k budget, every assignment either -1 or a
// selected facility, finite nonnegative distances. Structural only —
// the independent verifier (core/verifier.h) re-derives distances and
// capacities on top of this.
Status CheckSolutionAgainstInstance(const McfsSolution& solution,
                                    const McfsInstance& instance);

// Deprecated: use WriteInstance. Returns false on any failure.
bool SaveInstance(const McfsInstance& instance, const std::string& path);

// Deprecated: use ReadInstance. Collapses the diagnostic to nullopt.
std::optional<McfsInstance> LoadInstance(const Graph* graph,
                                         const std::string& path);

// Deprecated: use WriteSolution. Returns false on any failure.
bool SaveSolution(const McfsSolution& solution, const std::string& path);

// Deprecated: use ReadSolution. Collapses the diagnostic to nullopt.
std::optional<McfsSolution> LoadSolution(const std::string& path);

}  // namespace mcfs

#endif  // MCFS_CORE_INSTANCE_IO_H_
