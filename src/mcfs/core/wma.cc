#include "mcfs/core/wma.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "mcfs/common/check.h"
#include "mcfs/common/random.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/repair.h"
#include "mcfs/core/set_cover.h"
#include "mcfs/core/validate.h"
#include "mcfs/flow/cost_scaling.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/flow/matcher_backend.h"
#include "mcfs/graph/facility_stream.h"
#include "mcfs/obs/flight_recorder.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {

namespace {

// Greedy demand satisfaction used by WMA Naive (Sec. VII-A): per
// iteration, customers are processed in a random order and each takes
// its nearest d_i candidate facilities that still have spare capacity —
// no rewiring. Nearest-facility orders are cached per customer and
// extended lazily from the network.
class GreedyDemandMatcher {
 public:
  explicit GreedyDemandMatcher(const McfsInstance& instance)
      : instance_(instance),
        facility_index_of_node_(instance.graph->NumNodes(), -1),
        cache_(instance.m()),
        streams_(instance.m()) {
    for (int j = 0; j < instance.l(); ++j) {
      facility_index_of_node_[instance.facility_nodes[j]] = j;
    }
  }

  // Advance-only phase: extends every customer's cached nearest-facility
  // order to at least demand[i] entries, running the per-customer
  // Dijkstras on up to `threads` threads. Each parallel index touches
  // only its own customer's cache and stream, so the cached orders are
  // identical for any thread count; AssignDemands then mostly consumes
  // cache hits (falling back to inline extension when full facilities
  // force a customer further down its order).
  void Prefetch(const std::vector<int>& demand, int threads) {
    if (ResolveThreadCount(threads) <= 1) return;
    ParallelFor(
        0, instance_.m(), /*grain=*/1,
        [&](int64_t i) {
          const int customer = static_cast<int>(i);
          ExtendCache(customer, demand[customer]);
        },
        threads);
  }

  // Rebuilds the full exploratory assignment for the given demands.
  void AssignDemands(const std::vector<int>& demand, Rng& rng,
                     std::vector<std::vector<int>>* sigma,
                     std::vector<double>* matched_cost,
                     std::vector<uint8_t>* saturated) {
    const int m = instance_.m();
    const int l = instance_.l();
    sigma->assign(l, {});
    matched_cost->assign(l, 0.0);
    saturated->assign(m, 0);
    std::vector<int> load(l, 0);
    std::vector<int> order(m);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    for (const int i : order) {
      int taken = 0;
      for (size_t idx = 0; taken < demand[i]; ++idx) {
        const FacilityAtDistance* entry = CachedAt(i, idx);
        if (entry == nullptr) {
          (*saturated)[i] = 1;
          break;
        }
        if (load[entry->facility] < instance_.capacities[entry->facility]) {
          load[entry->facility]++;
          (*sigma)[entry->facility].push_back(i);
          (*matched_cost)[entry->facility] += entry->distance;
          ++taken;
        }
      }
    }
  }

  // Final single assignment restricted to the selected facilities.
  McfsSolution AssignFinal(const std::vector<int>& selected, Rng& rng) {
    McfsSolution solution;
    solution.selected = selected;
    solution.assignment.assign(instance_.m(), -1);
    solution.distances.assign(instance_.m(), 0.0);
    std::vector<uint8_t> in_selection(instance_.l(), 0);
    for (const int j : selected) in_selection[j] = 1;
    std::vector<int> load(instance_.l(), 0);
    std::vector<int> order(instance_.m());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    solution.feasible = true;
    for (const int i : order) {
      for (size_t idx = 0;; ++idx) {
        const FacilityAtDistance* entry = CachedAt(i, idx);
        if (entry == nullptr) {
          solution.feasible = false;
          break;
        }
        const int j = entry->facility;
        if (in_selection[j] && load[j] < instance_.capacities[j]) {
          load[j]++;
          solution.assignment[i] = j;
          solution.distances[i] = entry->distance;
          solution.objective += entry->distance;
          break;
        }
      }
    }
    return solution;
  }

 private:
  // Extends `customer`'s cached nearest-facility order to `target`
  // entries (or until the component runs out of candidates).
  void ExtendCache(int customer, size_t target) {
    auto& cache = cache_[customer];
    while (cache.size() < target) {
      if (streams_[customer] == nullptr) {
        streams_[customer] = std::make_unique<NearestFacilityStream>(
            instance_.graph, instance_.customers[customer],
            &facility_index_of_node_);
      }
      std::optional<FacilityAtDistance> next = streams_[customer]->Pop();
      if (!next.has_value()) return;
      cache.push_back(*next);
    }
  }

  // idx-th nearest candidate facility of `customer`, extending the
  // cache from the network stream on demand; nullptr when exhausted.
  const FacilityAtDistance* CachedAt(int customer, size_t idx) {
    auto& cache = cache_[customer];
    if (cache.size() <= idx) ExtendCache(customer, idx + 1);
    if (cache.size() <= idx) return nullptr;
    return &cache[idx];
  }

  const McfsInstance& instance_;
  std::vector<int> facility_index_of_node_;
  std::vector<std::vector<FacilityAtDistance>> cache_;
  std::vector<std::unique_ptr<NearestFacilityStream>> streams_;
};

int64_t DefaultIterationCap(const McfsInstance& instance) {
  return static_cast<int64_t>(instance.m()) * std::max(instance.l(), 1) + 10;
}

// Greedy node-keyed mapping of this run's customers onto seed
// customers: each customer adopts the first unused seed customer on the
// same graph node (co-located customers are interchangeable — streams
// are node-pure and an optimal matching stays optimal under any
// permutation of equals). seed_of[i] = seed index or -1. Seed customers
// flagged in `skip` are never handed out.
std::vector<int> MapSeedCustomers(
    const std::vector<NodeId>& customers,
    const std::vector<WarmSeedCustomer>& seed_customers,
    const std::vector<uint8_t>& skip) {
  std::unordered_map<NodeId, std::vector<int>> by_node;
  by_node.reserve(seed_customers.size());
  // Reverse insertion so pop_back hands out seed indices in ascending
  // order.
  for (int s = static_cast<int>(seed_customers.size()) - 1; s >= 0; --s) {
    if (s < static_cast<int>(skip.size()) && skip[s] != 0) continue;
    by_node[seed_customers[s].node].push_back(s);
  }
  std::vector<int> seed_of(customers.size(), -1);
  for (size_t i = 0; i < customers.size(); ++i) {
    auto it = by_node.find(customers[i]);
    if (it == by_node.end() || it->second.empty()) continue;
    seed_of[i] = it->second.back();
    it->second.pop_back();
  }
  return seed_of;
}

bool SameNodeSet(std::vector<NodeId> a, std::vector<NodeId> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

WmaResult RunWma(const McfsInstance& instance, const WmaOptions& options) {
  MCFS_CHECK(instance.graph != nullptr);
  MCFS_CHECK_GT(instance.m(), 0);
  MCFS_CHECK_GT(instance.l(), 0);
  MCFS_CHECK_GT(instance.k, 0);

  if (options.metrics) obs::EnableMetrics(true);
  // Request-scoped attribution (DESIGN.md §4.11): install the caller's
  // trace context for the whole run, so every span / flight event /
  // histogram exemplar below — including those emitted by ParallelFor
  // workers, which inherit the dispatching context — carries it. With
  // trace_id == 0 the caller's already-installed context (if any) is
  // kept.
  obs::ScopedTraceContext trace_scope(
      options.trace_id != 0 ? options.trace_id : obs::CurrentTraceId());
  MCFS_SPAN("wma/run");
  MCFS_RECORD("wma/run_begin", instance.m(), instance.l());
  WallTimer total_timer;
  WmaResult result;
  const int m = instance.m();
  const int l = instance.l();

  std::vector<int> demand(m, 1);
  std::vector<uint8_t> saturated(m, 0);
  std::vector<int64_t> last_selected(l, -1);
  std::vector<std::vector<int>> sigma(l);
  std::vector<double> matched_cost(l, 0.0);
  Rng rng(options.seed);

  std::unique_ptr<IncrementalMatcher> matcher;
  std::unique_ptr<GreedyDemandMatcher> greedy;
  if (options.naive) {
    greedy = std::make_unique<GreedyDemandMatcher>(instance);
  } else {
    matcher = std::make_unique<IncrementalMatcher>(
        instance.graph, instance.customers, instance.facility_nodes,
        instance.capacities);
  }

  // Warm start (DESIGN.md §4.10). The trajectory matcher only adopts
  // *stream prefixes* — discovery sequences are pure functions of
  // (graph, source, candidate membership), so the demand-growth loop
  // replays bit-identically to a cold run while skipping the network
  // Dijkstras. No matches or potentials are adopted here; that could
  // steer CheckCover onto a different selection than cold.
  const WmaWarmSeed* warm = options.naive ? nullptr : options.warm_seed.get();
  if (warm != nullptr && !warm->trajectory.customers.empty()) {
    MCFS_SPAN("wma/warm_seed_streams");
    const std::vector<int> seed_of = MapSeedCustomers(
        instance.customers, warm->trajectory.customers,
        options.warm_stream_invalid);
    for (int i = 0; i < m; ++i) {
      if (seed_of[i] < 0) continue;
      const WarmSeedCustomer& sc = warm->trajectory.customers[seed_of[i]];
      matcher->SeedStreamPrefix(i, sc);
      result.stats.warm_stream_entries +=
          static_cast<int64_t>(sc.edges.size() + sc.buffered.size());
    }
    MCFS_COUNT("wma/warm_stream_entries", result.stats.warm_stream_entries);
    MCFS_RECORD("wma/warm_seed_streams", result.stats.warm_stream_entries,
                static_cast<int64_t>(warm->trajectory.customers.size()));
  }

  // Cooperative deadline (DESIGN.md §4.8): polled at the iteration top,
  // per-customer augmentation boundaries, and inside the CheckCover
  // scan. When it fires the demand-growth loop stops, but the wrap-up
  // (SelectGreedy / CoverComponents / final assignment) still runs, so
  // the result is the best-so-far feasible solution — anytime behavior,
  // never an abort. Without a deadline `expired` is one branch.
  const Deadline deadline =
      options.deadline_ms > 0
          ? Deadline::AfterMillis(static_cast<double>(options.deadline_ms))
          : options.deadline;
  auto expired = [&deadline, &options]() {
    return deadline.Expired() ||
           (options.cancel != nullptr && options.cancel->Cancelled());
  };
  bool deadline_fired = false;

  int64_t max_iterations = options.max_iterations > 0
                               ? options.max_iterations
                               : DefaultIterationCap(instance);
  const bool feasible_instance = IsFeasible(instance);
  if (!feasible_instance) {
    // No selection of k facilities can cover every customer, so the
    // cover-driven demand growth would never terminate on its own
    // (customers explore all l candidates in vain). Run a handful of
    // enrichment iterations for a good partial cover and stop.
    max_iterations = std::min<int64_t>(max_iterations, 8);
  }
  // Batched stream prefetch (parallel execution layer): before each
  // matching phase every unsaturated customer's nearest-facility stream
  // is advanced in parallel so the first B candidates — B derived from
  // the current demand vector — are already cached when the serial
  // FindPair/SSPA consumes them. Thread count 1 skips the batch and the
  // matcher pays each Dijkstra inline, exactly as before.
  const int threads = ResolveThreadCount(options.threads);
  std::vector<int> prefetch_counts;
  CoverResult cover;
  for (int64_t iteration = 0; iteration < max_iterations; ++iteration) {
    if (expired()) {
      deadline_fired = true;
      break;
    }
    MCFS_SPAN("wma/iteration");
    MCFS_COUNT("wma/iterations", 1);
    MCFS_RECORD("wma/phase/iteration", iteration, 0);
    const int64_t dijkstra_runs_before =
        matcher != nullptr ? matcher->num_dijkstra_runs() : 0;
    const int64_t edges_before =
        matcher != nullptr ? matcher->num_edges_materialized() : 0;

    double matching_seconds = 0.0;
    {
      MCFS_SPAN("wma/matching");
      ScopedTimer matching_timer(&matching_seconds, "wma/matching_seconds");
      if (options.naive) {
        if (threads > 1) {
          MCFS_SPAN("wma/prefetch");
          ScopedTimer prefetch_timer(&result.stats.prefetch_seconds,
                                     "wma/prefetch_seconds");
          greedy->Prefetch(demand, threads);
        }
        greedy->AssignDemands(demand, rng, &sigma, &matched_cost,
                              &saturated);
      } else {
        if (threads > 1) {
          MCFS_SPAN("wma/prefetch");
          ScopedTimer prefetch_timer(&result.stats.prefetch_seconds,
                                     "wma/prefetch_seconds");
          prefetch_counts.assign(m, 0);
          for (int i = 0; i < m; ++i) {
            if (saturated[i]) continue;
            const int deficit = demand[i] - matcher->CustomerMatchCount(i);
            // +1 buffers the lookahead entry FindPair peeks for the
            // Theorem-1 threshold.
            if (deficit > 0) prefetch_counts[i] = deficit + 1;
          }
          matcher->PrefetchCandidates(prefetch_counts, threads);
        }
        for (int i = 0; i < m && !deadline_fired; ++i) {
          while (!saturated[i] &&
                 matcher->CustomerMatchCount(i) < demand[i]) {
            if (!matcher->FindPair(i)) saturated[i] = 1;
          }
          // Augmentation boundary: abandoning the remaining customers
          // leaves the matching state consistent (every accepted
          // augmentation is complete).
          if (expired()) deadline_fired = true;
        }
        for (int j = 0; j < l; ++j) {
          sigma[j].clear();
          matched_cost[j] = 0.0;
        }
        for (const MatchedPair& pair : matcher->MatchedPairs()) {
          sigma[pair.facility].push_back(pair.customer);
          matched_cost[pair.facility] += pair.distance;
        }
      }
    }
    result.stats.matching_seconds += matching_seconds;
    MCFS_HISTOGRAM("wma/matching_seconds", matching_seconds);
    if (deadline_fired) {
      MCFS_RECORD("wma/deadline_hit", iteration, /*phase=matching*/ 0);
      break;  // keep the previous iteration's cover
    }

    double cover_seconds = 0.0;
    {
      MCFS_SPAN("wma/cover");
      ScopedTimer cover_timer(&cover_seconds, "wma/cover_seconds");
      CoverInput input;
      input.num_customers = m;
      input.k = instance.k;
      input.customers_of_facility = &sigma;
      input.demand = &demand;
      input.demand_cap = l;
      input.saturated = &saturated;
      if (options.cost_tie_break) input.matched_cost = &matched_cost;
      if (!deadline.never_expires()) input.deadline = &deadline;
      cover = CheckCover(input, last_selected, iteration);
      if (cover.deadline_expired) deadline_fired = true;
    }
    result.stats.cover_seconds += cover_seconds;
    MCFS_HISTOGRAM("wma/cover_seconds", cover_seconds);
    result.stats.iterations = static_cast<int>(iteration) + 1;

    if (options.collect_iteration_stats) {
      const int covered = static_cast<int>(
          std::count(cover.covered.begin(), cover.covered.end(), 1));
      WmaIterationStats iter_stats;
      iter_stats.iteration = static_cast<int>(iteration) + 1;
      iter_stats.covered_customers = covered;
      iter_stats.matching_seconds = matching_seconds;
      iter_stats.cover_seconds = cover_seconds;
      if (matcher != nullptr) {
        iter_stats.dijkstra_runs =
            matcher->num_dijkstra_runs() - dijkstra_runs_before;
        iter_stats.edges_materialized =
            matcher->num_edges_materialized() - edges_before;
      }
      result.stats.per_iteration.push_back(iter_stats);
    }
    if (deadline_fired) {
      MCFS_RECORD("wma/deadline_hit", iteration, /*phase=cover*/ 1);
      break;  // partial greedy prefix is still usable
    }
    if (cover.all_delta_zero) break;
    int64_t demand_increments = 0;
    for (int i = 0; i < m; ++i) {
      if (cover.delta_demand[i]) {
        demand[i]++;
        ++demand_increments;
      }
    }
    MCFS_COUNT("wma/demand_increments", demand_increments);
  }

  std::vector<int> selected = cover.selected;
  if (static_cast<int>(selected.size()) < instance.k) {
    SelectGreedy(instance, selected);
  }
  if (!cover.fully_covered) {
    CoverComponents(instance, selected);
  }

  std::unique_ptr<IncrementalMatcher> final_matcher;
  {
    MCFS_SPAN("wma/final_assign");
    MCFS_RECORD("wma/phase/final_assign",
                static_cast<int64_t>(selected.size()),
                result.stats.iterations);
    ScopedTimer final_timer(&result.stats.final_assign_seconds,
                            "wma/final_assign_seconds");
    if (options.naive) {
      result.solution = greedy->AssignFinal(selected, rng);
      if (!result.solution.feasible) {
        // Greedy assignment can dead-end on feasible instances (capacity
        // grabbed by the wrong customers); fall back to one matching.
        result.solution = AssignOptimally(instance, selected, options.threads,
                                          options.matcher);
      }
    } else {
      std::vector<NodeId> selected_nodes;
      std::vector<int> selected_caps;
      selected_nodes.reserve(selected.size());
      selected_caps.reserve(selected.size());
      int64_t selected_capacity = 0;
      for (const int j : selected) {
        selected_nodes.push_back(instance.facility_nodes[j]);
        selected_caps.push_back(instance.capacities[j]);
        selected_capacity += instance.capacities[j];
      }
      MatchShape final_shape;
      final_shape.customers = m;
      final_shape.facilities = static_cast<int64_t>(selected.size());
      final_shape.total_capacity = selected_capacity;
      final_shape.warm =
          warm != nullptr && (!warm->final_assign.customers.empty() ||
                              !warm->trajectory.customers.empty());
      const MatcherBackendKind final_backend =
          ResolveMatcherBackend(options.matcher, final_shape);
      result.stats.matcher_backend = MatcherBackendName(final_backend);
      if (final_backend == MatcherBackendKind::kCostScaling) {
        if (final_shape.warm) {
          // Cost scaling cannot resume a warm seed; record the typed
          // refusal and solve cold (the seed stays valid for a later
          // SSPA epoch — nothing is consumed or invalidated here).
          const Status refusal = CostScalingMatcher::WarmSeedStatus();
          MCFS_DCHECK(refusal.code() == StatusCode::kUnsupported);
          ++result.stats.warm_backend_refusals;
          MCFS_COUNT("wma/warm_backend_refusals", 1);
          MCFS_RECORD("wma/warm/backend_refusal",
                      static_cast<int64_t>(refusal.code()), 0);
        }
        result.solution =
            AssignOptimally(instance, selected, options.threads,
                            MatcherBackendKind::kCostScaling);
      } else {
        final_matcher = std::make_unique<IncrementalMatcher>(
            instance.graph, instance.customers, selected_nodes, selected_caps);
        if (warm != nullptr && !warm->final_assign.customers.empty() &&
            SameNodeSet(selected_nodes, warm->final_assign.facility_nodes)) {
          // Same facility node set as last epoch: resume the previous
          // matching wholesale. Per-edge dual re-validation plus the
          // invalidation masks shed exactly what a delta broke; the
          // FindPair re-runs inside AssignWithMatcher then repair only
          // those customers, and the result is again an optimal matching
          // — equal in objective to a cold solve.
          const std::vector<int> seed_of = MapSeedCustomers(
              instance.customers, warm->final_assign.customers,
              options.warm_stream_invalid);
          std::vector<uint8_t> adopt_match(m, 1);
          for (int i = 0; i < m; ++i) {
            const int s = seed_of[i];
            if (s >= 0 &&
                s < static_cast<int>(options.warm_match_invalid.size()) &&
                options.warm_match_invalid[s] != 0) {
              adopt_match[i] = 0;
            }
          }
          final_matcher->ResumeFrom(warm->final_assign, seed_of, adopt_match);
          result.stats.warm_final_resumed = true;
          MCFS_RECORD("wma/warm/final_resumed", m, 0);
          for (int i = 0; i < m; ++i) {
            if (final_matcher->CustomerMatchCount(i) >= 1) {
              ++result.stats.warm_customers_reused;
            } else {
              ++result.stats.warm_customers_repaired;
            }
          }
          MCFS_COUNT("wma/warm_customers_reused",
                     result.stats.warm_customers_reused);
          MCFS_COUNT("wma/warm_customers_repaired",
                     result.stats.warm_customers_repaired);
        } else if (warm != nullptr && !warm->trajectory.customers.empty()) {
          // Selection changed: the matching cannot be resumed, but the
          // full-catalog discovery prefixes filtered down to the selected
          // subset still spare most of the final matcher's Dijkstra work
          // (a sub-membership sequence is the filtered super-membership
          // sequence).
          const std::vector<int> seed_of = MapSeedCustomers(
              instance.customers, warm->trajectory.customers,
              options.warm_stream_invalid);
          for (int i = 0; i < m; ++i) {
            if (seed_of[i] < 0) continue;
            final_matcher->SeedStreamPrefix(
                i, warm->trajectory.customers[seed_of[i]]);
          }
        }
        result.solution =
            AssignWithMatcher(instance, selected, *final_matcher,
                              options.threads);
      }
    }
  }
  if (options.export_warm_seed && matcher != nullptr) {
    MCFS_SPAN("wma/warm_seed_export");
    auto seed_out = std::make_shared<WmaWarmSeed>();
    seed_out->trajectory = matcher->ExportWarmSeed();
    // A cost-scaling final assignment has no matcher snapshot to
    // export; final_assign stays empty and the next epoch re-matches
    // from the seeded trajectory streams.
    if (final_matcher != nullptr) {
      seed_out->final_assign = final_matcher->ExportWarmSeed();
    }
    result.warm_seed = std::move(seed_out);
  }
  if (matcher != nullptr) {
    result.stats.dijkstra_runs = matcher->num_dijkstra_runs();
    result.stats.edges_materialized = matcher->num_edges_materialized();
    result.stats.theorem1_prunes = matcher->num_theorem1_prunes();
    result.stats.rewirings = matcher->num_rewirings();
    result.stats.label_correcting_runs =
        matcher->num_label_correcting_runs();
  }
  MCFS_COUNT("wma/saturated_customers",
             std::count(saturated.begin(), saturated.end(), 1));
  Termination termination = Termination::kConverged;
  if (!feasible_instance) {
    termination = Termination::kInfeasible;
  } else if (deadline_fired) {
    termination = Termination::kDeadline;
    MCFS_COUNT("wma/deadline_exits", 1);
  }
  result.solution.termination = termination;
  result.stats.termination = termination;
  result.stats.total_seconds = total_timer.Seconds();
  MCFS_HISTOGRAM("wma/total_seconds", result.stats.total_seconds);
  MCFS_RECORD("wma/run_end", static_cast<int64_t>(termination),
              result.stats.iterations);
  return result;
}

WmaResult RunUniformFirstWma(const McfsInstance& instance,
                             const WmaOptions& options) {
  if (options.metrics) obs::EnableMetrics(true);
  MCFS_SPAN("wma/uniform_first");
  WallTimer total_timer;
  // Phase 1: pretend capacities are uniform at the average value.
  const double mean_capacity =
      std::accumulate(instance.capacities.begin(), instance.capacities.end(),
                      0.0) /
      std::max(instance.l(), 1);
  McfsInstance uniform = instance;
  uniform.capacities.assign(
      instance.l(),
      std::max(1, static_cast<int>(std::lround(mean_capacity))));
  // Materialize deadline_ms here so both phases share one budget (the
  // wrap-up below runs to completion regardless, as in RunWma).
  WmaOptions phase_options = options;
  if (options.deadline_ms > 0) {
    phase_options.deadline =
        Deadline::AfterMillis(static_cast<double>(options.deadline_ms));
    phase_options.deadline_ms = 0;
  }
  WmaResult phase1 = RunWma(uniform, phase_options);

  // Phase 2: keep the selected locations, reassign under the true
  // nonuniform capacities (repairing component feasibility if the
  // uniform pretense over-promised capacity somewhere).
  std::vector<int> selected = phase1.solution.selected;
  CoverComponents(instance, selected);
  WmaResult result;
  result.stats = phase1.stats;
  result.solution =
      AssignOptimally(instance, selected, options.threads, options.matcher);
  if (!result.solution.feasible) {
    // A second repair attempt with greedy extension, then reassign.
    SelectGreedy(instance, selected);
    CoverComponents(instance, selected);
    result.solution =
        AssignOptimally(instance, selected, options.threads, options.matcher);
  }
  // Phase 1 judged feasibility of the *uniform* pretense; re-derive the
  // verdict for the true instance, keeping any deadline cut from it.
  Termination termination = Termination::kConverged;
  if (!IsFeasible(instance)) {
    termination = Termination::kInfeasible;
  } else if (phase1.stats.termination == Termination::kDeadline) {
    termination = Termination::kDeadline;
  }
  result.solution.termination = termination;
  result.stats.termination = termination;
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

StatusOr<WmaResult> SolveWma(const McfsInstance& instance,
                             const WmaOptions& options) {
  Status status = ValidateInstance(instance);
  if (!status.ok()) return status;
  if (instance.m() == 0) {
    // Nothing to serve; RunWma requires m > 0, so short-circuit the
    // trivial empty solution here.
    WmaResult result;
    result.solution.feasible = true;
    return result;
  }
  // ValidateInstance passing with m > 0 implies l > 0 and k > 0 (a
  // component with customers but no facilities, or a budget below the
  // per-component minimum, is kInfeasible), so RunWma's preconditions
  // hold.
  return RunWma(instance, options);
}

}  // namespace mcfs
