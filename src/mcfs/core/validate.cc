#include "mcfs/core/validate.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_set>

namespace mcfs {

std::string ComponentDiagnosis::ToString() const {
  std::ostringstream out;
  out << "component " << component << ": " << customers << " customers, "
      << num_facilities << " facilities with total capacity "
      << capacity_sum;
  if (min_facilities_needed < 0) {
    out << " (short by " << customers - capacity_sum << ")";
  } else {
    out << " (needs " << min_facilities_needed << " facilities)";
  }
  return out.str();
}

std::string InstanceDiagnosis::ToString() const {
  std::ostringstream out;
  out << status.ToString();
  for (const std::string& problem : problems) out << "\n  " << problem;
  for (const ComponentDiagnosis& c : infeasible_components) {
    out << "\n  " << c.ToString();
  }
  out << "\n  demand " << total_demand << ", capacity " << total_capacity
      << ", facilities required " << required_facilities;
  return out.str();
}

InstanceDiagnosis DiagnoseInstance(const McfsInstance& instance) {
  InstanceDiagnosis diagnosis;
  diagnosis.total_demand = instance.m();

  // --- Structural checks (kInvalidInput). Collect every defect so a
  // caller sees the full list, not just the first.
  std::vector<std::string>& problems = diagnosis.problems;
  if (instance.graph == nullptr) {
    problems.push_back("instance has no graph attached");
  }
  if (instance.k < 0) {
    problems.push_back("negative facility budget k = " +
                       std::to_string(instance.k));
  }
  if (instance.capacities.size() != instance.facility_nodes.size()) {
    problems.push_back(
        std::to_string(instance.facility_nodes.size()) +
        " facility nodes but " + std::to_string(instance.capacities.size()) +
        " capacities");
  }
  const int num_nodes =
      instance.graph == nullptr ? 0 : instance.graph->NumNodes();
  for (int i = 0; i < instance.m(); ++i) {
    const NodeId c = instance.customers[i];
    if (c < 0 || c >= num_nodes) {
      problems.push_back("customer " + std::to_string(i) + " at node " +
                         std::to_string(c) + " out of range [0, " +
                         std::to_string(num_nodes) + ")");
    }
  }
  std::unordered_set<NodeId> seen_facility_nodes;
  for (int j = 0; j < instance.l(); ++j) {
    const NodeId node = instance.facility_nodes[j];
    if (node < 0 || node >= num_nodes) {
      problems.push_back("facility " + std::to_string(j) + " at node " +
                         std::to_string(node) + " out of range [0, " +
                         std::to_string(num_nodes) + ")");
    } else if (!seen_facility_nodes.insert(node).second) {
      problems.push_back("duplicate facility node " + std::to_string(node) +
                         " (facility " + std::to_string(j) + ")");
    }
    if (j < static_cast<int>(instance.capacities.size()) &&
        instance.capacities[j] < 0) {
      problems.push_back("facility " + std::to_string(j) +
                         " has negative capacity " +
                         std::to_string(instance.capacities[j]));
    }
  }
  if (!problems.empty()) {
    diagnosis.status = InvalidInputError(
        std::to_string(problems.size()) +
        " structural problem(s); first: " + problems.front());
    return diagnosis;
  }
  for (const int c : instance.capacities) diagnosis.total_capacity += c;

  // --- Feasibility (kInfeasible): the Theorem-3 accounting from
  // IsFeasible, kept in lockstep with it, but retaining the per-component
  // evidence instead of a bare bool.
  const ComponentLabeling components = ConnectedComponents(*instance.graph);
  std::vector<int64_t> customers_in(components.num_components, 0);
  for (const NodeId c : instance.customers) {
    customers_in[components.component_of[c]]++;
  }
  std::vector<std::vector<int>> capacities_in(components.num_components);
  for (int j = 0; j < instance.l(); ++j) {
    capacities_in[components.component_of[instance.facility_nodes[j]]]
        .push_back(instance.capacities[j]);
  }
  for (int g = 0; g < components.num_components; ++g) {
    if (customers_in[g] == 0) continue;
    std::vector<int>& caps = capacities_in[g];
    std::sort(caps.begin(), caps.end(), std::greater<int>());
    ComponentDiagnosis cd;
    cd.component = g;
    cd.customers = customers_in[g];
    cd.num_facilities = static_cast<int>(caps.size());
    int64_t remaining = cd.customers;
    for (const int c : caps) {
      cd.capacity_sum += c;
      if (remaining > 0) {
        remaining -= c;
        ++cd.min_facilities_needed;
      }
    }
    if (remaining > 0) {
      cd.min_facilities_needed = -1;
      diagnosis.infeasible_components.push_back(cd);
    } else {
      diagnosis.required_facilities += cd.min_facilities_needed;
    }
  }
  if (!diagnosis.infeasible_components.empty()) {
    std::ostringstream msg;
    msg << diagnosis.infeasible_components.size()
        << " component(s) lack capacity for their customers; first: "
        << diagnosis.infeasible_components.front().ToString();
    diagnosis.status = InfeasibleError(msg.str());
    return diagnosis;
  }
  if (diagnosis.required_facilities > instance.k) {
    std::ostringstream msg;
    msg << "covering every component needs at least "
        << diagnosis.required_facilities << " facilities, budget k = "
        << instance.k;
    diagnosis.status = InfeasibleError(msg.str());
    return diagnosis;
  }
  diagnosis.status = OkStatus();
  return diagnosis;
}

Status ValidateInstance(const McfsInstance& instance) {
  return DiagnoseInstance(instance).status;
}

}  // namespace mcfs
