#include "mcfs/core/dynamic.h"

#include <utility>

#include "mcfs/common/check.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

DynamicMcfs::DynamicMcfs(const Graph* graph,
                         std::vector<NodeId> facility_nodes,
                         std::vector<int> capacities, int k,
                         const DynamicOptions& options)
    : graph_(graph),
      facility_nodes_(std::move(facility_nodes)),
      capacities_(std::move(capacities)),
      k_(k),
      options_(options) {
  MCFS_CHECK(graph_ != nullptr);
  MCFS_CHECK_EQ(facility_nodes_.size(), capacities_.size());
  MCFS_CHECK_GT(k_, 0);
}

int DynamicMcfs::AddCustomer(NodeId node) {
  MCFS_CHECK(node >= 0 && node < graph_->NumNodes());
  customer_nodes_.push_back(node);
  active_.push_back(1);
  ++num_active_;
  return static_cast<int>(customer_nodes_.size()) - 1;
}

void DynamicMcfs::RemoveCustomer(int id) {
  MCFS_CHECK(id >= 0 && id < static_cast<int>(active_.size()));
  MCFS_CHECK(active_[id]) << "customer already removed";
  active_[id] = 0;
  --num_active_;
}

std::vector<int> DynamicMcfs::ActiveCustomerIds() const {
  std::vector<int> ids;
  ids.reserve(num_active_);
  for (size_t id = 0; id < active_.size(); ++id) {
    if (active_[id]) ids.push_back(static_cast<int>(id));
  }
  return ids;
}

McfsInstance DynamicMcfs::CurrentInstance() const {
  McfsInstance instance;
  instance.graph = graph_;
  instance.facility_nodes = facility_nodes_;
  instance.capacities = capacities_;
  instance.k = k_;
  instance.customers.reserve(num_active_);
  for (size_t id = 0; id < active_.size(); ++id) {
    if (active_[id]) instance.customers.push_back(customer_nodes_[id]);
  }
  return instance;
}

const McfsSolution& DynamicMcfs::Resolve(bool* reselected) {
  const McfsInstance instance = CurrentInstance();
  MCFS_CHECK_GT(instance.m(), 0) << "no active customers";

  // Fast path: keep the facilities, redo the assignment.
  if (have_baseline_ && !last_selected_.empty()) {
    McfsSolution kept =
        AssignOptimally(instance, last_selected_, options_.wma.threads,
                        options_.wma.matcher);
    const double per_customer =
        kept.feasible ? kept.objective / instance.m() : kInfDistance;
    if (kept.feasible &&
        per_customer <=
            options_.reselect_ratio * baseline_cost_per_customer_) {
      ++incremental_solves_;
      if (reselected != nullptr) *reselected = false;
      last_solution_ = std::move(kept);
      return last_solution_;
    }
  }

  // Full re-selection.
  ++full_solves_;
  if (reselected != nullptr) *reselected = true;
  last_solution_ = RunWma(instance, options_.wma).solution;
  last_selected_ = last_solution_.selected;
  if (last_solution_.feasible && instance.m() > 0) {
    baseline_cost_per_customer_ = last_solution_.objective / instance.m();
    have_baseline_ = true;
  } else {
    have_baseline_ = false;
  }
  return last_solution_;
}

}  // namespace mcfs
