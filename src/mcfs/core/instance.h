#ifndef MCFS_CORE_INSTANCE_H_
#define MCFS_CORE_INSTANCE_H_

#include <string>
#include <vector>

#include "mcfs/flow/matcher_backend.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// One MCFS problem instance (Sec. II of the paper): a network, m
// customer locations, l candidate facility locations with capacities,
// and a budget of k facilities to select. Facility nodes must be
// distinct; customer nodes may repeat (several customers per node).
struct McfsInstance {
  const Graph* graph = nullptr;
  std::vector<NodeId> customers;       // size m
  std::vector<NodeId> facility_nodes;  // size l, distinct nodes
  std::vector<int> capacities;         // size l, c_j >= 0
  int k = 0;

  int m() const { return static_cast<int>(customers.size()); }
  int l() const { return static_cast<int>(facility_nodes.size()); }

  // Occupancy o = m / sum of the k largest capacities' mean * k — the
  // paper defines o = m / (c*k) for uniform c; for nonuniform instances
  // we report m / (mean_capacity * k).
  double Occupancy() const;
};

// How a solver run ended. Solvers with anytime behavior (WMA under a
// deadline) still return their best feasible solution on kDeadline —
// the marker distinguishes "this is the converged answer" from "this is
// what the time budget allowed".
enum class Termination {
  kConverged = 0,  // ran to completion
  kDeadline,       // time budget / cancellation cut the search short
  kInfeasible,     // the instance admits no full cover (Theorem 3)
};

const char* TerminationName(Termination termination);

// A solution: the selected facilities and the customer assignment.
struct McfsSolution {
  std::vector<int> selected;      // candidate-facility indices, size <= k
  std::vector<int> assignment;    // size m; facility index or -1
  std::vector<double> distances;  // size m; network distance, 0 if unassigned
  double objective = 0.0;         // sum of assigned distances
  bool feasible = false;          // every customer assigned
  Termination termination = Termination::kConverged;
};

struct ValidationResult {
  bool ok = true;
  std::string message;
};

// Structural validation: selected facilities are distinct, in range and
// within budget; every assignment points at a selected facility; no
// facility exceeds its capacity; the objective equals the distance sum.
// With check_distances, also recomputes each assigned distance by
// network Dijkstra from the facilities (k full Dijkstras).
ValidationResult ValidateSolution(const McfsInstance& instance,
                                  const McfsSolution& solution,
                                  bool check_distances = false);

// Checks whether an instance admits any feasible solution (Theorem 3):
// for every connected component g, the customers in g must be coverable
// by at most k_g facilities inside g, and sum_g k_g <= k, where k_g is
// the minimum number of facilities (largest capacities first) whose
// capacity sum reaches |S_g|.
bool IsFeasible(const McfsInstance& instance);

// Optimally assigns all customers to the given selected facilities
// (minimum-cost transportation over the network) and packages the
// result as a solution. If some customers cannot be assigned, the
// solution has feasible == false and contains the partial assignment.
// `threads` parallelizes the nearest-facility stream prefetch that
// front-loads the matcher's network Dijkstras (0 = MCFS_THREADS /
// hardware default, 1 = serial); the assignment is identical for every
// thread count. `matcher` picks the engine from the MatcherBackend
// registry (flow/matcher_backend.h); kAuto resolves by instance shape,
// and both concrete engines reach the same objective.
McfsSolution AssignOptimally(const McfsInstance& instance,
                             const std::vector<int>& selected,
                             int threads = 1,
                             MatcherBackendKind matcher =
                                 MatcherBackendKind::kSspa);

class IncrementalMatcher;

// Core of AssignOptimally on a caller-prepared matcher whose facility
// list is exactly the `selected` subset (in order). Prefetches and runs
// FindPair only for customers whose demand is still unsatisfied, so a
// warm-resumed matcher (flow/matcher.h ResumeFrom) pays only for the
// customers a delta invalidated; on a fresh matcher this is
// bit-identical to AssignOptimally.
McfsSolution AssignWithMatcher(const McfsInstance& instance,
                               const std::vector<int>& selected,
                               IncrementalMatcher& matcher, int threads = 1);

}  // namespace mcfs

#endif  // MCFS_CORE_INSTANCE_H_
