#ifndef MCFS_EXACT_LAGRANGIAN_H_
#define MCFS_EXACT_LAGRANGIAN_H_

#include <cstdint>
#include <vector>

namespace mcfs {

// Classic Lagrangian lower bound for the (hard, nonuniform) capacitated
// k-median: relax the assignment constraints sum_j y_ij = 1 with free
// multipliers lambda_i. For fixed lambda the subproblem decomposes per
// facility — each candidate j collects its most negative reduced costs
// d_ij - lambda_i up to capacity c_j, giving a value v_j <= 0 — and the
// bound opens the forced-open facilities plus the best remaining v_j up
// to the budget k:
//   L(lambda) = sum_i lambda_i + sum_{j in OPEN} v_j + top_{k-|OPEN|} v_j.
// Multipliers are improved by subgradient ascent and persist across
// calls (warm starts down the branch-and-bound tree).
struct LagrangianSubproblem {
  double bound = 0.0;
  std::vector<int> chosen;  // facilities opened by the subproblem
  std::vector<int> usage;   // per facility: customers it would serve
};

class LagrangianBound {
 public:
  // `cost` is the dense m x l distance matrix (kInfDistance = pair
  // unreachable); pointers must outlive the object.
  LagrangianBound(int m, int l, int k, const std::vector<double>* cost,
                  const std::vector<int>* capacities);

  // Runs `iterations` subgradient steps under the given facility states
  // (0 free / 1 open / 2 closed) and returns the best bound found.
  // `upper_bound` calibrates the step size (Polyak rule).
  LagrangianSubproblem Maximize(const std::vector<int8_t>& state,
                                int iterations, double upper_bound);

 private:
  LagrangianSubproblem Evaluate(const std::vector<int8_t>& state,
                                std::vector<double>* subgradient) const;

  int m_;
  int l_;
  int k_;
  const std::vector<double>* cost_;
  const std::vector<int>* capacities_;
  std::vector<double> lambda_;
};

}  // namespace mcfs

#endif  // MCFS_EXACT_LAGRANGIAN_H_
