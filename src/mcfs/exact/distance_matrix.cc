#include "mcfs/exact/distance_matrix.h"

#include "mcfs/graph/contraction_hierarchy.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

std::vector<double> ComputeDistanceMatrix(const McfsInstance& instance,
                                          bool* used_ch) {
  const int m = instance.m();
  const int l = instance.l();
  const int n = instance.graph->NumNodes();

  // Cost model: per-customer Dijkstra is ~m full scans of the network;
  // the CH path pays one preprocessing pass plus (m + l) small upward
  // searches. CH wins when the candidate set is sparse relative to the
  // network and there are enough customers to amortize preprocessing.
  const bool use_ch = l * 4 <= n && m >= 32;
  if (used_ch != nullptr) *used_ch = use_ch;

  if (use_ch) {
    const ContractionHierarchy ch(instance.graph);
    return ch.DistanceTable(instance.customers, instance.facility_nodes);
  }
  std::vector<double> cost(static_cast<size_t>(m) * l);
  for (int i = 0; i < m; ++i) {
    const std::vector<double> dist =
        ShortestPathsFrom(*instance.graph, instance.customers[i]);
    for (int j = 0; j < l; ++j) {
      cost[static_cast<size_t>(i) * l + j] = dist[instance.facility_nodes[j]];
    }
  }
  return cost;
}

}  // namespace mcfs
