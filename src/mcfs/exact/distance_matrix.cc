#include "mcfs/exact/distance_matrix.h"

#include "mcfs/common/check.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/graph/contraction_hierarchy.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

std::vector<double> ComputeDistanceMatrix(const McfsInstance& instance,
                                          bool* used_ch, int threads) {
  const int m = instance.m();
  const int l = instance.l();
  const int n = instance.graph->NumNodes();

  // Cost model: per-customer Dijkstra is ~m full scans of the network;
  // the CH path pays one preprocessing pass plus (m + l) small upward
  // searches. CH wins when the candidate set is sparse relative to the
  // network and there are enough customers to amortize preprocessing.
  const bool use_ch = l * 4 <= n && m >= 32;
  if (used_ch != nullptr) *used_ch = use_ch;

  std::vector<double> cost;
  if (use_ch) {
    const ContractionHierarchy ch(instance.graph);
    cost = ch.DistanceTable(instance.customers, instance.facility_nodes,
                            threads);
  } else {
    cost.resize(static_cast<size_t>(m) * l);
    // One Dijkstra per customer; row i is written only by index i.
    ParallelFor(
        0, m, /*grain=*/1,
        [&](int64_t i) {
          const std::vector<double> dist =
              ShortestPathsFrom(*instance.graph, instance.customers[i]);
          for (int j = 0; j < l; ++j) {
            cost[static_cast<size_t>(i) * l + j] =
                dist[instance.facility_nodes[j]];
          }
        },
        threads);
  }

  // Reachability invariant: every cell is a finite non-negative distance
  // or exactly kInfDistance (disconnected candidate). A NaN or negative
  // entry would silently corrupt the B&B cost matrix and the Lagrangian
  // bound, so fail loudly here instead.
  for (size_t e = 0; e < cost.size(); ++e) {
    MCFS_CHECK(cost[e] >= 0.0)
        << "distance matrix cell " << e << " is negative or NaN";
  }
  return cost;
}

}  // namespace mcfs
