#ifndef MCFS_EXACT_DISTANCE_MATRIX_H_
#define MCFS_EXACT_DISTANCE_MATRIX_H_

#include <vector>

#include "mcfs/core/instance.h"

namespace mcfs {

// Computes the dense m x l customer-to-facility network distance matrix
// (row-major), choosing the cheaper of two exact strategies:
//   * one full Dijkstra per customer (best when facilities blanket the
//     network, l ~ n), or
//   * a contraction-hierarchy bucket table (best when the candidate set
//     is a small fraction of the nodes and m is large — the coworking /
//     bike scenarios).
// Both strategies run their independent per-customer rows (and, for CH,
// the per-target bucket searches) on up to `threads` threads
// (0 = MCFS_THREADS / hardware default); rows are written to disjoint
// slots so the matrix is identical for every thread count.
//
// Unreachable (customer, facility) pairs are reported as exactly
// kInfDistance by both strategies — never as a large finite sentinel or
// NaN — so downstream consumers (dense transport, B&B bounds, greedy
// k-median) can skip them consistently; this invariant is checked
// before returning.
// `used_ch`, when non-null, reports which path was taken (for tests and
// instrumentation).
std::vector<double> ComputeDistanceMatrix(const McfsInstance& instance,
                                          bool* used_ch = nullptr,
                                          int threads = 0);

}  // namespace mcfs

#endif  // MCFS_EXACT_DISTANCE_MATRIX_H_
