#ifndef MCFS_EXACT_DISTANCE_MATRIX_H_
#define MCFS_EXACT_DISTANCE_MATRIX_H_

#include <vector>

#include "mcfs/core/instance.h"

namespace mcfs {

// Computes the dense m x l customer-to-facility network distance matrix
// (row-major), choosing the cheaper of two exact strategies:
//   * one full Dijkstra per customer (best when facilities blanket the
//     network, l ~ n), or
//   * a contraction-hierarchy bucket table (best when the candidate set
//     is a small fraction of the nodes and m is large — the coworking /
//     bike scenarios).
// `used_ch`, when non-null, reports which path was taken (for tests and
// instrumentation).
std::vector<double> ComputeDistanceMatrix(const McfsInstance& instance,
                                          bool* used_ch = nullptr);

}  // namespace mcfs

#endif  // MCFS_EXACT_DISTANCE_MATRIX_H_
