#ifndef MCFS_EXACT_BB_SOLVER_H_
#define MCFS_EXACT_BB_SOLVER_H_

#include <cstdint>

#include "mcfs/core/instance.h"

namespace mcfs {

// Budget and behavior of the exact solver. The solver plays the role of
// the paper's Gurobi reference (DESIGN.md §2.2): provably optimal on
// small instances, and deliberately reports failure when its budget is
// exhausted — mirroring the paper's "Gurobi failed / did not terminate"
// data points on large instances.
struct ExactOptions {
  int64_t max_nodes = 200000;        // branch-and-bound node budget
  double time_limit_seconds = 60.0;  // wall-clock budget
  // Hard cap on the dense distance-matrix size (m*l); larger instances
  // fail immediately, like an LP solver running out of practical room.
  int64_t max_matrix_entries = 4000000;
  bool use_wma_incumbent = true;  // seed the incumbent with WMA
  // Engine for the dense transportation relaxations (root bound and the
  // per-node primal probes): kSspa keeps the reference
  // SolveDenseTransport; kCostScaling routes the same inputs through
  // SolveDenseTransportCostScaling (flow/cost_scaling.h), same optimum
  // and infeasibility contract. kAuto resolves by instance shape.
  // SolveByEnumeration always uses the reference engine — it is the
  // oracle the others are tested against.
  MatcherBackendKind matcher = MatcherBackendKind::kSspa;
};

struct ExactResult {
  McfsSolution solution;       // best solution found (incumbent)
  bool optimal = false;        // proven optimal
  bool failed = false;         // budget exceeded before proving optimality
  int64_t nodes_explored = 0;  // branch-and-bound nodes
  double seconds = 0.0;
};

// Exact branch-and-bound over the facility-selection binaries x_j with a
// minimum-cost-transportation relaxation as lower bound: at each node
// some facilities are forced open/closed; the bound opens every
// non-closed facility (valid since dropping the cardinality constraint
// can only lower cost). A relaxation solution that uses at most k
// facilities is feasible and fathoms its subtree. Branching opens or
// closes the free facility carrying the most relaxation flow.
ExactResult SolveExact(const McfsInstance& instance,
                       const ExactOptions& options = {});

// Exhaustive enumeration of all facility subsets of size k with an
// optimal assignment per subset. Exponential; only for tiny instances
// (l choose k small) — serves as the oracle for SolveExact in tests.
ExactResult SolveByEnumeration(const McfsInstance& instance);

}  // namespace mcfs

#endif  // MCFS_EXACT_BB_SOLVER_H_
