#include "mcfs/exact/lagrangian.h"

#include <algorithm>
#include <cmath>

#include "mcfs/common/check.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

LagrangianBound::LagrangianBound(int m, int l, int k,
                                 const std::vector<double>* cost,
                                 const std::vector<int>* capacities)
    : m_(m), l_(l), k_(k), cost_(cost), capacities_(capacities) {
  MCFS_CHECK_EQ(cost->size(), static_cast<size_t>(m) * l);
  // Warm start: lambda_i = distance to the customer's nearest facility
  // (the exact bound for k = l with infinite capacities).
  lambda_.assign(m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    double nearest = kInfDistance;
    for (int j = 0; j < l_; ++j) {
      nearest = std::min(nearest, (*cost_)[static_cast<size_t>(i) * l_ + j]);
    }
    lambda_[i] = nearest == kInfDistance ? 0.0 : nearest;
  }
}

LagrangianSubproblem LagrangianBound::Evaluate(
    const std::vector<int8_t>& state, std::vector<double>* subgradient) const {
  LagrangianSubproblem sub;
  sub.usage.assign(l_, 0);
  if (subgradient != nullptr) subgradient->assign(m_, 1.0);

  double lambda_sum = 0.0;
  for (int i = 0; i < m_; ++i) lambda_sum += lambda_[i];

  // Per-facility value v_j and the customers it would serve.
  std::vector<double> value(l_, 0.0);
  std::vector<std::vector<int>> served(l_);
  std::vector<std::pair<double, int>> negatives;
  for (int j = 0; j < l_; ++j) {
    if (state[j] == 2) continue;  // closed
    negatives.clear();
    for (int i = 0; i < m_; ++i) {
      const double c = (*cost_)[static_cast<size_t>(i) * l_ + j];
      if (c == kInfDistance) continue;
      const double reduced = c - lambda_[i];
      if (reduced < 0.0) negatives.push_back({reduced, i});
    }
    const size_t take =
        std::min<size_t>(negatives.size(), (*capacities_)[j]);
    if (take < negatives.size()) {
      std::nth_element(negatives.begin(), negatives.begin() + take,
                       negatives.end());
    }
    for (size_t t = 0; t < take; ++t) {
      value[j] += negatives[t].first;
      served[j].push_back(negatives[t].second);
    }
  }

  // Open the forced facilities plus the most negative free values.
  int budget = k_;
  double total = lambda_sum;
  std::vector<std::pair<double, int>> free_values;
  for (int j = 0; j < l_; ++j) {
    if (state[j] == 1) {
      total += value[j];
      sub.chosen.push_back(j);
      --budget;
    } else if (state[j] == 0) {
      free_values.push_back({value[j], j});
    }
  }
  budget = std::max(budget, 0);
  const size_t take = std::min<size_t>(budget, free_values.size());
  std::partial_sort(free_values.begin(), free_values.begin() + take,
                    free_values.end());
  for (size_t t = 0; t < take; ++t) {
    if (free_values[t].first >= 0.0) break;  // opening more cannot help
    total += free_values[t].first;
    sub.chosen.push_back(free_values[t].second);
  }
  sub.bound = total;

  for (const int j : sub.chosen) {
    sub.usage[j] = static_cast<int>(served[j].size());
    if (subgradient != nullptr) {
      for (const int i : served[j]) (*subgradient)[i] -= 1.0;
    }
  }
  return sub;
}

LagrangianSubproblem LagrangianBound::Maximize(
    const std::vector<int8_t>& state, int iterations, double upper_bound) {
  std::vector<double> subgradient;
  LagrangianSubproblem best = Evaluate(state, &subgradient);
  std::vector<double> best_lambda = lambda_;
  double theta = 1.0;
  int stall = 0;
  for (int iter = 1; iter < iterations; ++iter) {
    double norm2 = 0.0;
    for (const double g : subgradient) norm2 += g * g;
    if (norm2 < 1e-12) break;  // subgradient zero: bound is maximal
    const double gap = std::max(upper_bound - best.bound, 1e-6);
    const double step = theta * gap / norm2;
    for (int i = 0; i < m_; ++i) lambda_[i] += step * subgradient[i];
    const LagrangianSubproblem current = Evaluate(state, &subgradient);
    if (current.bound > best.bound + 1e-9) {
      best = current;
      best_lambda = lambda_;
      stall = 0;
    } else if (++stall >= 3) {
      theta *= 0.5;
      stall = 0;
    }
  }
  lambda_ = best_lambda;  // keep the best multipliers for warm starts
  return best;
}

}  // namespace mcfs
