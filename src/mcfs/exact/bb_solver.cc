#include "mcfs/exact/bb_solver.h"

#include <algorithm>
#include <vector>

#include "mcfs/common/check.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/wma.h"
#include "mcfs/exact/distance_matrix.h"
#include "mcfs/exact/lagrangian.h"
#include "mcfs/flow/cost_scaling.h"
#include "mcfs/flow/transport.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

namespace {

enum FacilityState : int8_t { kFree = 0, kOpen = 1, kClosed = 2 };

// Builds a McfsSolution from a dense transport assignment.
McfsSolution SolutionFromAssignment(const McfsInstance& instance,
                                    const std::vector<double>& cost,
                                    const TransportResult& transport) {
  McfsSolution solution;
  const int l = instance.l();
  std::vector<uint8_t> used(l, 0);
  solution.assignment = transport.assignment;
  solution.distances.assign(instance.m(), 0.0);
  for (int i = 0; i < instance.m(); ++i) {
    const int j = transport.assignment[i];
    used[j] = 1;
    solution.distances[i] = cost[static_cast<size_t>(i) * l + j];
    solution.objective += solution.distances[i];
  }
  for (int j = 0; j < l; ++j) {
    if (used[j]) solution.selected.push_back(j);
  }
  solution.feasible = true;
  return solution;
}

}  // namespace

ExactResult SolveExact(const McfsInstance& instance,
                       const ExactOptions& options) {
  WallTimer timer;
  ExactResult result;
  const int m = instance.m();
  const int l = instance.l();
  const double kTolerance = 1e-6;

  auto fail_with_incumbent = [&]() {
    result.failed = true;
    if (options.use_wma_incumbent) {
      result.solution = RunWma(instance).solution;
    }
    result.seconds = timer.Seconds();
    return result;
  };

  if (static_cast<int64_t>(m) * l > options.max_matrix_entries) {
    return fail_with_incumbent();
  }

  // Dense customer-facility distances (per-customer Dijkstra or a CH
  // bucket table, whichever the cost model prefers).
  const std::vector<double> cost = ComputeDistanceMatrix(instance);
  if (timer.Seconds() > options.time_limit_seconds) {
    return fail_with_incumbent();
  }

  double incumbent_cost = kInfDistance;
  if (options.use_wma_incumbent) {
    result.solution = RunWma(instance).solution;
    if (result.solution.feasible) incumbent_cost = result.solution.objective;
  }

  // Both engines return the same optimum on the same dense inputs
  // (tests/cost_scaling_test.cc DenseTransportSweep), so the bound and
  // fathoming logic below is engine-agnostic.
  MatchShape shape;
  shape.customers = m;
  shape.facilities = l;
  for (const int c : instance.capacities) shape.total_capacity += c;
  const MatcherBackendKind transport_backend =
      ResolveMatcherBackend(options.matcher, shape);
  auto solve_transport = [&](const std::vector<int>& node_caps) {
    return transport_backend == MatcherBackendKind::kCostScaling
               ? SolveDenseTransportCostScaling(m, l, cost, node_caps)
               : SolveDenseTransport(m, l, cost, node_caps);
  };

  // Root feasibility: can all customers be assigned with every facility
  // open? If not, the instance is infeasible outright. The root cost is
  // also a global lower bound and a step-size reference when no
  // incumbent exists yet.
  double root_cost = 0.0;
  {
    const std::optional<TransportResult> root =
        solve_transport(instance.capacities);
    if (!root.has_value()) {
      result.optimal = true;  // proven infeasible
      result.seconds = timer.Seconds();
      return result;
    }
    root_cost = root->cost;
  }

  LagrangianBound bound(m, l, instance.k, &cost, &instance.capacities);
  std::vector<std::vector<int8_t>> stack;
  stack.emplace_back(l, kFree);
  std::vector<int> node_capacities(l);

  // Solves the transport restricted to a facility subset and updates the
  // incumbent.
  auto try_primal = [&](const std::vector<int>& subset) {
    std::fill(node_capacities.begin(), node_capacities.end(), 0);
    for (const int j : subset) node_capacities[j] = instance.capacities[j];
    const std::optional<TransportResult> solved =
        solve_transport(node_capacities);
    if (solved.has_value() && solved->cost < incumbent_cost) {
      incumbent_cost = solved->cost;
      result.solution = SolutionFromAssignment(instance, cost, *solved);
    }
  };

  bool at_root = true;
  while (!stack.empty()) {
    if (result.nodes_explored >= options.max_nodes ||
        timer.Seconds() > options.time_limit_seconds) {
      result.failed = true;
      break;
    }
    const std::vector<int8_t> state = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    int open_count = 0;
    int free_count = 0;
    for (int j = 0; j < l; ++j) {
      if (state[j] == kOpen) ++open_count;
      if (state[j] == kFree) ++free_count;
    }

    if (open_count >= instance.k || open_count + free_count <= instance.k) {
      // Leaf: the selection is decided (open set, possibly topped up by
      // every remaining free facility within budget).
      std::vector<int> subset;
      for (int j = 0; j < l; ++j) {
        if (state[j] == kOpen || (state[j] == kFree &&
                                  open_count < instance.k)) {
          subset.push_back(j);
        }
      }
      try_primal(subset);
      continue;
    }

    const LagrangianSubproblem sub = bound.Maximize(
        state, at_root ? 150 : 15,
        incumbent_cost == kInfDistance ? 4.0 * (1.0 + root_cost)
                                       : incumbent_cost);
    if (sub.bound >= incumbent_cost - kTolerance * (1.0 + incumbent_cost)) {
      continue;  // bound prune
    }
    if (at_root || result.nodes_explored % 16 == 0) {
      try_primal(sub.chosen);
      if (sub.bound >=
          incumbent_cost - kTolerance * (1.0 + incumbent_cost)) {
        at_root = false;
        continue;
      }
    }
    at_root = false;

    // Branch on the free facility serving the most customers in the
    // Lagrangian subproblem solution.
    int branch = -1;
    for (int j = 0; j < l; ++j) {
      if (state[j] != kFree) continue;
      if (branch == -1 || sub.usage[j] > sub.usage[branch]) branch = j;
    }
    MCFS_CHECK_NE(branch, -1);

    std::vector<int8_t> closed_child = state;
    closed_child[branch] = kClosed;
    stack.push_back(std::move(closed_child));
    std::vector<int8_t> open_child = state;
    open_child[branch] = kOpen;
    stack.push_back(std::move(open_child));  // explored first (DFS)
  }

  result.optimal = !result.failed;
  if (result.optimal && !result.solution.feasible &&
      incumbent_cost == kInfDistance) {
    // Exhausted the tree without a feasible selection: infeasible for
    // this k even though the root transport was feasible.
    result.optimal = true;
  }
  result.seconds = timer.Seconds();
  return result;
}

ExactResult SolveByEnumeration(const McfsInstance& instance) {
  WallTimer timer;
  ExactResult result;
  const int m = instance.m();
  const int l = instance.l();
  std::vector<double> cost(static_cast<size_t>(m) * l);
  for (int i = 0; i < m; ++i) {
    const std::vector<double> dist =
        ShortestPathsFrom(*instance.graph, instance.customers[i]);
    for (int j = 0; j < l; ++j) {
      cost[static_cast<size_t>(i) * l + j] = dist[instance.facility_nodes[j]];
    }
  }

  std::vector<int> subset;
  std::vector<int> capacities(l, 0);
  double best_cost = kInfDistance;

  // Recursive subset enumeration of exactly min(k, l) facilities.
  const int pick = std::min(instance.k, l);
  auto recurse = [&](auto&& self, int start) -> void {
    if (static_cast<int>(subset.size()) == pick) {
      std::fill(capacities.begin(), capacities.end(), 0);
      for (const int j : subset) capacities[j] = instance.capacities[j];
      const std::optional<TransportResult> solved =
          SolveDenseTransport(m, l, cost, capacities);
      if (solved.has_value() && solved->cost < best_cost) {
        best_cost = solved->cost;
        result.solution = SolutionFromAssignment(instance, cost, *solved);
      }
      return;
    }
    for (int j = start; j < l; ++j) {
      subset.push_back(j);
      self(self, j + 1);
      subset.pop_back();
    }
  };
  recurse(recurse, 0);
  result.optimal = true;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace mcfs
