#ifndef MCFS_HILBERT_HILBERT_H_
#define MCFS_HILBERT_HILBERT_H_

#include <cstdint>

namespace mcfs {

// 2-D Hilbert space-filling curve of order `order` (grid side 2^order).
// Standard rotate/flip construction (Kamel & Faloutsos [18]).
//
// Index along the curve of the grid cell (x, y); x, y in [0, 2^order).
uint64_t HilbertIndex(int order, uint32_t x, uint32_t y);

// Inverse: grid cell of curve index d.
void HilbertCell(int order, uint64_t d, uint32_t* x, uint32_t* y);

// Maps a point in [min, min+extent]^2 onto the Hilbert curve of the
// given order (clamping to the grid). Used to spatially sort customers.
uint64_t HilbertIndexForPoint(int order, double x, double y, double min_x,
                              double min_y, double extent);

}  // namespace mcfs

#endif  // MCFS_HILBERT_HILBERT_H_
