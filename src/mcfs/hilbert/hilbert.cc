#include "mcfs/hilbert/hilbert.h"

#include <algorithm>

#include "mcfs/common/check.h"

namespace mcfs {

namespace {

// Rotates/flips the quadrant-local coordinates per the curve recursion.
void Rotate(uint32_t side, uint32_t* x, uint32_t* y, uint32_t rx,
            uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = side - 1 - *x;
      *y = side - 1 - *y;
    }
    std::swap(*x, *y);
  }
}

}  // namespace

uint64_t HilbertIndex(int order, uint32_t x, uint32_t y) {
  MCFS_CHECK(order > 0 && order <= 31);
  const uint32_t side = 1u << order;
  MCFS_CHECK(x < side && y < side);
  uint64_t d = 0;
  for (uint32_t s = side / 2; s > 0; s /= 2) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCell(int order, uint64_t d, uint32_t* x, uint32_t* y) {
  MCFS_CHECK(order > 0 && order <= 31);
  const uint32_t side = 1u << order;
  *x = 0;
  *y = 0;
  uint64_t t = d;
  for (uint32_t s = 1; s < side; s *= 2) {
    const uint32_t rx = 1 & static_cast<uint32_t>(t / 2);
    const uint32_t ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rotate(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint64_t HilbertIndexForPoint(int order, double x, double y, double min_x,
                              double min_y, double extent) {
  MCFS_CHECK_GT(extent, 0.0);
  const uint32_t side = 1u << order;
  auto to_cell = [&](double v, double lo) {
    double scaled = (v - lo) / extent * side;
    const double max_cell = static_cast<double>(side) - 1.0;
    return static_cast<uint32_t>(std::clamp(scaled, 0.0, max_cell));
  };
  return HilbertIndex(order, to_cell(x, min_x), to_cell(y, min_y));
}

}  // namespace mcfs
