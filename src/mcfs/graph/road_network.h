#ifndef MCFS_GRAPH_ROAD_NETWORK_H_
#define MCFS_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcfs/graph/graph.h"

namespace mcfs {

// Style of synthetic city road network.
//  kGrid    — regular Manhattan-style grid (Las Vegas in the paper);
//  kOrganic — irregular European-style network grown from a spatial
//             spanning tree plus cycle edges (Aalborg/Riga/Copenhagen).
// Both styles subdivide streets into short road-shape segments, which is
// what gives real OSM networks their characteristic average degree of
// ~2.2-2.4 and short average edge lengths.
enum class CityStyle { kGrid, kOrganic };

// Parameters of the synthetic city generator. This substitutes the
// OpenStreetMap exports used in the paper (see DESIGN.md §2.1): the
// generator reproduces the structural statistics of Table III (node and
// edge counts, average/max degree, average edge length in meters).
struct CityOptions {
  std::string name = "city";
  int target_nodes = 50000;
  CityStyle style = CityStyle::kOrganic;
  double avg_edge_length = 30.0;  // meters
  // Fraction of grid streets removed for irregularity (grid style only).
  double street_dropout = 0.06;
  uint64_t seed = 42;
};

// Generates a synthetic city road network with coordinates in meters.
Graph GenerateCity(const CityOptions& options);

// Presets mirroring Table III of the paper. `scale` in (0, 1] shrinks
// the target node count (benchmarks default to scaled-down cities so the
// full suite completes on a laptop; scale=1 reproduces the paper sizes).
CityOptions AalborgPreset(double scale = 1.0, uint64_t seed = 42);
CityOptions RigaPreset(double scale = 1.0, uint64_t seed = 43);
CityOptions CopenhagenPreset(double scale = 1.0, uint64_t seed = 44);
CityOptions LasVegasPreset(double scale = 1.0, uint64_t seed = 45);

}  // namespace mcfs

#endif  // MCFS_GRAPH_ROAD_NETWORK_H_
