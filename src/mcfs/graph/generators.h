#ifndef MCFS_GRAPH_GENERATORS_H_
#define MCFS_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "mcfs/common/random.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// Options for the paper's synthetic networks (Sec. VII-B): n points on a
// plane_size x plane_size square, connected when closer than
// alpha * plane_size / sqrt(n); clustered variants draw points from
// per-cluster Gaussians (sigma^2 proportional to 1/num_clusters) and
// connect the cluster centers in a clique.
struct SyntheticNetworkOptions {
  int num_nodes = 1000;
  double alpha = 2.0;       // density parameter
  int num_clusters = 0;     // 0 => uniform distribution
  double plane_size = 1000.0;
  // Multiplies the default cluster st.dev. plane_size * sqrt(1/clusters);
  // the paper "tunes this deviation so that clusters cover the plane".
  double cluster_sigma_scale = 0.5;
  uint64_t seed = 42;
};

// Uniformly random points on the square.
std::vector<Point> GenerateUniformPoints(int n, double plane_size, Rng& rng);

// Clustered points: uniformly random centers, equal point counts per
// cluster, Gaussian spread around each center (clamped to the square).
// The first `num_clusters` points returned are the centers themselves.
std::vector<Point> GenerateClusteredPoints(int n, int num_clusters,
                                           double plane_size, double sigma,
                                           Rng& rng);

// Connects all pairs of points closer than `radius` (Euclidean), weights
// = distances; uses spatial hashing so construction is ~linear for
// bounded densities. Additionally adds a clique over `clique_nodes`
// (cluster centers) as the paper prescribes.
Graph BuildGeometricGraph(const std::vector<Point>& points, double radius,
                          const std::vector<NodeId>& clique_nodes = {});

// End-to-end generator implementing SyntheticNetworkOptions.
Graph GenerateSyntheticNetwork(const SyntheticNetworkOptions& options);

}  // namespace mcfs

#endif  // MCFS_GRAPH_GENERATORS_H_
