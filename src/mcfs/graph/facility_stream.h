#ifndef MCFS_GRAPH_FACILITY_STREAM_H_
#define MCFS_GRAPH_FACILITY_STREAM_H_

#include <optional>
#include <vector>

#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// A candidate facility encountered by a NearestFacilityStream: the
// facility's index in the instance's candidate list and its network
// distance from the stream's customer.
struct FacilityAtDistance {
  int facility = -1;
  double distance = kInfDistance;
};

// Warm-start state for a NearestFacilityStream. Because the discovery
// sequence is a pure function of (graph, source, facility membership),
// a prior run's discoveries can be handed back to a fresh stream and
// served without re-running the Dijkstra; the Dijkstra only starts when
// the consumer advances past everything the seed covered, at which
// point it fast-forwards through the already-accounted discoveries.
struct StreamSeed {
  // Pre-discovered candidates, served in order before any Dijkstra work.
  std::vector<FacilityAtDistance> buffered;
  // Discoveries already consumed by the previous run (the caller kept
  // them elsewhere, e.g. as materialized bipartite edges). Skipped —
  // together with `buffered` — when the Dijkstra eventually runs.
  int skip_discoveries = 0;
  // The previous run proved there is nothing beyond the seeded entries.
  bool exhausted = false;
  // Distance of the first discovery after `buffered`, when the previous
  // run knew it (e.g. from its own still-pending seed). Lets
  // PeekDistance() answer past the buffer without touching the Dijkstra.
  bool has_next = false;
  double next_distance = kInfDistance;
};

// Streams the candidate facilities reachable from one customer in
// non-decreasing network-distance order, lazily expanding an
// IncrementalDijkstra. This is the "next NN of x in G" primitive of
// Algorithm 2 (FindPair): the matcher pops one facility at a time to
// materialize one new bipartite edge, and peeks the next distance to
// evaluate the Theorem-1 pruning threshold.
//
// The stream separates *advancing* (running the Dijkstra to discover
// more facilities, buffered internally) from *consuming* (Pop). The
// discovered sequence is a pure function of the graph and the source
// node, so Prefetch() never changes what later Pop()s return — it only
// moves the Dijkstra work earlier. This is what makes WMA's batched
// parallel prefetch deterministic: worker threads each advance disjoint
// streams ahead of time, and the serial matcher then consumes cached
// entries in the exact order it always would have.
//
// Instrumentation (see DESIGN.md "Observability"): the underlying
// Dijkstra work is attributed to two counter families. The logical
// family (`stream/candidates_popped`, `stream/nodes_settled`,
// `stream/edges_relaxed`) charges, at Pop() time, exactly the settles
// and relaxations needed to discover the popped candidate — a pure
// function of (graph, source, pop index), hence bit-identical for any
// thread count. The physical family (`exec/stream/*`) counts the work
// when it actually happens (including speculative prefetch lookahead
// and buffer hits/misses) and legitimately varies with the thread
// count.
class NearestFacilityStream {
 public:
  // `facility_index_of_node` has one entry per graph node: the candidate
  // facility index located at that node, or -1. Owned by the caller and
  // must outlive the stream. `expected_nodes` is a reserve hint for the
  // underlying Dijkstra's label maps (how many nodes the caller expects
  // this customer to settle, e.g. derived from the facility density);
  // 0 starts minimal.
  NearestFacilityStream(const Graph* graph, NodeId customer,
                        const std::vector<int>* facility_index_of_node,
                        size_t expected_nodes = 0);

  // Warm construction: serves `seed.buffered` first and defers the
  // Dijkstra until the consumer advances past the seeded prefix. The
  // caller is responsible for the seed matching the *current* facility
  // membership map (entries for facilities no longer in the map must be
  // filtered out, and skip_discoveries counted under the current map);
  // under that contract the Pop() sequence is identical to a cold
  // stream's, only cheaper.
  NearestFacilityStream(const Graph* graph, NodeId customer,
                        const std::vector<int>* facility_index_of_node,
                        StreamSeed seed, size_t expected_nodes = 0);

  // Exact network distance of the next not-yet-popped candidate
  // facility, or kInfDistance when the customer's component has no more
  // candidate facilities.
  double PeekDistance();

  // Consumes and returns the next nearest candidate facility.
  std::optional<FacilityAtDistance> Pop();

  // Advance-only: ensures at least `count` not-yet-popped candidates are
  // buffered (stopping early when the component runs out of candidates).
  // Safe to call from a worker thread as long as no other thread touches
  // this stream concurrently; does not change the Pop() sequence.
  void Prefetch(int count);

  // Candidates discovered but not yet popped.
  int BufferedCount() const {
    return static_cast<int>(buffer_.size() - buffer_head_);
  }

  bool Exhausted() { return PeekDistance() == kInfDistance; }

  NodeId customer() const { return dijkstra_.source(); }
  int num_popped() const { return num_popped_; }

  // --- Warm-seed export accessors (read-only; see StreamSeed). ---

  // Discovered-but-unpopped candidates in pop order.
  std::vector<FacilityAtDistance> BufferedEntries() const {
    std::vector<FacilityAtDistance> out;
    out.reserve(buffer_.size() - buffer_head_);
    for (size_t i = buffer_head_; i < buffer_.size(); ++i) {
      out.push_back(buffer_[i].candidate);
    }
    return out;
  }

  // True when the component is known to hold no candidates beyond the
  // buffered ones. Unlike Exhausted(), never advances the Dijkstra.
  bool DijkstraExhausted() const { return exhausted_; }

  // Distance of the first discovery beyond the buffer, when known
  // without Dijkstra work (still-pending seed); nullopt otherwise.
  std::optional<double> KnownNextDistance() const { return seeded_next_; }

 private:
  // A discovered candidate plus the cumulative Dijkstra work at its
  // discovery (for consumed-work attribution at Pop time).
  struct BufferedCandidate {
    FacilityAtDistance candidate;
    int64_t settled_at = 0;
    int64_t relaxed_at = 0;
  };

  // Appends the next candidate facility to the buffer; false when the
  // component has no more candidates.
  bool AdvanceOne();

  IncrementalDijkstra dijkstra_;
  const std::vector<int>* facility_index_of_node_;
  // Head-index ring: prefetch bursts append to the vector (one
  // amortized reallocation instead of a deque block allocation per
  // chunk) and Pop advances buffer_head_. Draining resets both so the
  // capacity is reused; a long-lived consumed prefix is compacted away
  // (exec/alloc/stream_ring_compactions).
  std::vector<BufferedCandidate> buffer_;
  size_t buffer_head_ = 0;
  bool exhausted_ = false;
  int num_popped_ = 0;
  // Discovery index below which candidates were buffered by Prefetch()
  // (drives the exec/stream/prefetch_hit|miss split at Pop time).
  int64_t prefetched_watermark_ = 0;
  // Seeded discoveries the lazily-started Dijkstra must skip before it
  // produces anything new (previously consumed + handed-in buffer).
  int64_t fast_forward_remaining_ = 0;
  // Seed-known distance of the first post-buffer discovery; cleared the
  // moment the Dijkstra actually reaches new ground.
  std::optional<double> seeded_next_;
  // Cumulative Dijkstra work already charged to popped candidates.
  int64_t attributed_settled_ = 0;
  int64_t attributed_relaxed_ = 0;
};

}  // namespace mcfs

#endif  // MCFS_GRAPH_FACILITY_STREAM_H_
