#ifndef MCFS_GRAPH_CONTRACTION_HIERARCHY_H_
#define MCFS_GRAPH_CONTRACTION_HIERARCHY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "mcfs/graph/graph.h"

namespace mcfs {

// Contraction Hierarchies (Geisberger et al.) for undirected networks:
// nodes are contracted in importance order, inserting shortcuts that
// preserve shortest-path distances; queries run a bidirectional Dijkstra
// that only ever moves to higher-ranked nodes, meeting near the "top"
// of the hierarchy. On road networks this settles orders of magnitude
// fewer nodes than plain Dijkstra while staying exact (verified against
// Dijkstra in tests).
//
// Used for repeated point-to-point queries and for the bucket-based
// many-to-many distance tables that accelerate dense-matrix
// construction (exact solver, greedy k-median) on large networks.
//
// Preprocessing notes: node priority = edge difference + contracted
// neighbors (lazy re-evaluation); witness searches are exact but capped
// — when the cap is hit the shortcut is inserted anyway, which can only
// add redundant (never incorrect) arcs.
class ContractionHierarchy {
 public:
  explicit ContractionHierarchy(const Graph* graph);

  // Exact shortest-path distance; kInfDistance when disconnected.
  double Distance(NodeId s, NodeId t) const;

  // Row-major |sources| x |targets| exact distance table via target
  // buckets: one upward search per target plus one per source. The
  // per-target bucket searches and the per-source row scans run on up
  // to `threads` threads (0 = MCFS_THREADS / hardware default); bucket
  // merging stays in target order and every source writes only its own
  // row, so the table is identical for any thread count.
  std::vector<double> DistanceTable(const std::vector<NodeId>& sources,
                                    const std::vector<NodeId>& targets,
                                    int threads = 0) const;

  // --- instrumentation ---
  int64_t num_shortcuts() const { return num_shortcuts_; }
  int64_t last_settled_count() const {
    return last_settled_.load(std::memory_order_relaxed);
  }
  int rank(NodeId v) const { return rank_[v]; }

 private:
  struct UpArc {
    NodeId to;
    double weight;
  };

  // Upward search from `source`: settles the reachable upward cone,
  // appending (node, dist) pairs to `settled`.
  void UpwardSearch(NodeId source,
                    std::vector<std::pair<NodeId, double>>* settled) const;

  const Graph* graph_;
  std::vector<int> rank_;                  // contraction order per node
  std::vector<std::vector<UpArc>> up_;     // arcs toward higher ranks
  int64_t num_shortcuts_ = 0;
  // Atomic: DistanceTable's upward searches run concurrently.
  mutable std::atomic<int64_t> last_settled_{0};
};

}  // namespace mcfs

#endif  // MCFS_GRAPH_CONTRACTION_HIERARCHY_H_
