#ifndef MCFS_GRAPH_SPATIAL_INDEX_H_
#define MCFS_GRAPH_SPATIAL_INDEX_H_

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "mcfs/graph/graph.h"

namespace mcfs {

// Uniform-grid spatial index over a point set (2-D, Euclidean). Used
// wherever the library needs geometric (not network) proximity: mapping
// bucket centroids to candidate facilities in the Hilbert baseline,
// venue placement in the workload simulators, and nearest-node lookups
// in the examples.
//
// Build: O(n). NearestNeighbor: expected O(1) ring search for bounded
// densities. RangeQuery: output-sensitive.
class SpatialGridIndex {
 public:
  // `points` is copied; `target_per_cell` tunes the grid resolution.
  explicit SpatialGridIndex(std::vector<Point> points,
                            double target_per_cell = 4.0);

  int size() const { return static_cast<int>(points_.size()); }
  const Point& point(int id) const { return points_[id]; }

  // Index of the nearest point to `query`, optionally skipping entries
  // rejected by `accept` (e.g., already-used facilities). Returns -1
  // when no acceptable point exists.
  int NearestNeighbor(const Point& query) const;
  template <typename AcceptFn>
  int NearestNeighborIf(const Point& query, AcceptFn&& accept) const;

  // All point ids within `radius` of `query` (unordered).
  std::vector<int> RangeQuery(const Point& query, double radius) const;

 private:
  struct CellCoord {
    int64_t x;
    int64_t y;
  };
  CellCoord CellOf(const Point& p) const {
    return {static_cast<int64_t>(std::floor((p.x - min_x_) / cell_size_)),
            static_cast<int64_t>(std::floor((p.y - min_y_) / cell_size_))};
  }
  const std::vector<int>* CellBucket(int64_t cx, int64_t cy) const;

  std::vector<Point> points_;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double cell_size_ = 1.0;
  int64_t cells_x_ = 1;
  int64_t cells_y_ = 1;
  std::vector<std::vector<int>> buckets_;  // cells_x_ * cells_y_
};

template <typename AcceptFn>
int SpatialGridIndex::NearestNeighborIf(const Point& query,
                                        AcceptFn&& accept) const {
  if (points_.empty()) return -1;
  const CellCoord center = CellOf(query);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  // Expanding ring search; once a candidate is found, finish the ring
  // whose cells could still contain something closer.
  const int64_t max_ring =
      std::max(cells_x_, cells_y_) + 1;  // covers the whole grid
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    if (best != -1 &&
        (static_cast<double>(ring) - 1.0) * cell_size_ > best_dist) {
      break;  // no farther ring can beat the incumbent
    }
    for (int64_t dx = -ring; dx <= ring; ++dx) {
      for (int64_t dy = -ring; dy <= ring; ++dy) {
        if (std::max(std::llabs(dx), std::llabs(dy)) != ring) continue;
        const std::vector<int>* bucket =
            CellBucket(center.x + dx, center.y + dy);
        if (bucket == nullptr) continue;
        for (const int id : *bucket) {
          if (!accept(id)) continue;
          const double d = EuclideanDistance(points_[id], query);
          if (d < best_dist) {
            best_dist = d;
            best = id;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace mcfs

#endif  // MCFS_GRAPH_SPATIAL_INDEX_H_
