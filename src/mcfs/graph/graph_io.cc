#include "mcfs/graph/graph_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "mcfs/common/line_reader.h"

namespace mcfs {

namespace {

// Size of the file in bytes; -1 when it cannot be measured. Used to
// reject headers whose node/edge counts could not possibly fit in the
// file — every record costs at least two bytes ("0\n") — so a corrupt
// count fails with a typed error instead of a gigantic allocation.
int64_t FileSizeBytes(std::ifstream& in) {
  const std::streampos current = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(current);
  return end < 0 ? -1 : static_cast<int64_t>(end);
}

Status ImplausibleCount(const char* what, int64_t count, int64_t bytes) {
  std::ostringstream msg;
  msg << "header claims " << count << " " << what << " but the file has "
      << bytes << " bytes";
  return InvalidInputError(msg.str());
}

}  // namespace

Status WriteGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoError("cannot open for writing: " + path);
  out.precision(12);
  out << graph.NumNodes() << ' ' << graph.NumEdges() << ' '
      << (graph.has_coordinates() ? 1 : 0) << '\n';
  if (graph.has_coordinates()) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      const Point& p = graph.coordinate(v);
      out << p.x << ' ' << p.y << '\n';
    }
  }
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (const AdjEntry& e : graph.Neighbors(u)) {
      if (u < e.to) out << u << ' ' << e.to << ' ' << e.weight << '\n';
    }
  }
  if (!out) return IoError("short write: " + path);
  return OkStatus();
}

StatusOr<Graph> ReadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open: " + path);
  const int64_t bytes = FileSizeBytes(in);
  LineReader reader(in);
  std::string line;

  if (!reader.NextLine(&line)) {
    return InvalidInputError("empty graph file: " + path);
  }
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int has_coords = 0;
  if (!ParseFields(line, &num_nodes, &num_edges, &has_coords) ||
      num_nodes < 0 || num_edges < 0 ||
      (has_coords != 0 && has_coords != 1)) {
    return reader.ParseError(
        "expected header \"<num_nodes> <num_edges> <has_coords:0|1>\", got "
        "\"" + line + "\"");
  }
  if (bytes >= 0 && num_nodes > bytes) {
    return ImplausibleCount("nodes", num_nodes, bytes);
  }
  if (bytes >= 0 && num_edges > bytes) {
    return ImplausibleCount("edges", num_edges, bytes);
  }

  GraphBuilder builder(static_cast<int>(num_nodes));
  if (has_coords == 1) {
    std::vector<Point> coords;
    coords.reserve(static_cast<size_t>(num_nodes));
    for (int64_t v = 0; v < num_nodes; ++v) {
      if (!reader.NextLine(&line)) {
        return reader.TruncatedError(std::to_string(num_nodes) +
                                     " coordinate lines");
      }
      Point p;
      if (!ParseFields(line, &p.x, &p.y) || !std::isfinite(p.x) ||
          !std::isfinite(p.y)) {
        return reader.ParseError("expected finite \"x y\", got \"" + line +
                                 "\"");
      }
      coords.push_back(p);
    }
    builder.SetCoordinates(std::move(coords));
  }
  for (int64_t i = 0; i < num_edges; ++i) {
    if (!reader.NextLine(&line)) {
      return reader.TruncatedError(std::to_string(num_edges) +
                                   " edge lines");
    }
    int64_t u = 0;
    int64_t v = 0;
    double w = 0.0;
    if (!ParseFields(line, &u, &v, &w)) {
      return reader.ParseError("expected edge \"u v weight\", got \"" +
                               line + "\"");
    }
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
      return reader.ParseError("edge endpoint out of range [0, " +
                               std::to_string(num_nodes) + "): \"" + line +
                               "\"");
    }
    if (!std::isfinite(w) || w <= 0.0) {
      // Every Dijkstra variant assumes positive weights; reject here so
      // a negative / NaN length never reaches a search.
      return reader.ParseError(
          "edge weight must be finite and positive, got \"" + line + "\"");
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  return builder.Build();
}

bool SaveGraph(const Graph& graph, const std::string& path) {
  return WriteGraph(graph, path).ok();
}

std::optional<Graph> LoadGraph(const std::string& path) {
  StatusOr<Graph> graph = ReadGraph(path);
  if (!graph.ok()) return std::nullopt;
  return std::move(graph).value();
}

}  // namespace mcfs
