#include "mcfs/graph/graph_io.h"

#include <fstream>

namespace mcfs {

bool SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(12);
  out << graph.NumNodes() << ' ' << graph.NumEdges() << ' '
      << (graph.has_coordinates() ? 1 : 0) << '\n';
  if (graph.has_coordinates()) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      const Point& p = graph.coordinate(v);
      out << p.x << ' ' << p.y << '\n';
    }
  }
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (const AdjEntry& e : graph.Neighbors(u)) {
      if (u < e.to) out << u << ' ' << e.to << ' ' << e.weight << '\n';
    }
  }
  return static_cast<bool>(out);
}

std::optional<Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  int num_nodes = 0;
  int64_t num_edges = 0;
  int has_coords = 0;
  if (!(in >> num_nodes >> num_edges >> has_coords)) return std::nullopt;
  if (num_nodes < 0 || num_edges < 0) return std::nullopt;
  GraphBuilder builder(num_nodes);
  if (has_coords != 0) {
    std::vector<Point> coords(num_nodes);
    for (Point& p : coords) {
      if (!(in >> p.x >> p.y)) return std::nullopt;
    }
    builder.SetCoordinates(std::move(coords));
  }
  for (int64_t i = 0; i < num_edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    double w = 0.0;
    if (!(in >> u >> v >> w)) return std::nullopt;
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes || w <= 0.0) {
      return std::nullopt;
    }
    builder.AddEdge(u, v, w);
  }
  return builder.Build();
}

}  // namespace mcfs
