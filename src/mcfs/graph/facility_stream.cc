#include "mcfs/graph/facility_stream.h"

namespace mcfs {

NearestFacilityStream::NearestFacilityStream(
    const Graph* graph, NodeId customer,
    const std::vector<int>* facility_index_of_node)
    : dijkstra_(graph, customer),
      facility_index_of_node_(facility_index_of_node) {}

bool NearestFacilityStream::AdvanceOne() {
  if (exhausted_) return false;
  while (true) {
    std::optional<SettledNode> settled = dijkstra_.NextSettled();
    if (!settled.has_value()) {
      exhausted_ = true;
      return false;
    }
    const int facility = (*facility_index_of_node_)[settled->node];
    if (facility >= 0) {
      buffer_.push_back(FacilityAtDistance{facility, settled->distance});
      return true;
    }
  }
}

void NearestFacilityStream::Prefetch(int count) {
  while (static_cast<int>(buffer_.size()) < count) {
    if (!AdvanceOne()) return;
  }
}

double NearestFacilityStream::PeekDistance() {
  if (buffer_.empty() && !AdvanceOne()) return kInfDistance;
  return buffer_.front().distance;
}

std::optional<FacilityAtDistance> NearestFacilityStream::Pop() {
  if (buffer_.empty() && !AdvanceOne()) return std::nullopt;
  FacilityAtDistance result = buffer_.front();
  buffer_.pop_front();
  ++num_popped_;
  return result;
}

}  // namespace mcfs
