#include "mcfs/graph/facility_stream.h"

namespace mcfs {

NearestFacilityStream::NearestFacilityStream(
    const Graph* graph, NodeId customer,
    const std::vector<int>* facility_index_of_node)
    : dijkstra_(graph, customer),
      facility_index_of_node_(facility_index_of_node) {}

void NearestFacilityStream::EnsureLookahead() {
  if (lookahead_.has_value() || exhausted_) return;
  while (true) {
    std::optional<SettledNode> settled = dijkstra_.NextSettled();
    if (!settled.has_value()) {
      exhausted_ = true;
      return;
    }
    const int facility = (*facility_index_of_node_)[settled->node];
    if (facility >= 0) {
      lookahead_ = FacilityAtDistance{facility, settled->distance};
      return;
    }
  }
}

double NearestFacilityStream::PeekDistance() {
  EnsureLookahead();
  return lookahead_.has_value() ? lookahead_->distance : kInfDistance;
}

std::optional<FacilityAtDistance> NearestFacilityStream::Pop() {
  EnsureLookahead();
  if (!lookahead_.has_value()) return std::nullopt;
  FacilityAtDistance result = *lookahead_;
  lookahead_.reset();
  ++num_popped_;
  return result;
}

}  // namespace mcfs
