#include "mcfs/graph/facility_stream.h"

#include <algorithm>

#include "mcfs/obs/metrics.h"

namespace mcfs {

NearestFacilityStream::NearestFacilityStream(
    const Graph* graph, NodeId customer,
    const std::vector<int>* facility_index_of_node, size_t expected_nodes)
    : dijkstra_(graph, customer, expected_nodes),
      facility_index_of_node_(facility_index_of_node) {}

NearestFacilityStream::NearestFacilityStream(
    const Graph* graph, NodeId customer,
    const std::vector<int>* facility_index_of_node, StreamSeed seed,
    size_t expected_nodes)
    : dijkstra_(graph, customer, expected_nodes),
      facility_index_of_node_(facility_index_of_node),
      exhausted_(seed.exhausted) {
  buffer_.reserve(seed.buffered.size());
  for (const FacilityAtDistance& entry : seed.buffered) {
    // Seeded entries were paid for by a previous run: zero attribution,
    // so the logical stream/* counters charge only genuinely new work.
    buffer_.push_back(BufferedCandidate{entry, 0, 0});
  }
  fast_forward_remaining_ =
      seed.skip_discoveries + static_cast<int64_t>(seed.buffered.size());
  prefetched_watermark_ = static_cast<int64_t>(seed.buffered.size());
  if (!exhausted_ && seed.has_next) seeded_next_ = seed.next_distance;
  MCFS_COUNT("exec/stream/seeded_entries",
             static_cast<int64_t>(seed.buffered.size()));
}

bool NearestFacilityStream::AdvanceOne() {
  if (exhausted_) return false;
  while (true) {
    std::optional<SettledNode> settled = dijkstra_.NextSettled();
    if (!settled.has_value()) {
      exhausted_ = true;
      seeded_next_.reset();
      return false;
    }
    const int facility = (*facility_index_of_node_)[settled->node];
    if (facility >= 0) {
      if (fast_forward_remaining_ > 0) {
        // Re-discovery of a seeded (or previously consumed) candidate:
        // already served from the buffer or accounted by the caller.
        --fast_forward_remaining_;
        MCFS_COUNT("exec/stream/fast_forward_skips", 1);
        continue;
      }
      seeded_next_.reset();
      buffer_.push_back(
          BufferedCandidate{FacilityAtDistance{facility, settled->distance},
                            static_cast<int64_t>(dijkstra_.num_settled()),
                            dijkstra_.num_relaxed()});
      // Physical discovery work, counted when it happens (possibly on a
      // prefetch worker thread) — thread-count dependent by design.
      MCFS_COUNT("exec/stream/candidates_discovered", 1);
      return true;
    }
  }
}

void NearestFacilityStream::Prefetch(int count) {
  const int64_t before = dijkstra_.num_settled();
  while (BufferedCount() < count) {
    if (!AdvanceOne()) break;
  }
  MCFS_COUNT("exec/stream/prefetch_settles",
             static_cast<int64_t>(dijkstra_.num_settled()) - before);
  prefetched_watermark_ =
      std::max(prefetched_watermark_,
               num_popped_ + static_cast<int64_t>(BufferedCount()));
}

double NearestFacilityStream::PeekDistance() {
  if (BufferedCount() == 0) {
    // A still-pending seed knows the next distance: answer without
    // starting the Dijkstra (this keeps warm Theorem-1 threshold scans
    // free until the consumer genuinely advances past the seed).
    if (seeded_next_.has_value()) return *seeded_next_;
    if (!AdvanceOne()) return kInfDistance;
  }
  return buffer_[buffer_head_].candidate.distance;
}

std::optional<FacilityAtDistance> NearestFacilityStream::Pop() {
  const bool was_buffered = BufferedCount() > 0;
  if (!was_buffered && !AdvanceOne()) return std::nullopt;
  const BufferedCandidate entry = buffer_[buffer_head_];
  ++buffer_head_;
  if (buffer_head_ == buffer_.size()) {
    // Drained: rewind so the retained capacity is reused in place.
    buffer_.clear();
    buffer_head_ = 0;
  } else if (buffer_head_ >= 64 && buffer_head_ * 2 >= buffer_.size()) {
    // The consumed prefix dominates the buffer: compact it away so a
    // never-fully-drained stream cannot grow without bound.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<int64_t>(buffer_head_));
    buffer_head_ = 0;
    MCFS_COUNT("exec/alloc/stream_ring_compactions", 1);
  }

  // Logical consumed-work attribution: the Dijkstra effort needed to
  // discover this candidate is a pure function of (graph, source, pop
  // index), so these counters are bit-identical for any thread count
  // even though prefetching may have done the work earlier (or further
  // ahead) on another thread.
  MCFS_COUNT("stream/candidates_popped", 1);
  MCFS_COUNT("stream/nodes_settled", entry.settled_at - attributed_settled_);
  MCFS_COUNT("stream/edges_relaxed", entry.relaxed_at - attributed_relaxed_);
  attributed_settled_ = entry.settled_at;
  attributed_relaxed_ = entry.relaxed_at;

  // Physical buffer behaviour: did an earlier Prefetch() pay for this
  // candidate, or did the consumer stall on an inline advance? Both
  // counters fire (one with 0) so the hit rate is always derivable.
  const bool prefetch_hit =
      num_popped_ < prefetched_watermark_ && was_buffered;
  MCFS_COUNT("exec/stream/prefetch_hits", prefetch_hit ? 1 : 0);
  MCFS_COUNT("exec/stream/prefetch_misses", prefetch_hit ? 0 : 1);
  ++num_popped_;
  return entry.candidate;
}

}  // namespace mcfs
