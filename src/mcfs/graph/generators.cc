#include "mcfs/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace mcfs {

std::vector<Point> GenerateUniformPoints(int n, double plane_size,
                                         Rng& rng) {
  std::vector<Point> points(n);
  for (Point& p : points) {
    p.x = rng.Uniform(0.0, plane_size);
    p.y = rng.Uniform(0.0, plane_size);
  }
  return points;
}

std::vector<Point> GenerateClusteredPoints(int n, int num_clusters,
                                           double plane_size, double sigma,
                                           Rng& rng) {
  MCFS_CHECK_GT(num_clusters, 0);
  MCFS_CHECK_GE(n, num_clusters);
  std::vector<Point> points;
  points.reserve(n);
  // Centers first, so callers can identify them by index.
  for (int c = 0; c < num_clusters; ++c) {
    points.push_back(
        {rng.Uniform(0.0, plane_size), rng.Uniform(0.0, plane_size)});
  }
  const int remaining = n - num_clusters;
  for (int i = 0; i < remaining; ++i) {
    const Point& center = points[i % num_clusters];
    Point p;
    p.x = std::clamp(rng.Gaussian(center.x, sigma), 0.0, plane_size);
    p.y = std::clamp(rng.Gaussian(center.y, sigma), 0.0, plane_size);
    points.push_back(p);
  }
  return points;
}

Graph BuildGeometricGraph(const std::vector<Point>& points, double radius,
                          const std::vector<NodeId>& clique_nodes) {
  const int n = static_cast<int>(points.size());
  GraphBuilder builder(n);
  MCFS_CHECK_GT(radius, 0.0);

  // Spatial hash grid with cell size = radius: all pairs within radius
  // lie in the same or adjacent cells.
  auto cell_key = [&](double x, double y) {
    const int64_t cx = static_cast<int64_t>(std::floor(x / radius));
    const int64_t cy = static_cast<int64_t>(std::floor(y / radius));
    return (cx << 32) ^ (cy & 0xffffffffLL);
  };
  std::unordered_map<int64_t, std::vector<NodeId>> grid;
  grid.reserve(n * 2);
  for (NodeId i = 0; i < n; ++i) {
    grid[cell_key(points[i].x, points[i].y)].push_back(i);
  }
  // Minimal positive weight, so coincident points do not create
  // zero-weight edges (weights must be positive path lengths).
  const double min_weight = radius * 1e-9;
  for (NodeId i = 0; i < n; ++i) {
    const int64_t cx = static_cast<int64_t>(std::floor(points[i].x / radius));
    const int64_t cy = static_cast<int64_t>(std::floor(points[i].y / radius));
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid.find(((cx + dx) << 32) ^ ((cy + dy) & 0xffffffffLL));
        if (it == grid.end()) continue;
        for (const NodeId j : it->second) {
          if (j <= i) continue;  // each unordered pair once
          const double d = EuclideanDistance(points[i], points[j]);
          if (d < radius) {
            builder.AddEdge(i, j, std::max(d, min_weight));
          }
        }
      }
    }
  }
  // Clique over cluster centers, per the paper.
  for (size_t a = 0; a < clique_nodes.size(); ++a) {
    for (size_t b = a + 1; b < clique_nodes.size(); ++b) {
      const NodeId u = clique_nodes[a];
      const NodeId v = clique_nodes[b];
      const double d = EuclideanDistance(points[u], points[v]);
      if (d >= radius) {  // short center links already added above
        builder.AddEdge(u, v, std::max(d, min_weight));
      }
    }
  }
  builder.SetCoordinates(points);
  return builder.Build();
}

Graph GenerateSyntheticNetwork(const SyntheticNetworkOptions& options) {
  Rng rng(options.seed);
  // Connection radius alpha * plane / sqrt(n), as in the paper. The
  // expected average degree is then pi * alpha^2: alpha = 1.2 sits at
  // the continuum-percolation threshold ("sparser and less connected",
  // Fig. 6c), alpha = 2 yields a mostly connected network.
  const double radius =
      options.alpha * options.plane_size / std::sqrt(options.num_nodes);
  if (options.num_clusters <= 0) {
    return BuildGeometricGraph(
        GenerateUniformPoints(options.num_nodes, options.plane_size, rng),
        radius);
  }
  const double sigma = options.cluster_sigma_scale * options.plane_size *
                       std::sqrt(1.0 / options.num_clusters);
  std::vector<Point> points = GenerateClusteredPoints(
      options.num_nodes, options.num_clusters, options.plane_size, sigma,
      rng);
  std::vector<NodeId> centers(options.num_clusters);
  for (int c = 0; c < options.num_clusters; ++c) centers[c] = c;
  return BuildGeometricGraph(points, radius, centers);
}

}  // namespace mcfs
