#include "mcfs/graph/contraction_hierarchy.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "mcfs/common/check.h"
#include "mcfs/common/dary_heap.h"
#include "mcfs/common/flat_map.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {

struct HeapEntry {
  double key;
  NodeId node;
};
struct HeapEntryLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.key < b.key;
  }
};
using MinHeap = DaryHeap<HeapEntry, 4, HeapEntryLess>;

// Remaining-graph adjacency during contraction. (Needs erase, which the
// flat kernels deliberately drop — construction-only, not a query path.)
using DynamicAdjacency = std::vector<std::unordered_map<NodeId, double>>;

// Reusable witness-search scratch: the label map and heap persist
// across the O(n^2) WitnessDistance probes of one contraction run, so
// each call costs an O(1) epoch bump instead of fresh allocations.
struct WitnessScratch {
  StampedMap<NodeId, double> dist;
  MinHeap heap;
};

// Bounded witness search: shortest distance from `from` to `to` in the
// remaining graph avoiding `excluded`, giving up (returns kInfDistance)
// beyond `threshold` or after `max_settled` settles. Exact when it
// returns a finite value <= threshold.
double WitnessDistance(const DynamicAdjacency& adj, NodeId from, NodeId to,
                       NodeId excluded, double threshold, int max_settled,
                       WitnessScratch& scratch) {
  StampedMap<NodeId, double>& dist = scratch.dist;
  MinHeap& heap = scratch.heap;
  dist.Clear();
  heap.clear();
  dist[from] = 0.0;
  heap.push({0.0, from});
  int settled = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const double* label = dist.Find(top.node);
    if (label == nullptr || top.key > *label) continue;
    if (top.key > threshold) return kInfDistance;  // witness too long
    if (top.node == to) return top.key;
    if (++settled > max_settled) return kInfDistance;  // budget hit
    for (const auto& [next, weight] : adj[top.node]) {
      if (next == excluded) continue;
      const double candidate = top.key + weight;
      double* next_label = dist.Find(next);
      if (next_label == nullptr) {
        dist[next] = candidate;
        heap.push({candidate, next});
      } else if (candidate < *next_label) {
        *next_label = candidate;
        heap.push({candidate, next});
      }
    }
  }
  return kInfDistance;
}

}  // namespace

ContractionHierarchy::ContractionHierarchy(const Graph* graph)
    : graph_(graph) {
  MCFS_CHECK(graph != nullptr);
  const int n = graph->NumNodes();
  rank_.assign(n, -1);
  up_.resize(n);

  // Remaining graph starts as the input (parallel edges collapsed to
  // their minimum weight).
  DynamicAdjacency adj(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const AdjEntry& e : graph->Neighbors(v)) {
      auto it = adj[v].find(e.to);
      if (it == adj[v].end() || e.weight < it->second) {
        adj[v][e.to] = e.weight;
      }
    }
  }

  std::vector<int> deleted_neighbors(n, 0);
  WitnessScratch witness_scratch;

  // Number of shortcut pairs a contraction of v would insert, probed
  // with a small witness budget (cheap, may overestimate).
  auto shortcuts_needed = [&](NodeId v, int witness_budget) {
    int needed = 0;
    for (auto u_it = adj[v].begin(); u_it != adj[v].end(); ++u_it) {
      auto w_it = u_it;
      for (++w_it; w_it != adj[v].end(); ++w_it) {
        const double via_v = u_it->second + w_it->second;
        const double witness =
            WitnessDistance(adj, u_it->first, w_it->first, v, via_v,
                            witness_budget, witness_scratch);
        if (witness > via_v) ++needed;
      }
    }
    return needed;
  };
  auto priority = [&](NodeId v) {
    return static_cast<double>(shortcuts_needed(v, 40)) -
           static_cast<double>(adj[v].size()) +
           0.7 * deleted_neighbors[v];
  };

  MinHeap queue;
  for (NodeId v = 0; v < n; ++v) {
    queue.push({priority(v), v});
  }
  int order = 0;
  while (!queue.empty()) {
    const HeapEntry top = queue.top();
    queue.pop();
    const NodeId v = top.node;
    if (rank_[v] != -1) continue;  // already contracted
    // Lazy re-evaluation: contract only if still (approximately) the
    // minimum-priority node.
    const double current = priority(v);
    if (!queue.empty() && current > queue.top().key + 1e-9) {
      queue.push({current, v});
      continue;
    }

    // Record upward arcs: every remaining neighbor outranks v.
    up_[v].reserve(adj[v].size());
    for (const auto& [u, weight] : adj[v]) {
      up_[v].push_back({u, weight});
    }
    // Insert shortcuts between neighbor pairs lacking a witness.
    for (auto u_it = adj[v].begin(); u_it != adj[v].end(); ++u_it) {
      auto w_it = u_it;
      for (++w_it; w_it != adj[v].end(); ++w_it) {
        const NodeId u = u_it->first;
        const NodeId w = w_it->first;
        const double via_v = u_it->second + w_it->second;
        const double witness =
            WitnessDistance(adj, u, w, v, via_v, 300, witness_scratch);
        if (witness <= via_v) continue;  // real path is no worse
        auto existing = adj[u].find(w);
        if (existing == adj[u].end() || via_v < existing->second) {
          adj[u][w] = via_v;
          adj[w][u] = via_v;
          ++num_shortcuts_;
        }
      }
    }
    // Remove v from the remaining graph.
    for (const auto& [u, weight] : adj[v]) {
      (void)weight;
      adj[u].erase(v);
      deleted_neighbors[u]++;
    }
    adj[v].clear();
    rank_[v] = order++;
  }
}

void ContractionHierarchy::UpwardSearch(
    NodeId source, std::vector<std::pair<NodeId, double>>* settled) const {
  // Per-thread scratch pool: DistanceTable fans searches out across the
  // thread pool, and each worker reuses its own label map (O(1) epoch
  // reset) and heap across every cone it explores.
  static thread_local StampedMap<NodeId, double> dist;
  static thread_local MinHeap heap;
  dist.Clear();
  heap.clear();
  dist[source] = 0.0;
  heap.push({0.0, source});
  int64_t settled_count = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const double* label = dist.Find(top.node);
    if (label == nullptr || top.key > *label) continue;
    settled->push_back({top.node, top.key});
    ++settled_count;
    for (const UpArc& arc : up_[top.node]) {
      const double candidate = top.key + arc.weight;
      double* next_label = dist.Find(arc.to);
      if (next_label == nullptr) {
        dist[arc.to] = candidate;
        heap.push({candidate, arc.to});
      } else if (candidate < *next_label) {
        *next_label = candidate;
        heap.push({candidate, arc.to});
      }
    }
  }
  last_settled_.fetch_add(settled_count, std::memory_order_relaxed);
  MCFS_COUNT("ch/upward_searches", 1);
  MCFS_COUNT("ch/upward_settles", settled_count);
}

double ContractionHierarchy::Distance(NodeId s, NodeId t) const {
  MCFS_CHECK(s >= 0 && s < graph_->NumNodes());
  MCFS_CHECK(t >= 0 && t < graph_->NumNodes());
  last_settled_ = 0;
  std::vector<std::pair<NodeId, double>> forward;
  std::vector<std::pair<NodeId, double>> backward;
  UpwardSearch(s, &forward);
  UpwardSearch(t, &backward);
  FlatMap<NodeId, double> forward_dist(forward.size());
  for (const auto& [node, dist] : forward) forward_dist[node] = dist;
  double best = kInfDistance;
  for (const auto& [node, dist] : backward) {
    const double* fwd = forward_dist.Find(node);
    if (fwd != nullptr) best = std::min(best, *fwd + dist);
  }
  return best;
}

std::vector<double> ContractionHierarchy::DistanceTable(
    const std::vector<NodeId>& sources, const std::vector<NodeId>& targets,
    int threads) const {
  const size_t rows = sources.size();
  const size_t cols = targets.size();
  std::vector<double> table(rows * cols, kInfDistance);

  // Phase 1 (parallel): one upward search per target; each index fills
  // only its own settled list.
  std::vector<std::vector<std::pair<NodeId, double>>> target_settled(cols);
  ParallelFor(
      0, static_cast<int64_t>(cols), /*grain=*/1,
      [&](int64_t t) { UpwardSearch(targets[t], &target_settled[t]); },
      threads);

  // Bucket merge stays serial and in target order, so bucket contents
  // (and therefore the min-scan below) are thread-count independent.
  // The settled-list sizes bound the distinct bucket keys, so the flat
  // map is sized once up front and never rehashes during the merge.
  size_t total_settled = 0;
  for (const auto& settled : target_settled) total_settled += settled.size();
  FlatMap<NodeId, std::vector<std::pair<int, double>>> buckets(total_settled);
  for (size_t t = 0; t < cols; ++t) {
    for (const auto& [node, dist] : target_settled[t]) {
      buckets[node].push_back({static_cast<int>(t), dist});
    }
    target_settled[t].clear();
    target_settled[t].shrink_to_fit();
  }

  // Phase 2 (parallel): one upward search per source, scanning the
  // now-read-only buckets; row s is written only by index s.
  ParallelFor(
      0, static_cast<int64_t>(rows), /*grain=*/1,
      [&](int64_t s) {
        std::vector<std::pair<NodeId, double>> settled;
        UpwardSearch(sources[s], &settled);
        int64_t bucket_scans = 0, bucket_entries = 0;
        for (const auto& [node, dist] : settled) {
          const auto* bucket = buckets.Find(node);
          if (bucket == nullptr) continue;
          ++bucket_scans;
          bucket_entries += static_cast<int64_t>(bucket->size());
          for (const auto& [t, target_dist] : *bucket) {
            double& cell = table[static_cast<size_t>(s) * cols + t];
            cell = std::min(cell, dist + target_dist);
          }
        }
        MCFS_COUNT("ch/bucket_scans", bucket_scans);
        MCFS_COUNT("ch/bucket_entries_scanned", bucket_entries);
      },
      threads);
  MCFS_COUNT("ch/table_cells",
             static_cast<int64_t>(rows) * static_cast<int64_t>(cols));
  return table;
}

}  // namespace mcfs
