#ifndef MCFS_GRAPH_DIJKSTRA_H_
#define MCFS_GRAPH_DIJKSTRA_H_

#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "mcfs/common/dary_heap.h"
#include "mcfs/common/flat_map.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

constexpr double kInfDistance = std::numeric_limits<double>::infinity();

// Full single-source shortest paths; dist[v] == kInfDistance when v is
// unreachable from `source`.
std::vector<double> ShortestPathsFrom(const Graph& graph, NodeId source);

// Single-source shortest paths truncated at `radius`: settles only nodes
// with distance <= radius and returns them (with their distances) in
// non-decreasing distance order.
struct SettledNode {
  NodeId node;
  double distance;
};
std::vector<SettledNode> DijkstraWithinRadius(const Graph& graph,
                                              NodeId source, double radius);

// Multi-source shortest paths: for every node, the distance to the
// nearest source and that source's index in `sources`. Used for network
// Voronoi cells (BRNN NLRs, Yelp workload simulation).
struct MultiSourceResult {
  std::vector<double> distance;    // to nearest source
  std::vector<int> nearest_index;  // index into `sources`, -1 if unreachable
};
MultiSourceResult MultiSourceDijkstra(const Graph& graph,
                                      const std::vector<NodeId>& sources);

// Resumable Dijkstra: settles nodes one at a time in non-decreasing
// distance order, preserving its state between calls. This implements
// the per-customer "incremental knowledge of network distances" of the
// paper (Sec. IV-D): each customer keeps one of these alive across
// FindPair calls so that candidate-facility edges can be materialized in
// sorted order on demand.
//
// Storage is sparse (flat open-addressing maps, see common/flat_map.h),
// so memory is proportional to the explored neighborhood, not to |V|:
// WMA keeps one instance per customer (the paper's "heaps for these
// executions per customer persist" note), and customers typically
// explore only a few facilities. The maps are used for point lookups
// and inserts only — the settle order is entirely heap-driven — so
// results are bit-identical to the former std::unordered_map storage.
class IncrementalDijkstra {
 public:
  // `expected_nodes` is a reserve hint for the label maps (e.g. the
  // neighborhood size a caller expects to explore); 0 starts minimal
  // and grows by doubling.
  IncrementalDijkstra(const Graph* graph, NodeId source,
                      size_t expected_nodes = 0);

  // Settles and returns the next nearest node, or nullopt when the
  // source's component is exhausted.
  std::optional<SettledNode> NextSettled();

  // Distance of the next node to be settled without consuming it, or
  // kInfDistance when exhausted.
  double PeekNextDistance();

  NodeId source() const { return source_; }

  // Distance to a node that has already been settled; kInfDistance if it
  // has not been settled yet.
  double SettledDistance(NodeId v) const {
    const double* dist = settled_dist_.Find(v);
    return dist == nullptr ? kInfDistance : *dist;
  }

  size_t num_settled() const { return settled_dist_.size(); }

  // Edge relaxations attempted so far (one per neighbor of every
  // settled node). Cumulative like num_settled(); NearestFacilityStream
  // uses both to attribute stream work to consumed candidates.
  int64_t num_relaxed() const { return num_relaxed_; }

 private:
  struct QueueEntry {
    double dist;
    NodeId node;
  };
  struct QueueEntryLess {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      return a.dist < b.dist;
    }
  };

  void AdvanceToUnsettled();

  double TentativeDistance(NodeId v) const {
    const double* dist = tentative_.Find(v);
    return dist == nullptr ? kInfDistance : *dist;
  }

  const Graph* graph_;
  NodeId source_;
  int64_t num_relaxed_ = 0;
  FlatMap<NodeId, double> tentative_;
  FlatMap<NodeId, double> settled_dist_;
  DaryHeap<QueueEntry, 4, QueueEntryLess> queue_;
};

}  // namespace mcfs

#endif  // MCFS_GRAPH_DIJKSTRA_H_
