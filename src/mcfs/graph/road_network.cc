#include "mcfs/graph/road_network.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "mcfs/common/random.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {
namespace {

// Skeleton of a city: intersections plus the streets between them;
// streets are later subdivided into short road-shape segments.
struct Skeleton {
  std::vector<Point> intersections;
  std::vector<std::pair<NodeId, NodeId>> streets;
};

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

// Expands the skeleton into the final road network: every street of
// length L becomes max(1, round(L / avg_edge_length)) segments with
// slightly jittered interior shape nodes, like OSM road geometry.
Graph ExpandSkeleton(const Skeleton& skeleton, double avg_edge_length,
                     Rng& rng) {
  // First pass: count nodes.
  std::vector<int> segments(skeleton.streets.size());
  int64_t extra_nodes = 0;
  for (size_t s = 0; s < skeleton.streets.size(); ++s) {
    const auto [u, v] = skeleton.streets[s];
    const double len = EuclideanDistance(skeleton.intersections[u],
                                         skeleton.intersections[v]);
    segments[s] =
        std::max(1, static_cast<int>(std::lround(len / avg_edge_length)));
    extra_nodes += segments[s] - 1;
  }
  const int num_intersections = static_cast<int>(skeleton.intersections.size());
  const int total_nodes = num_intersections + static_cast<int>(extra_nodes);
  GraphBuilder builder(total_nodes);
  std::vector<Point> coords = skeleton.intersections;
  coords.resize(total_nodes);
  NodeId next_node = num_intersections;
  for (size_t s = 0; s < skeleton.streets.size(); ++s) {
    const auto [u, v] = skeleton.streets[s];
    const Point& a = skeleton.intersections[u];
    const Point& b = skeleton.intersections[v];
    const int parts = segments[s];
    NodeId prev = u;
    Point prev_point = a;
    for (int p = 1; p <= parts; ++p) {
      NodeId cur;
      Point cur_point;
      if (p == parts) {
        cur = v;
        cur_point = b;
      } else {
        const double t = static_cast<double>(p) / parts;
        cur_point.x = a.x + t * (b.x - a.x) + rng.Gaussian(0.0, 1.5);
        cur_point.y = a.y + t * (b.y - a.y) + rng.Gaussian(0.0, 1.5);
        cur = next_node++;
        coords[cur] = cur_point;
      }
      const double w =
          std::max(EuclideanDistance(prev_point, cur_point), 0.5);
      builder.AddEdge(prev, cur, w);
      prev = cur;
      prev_point = cur_point;
    }
  }
  MCFS_CHECK_EQ(next_node, total_nodes);
  builder.SetCoordinates(std::move(coords));
  return builder.Build();
}

Skeleton BuildGridSkeleton(const CityOptions& options, Rng& rng) {
  // With ~3 segments per street and dropout q, total nodes are roughly
  // WH * (1 + (1-q)*2*(s-1)); solve for the intersection count.
  const int s = 3;
  const double per_intersection =
      1.0 + (1.0 - options.street_dropout) * 2.0 * (s - 1);
  const int num_intersections = std::max(
      4, static_cast<int>(options.target_nodes / per_intersection));
  const int width = std::max(
      2, static_cast<int>(std::lround(std::sqrt(num_intersections * 1.3))));
  const int height = std::max(2, num_intersections / width);
  const double spacing = s * options.avg_edge_length;

  Skeleton skeleton;
  skeleton.intersections.reserve(static_cast<size_t>(width) * height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      skeleton.intersections.push_back({x * spacing + rng.Gaussian(0.0, 3.0),
                                        y * spacing + rng.Gaussian(0.0, 3.0)});
    }
  }
  auto id = [&](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width && rng.NextDouble() >= options.street_dropout) {
        skeleton.streets.push_back({id(x, y), id(x + 1, y)});
      }
      if (y + 1 < height && rng.NextDouble() >= options.street_dropout) {
        skeleton.streets.push_back({id(x, y), id(x, y + 1)});
      }
    }
  }
  // A handful of diagonal arterials raise the max degree above 4, as in
  // real grid cities.
  const int arterials = std::max(1, num_intersections / 2000);
  for (int a = 0; a < arterials; ++a) {
    const int x = static_cast<int>(rng.UniformInt(0, width - 2));
    const int y = static_cast<int>(rng.UniformInt(0, height - 2));
    skeleton.streets.push_back({id(x, y), id(x + 1, y + 1)});
  }
  return skeleton;
}

Skeleton BuildOrganicSkeleton(const CityOptions& options, Rng& rng) {
  // nodes ~= i * (1 + 1.3 * (s-1)) with s=3 segments per street and
  // ~1.3 streets per intersection (spanning tree + 30% cycle edges).
  const int s = 3;
  const double streets_per_intersection = 1.3;
  const double per_intersection =
      1.0 + streets_per_intersection * (s - 1);
  const int num_intersections = std::max(
      8, static_cast<int>(options.target_nodes / per_intersection));
  const double spacing = s * options.avg_edge_length;
  const double side = 2.0 * spacing * std::sqrt(num_intersections);

  Skeleton skeleton;
  skeleton.intersections.reserve(num_intersections);
  // A mixture of uniform sprawl and denser districts.
  const int num_districts = 4 + static_cast<int>(rng.UniformInt(0, 3));
  std::vector<Point> districts;
  for (int d = 0; d < num_districts; ++d) {
    districts.push_back(
        {rng.Uniform(0.2 * side, 0.8 * side), rng.Uniform(0.2 * side, 0.8 * side)});
  }
  for (int i = 0; i < num_intersections; ++i) {
    if (rng.NextDouble() < 0.4) {
      const Point& c = districts[rng.UniformInt(0, num_districts - 1)];
      skeleton.intersections.push_back(
          {std::clamp(rng.Gaussian(c.x, side * 0.08), 0.0, side),
           std::clamp(rng.Gaussian(c.y, side * 0.08), 0.0, side)});
    } else {
      skeleton.intersections.push_back(
          {rng.Uniform(0.0, side), rng.Uniform(0.0, side)});
    }
  }

  // Candidate edges: grid-bucketed near neighbors.
  const double cell = spacing * 1.2;
  auto key = [&](const Point& p) {
    const int64_t cx = static_cast<int64_t>(std::floor(p.x / cell));
    const int64_t cy = static_cast<int64_t>(std::floor(p.y / cell));
    return (cx << 32) ^ (cy & 0xffffffffLL);
  };
  std::unordered_map<int64_t, std::vector<NodeId>> grid;
  for (NodeId i = 0; i < num_intersections; ++i) {
    grid[key(skeleton.intersections[i])].push_back(i);
  }
  struct Candidate {
    double dist;
    NodeId u, v;
    bool operator<(const Candidate& other) const {
      return dist < other.dist;
    }
  };
  std::vector<Candidate> candidates;
  const int knn = 4;
  for (NodeId i = 0; i < num_intersections; ++i) {
    const Point& p = skeleton.intersections[i];
    std::vector<Candidate> local;
    const int64_t cx = static_cast<int64_t>(std::floor(p.x / cell));
    const int64_t cy = static_cast<int64_t>(std::floor(p.y / cell));
    for (int64_t dx = -2; dx <= 2; ++dx) {
      for (int64_t dy = -2; dy <= 2; ++dy) {
        auto it = grid.find(((cx + dx) << 32) ^ ((cy + dy) & 0xffffffffLL));
        if (it == grid.end()) continue;
        for (const NodeId j : it->second) {
          if (j == i) continue;
          local.push_back(
              {EuclideanDistance(p, skeleton.intersections[j]), i, j});
        }
      }
    }
    const size_t keep = std::min<size_t>(knn, local.size());
    std::partial_sort(local.begin(), local.begin() + keep, local.end());
    local.resize(keep);
    candidates.insert(candidates.end(), local.begin(), local.end());
  }
  std::sort(candidates.begin(), candidates.end());

  // Kruskal spanning forest, then extra short cycle edges.
  UnionFind uf(num_intersections);
  std::vector<Candidate> unused;
  std::vector<std::pair<NodeId, NodeId>>& streets = skeleton.streets;
  auto canonical = [](NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  auto encode = [](std::pair<NodeId, NodeId> e) {
    return (static_cast<int64_t>(e.first) << 32) | e.second;
  };
  std::unordered_set<int64_t> street_set;
  for (const Candidate& c : candidates) {
    if (uf.Union(c.u, c.v)) {
      const auto edge = canonical(c.u, c.v);
      streets.push_back(edge);
      street_set.insert(encode(edge));
    } else {
      unused.push_back(c);
    }
  }
  const size_t target_streets = static_cast<size_t>(
      streets_per_intersection * num_intersections);
  std::sort(unused.begin(), unused.end());
  for (const Candidate& c : unused) {
    if (streets.size() >= target_streets) break;
    const auto edge = canonical(c.u, c.v);
    if (street_set.insert(encode(edge)).second) {
      streets.push_back(edge);
    }
  }

  // Stitch the spanning forest into one connected network — real road
  // networks are connected, while the k-NN candidate set can leave
  // isolated pockets. Repeatedly link the smallest component to its
  // nearest outside node.
  while (true) {
    std::unordered_map<int, std::vector<NodeId>> components;
    for (NodeId v = 0; v < num_intersections; ++v) {
      components[uf.Find(v)].push_back(v);
    }
    if (components.size() <= 1) break;
    const std::vector<NodeId>* smallest = nullptr;
    for (const auto& [root, members] : components) {
      (void)root;
      if (smallest == nullptr || members.size() < smallest->size()) {
        smallest = &members;
      }
    }
    double best_dist = kInfDistance;
    NodeId best_inside = kInvalidNode;
    NodeId best_outside = kInvalidNode;
    const int small_root = uf.Find((*smallest)[0]);
    for (const NodeId inside : *smallest) {
      for (NodeId outside = 0; outside < num_intersections; ++outside) {
        if (uf.Find(outside) == small_root) continue;
        const double d = EuclideanDistance(skeleton.intersections[inside],
                                           skeleton.intersections[outside]);
        if (d < best_dist) {
          best_dist = d;
          best_inside = inside;
          best_outside = outside;
        }
      }
    }
    uf.Union(best_inside, best_outside);
    const auto edge = canonical(best_inside, best_outside);
    if (street_set.insert(encode(edge)).second) streets.push_back(edge);
  }
  return skeleton;
}

}  // namespace

Graph GenerateCity(const CityOptions& options) {
  Rng rng(options.seed);
  Skeleton skeleton = options.style == CityStyle::kGrid
                          ? BuildGridSkeleton(options, rng)
                          : BuildOrganicSkeleton(options, rng);
  return ExpandSkeleton(skeleton, options.avg_edge_length, rng);
}

namespace {
CityOptions MakePreset(const std::string& name, int nodes, CityStyle style,
                       double edge_len, double scale, uint64_t seed) {
  CityOptions options;
  options.name = name;
  options.target_nodes =
      std::max(200, static_cast<int>(std::lround(nodes * scale)));
  options.style = style;
  options.avg_edge_length = edge_len;
  options.seed = seed;
  return options;
}
}  // namespace

CityOptions AalborgPreset(double scale, uint64_t seed) {
  return MakePreset("Aalborg", 50961, CityStyle::kOrganic, 30.2, scale, seed);
}
CityOptions RigaPreset(double scale, uint64_t seed) {
  return MakePreset("Riga", 287927, CityStyle::kOrganic, 28.7, scale, seed);
}
CityOptions CopenhagenPreset(double scale, uint64_t seed) {
  return MakePreset("Copenhagen", 282826, CityStyle::kOrganic, 32.6, scale,
                    seed);
}
CityOptions LasVegasPreset(double scale, uint64_t seed) {
  return MakePreset("LasVegas", 425759, CityStyle::kGrid, 50.4, scale, seed);
}

}  // namespace mcfs
