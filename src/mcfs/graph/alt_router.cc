#include "mcfs/graph/alt_router.h"

#include <algorithm>
#include <cmath>

#include "mcfs/common/check.h"
#include "mcfs/common/dary_heap.h"
#include "mcfs/graph/dijkstra.h"

namespace mcfs {

AltRouter::AltRouter(const Graph* graph, int num_landmarks, Rng& rng)
    : graph_(graph) {
  MCFS_CHECK(graph != nullptr);
  MCFS_CHECK_GT(num_landmarks, 0);
  const int n = graph->NumNodes();
  MCFS_CHECK_GT(n, 0);

  // Farthest-point landmark selection: start from a random node, then
  // repeatedly take the node farthest from all landmarks so far
  // (restricted to the start's component; unreachable nodes never
  // become landmarks for it).
  NodeId first = static_cast<NodeId>(rng.UniformInt(0, n - 1));
  landmarks_.push_back(first);
  landmark_dist_.push_back(ShortestPathsFrom(*graph, first));
  std::vector<double> nearest_landmark = landmark_dist_.back();
  while (static_cast<int>(landmarks_.size()) < num_landmarks) {
    NodeId farthest = kInvalidNode;
    double farthest_dist = -1.0;
    for (NodeId v = 0; v < n; ++v) {
      const double d = nearest_landmark[v];
      if (d != kInfDistance && d > farthest_dist) {
        farthest_dist = d;
        farthest = v;
      }
    }
    if (farthest == kInvalidNode || farthest_dist <= 0.0) break;
    landmarks_.push_back(farthest);
    landmark_dist_.push_back(ShortestPathsFrom(*graph, farthest));
    for (NodeId v = 0; v < n; ++v) {
      nearest_landmark[v] =
          std::min(nearest_landmark[v], landmark_dist_.back()[v]);
    }
  }
}

double AltRouter::Potential(NodeId v, NodeId target) const {
  // max over landmarks of |d(L, t) - d(L, v)| (admissible & consistent
  // on undirected graphs by the triangle inequality).
  double h = 0.0;
  for (const auto& dist : landmark_dist_) {
    const double dv = dist[v];
    const double dt = dist[target];
    if (dv == kInfDistance || dt == kInfDistance) continue;
    h = std::max(h, std::abs(dt - dv));
  }
  return h;
}

double AltRouter::Search(NodeId s, NodeId t,
                         std::vector<NodeId>* parents) const {
  const int n = graph_->NumNodes();
  MCFS_CHECK(s >= 0 && s < n);
  MCFS_CHECK(t >= 0 && t < n);
  std::vector<double> dist(n, kInfDistance);
  std::vector<uint8_t> settled(n, 0);
  if (parents != nullptr) parents->assign(n, kInvalidNode);

  struct Entry {
    double f;  // g + h
    NodeId node;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.f < b.f;
    }
  };
  DaryHeap<Entry, 4, EntryLess> heap;
  dist[s] = 0.0;
  heap.push({Potential(s, t), s});
  last_settled_ = 0;
  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const NodeId v = top.node;
    if (settled[v]) continue;
    settled[v] = 1;
    ++last_settled_;
    if (v == t) return dist[t];
    for (const AdjEntry& e : graph_->Neighbors(v)) {
      const double candidate = dist[v] + e.weight;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        if (parents != nullptr) (*parents)[e.to] = v;
        heap.push({candidate + Potential(e.to, t), e.to});
      }
    }
  }
  return kInfDistance;
}

double AltRouter::Distance(NodeId s, NodeId t) const {
  return Search(s, t, nullptr);
}

std::vector<NodeId> AltRouter::Path(NodeId s, NodeId t) const {
  std::vector<NodeId> parents;
  if (Search(s, t, &parents) == kInfDistance) return {};
  std::vector<NodeId> path;
  for (NodeId v = t; v != kInvalidNode; v = parents[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  MCFS_CHECK_EQ(path.front(), s);
  return path;
}

}  // namespace mcfs
