#include "mcfs/graph/graph.h"

#include <algorithm>
#include <cmath>

namespace mcfs {

double Graph::AverageDegree() const {
  if (NumNodes() == 0) return 0.0;
  return static_cast<double>(NumArcs()) / NumNodes();
}

int Graph::MaxDegree() const {
  int max_degree = 0;
  for (NodeId v = 0; v < NumNodes(); ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

double Graph::AverageEdgeLength() const {
  if (adj_.empty()) return 0.0;
  double total = 0.0;
  for (const AdjEntry& e : adj_) total += e.weight;
  return total / static_cast<double>(adj_.size());
}

Graph GraphBuilder::Build() const {
  Graph graph;
  graph.offsets_.assign(num_nodes_ + 1, 0);
  for (const Arc& arc : arcs_) graph.offsets_[arc.from + 1]++;
  for (int v = 0; v < num_nodes_; ++v) {
    graph.offsets_[v + 1] += graph.offsets_[v];
  }
  graph.adj_.resize(arcs_.size());
  std::vector<int64_t> cursor(graph.offsets_.begin(),
                              graph.offsets_.end() - 1);
  for (const Arc& arc : arcs_) {
    graph.adj_[cursor[arc.from]++] = {arc.to, arc.weight};
  }
  graph.coords_ = coords_;
  return graph;
}

ComponentLabeling ConnectedComponents(const Graph& graph) {
  ComponentLabeling result;
  const int n = graph.NumNodes();
  result.component_of.assign(n, -1);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (result.component_of[start] != -1) continue;
    const int comp = result.num_components++;
    int size = 0;
    stack.push_back(start);
    result.component_of[start] = comp;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      ++size;
      for (const AdjEntry& e : graph.Neighbors(v)) {
        if (result.component_of[e.to] == -1) {
          result.component_of[e.to] = comp;
          stack.push_back(e.to);
        }
      }
    }
    result.component_size.push_back(size);
  }
  return result;
}

double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace mcfs
