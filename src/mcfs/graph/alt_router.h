#ifndef MCFS_GRAPH_ALT_ROUTER_H_
#define MCFS_GRAPH_ALT_ROUTER_H_

#include <cstdint>
#include <vector>

#include "mcfs/common/random.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// ALT point-to-point shortest paths (A* with Landmarks and the
// Triangle inequality): preprocessing runs one Dijkstra per landmark
// (landmarks picked by the farthest-point heuristic); queries run A*
// with the admissible potential
//     h(v) = max_L |d(L, t) - d(L, v)|,
// which is exact on the landmark shortest-path trees and prunes large
// parts of the network on road graphs. Used for the repeated
// origin/destination routing in the workload simulators and the CLI.
//
// The graph must be undirected (ours are); distances are exact — ALT is
// a speedup technique, not an approximation (verified against plain
// Dijkstra in tests).
class AltRouter {
 public:
  AltRouter(const Graph* graph, int num_landmarks, Rng& rng);

  // Shortest-path distance from s to t; kInfDistance when disconnected.
  double Distance(NodeId s, NodeId t) const;

  // Shortest path as a node sequence (empty when disconnected).
  std::vector<NodeId> Path(NodeId s, NodeId t) const;

  int num_landmarks() const { return static_cast<int>(landmarks_.size()); }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  // Nodes settled by the last query (instrumentation for the micro
  // bench: ALT should settle far fewer than plain Dijkstra).
  int64_t last_settled_count() const { return last_settled_; }

 private:
  double Potential(NodeId v, NodeId target) const;
  // Runs the A* search; fills parents when `parents` is non-null.
  double Search(NodeId s, NodeId t, std::vector<NodeId>* parents) const;

  const Graph* graph_;
  std::vector<NodeId> landmarks_;
  // landmark_dist_[L][v]: distance from landmarks_[L] to node v.
  std::vector<std::vector<double>> landmark_dist_;
  mutable int64_t last_settled_ = 0;
};

}  // namespace mcfs

#endif  // MCFS_GRAPH_ALT_ROUTER_H_
