#include "mcfs/graph/dijkstra.h"

#include "mcfs/common/dary_heap.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {

struct HeapEntry {
  double dist;
  NodeId node;
};

struct HeapEntryLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.dist < b.dist;
  }
};

using MinHeap = DaryHeap<HeapEntry, 4, HeapEntryLess>;

}  // namespace

std::vector<double> ShortestPathsFrom(const Graph& graph, NodeId source) {
  std::vector<double> dist(graph.NumNodes(), kInfDistance);
  // Work counters accumulate in locals (free registers) and flush once
  // per call, so the disabled-metrics fast path is unchanged.
  int64_t settled = 0, relaxed = 0, heap_pushes = 1;
  MinHeap heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist > dist[top.node]) continue;  // stale entry
    ++settled;
    for (const AdjEntry& e : graph.Neighbors(top.node)) {
      ++relaxed;
      const double candidate = top.dist + e.weight;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.push({candidate, e.to});
        ++heap_pushes;
      }
    }
  }
  MCFS_COUNT("dijkstra/full_runs", 1);
  MCFS_COUNT("dijkstra/nodes_settled", settled);
  MCFS_COUNT("dijkstra/edges_relaxed", relaxed);
  MCFS_COUNT("dijkstra/heap_pushes", heap_pushes);
  return dist;
}

std::vector<SettledNode> DijkstraWithinRadius(const Graph& graph,
                                              NodeId source, double radius) {
  std::vector<double> dist(graph.NumNodes(), kInfDistance);
  std::vector<SettledNode> settled;
  int64_t relaxed = 0;
  MinHeap heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist > dist[top.node]) continue;
    if (top.dist > radius) break;
    settled.push_back({top.node, top.dist});
    for (const AdjEntry& e : graph.Neighbors(top.node)) {
      ++relaxed;
      const double candidate = top.dist + e.weight;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.push({candidate, e.to});
      }
    }
  }
  MCFS_COUNT("dijkstra/bounded_runs", 1);
  MCFS_COUNT("dijkstra/nodes_settled", static_cast<int64_t>(settled.size()));
  MCFS_COUNT("dijkstra/edges_relaxed", relaxed);
  return settled;
}

MultiSourceResult MultiSourceDijkstra(const Graph& graph,
                                      const std::vector<NodeId>& sources) {
  MultiSourceResult result;
  result.distance.assign(graph.NumNodes(), kInfDistance);
  result.nearest_index.assign(graph.NumNodes(), -1);
  MinHeap heap;
  for (size_t i = 0; i < sources.size(); ++i) {
    const NodeId s = sources[i];
    if (result.distance[s] > 0.0) {
      result.distance[s] = 0.0;
      result.nearest_index[s] = static_cast<int>(i);
      heap.push({0.0, s});
    }
  }
  int64_t settled = 0, relaxed = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist > result.distance[top.node]) continue;
    ++settled;
    for (const AdjEntry& e : graph.Neighbors(top.node)) {
      ++relaxed;
      const double candidate = top.dist + e.weight;
      if (candidate < result.distance[e.to]) {
        result.distance[e.to] = candidate;
        result.nearest_index[e.to] = result.nearest_index[top.node];
        heap.push({candidate, e.to});
      }
    }
  }
  MCFS_COUNT("dijkstra/multi_source_runs", 1);
  MCFS_COUNT("dijkstra/nodes_settled", settled);
  MCFS_COUNT("dijkstra/edges_relaxed", relaxed);
  return result;
}

IncrementalDijkstra::IncrementalDijkstra(const Graph* graph, NodeId source,
                                         size_t expected_nodes)
    : graph_(graph), source_(source) {
  if (expected_nodes > 0) {
    tentative_.Reserve(expected_nodes);
    settled_dist_.Reserve(expected_nodes);
  }
  tentative_[source] = 0.0;
  queue_.push({0.0, source});
}

void IncrementalDijkstra::AdvanceToUnsettled() {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.top();
    if (settled_dist_.Contains(top.node) ||
        top.dist > TentativeDistance(top.node)) {
      queue_.pop();  // stale or already settled
      continue;
    }
    return;
  }
}

double IncrementalDijkstra::PeekNextDistance() {
  AdvanceToUnsettled();
  return queue_.empty() ? kInfDistance : queue_.top().dist;
}

std::optional<SettledNode> IncrementalDijkstra::NextSettled() {
  AdvanceToUnsettled();
  if (queue_.empty()) return std::nullopt;
  const QueueEntry top = queue_.top();
  queue_.pop();
  settled_dist_[top.node] = top.dist;
  for (const AdjEntry& e : graph_->Neighbors(top.node)) {
    ++num_relaxed_;
    if (settled_dist_.Contains(e.to)) continue;
    const double candidate = top.dist + e.weight;
    // Single probe: an existing label is updated in place, a missing
    // one is inserted (absent == kInfDistance, so always an improvement).
    double* label = tentative_.Find(e.to);
    if (label == nullptr) {
      tentative_[e.to] = candidate;
      queue_.push({candidate, e.to});
    } else if (candidate < *label) {
      *label = candidate;
      queue_.push({candidate, e.to});
    }
  }
  return SettledNode{top.node, top.dist};
}

}  // namespace mcfs
