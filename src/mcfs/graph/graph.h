#ifndef MCFS_GRAPH_GRAPH_H_
#define MCFS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mcfs/common/check.h"

namespace mcfs {

// Node identifier within a Graph. Dense, 0-based.
using NodeId = int32_t;

constexpr NodeId kInvalidNode = -1;

// One directed adjacency entry: target node and edge weight (length).
struct AdjEntry {
  NodeId to = kInvalidNode;
  double weight = 0.0;
};

// 2-D coordinates attached to nodes; used by generators, the Hilbert
// baseline, and the workload simulators. Units are meters (real-style
// networks) or abstract plane units (synthetic 10^3 x 10^3 square).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

// Immutable weighted network in CSR (compressed sparse row) layout.
// Models a road network: nodes are intersections / road vertices, edges
// are road segments with positive lengths. Built via GraphBuilder.
//
// The paper's networks are undirected; GraphBuilder::AddEdge inserts both
// arcs. Directed edges are supported via AddArc.
class Graph {
 public:
  Graph() = default;

  int NumNodes() const { return static_cast<int>(offsets_.size()) - 1; }
  // Number of stored arcs (an undirected edge contributes two arcs).
  int64_t NumArcs() const { return static_cast<int64_t>(adj_.size()); }
  // Number of undirected edges, assuming the graph was built undirected.
  int64_t NumEdges() const { return NumArcs() / 2; }

  int Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const AdjEntry> Neighbors(NodeId v) const {
    MCFS_DCHECK(v >= 0 && v < NumNodes());
    return {adj_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  bool has_coordinates() const { return !coords_.empty(); }
  const Point& coordinate(NodeId v) const {
    MCFS_DCHECK(has_coordinates());
    return coords_[v];
  }
  const std::vector<Point>& coordinates() const { return coords_; }

  // Structural statistics used by the dataset tables (Table III).
  double AverageDegree() const;
  int MaxDegree() const;
  double AverageEdgeLength() const;

 private:
  friend class GraphBuilder;

  std::vector<int64_t> offsets_;  // size NumNodes() + 1
  std::vector<AdjEntry> adj_;
  std::vector<Point> coords_;  // empty if no coordinates attached
};

// Accumulates edges and produces a CSR Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_nodes) : num_nodes_(num_nodes) {
    MCFS_CHECK_GE(num_nodes, 0);
  }

  // Adds an undirected edge (two arcs). Weight must be positive.
  void AddEdge(NodeId u, NodeId v, double weight) {
    AddArc(u, v, weight);
    AddArc(v, u, weight);
  }

  // Adds a single directed arc. The weight check is always on (not a
  // DCHECK): every Dijkstra variant assumes positive weights, and a
  // negative or NaN length would corrupt searches silently. File-based
  // inputs are rejected earlier with a typed kInvalidInput status
  // (ReadGraph); reaching this check is a programming error.
  void AddArc(NodeId u, NodeId v, double weight) {
    MCFS_DCHECK(u >= 0 && u < num_nodes_);
    MCFS_DCHECK(v >= 0 && v < num_nodes_);
    MCFS_CHECK(weight > 0.0)
        << "edge " << u << " -> " << v << " has non-positive weight "
        << weight;
    arcs_.push_back({u, v, weight});
  }

  void SetCoordinates(std::vector<Point> coords) {
    MCFS_CHECK_EQ(static_cast<int>(coords.size()), num_nodes_);
    coords_ = std::move(coords);
  }

  int num_nodes() const { return num_nodes_; }
  int64_t num_arcs() const { return static_cast<int64_t>(arcs_.size()); }

  // Finalizes into a CSR Graph. The builder may be reused afterwards.
  Graph Build() const;

 private:
  struct Arc {
    NodeId from;
    NodeId to;
    double weight;
  };

  int num_nodes_;
  std::vector<Arc> arcs_;
  std::vector<Point> coords_;
};

// Labels each node with a connected-component id in [0, num_components).
// The graph is treated as undirected (which our graphs are).
struct ComponentLabeling {
  std::vector<int> component_of;  // size NumNodes()
  int num_components = 0;
  std::vector<int> component_size;  // size num_components
};

ComponentLabeling ConnectedComponents(const Graph& graph);

// Euclidean distance between two points.
double EuclideanDistance(const Point& a, const Point& b);

}  // namespace mcfs

#endif  // MCFS_GRAPH_GRAPH_H_
