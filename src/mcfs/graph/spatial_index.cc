#include "mcfs/graph/spatial_index.h"

#include <algorithm>

#include "mcfs/common/check.h"

namespace mcfs {

SpatialGridIndex::SpatialGridIndex(std::vector<Point> points,
                                   double target_per_cell)
    : points_(std::move(points)) {
  MCFS_CHECK_GT(target_per_cell, 0.0);
  if (points_.empty()) {
    buckets_.resize(1);
    return;
  }
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  min_x_ = std::numeric_limits<double>::infinity();
  min_y_ = std::numeric_limits<double>::infinity();
  for (const Point& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double extent_x = std::max(max_x - min_x_, 1e-9);
  const double extent_y = std::max(max_y - min_y_, 1e-9);
  // Aim for ~target_per_cell points per cell on average.
  const double area = extent_x * extent_y;
  cell_size_ = std::sqrt(area * target_per_cell /
                         static_cast<double>(points_.size()));
  cell_size_ = std::max(cell_size_, 1e-9);
  cells_x_ = static_cast<int64_t>(extent_x / cell_size_) + 1;
  cells_y_ = static_cast<int64_t>(extent_y / cell_size_) + 1;
  buckets_.resize(static_cast<size_t>(cells_x_ * cells_y_));
  for (int id = 0; id < static_cast<int>(points_.size()); ++id) {
    const CellCoord cell = CellOf(points_[id]);
    buckets_[static_cast<size_t>(cell.y * cells_x_ + cell.x)].push_back(id);
  }
}

const std::vector<int>* SpatialGridIndex::CellBucket(int64_t cx,
                                                     int64_t cy) const {
  if (cx < 0 || cx >= cells_x_ || cy < 0 || cy >= cells_y_) return nullptr;
  return &buckets_[static_cast<size_t>(cy * cells_x_ + cx)];
}

int SpatialGridIndex::NearestNeighbor(const Point& query) const {
  return NearestNeighborIf(query, [](int) { return true; });
}

std::vector<int> SpatialGridIndex::RangeQuery(const Point& query,
                                              double radius) const {
  std::vector<int> result;
  if (points_.empty()) return result;
  const CellCoord lo = CellOf({query.x - radius, query.y - radius});
  const CellCoord hi = CellOf({query.x + radius, query.y + radius});
  for (int64_t cx = lo.x; cx <= hi.x; ++cx) {
    for (int64_t cy = lo.y; cy <= hi.y; ++cy) {
      const std::vector<int>* bucket = CellBucket(cx, cy);
      if (bucket == nullptr) continue;
      for (const int id : *bucket) {
        if (EuclideanDistance(points_[id], query) <= radius) {
          result.push_back(id);
        }
      }
    }
  }
  return result;
}

}  // namespace mcfs
