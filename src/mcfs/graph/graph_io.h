#ifndef MCFS_GRAPH_GRAPH_IO_H_
#define MCFS_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>

#include "mcfs/common/status.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// Plain-text graph format:
//   line 1: "<num_nodes> <num_undirected_edges> <has_coords:0|1>"
//   if has_coords: num_nodes lines "x y"
//   then num_edges lines "u v weight"
//
// The Status API below is the primary one (line-numbered parse
// diagnostics, typed kIoError/kInvalidInput codes; DESIGN.md §4.8);
// SaveGraph/LoadGraph are thin deprecated shims kept for callers of the
// original bool/optional signatures.

// Writes the graph; kIoError when the file cannot be opened or the
// write is cut short.
Status WriteGraph(const Graph& graph, const std::string& path);

// Loads a graph saved by WriteGraph. kIoError when the file cannot be
// opened; kInvalidInput (with the offending line number) for malformed
// headers, out-of-range node ids, non-positive / non-finite edge
// weights, truncated files, and node/edge counts larger than the file
// could possibly hold.
StatusOr<Graph> ReadGraph(const std::string& path);

// Deprecated: use WriteGraph. Returns false on any failure.
bool SaveGraph(const Graph& graph, const std::string& path);

// Deprecated: use ReadGraph. Collapses the diagnostic to nullopt.
std::optional<Graph> LoadGraph(const std::string& path);

}  // namespace mcfs

#endif  // MCFS_GRAPH_GRAPH_IO_H_
