#ifndef MCFS_GRAPH_GRAPH_IO_H_
#define MCFS_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>

#include "mcfs/graph/graph.h"

namespace mcfs {

// Plain-text graph format:
//   line 1: "<num_nodes> <num_undirected_edges> <has_coords:0|1>"
//   if has_coords: num_nodes lines "x y"
//   then num_edges lines "u v weight"
// Returns false on I/O failure.
bool SaveGraph(const Graph& graph, const std::string& path);

// Loads a graph saved by SaveGraph; nullopt on parse/I/O failure.
std::optional<Graph> LoadGraph(const std::string& path);

}  // namespace mcfs

#endif  // MCFS_GRAPH_GRAPH_IO_H_
