#ifndef MCFS_OBS_TRACE_H_
#define MCFS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mcfs {
namespace obs {

// ---------------------------------------------------------------------------
// Scoped trace spans. MCFS_SPAN("wma/iteration") records a begin/end
// pair on a per-thread buffer; ChromeTraceJson()/WriteChromeTrace()
// export the collected spans as Chrome trace_event "complete" (ph:"X")
// events, loadable in chrome://tracing and https://ui.perfetto.dev.
//
// Tracing is off by default: a disabled span costs one relaxed atomic
// load. Enable with EnableTracing(true), the MCFS_TRACE=<path>
// environment variable (which also writes the file at process exit), or
// the bench binaries' --trace-out=PATH flag.
//
// Span buffers are per-thread (no lock on the hot path is contended;
// each buffer has a private mutex so collection is safe) and survive
// thread exit, so pool workers' spans are always exported. Collect only
// while no instrumented parallel section is running (ParallelFor joins
// before returning, so after it returns the pool is quiescent).
// ---------------------------------------------------------------------------

extern std::atomic<bool> g_tracing_enabled;

inline bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool enabled);

// One completed span. Timestamps are steady-clock microseconds relative
// to the process trace epoch; depth is the span nesting level on its
// thread (0 = outermost), exported as an event argument.
struct TraceEvent {
  std::string name;
  int tid = 0;
  int depth = 0;
  int64_t start_us = 0;
  int64_t dur_us = 0;
};

// RAII span. The name is copied at construction, so temporaries are
// fine; when tracing is disabled construction and destruction are
// branch-only.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) Begin(name);
  }
  explicit TraceSpan(const std::string& name) {
    if (TracingEnabled()) Begin(name.c_str());
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  std::string name_;
  int64_t start_us_ = 0;
};

// Steady-clock microseconds since the process trace epoch.
int64_t TraceNowUs();

// All completed spans from every thread, sorted by (start, tid).
std::vector<TraceEvent> CollectTraceEvents();

// Drops every recorded span (buffers stay registered).
void ClearTrace();

// Chrome trace_event JSON: {"traceEvents": [{"name", "cat", "ph": "X",
// "ts", "dur", "pid", "tid", "args": {"depth"}} ...]}.
std::string ChromeTraceJson();

// Writes ChromeTraceJson() to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace obs
}  // namespace mcfs

#define MCFS_OBS_CONCAT_INNER(a, b) a##b
#define MCFS_OBS_CONCAT(a, b) MCFS_OBS_CONCAT_INNER(a, b)

// Scoped trace span covering the rest of the enclosing block.
#define MCFS_SPAN(name) \
  ::mcfs::obs::TraceSpan MCFS_OBS_CONCAT(mcfs_obs_span_, __LINE__)(name)

#endif  // MCFS_OBS_TRACE_H_
