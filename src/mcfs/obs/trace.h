#ifndef MCFS_OBS_TRACE_H_
#define MCFS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mcfs {
namespace obs {

// ---------------------------------------------------------------------------
// Scoped trace spans. MCFS_SPAN("wma/iteration") records a begin/end
// pair on a per-thread buffer; ChromeTraceJson()/WriteChromeTrace()
// export the collected spans as Chrome trace_event "complete" (ph:"X")
// events, loadable in chrome://tracing and https://ui.perfetto.dev.
//
// Tracing is off by default: a disabled span costs one relaxed atomic
// load. Enable with EnableTracing(true), the MCFS_TRACE=<path>
// environment variable (which also writes the file at process exit), or
// the bench binaries' --trace-out=PATH flag. An MCFS_TRACE path that
// cannot be opened emits one typed warning to stderr and leaves tracing
// disabled — spans are never dropped silently (see ConfigureTraceFile).
//
// Span buffers are per-thread (no lock on the hot path is contended;
// each buffer has a private mutex so collection is safe) and survive
// thread exit, so pool workers' spans are always exported. Collect only
// while no instrumented parallel section is running (ParallelFor joins
// before returning, so after it returns the pool is quiescent).
//
// Request-scoped attribution (DESIGN.md §4.11): every span also records
// the calling thread's *trace context* — a process-unique request id
// installed with ScopedTraceContext and propagated into ThreadPool
// workers by ParallelFor — so spans from one request remain attributable
// across dispatcher batching and nested parallel sections.
// ---------------------------------------------------------------------------

extern std::atomic<bool> g_tracing_enabled;

inline bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool enabled);

// Points the process-exit Chrome-trace writer at `path` and enables
// tracing. The path is probed immediately: when it cannot be opened the
// function prints one typed warning to stderr, fills `*error` (when
// non-null) with the same message, DISABLES tracing, and returns false —
// the MCFS_TRACE contract is "trace to this file or say loudly that you
// cannot", never silent span loss. Called by the MCFS_TRACE environment
// initializer; exposed for tests and embedding programs.
bool ConfigureTraceFile(const std::string& path, std::string* error = nullptr);

// --- Request-scoped trace contexts -----------------------------------------

// A request-scoped identity: 0 means "no context" (process-wide /
// background work). Carried on a thread-local, captured by spans and
// flight-recorder events, and handed across ParallelFor dispatch.
struct TraceContext {
  uint64_t trace_id = 0;
};

// Process-unique nonzero trace id (atomic counter; never reused).
uint64_t NewTraceId();

// The calling thread's current trace id (0 when none is installed).
uint64_t CurrentTraceId();

// RAII installer: sets the calling thread's trace context for the
// enclosing scope and restores the previous one on exit. Cheap (two
// thread-local stores), so callers install it unconditionally — span
// *recording* stays gated on TracingEnabled().
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(uint64_t trace_id);
  explicit ScopedTraceContext(const TraceContext& context)
      : ScopedTraceContext(context.trace_id) {}
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t previous_ = 0;
};

// One completed span. Timestamps are steady-clock microseconds relative
// to the process trace epoch; depth is the span nesting level on its
// thread (0 = outermost), exported as an event argument together with
// the trace id active when the span began (0 = unattributed).
struct TraceEvent {
  std::string name;
  int tid = 0;
  int depth = 0;
  int64_t start_us = 0;
  int64_t dur_us = 0;
  uint64_t trace_id = 0;
};

// RAII span. The name is copied at construction, so temporaries are
// fine; when tracing is disabled construction and destruction are
// branch-only.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) Begin(name);
  }
  explicit TraceSpan(const std::string& name) {
    if (TracingEnabled()) Begin(name.c_str());
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  std::string name_;
  int64_t start_us_ = 0;
  uint64_t trace_id_ = 0;
};

// Steady-clock microseconds since the process trace epoch.
int64_t TraceNowUs();

// All completed spans from every thread, sorted by (start, tid).
std::vector<TraceEvent> CollectTraceEvents();

// Drops every recorded span (buffers stay registered).
void ClearTrace();

// Chrome trace_event JSON: {"traceEvents": [{"name", "cat", "ph": "X",
// "ts", "dur", "pid", "tid", "args": {"depth", "trace_id"}} ...]}.
std::string ChromeTraceJson();

// Writes ChromeTraceJson() to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace obs
}  // namespace mcfs

#define MCFS_OBS_CONCAT_INNER(a, b) a##b
#define MCFS_OBS_CONCAT(a, b) MCFS_OBS_CONCAT_INNER(a, b)

// Scoped trace span covering the rest of the enclosing block.
#define MCFS_SPAN(name) \
  ::mcfs::obs::TraceSpan MCFS_OBS_CONCAT(mcfs_obs_span_, __LINE__)(name)

#endif  // MCFS_OBS_TRACE_H_
