#include "mcfs/obs/histogram.h"

#include <algorithm>
#include <cmath>

#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {
namespace obs {

namespace {

// CAS folds shared with Distribution (metrics.cc keeps its own copies
// in an anonymous namespace; duplicated here rather than exported to
// keep the metrics header surface minimal).
void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

struct BoundaryTable {
  double bounds[kHistogramBuckets];
  BoundaryTable() {
    double bound = kHistogramMinBound;
    for (int i = 0; i < kHistogramBuckets - 1; ++i) {
      bounds[i] = bound;
      bound *= kHistogramGrowth;
    }
    bounds[kHistogramBuckets - 1] = std::numeric_limits<double>::infinity();
  }
};

}  // namespace

const double* HistogramBoundaries() {
  static const BoundaryTable table;
  return table.bounds;
}

int HistogramBucketFor(double value) {
  const double* bounds = HistogramBoundaries();
  // Linear-free lookup: boundaries are sorted, so upper_bound finds the
  // first bucket whose (exclusive) upper bound exceeds `value`. The
  // last entry is +inf, so the result is always in range. Negative and
  // NaN-free zero values land in bucket 0.
  const double* it =
      std::upper_bound(bounds, bounds + kHistogramBuckets, value);
  int index = static_cast<int>(it - bounds);
  if (index >= kHistogramBuckets) index = kHistogramBuckets - 1;
  return index;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest value whose cumulative count reaches
  // rank = ceil(q * count), with rank at least 1.
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  const double* bounds = HistogramBoundaries();
  int64_t cumulative = 0;
  double estimate = max;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // Upper bound of the bucket; the overflow bucket has no finite
      // bound, so it reports the exact max instead.
      estimate = (i == kHistogramBuckets - 1) ? max : bounds[i];
      break;
    }
  }
  // Clamp to the exact extremes so p99 <= max and quantiles of a
  // single-sample histogram equal that sample's recorded bounds.
  if (estimate > max) estimate = max;
  if (estimate < min) estimate = min;
  return estimate;
}

uint64_t HistogramSnapshot::TailExemplar(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  int64_t cumulative = 0;
  int quantile_bucket = kHistogramBuckets - 1;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      quantile_bucket = i;
      break;
    }
  }
  // Prefer the highest attributed bucket at or above the quantile
  // bucket: the worst recent request is the most useful pointer.
  for (int i = kHistogramBuckets - 1; i >= quantile_bucket; --i) {
    if (buckets[i] > 0 && exemplars[i] != 0) return exemplars[i];
  }
  return 0;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
    if (other.exemplars[i] != 0) exemplars[i] = other.exemplars[i];
  }
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  const int bucket = HistogramBucketFor(value);
  Slot& slot = slots_[MetricShardIndex() % kHistogramShards];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(slot.sum, value);
  AtomicMinDouble(slot.min, value);
  AtomicMaxDouble(slot.max, value);
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  const uint64_t trace_id = CurrentTraceId();
  if (trace_id != 0) {
    exemplars_[bucket].store(trace_id, std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (const Slot& slot : slots_) {
    snapshot.count += slot.count.load(std::memory_order_relaxed);
    snapshot.sum += slot.sum.load(std::memory_order_relaxed);
    snapshot.min =
        std::min(snapshot.min, slot.min.load(std::memory_order_relaxed));
    snapshot.max =
        std::max(snapshot.max, slot.max.load(std::memory_order_relaxed));
    for (int i = 0; i < kHistogramBuckets; ++i) {
      snapshot.buckets[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
  }
  for (int i = 0; i < kHistogramBuckets; ++i) {
    snapshot.exemplars[i] = exemplars_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0.0, std::memory_order_relaxed);
    slot.min.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    slot.max.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    for (int i = 0; i < kHistogramBuckets; ++i) {
      slot.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
  for (int i = 0; i < kHistogramBuckets; ++i) {
    exemplars_[i].store(0, std::memory_order_relaxed);
  }
}

std::string HistogramJson(const HistogramSnapshot& snapshot) {
  const double* bounds = HistogramBoundaries();
  std::string json = "{";
  json += "\"count\": " + std::to_string(snapshot.count);
  if (snapshot.count == 0) {
    // Empty histograms have no data: every statistic is null, and the
    // bucket list is empty — never -inf/inf garbage (obs::JsonNumber
    // would render those as null too, but being explicit keeps the
    // schema stable for the CI validators).
    json +=
        ", \"sum\": null, \"min\": null, \"max\": null, \"mean\": null"
        ", \"p50\": null, \"p95\": null, \"p99\": null, \"buckets\": []}";
    return json;
  }
  json += ", \"sum\": " + JsonNumber(snapshot.sum);
  json += ", \"min\": " + JsonNumber(snapshot.min);
  json += ", \"max\": " + JsonNumber(snapshot.max);
  json += ", \"mean\": " + JsonNumber(snapshot.Mean());
  json += ", \"p50\": " + JsonNumber(snapshot.Quantile(0.50));
  json += ", \"p95\": " + JsonNumber(snapshot.Quantile(0.95));
  json += ", \"p99\": " + JsonNumber(snapshot.Quantile(0.99));
  json += ", \"buckets\": [";
  bool first = true;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (snapshot.buckets[i] == 0) continue;
    if (!first) json += ", ";
    first = false;
    json += "[" + JsonNumber(bounds[i]) + ", " +
            std::to_string(snapshot.buckets[i]) + ", " +
            std::to_string(snapshot.exemplars[i]) + "]";
  }
  json += "]}";
  return json;
}

}  // namespace obs
}  // namespace mcfs
