#ifndef MCFS_OBS_HISTOGRAM_H_
#define MCFS_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mcfs {
namespace obs {

// ---------------------------------------------------------------------------
// Fixed-boundary log-scale histograms (DESIGN.md §4.11).
//
// Every Histogram in the process shares ONE boundary table of
// kHistogramBuckets buckets spanning [kHistogramMinBound, ~3e3) in
// geometric steps of kHistogramGrowth, plus an overflow bucket. Fixed
// boundaries make histograms mergeable across threads and across
// snapshots by plain bucket-wise addition, and make quantile error
// bounded by one bucket width (a factor of kHistogramGrowth) by
// construction. Values are expected in *seconds*: the table covers
// 1 microsecond .. ~50 minutes, which brackets every latency this
// code base measures.
//
// Concurrency: like Counter/Distribution, buckets are sharded across
// kMetricShards cache-line-padded slots indexed by MetricShardIndex(),
// so concurrent Observe() calls on different threads do not contend.
// Count/sum/min/max are tracked exactly (min/max via CAS), so a
// HistogramSnapshot can report the exact max alongside bucketed
// quantiles — quantile estimates are clamped to the exact extremes.
//
// Exemplars: each bucket keeps the trace id (obs::CurrentTraceId()) of
// the most recent observation that landed in it, in a single unsharded
// atomic (last-writer-wins; exemplars are diagnostic pointers, not
// statistics). Tail-bucket exemplars let an operator jump from "p99 is
// bad" straight to a concrete offending request id.
// ---------------------------------------------------------------------------

inline constexpr int kHistogramBuckets = 64;
inline constexpr double kHistogramMinBound = 1e-6;
inline constexpr double kHistogramGrowth = 1.4;

// Upper bound (exclusive) of bucket `i` for i < kHistogramBuckets - 1:
// kHistogramMinBound * kHistogramGrowth^i. The last bucket is overflow
// (+inf upper bound). Returned table has kHistogramBuckets entries.
const double* HistogramBoundaries();

// Bucket index for `value`: first bucket whose upper bound exceeds it.
// Negative/zero/NaN values clamp into bucket 0 (they are measurement
// noise, not data — exact min/max still record them faithfully except
// NaN, which is dropped by the caller contract).
int HistogramBucketFor(double value);

// Aggregated view of a Histogram at one point in time. Mergeable:
// bucket-wise add, count/sum add, min/max fold.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t buckets[kHistogramBuckets] = {0};
  // Last trace id observed per bucket; 0 = none/unattributed.
  uint64_t exemplars[kHistogramBuckets] = {0};

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  // Nearest-rank quantile over the bucketed counts, q in [0,1]. The
  // estimate is the upper boundary of the bucket holding the rank,
  // clamped to [min, max] so p99 <= max and p0 >= min always hold.
  // Returns 0.0 when empty (callers emit null for empty histograms).
  double Quantile(double q) const;

  // Trace id of the most recent observation in the highest non-empty
  // bucket at or above quantile `q` (0 when none) — the "tail
  // exemplar" for jumping from a bad percentile to a request id.
  uint64_t TailExemplar(double q) const;

  void Merge(const HistogramSnapshot& other);
};

// Log-scale histogram with cache-line-padded per-thread shards.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  // Records `value` (seconds). NaN is ignored; negative values clamp
  // into bucket 0. Also tags the bucket's exemplar with the calling
  // thread's CurrentTraceId() when nonzero.
  void Observe(double value);

  // Merges the shards in slot order (deterministic: integer sums).
  HistogramSnapshot Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  // Sharding factor; kept as a distinct constant so histogram memory
  // (16 shards x 64 buckets x 8B = 8 KiB per histogram) is a conscious
  // choice, not an accident of kMetricShards changing.
  static constexpr int kHistogramShards = 16;

  struct alignas(64) Slot {
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<int64_t> buckets[kHistogramBuckets] = {};
  };
  std::string name_;
  Slot slots_[kHistogramShards];
  std::atomic<uint64_t> exemplars_[kHistogramBuckets] = {};
};

// Renders one snapshot as a JSON object: {"count":..,"sum":..,"min":..,
// "max":..,"mean":..,"p50":..,"p95":..,"p99":..,"buckets":[[bound,count,
// exemplar],...nonempty only]}. Empty histogram => all quantiles null.
std::string HistogramJson(const HistogramSnapshot& snapshot);

}  // namespace obs
}  // namespace mcfs

#endif  // MCFS_OBS_HISTOGRAM_H_
