#include "mcfs/obs/trace.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "mcfs/obs/metrics.h"

namespace mcfs {
namespace obs {

std::atomic<bool> g_tracing_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point TraceEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Per-thread span buffer. Owned jointly by the writing thread (via a
// thread_local shared_ptr) and the global registry, so events survive
// thread exit until exported.
struct ThreadTraceBuffer {
  int tid = 0;
  int depth = 0;  // current nesting level, touched only by the owner
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  int next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local const std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto created = std::make_shared<ThreadTraceBuffer>();
    BufferRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    created->tid = registry.next_tid++;
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

// The calling thread's current trace context. Plain thread_local (not
// atomic): only the owning thread reads or writes it; cross-thread
// propagation happens by value through ThreadPool::Job.
thread_local uint64_t t_current_trace_id = 0;

std::atomic<uint64_t> g_next_trace_id{1};

// The process-exit trace-file writer registered by ConfigureTraceFile.
// Guarded by its own mutex; registered with atexit at most once so
// repeated ConfigureTraceFile calls just retarget the path.
struct TraceFileSink {
  std::mutex mutex;
  std::string path;
  bool atexit_registered = false;
};

TraceFileSink& Sink() {
  static TraceFileSink* sink = new TraceFileSink();
  return *sink;
}

void WriteTraceFileAtExit() {
  std::string path;
  {
    TraceFileSink& sink = Sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    path = sink.path;
  }
  if (!path.empty()) WriteChromeTrace(path);
}

// MCFS_TRACE=<path>: enable tracing now, write the file at exit. Done
// in a dynamic initializer so every binary honors the variable without
// code changes. An unopenable path warns once and leaves tracing off
// (ConfigureTraceFile), instead of silently losing every span at exit.
const bool g_env_init = [] {
  const char* env = std::getenv("MCFS_TRACE");
  if (env != nullptr && env[0] != '\0') ConfigureTraceFile(env);
  return true;
}();

}  // namespace

void EnableTracing(bool enabled) {
  (void)g_env_init;
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool ConfigureTraceFile(const std::string& path, std::string* error) {
  // Probe with "a" so an existing trace from a parent process (or an
  // earlier Configure call) is not truncated before the atexit writer
  // replaces it with the real document.
  std::FILE* probe = std::fopen(path.c_str(), "a");
  if (probe == nullptr) {
    std::string message = "mcfs: warning: MCFS_TRACE path \"" + path +
                          "\" cannot be opened (" + std::strerror(errno) +
                          "); tracing disabled";
    std::fprintf(stderr, "%s\n", message.c_str());
    if (error != nullptr) *error = std::move(message);
    g_tracing_enabled.store(false, std::memory_order_relaxed);
    return false;
  }
  std::fclose(probe);
  {
    TraceFileSink& sink = Sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.path = path;
    if (!sink.atexit_registered) {
      sink.atexit_registered = true;
      std::atexit(WriteTraceFileAtExit);
    }
  }
  g_tracing_enabled.store(true, std::memory_order_relaxed);
  if (error != nullptr) error->clear();
  return true;
}

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentTraceId() { return t_current_trace_id; }

ScopedTraceContext::ScopedTraceContext(uint64_t trace_id)
    : previous_(t_current_trace_id) {
  t_current_trace_id = trace_id;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_trace_id = previous_; }

int64_t TraceNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               TraceEpoch())
      .count();
}

void TraceSpan::Begin(const char* name) {
  active_ = true;
  name_ = name;
  trace_id_ = t_current_trace_id;
  ThreadTraceBuffer& buffer = LocalBuffer();
  ++buffer.depth;
  start_us_ = TraceNowUs();
}

void TraceSpan::End() {
  const int64_t end_us = TraceNowUs();
  ThreadTraceBuffer& buffer = LocalBuffer();
  const int depth = --buffer.depth;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back({std::move(name_), buffer.tid, depth, start_us_,
                           end_us - start_us_, trace_id_});
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> all;
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              // Parents before children: lower depth first, then longer
              // duration (spans shorter than 1 us share start and dur).
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.dur_us > b.dur_us;
            });
  return all;
}

void ClearTrace() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string ChromeTraceJson() {
  const std::vector<TraceEvent> events = CollectTraceEvents();
  std::string json = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) json += ",";
    first = false;
    json += "\n{\"name\": \"" + JsonEscape(event.name) +
            "\", \"cat\": \"mcfs\", \"ph\": \"X\", \"ts\": " +
            std::to_string(event.start_us) +
            ", \"dur\": " + std::to_string(event.dur_us) +
            ", \"pid\": 1, \"tid\": " + std::to_string(event.tid) +
            ", \"args\": {\"depth\": " + std::to_string(event.depth) +
            ", \"trace_id\": " + std::to_string(event.trace_id) + "}}";
  }
  json += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return json;
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok && written != json.size()) std::fclose(file);
  return ok;
}

}  // namespace obs
}  // namespace mcfs
