#ifndef MCFS_OBS_METRICS_H_
#define MCFS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "mcfs/obs/histogram.h"

namespace mcfs {
namespace obs {

// ---------------------------------------------------------------------------
// Process-wide metrics: named monotonic counters and distribution stats
// (count/sum/min/max), registered once in a MetricsRegistry and updated
// through per-thread shards so hot paths never contend on a lock.
//
// Determinism contract (see DESIGN.md "Observability"): a counter value
// is the sum of the logical Add() calls made by the algorithm, and every
// instrumented site performs the same logical adds regardless of the
// thread count (work may *move* between threads, but integer addition is
// associative, so the aggregate is bit-identical). The only exception is
// the "exec/" name prefix, reserved for counters that measure *physical*
// execution effects — speculative prefetch advances, prefetch-buffer
// hits, inline-vs-pooled dispatch — which legitimately vary with the
// thread count and are excluded from the determinism tests.
//
// Enabling: metrics are off by default; the guarded MCFS_COUNT /
// MCFS_OBSERVE macros then cost one relaxed atomic load and a predicted
// branch. Turn them on with EnableMetrics(true), the MCFS_METRICS=1
// environment variable, WmaOptions::metrics, or the bench binaries'
// --metrics flag.
// ---------------------------------------------------------------------------

// Number of per-thread slots per metric. Threads hash onto slots by a
// stable per-thread index, so two threads share a slot only beyond
// kMetricShards concurrent threads (still correct: slots are atomic).
inline constexpr int kMetricShards = 16;

// Global enable flag. Constant-initialized to false so instrumented
// code is safe to run during static initialization.
extern std::atomic<bool> g_metrics_enabled;

inline bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void EnableMetrics(bool enabled);

// Stable small index for the calling thread (assigned on first use).
int MetricShardIndex();

// Monotonic counter with cache-line-padded per-thread shards.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(int64_t n) {
    slots_[MetricShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  // Aggregates the shards in slot order (deterministic: integer sum).
  int64_t Value() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> value{0};
  };
  std::string name_;
  Slot slots_[kMetricShards];
};

// Aggregated view of a Distribution.
struct DistSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

// Distribution statistic (count/sum/min/max) with per-thread shards.
// min/max use CAS loops; sum uses a CAS add so the library does not
// depend on std::atomic<double>::fetch_add support.
class Distribution {
 public:
  explicit Distribution(std::string name) : name_(std::move(name)) {}

  void Observe(double value);

  // Merges the shards in slot order.
  DistSnapshot Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::string name_;
  Slot slots_[kMetricShards];
};

// Full aggregated view of the registry at one point in time.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, DistSnapshot> distributions;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && distributions.empty() && histograms.empty();
  }
};

// Process-wide registry. Metric objects are created on first lookup and
// live for the whole process (stable pointers — call sites cache them in
// a function-local static), so lookups pay the mutex only once per site.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* GetCounter(const std::string& name);
  Distribution* GetDistribution(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Aggregated values of every registered metric, in name order.
  MetricsSnapshot Snapshot() const;

  // Zeroes every metric (registration survives). Used by the bench
  // runner for exact per-cell attribution and by tests.
  void Reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Distribution>> distributions_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Convenience wrappers.
inline MetricsSnapshot SnapshotMetrics() {
  return MetricsRegistry::Get().Snapshot();
}
inline void ResetMetrics() { MetricsRegistry::Get().Reset(); }

// Renders a snapshot as a JSON object:
//   {"counters": {...}, "distributions": {"name": {"count":..,...}}}
std::string MetricsJson(const MetricsSnapshot& snapshot);

// JSON string escaping shared by the metrics/trace/report writers.
std::string JsonEscape(const std::string& text);

// Renders a double as a JSON number, with non-finite values (inf/NaN —
// which JSON has no literals for) serialized as null. Every writer that
// streams a double into JSON (run reports, metrics, service reports)
// must go through this so an infeasible/deadline-truncated objective
// can never produce an invalid document.
std::string JsonNumber(double value);

}  // namespace obs
}  // namespace mcfs

// Adds `n` to the named counter when metrics are enabled. `name` must be
// a string literal (the pointer is looked up once per call site).
#define MCFS_COUNT(name, n)                                           \
  do {                                                                \
    if (::mcfs::obs::MetricsEnabled()) {                              \
      static ::mcfs::obs::Counter* mcfs_obs_counter =                 \
          ::mcfs::obs::MetricsRegistry::Get().GetCounter(name);       \
      mcfs_obs_counter->Add(n);                                       \
    }                                                                 \
  } while (0)

// Records one observation into the named distribution when metrics are
// enabled. `name` must be a string literal.
#define MCFS_OBSERVE(name, value)                                     \
  do {                                                                \
    if (::mcfs::obs::MetricsEnabled()) {                              \
      static ::mcfs::obs::Distribution* mcfs_obs_dist =               \
          ::mcfs::obs::MetricsRegistry::Get().GetDistribution(name);  \
      mcfs_obs_dist->Observe(value);                                  \
    }                                                                 \
  } while (0)

// Records one observation (seconds) into the named log-scale histogram
// when metrics are enabled. `name` must be a string literal. The
// observation is tagged with the calling thread's current trace id as
// the bucket exemplar.
#define MCFS_HISTOGRAM(name, value)                                   \
  do {                                                                \
    if (::mcfs::obs::MetricsEnabled()) {                              \
      static ::mcfs::obs::Histogram* mcfs_obs_hist =                  \
          ::mcfs::obs::MetricsRegistry::Get().GetHistogram(name);     \
      mcfs_obs_hist->Observe(value);                                  \
    }                                                                 \
  } while (0)

#endif  // MCFS_OBS_METRICS_H_
