#ifndef MCFS_OBS_FLIGHT_RECORDER_H_
#define MCFS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mcfs {
namespace obs {

// ---------------------------------------------------------------------------
// Flight recorder (DESIGN.md §4.11): a bounded, lock-free, per-thread
// ring of recent structured events — phase transitions, epoch swaps,
// warm-seed repair decisions, deadline hits. Unlike spans (which need
// tracing enabled and grow without bound) the recorder runs
// continuously at fixed memory, so when a solve goes wrong the last few
// hundred events per thread are already in memory and can be dumped as
// a bounded JSON postmortem — automatically on verifier rejection,
// kInternal/kInfeasible responses, or deadline-exceeded warm solves
// (see SolverService), or on demand.
//
// Concurrency: each thread owns one ring; only the owner writes.
// Readers (postmortem dumps from any thread) use a per-slot seqlock:
// the writer bumps the slot's sequence to odd, stores the fields, then
// bumps it to even; a reader that sees an odd or changed sequence skips
// that slot. Every field is a std::atomic accessed with explicit
// ordering, so concurrent dump-while-recording is race-free under TSan
// — a torn slot is *skipped*, never misread. Event names must be
// string literals (the ring stores the pointer, never copies).
//
// Cost when disabled: one relaxed atomic load per MCFS_RECORD site.
// Enable with EnableFlightRecorder(true) or MCFS_FLIGHT_RECORDER=1;
// SolverService enables it for its own threads when configured.
// ---------------------------------------------------------------------------

// Events kept per thread. 256 slots x 6 words ≈ 12 KiB per thread.
inline constexpr int kFlightRingCapacity = 256;

extern std::atomic<bool> g_flight_enabled;

inline bool FlightRecorderEnabled() {
  return g_flight_enabled.load(std::memory_order_relaxed);
}

void EnableFlightRecorder(bool enabled);

// One event as read back out of a ring. `a`/`b` are event-specific
// payloads (epoch numbers, counts, facility ids — documented at each
// call site and in DESIGN.md §4.11).
struct FlightEvent {
  std::string name;
  int tid = 0;
  int64_t t_us = 0;      // TraceNowUs() at record time
  uint64_t trace_id = 0; // CurrentTraceId() at record time
  int64_t a = 0;
  int64_t b = 0;
  // Per-thread record ordinal — ties the sort when many events share
  // one microsecond, so a thread's events always read back in program
  // order.
  int64_t index = 0;
};

// Records one event on the calling thread's ring (no-op when the
// recorder is disabled). `name` MUST be a string literal or otherwise
// immortal: the ring keeps the pointer.
void RecordFlightEvent(const char* name, int64_t a = 0, int64_t b = 0);

// The most recent `max_events` events across every thread's ring,
// oldest first (sorted by record time). Slots being concurrently
// overwritten are skipped. `max_events <= 0` means no limit.
std::vector<FlightEvent> CollectFlightEvents(int max_events);

// Clears every ring (testing; rings stay registered).
void ClearFlightEvents();

// Renders the most recent `max_events` events as a JSON array of
// objects: [{"name","tid","t_us","trace_id","a","b"}, ...].
std::string FlightEventsJson(int max_events);

}  // namespace obs
}  // namespace mcfs

// Records a structured flight-recorder event when the recorder is
// enabled. `name` must be a string literal; a/b are int64 payloads.
#define MCFS_RECORD(name, a, b)                        \
  do {                                                 \
    if (::mcfs::obs::FlightRecorderEnabled()) {        \
      ::mcfs::obs::RecordFlightEvent((name), (a), (b)); \
    }                                                  \
  } while (0)

#endif  // MCFS_OBS_FLIGHT_RECORDER_H_
