#include "mcfs/obs/flight_recorder.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {
namespace obs {

std::atomic<bool> g_flight_enabled{false};

namespace {

// One seqlock-guarded slot. The owner thread writes: seq -> odd,
// fields, seq -> even. A reader accepts the slot only when it observes
// the same even sequence before and after reading the fields. All
// fields are atomics, so a concurrent read of a slot mid-write is a
// *skipped* slot, never a data race.
struct FlightSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<int64_t> t_us{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<int64_t> a{0};
  std::atomic<int64_t> b{0};
};

struct FlightRing {
  int tid = 0;
  // Total events ever recorded on this ring; slot = head % capacity.
  // Written only by the owner; read by dumpers.
  std::atomic<int64_t> head{0};
  FlightSlot slots[kFlightRingCapacity];
};

struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<FlightRing>> rings;
  int next_tid = 1;
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

FlightRing& LocalRing() {
  thread_local const std::shared_ptr<FlightRing> ring = [] {
    auto created = std::make_shared<FlightRing>();
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    created->tid = registry.next_tid++;
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

// MCFS_FLIGHT_RECORDER=1 turns the recorder on for the whole process.
const bool g_env_init = [] {
  const char* env = std::getenv("MCFS_FLIGHT_RECORDER");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_flight_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

}  // namespace

void EnableFlightRecorder(bool enabled) {
  (void)g_env_init;
  g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

void RecordFlightEvent(const char* name, int64_t a, int64_t b) {
  FlightRing& ring = LocalRing();
  const int64_t head = ring.head.load(std::memory_order_relaxed);
  FlightSlot& slot = ring.slots[head % kFlightRingCapacity];
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);  // odd: in progress
  slot.name.store(name, std::memory_order_relaxed);
  slot.t_us.store(TraceNowUs(), std::memory_order_relaxed);
  slot.trace_id.store(CurrentTraceId(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);  // even: committed
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<FlightEvent> CollectFlightEvents(int max_events) {
  std::vector<FlightEvent> all;
  {
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto& ring : registry.rings) {
      const int64_t head = ring->head.load(std::memory_order_acquire);
      const int64_t begin =
          head > kFlightRingCapacity ? head - kFlightRingCapacity : 0;
      for (int64_t i = begin; i < head; ++i) {
        const FlightSlot& slot = ring->slots[i % kFlightRingCapacity];
        const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
        if (seq_before == 0 || (seq_before & 1) != 0) continue;
        FlightEvent event;
        const char* name = slot.name.load(std::memory_order_relaxed);
        event.tid = ring->tid;
        event.t_us = slot.t_us.load(std::memory_order_relaxed);
        event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
        event.a = slot.a.load(std::memory_order_relaxed);
        event.b = slot.b.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const uint64_t seq_after = slot.seq.load(std::memory_order_relaxed);
        // Skip slots overwritten while being read (the writer may have
        // lapped the ring between head load and here).
        if (seq_after != seq_before || name == nullptr) continue;
        event.name = name;
        event.index = i;
        all.push_back(std::move(event));
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.t_us != b.t_us) return a.t_us < b.t_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.index < b.index;
            });
  if (max_events > 0 && static_cast<int64_t>(all.size()) > max_events) {
    all.erase(all.begin(), all.end() - max_events);
  }
  return all;
}

void ClearFlightEvents() {
  RingRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& ring : registry.rings) {
    // Clearing from a foreign thread races benignly with the owner's
    // recording (all atomics); tests call this while rings are quiet.
    for (FlightSlot& slot : ring->slots) {
      const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
      slot.seq.store(seq + 1, std::memory_order_release);
      slot.name.store(nullptr, std::memory_order_relaxed);
      slot.seq.store(seq + 2, std::memory_order_release);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

std::string FlightEventsJson(int max_events) {
  const std::vector<FlightEvent> events = CollectFlightEvents(max_events);
  std::string json = "[";
  bool first = true;
  for (const FlightEvent& event : events) {
    if (!first) json += ",";
    first = false;
    json += "\n{\"name\": \"" + JsonEscape(event.name) +
            "\", \"tid\": " + std::to_string(event.tid) +
            ", \"t_us\": " + std::to_string(event.t_us) +
            ", \"trace_id\": " + std::to_string(event.trace_id) +
            ", \"a\": " + std::to_string(event.a) +
            ", \"b\": " + std::to_string(event.b) + "}";
  }
  json += "\n]";
  return json;
}

}  // namespace obs
}  // namespace mcfs
