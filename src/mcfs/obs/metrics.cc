#include "mcfs/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mcfs {
namespace obs {

std::atomic<bool> g_metrics_enabled{false};

namespace {

// Reads MCFS_METRICS once at program start (dynamic initialization).
// Code that runs earlier simply sees metrics disabled, which is safe.
const bool g_env_init = [] {
  const char* env = std::getenv("MCFS_METRICS");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_metrics_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

std::atomic<int> g_next_thread_index{0};

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void EnableMetrics(bool enabled) {
  (void)g_env_init;
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

int MetricShardIndex() {
  thread_local const int index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed) %
      kMetricShards;
  return index;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Slot& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
}

void Distribution::Observe(double value) {
  Slot& slot = slots_[MetricShardIndex()];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(slot.sum, value);
  AtomicMinDouble(slot.min, value);
  AtomicMaxDouble(slot.max, value);
}

DistSnapshot Distribution::Snapshot() const {
  DistSnapshot result;
  for (const Slot& slot : slots_) {
    const int64_t count = slot.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    result.count += count;
    result.sum += slot.sum.load(std::memory_order_relaxed);
    const double lo = slot.min.load(std::memory_order_relaxed);
    const double hi = slot.max.load(std::memory_order_relaxed);
    if (lo < result.min) result.min = lo;
    if (hi > result.max) result.max = hi;
  }
  return result;
}

void Distribution::Reset() {
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0.0, std::memory_order_relaxed);
    slot.min.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    slot.max.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked on purpose: hot paths cache Counter*/Distribution* pointers
  // in function-local statics, which must stay valid during static
  // destruction of other objects.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Distribution* MetricsRegistry::GetDistribution(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = distributions_[name];
  if (slot == nullptr) slot = std::make_unique<Distribution>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, dist] : distributions_) {
    snapshot.distributions[name] = dist->Snapshot();
  }
  for (const auto& [name, hist] : histograms_) {
    snapshot.histograms[name] = hist->Snapshot();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, dist] : distributions_) dist->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string json = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  json += "}, \"distributions\": {";
  first = true;
  for (const auto& [name, dist] : snapshot.distributions) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + JsonEscape(name) + "\": {\"count\": " +
            std::to_string(dist.count) + ", \"sum\": " + JsonNumber(dist.sum) +
            ", \"min\": " + JsonNumber(dist.min) +
            ", \"max\": " + JsonNumber(dist.max) + "}";
  }
  json += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + JsonEscape(name) + "\": " + HistogramJson(hist);
  }
  json += "}}";
  return json;
}

}  // namespace obs
}  // namespace mcfs
